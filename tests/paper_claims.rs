//! End-to-end integration tests asserting the paper's headline claims at
//! reduced scale (shape, not absolute numbers — see DESIGN.md §4).
//!
//! Each test runs complete simulations through the public API: model
//! generation → trace generation → simulation → report.

use fcache::{Architecture, SimConfig, Workbench, WorkloadSpec, WritebackPolicy};
use fcache_device::FlashModel;
use fcache_types::ByteSize;

/// Shared scale for these tests: big enough for stable statistics, small
/// enough to keep the suite fast.
const SCALE: u64 = 2048;

fn bench() -> Workbench {
    Workbench::new(SCALE, 42)
}

#[test]
fn flash_cache_improves_reads_dramatically_when_ws_fits() {
    // Figure 4's core claim: when the working set fits in flash, read
    // latency improves dramatically over a RAM-only system.
    let wb = bench();
    let spec = WorkloadSpec::baseline_60g();
    let trace = wb.make_trace(&spec);
    let no_flash = wb
        .run_with_trace(
            &SimConfig {
                flash_size: ByteSize::ZERO,
                ..SimConfig::baseline()
            },
            &trace,
        )
        .unwrap();
    let with_flash = wb.run_with_trace(&SimConfig::baseline(), &trace).unwrap();
    assert!(
        with_flash.read_latency_us() * 2.0 < no_flash.read_latency_us(),
        "flash {:.0} µs should be far below no-flash {:.0} µs",
        with_flash.read_latency_us(),
        no_flash.read_latency_us()
    );
}

#[test]
fn flash_helps_even_when_working_set_exceeds_it() {
    // "even when the working set far exceeds the flash size, the flash
    // improves performance significantly" (§7.2).
    let wb = bench();
    let spec = WorkloadSpec {
        working_set: ByteSize::gib(320),
        seed: 320,
        ..WorkloadSpec::default()
    };
    let trace = wb.make_trace(&spec);
    let no_flash = wb
        .run_with_trace(
            &SimConfig {
                flash_size: ByteSize::ZERO,
                ..SimConfig::baseline()
            },
            &trace,
        )
        .unwrap();
    let with_flash = wb.run_with_trace(&SimConfig::baseline(), &trace).unwrap();
    assert!(
        with_flash.read_latency_us() < 0.85 * no_flash.read_latency_us(),
        "flash {:.0} µs vs no-flash {:.0} µs",
        with_flash.read_latency_us(),
        no_flash.read_latency_us()
    );
}

#[test]
fn writeback_policy_interior_is_flat() {
    // Figure 2: "excepting policies that result in synchronous writes to
    // the filer (synchronous or none) the writeback policy does not
    // matter."
    let wb = bench();
    let trace = wb.make_trace(&WorkloadSpec::baseline_80g());
    let benign = [
        (
            WritebackPolicy::AsyncWriteThrough,
            WritebackPolicy::AsyncWriteThrough,
        ),
        (
            WritebackPolicy::Periodic(1),
            WritebackPolicy::AsyncWriteThrough,
        ),
        (WritebackPolicy::Periodic(1), WritebackPolicy::Periodic(5)),
        (WritebackPolicy::Periodic(30), WritebackPolicy::Periodic(30)),
        (
            WritebackPolicy::AsyncWriteThrough,
            WritebackPolicy::Periodic(15),
        ),
    ];
    let mut writes = Vec::new();
    for (ram_policy, flash_policy) in benign {
        let cfg = SimConfig {
            ram_policy,
            flash_policy,
            ..SimConfig::baseline()
        };
        let r = wb.run_with_trace(&cfg, &trace).unwrap();
        writes.push(r.write_latency_us());
    }
    // All benign combinations write at RAM speed.
    for (i, w) in writes.iter().enumerate() {
        assert!(
            (*w - 0.4).abs() < 0.2,
            "benign combo {i} write latency {w} µs should be ≈0.4 µs"
        );
    }
}

#[test]
fn synchronous_write_through_to_filer_is_slow() {
    // The s/s corner of Figure 2 exposes the full filer round trip.
    let wb = bench();
    let trace = wb.make_trace(&WorkloadSpec::baseline_80g());
    let cfg = SimConfig {
        ram_policy: WritebackPolicy::WriteThrough,
        flash_policy: WritebackPolicy::WriteThrough,
        ..SimConfig::baseline()
    };
    let r = wb.run_with_trace(&cfg, &trace).unwrap();
    assert!(
        r.write_latency_us() > 100.0,
        "s/s writes must expose filer latency, got {:.1} µs",
        r.write_latency_us()
    );
}

#[test]
fn none_policy_exposes_eviction_stalls() {
    // The n/n corner: "multiple threads doing evictions contend for the
    // network, convoy, and slow down" (§7.1).
    let wb = bench();
    let trace = wb.make_trace(&WorkloadSpec::baseline_80g());
    let cfg = SimConfig {
        ram_policy: WritebackPolicy::None,
        flash_policy: WritebackPolicy::None,
        ..SimConfig::baseline()
    };
    let r = wb.run_with_trace(&cfg, &trace).unwrap();
    assert!(
        r.write_latency_us() > 2.0,
        "n/n writes must stall on evictions, got {:.2} µs",
        r.write_latency_us()
    );
    assert!(r.flash.dirty_evictions > 0);
}

#[test]
fn unified_wins_reads_when_ws_falls_out_of_flash() {
    // §7.1: at 80 GB the unified architecture's larger effective capacity
    // (72 GB vs 64 GB) improves read latency "by as much as 20%"; naive
    // and lookaside write at RAM speed while unified pays ~8/9 of the
    // flash write latency.
    let wb = bench();
    let trace = wb.make_trace(&WorkloadSpec::baseline_80g());
    let mut results = Vec::new();
    for arch in Architecture::ALL {
        let cfg = SimConfig {
            arch,
            ..SimConfig::baseline()
        };
        results.push((arch, wb.run_with_trace(&cfg, &trace).unwrap()));
    }
    let read = |a: Architecture| {
        results
            .iter()
            .find(|(x, _)| *x == a)
            .map(|(_, r)| r.read_latency_us())
            .unwrap()
    };
    let write = |a: Architecture| {
        results
            .iter()
            .find(|(x, _)| *x == a)
            .map(|(_, r)| r.write_latency_us())
            .unwrap()
    };
    assert!(
        read(Architecture::Unified) < read(Architecture::Naive),
        "unified reads {:.0} µs must beat naive {:.0} µs",
        read(Architecture::Unified),
        read(Architecture::Naive)
    );
    // Naive and lookaside write at RAM speed.
    assert!((write(Architecture::Naive) - 0.4).abs() < 0.2);
    assert!((write(Architecture::Lookaside) - 0.4).abs() < 0.2);
    // Unified pays ~8/9 × 21 µs ≈ 18.7 µs.
    let u = write(Architecture::Unified);
    assert!(
        (u - 18.7).abs() < 3.0,
        "unified write {u:.1} µs should be ≈18.7 µs"
    );
}

#[test]
fn lookaside_flash_never_dirty() {
    let wb = bench();
    let trace = wb.make_trace(&WorkloadSpec::baseline_60g());
    let cfg = SimConfig {
        arch: Architecture::Lookaside,
        ..SimConfig::baseline()
    };
    let r = wb.run_with_trace(&cfg, &trace).unwrap();
    assert_eq!(
        r.flash.dirty_evictions, 0,
        "lookaside flash must never hold dirty data"
    );
}

#[test]
fn tiny_ram_with_async_writeback_suffices() {
    // §7.5: "If we use the asynchronous write-through policy, a tiny
    // 256 KB is sufficient as a write buffer." At this scale the floor is
    // one 4 KB block of RAM.
    let wb = bench();
    let trace = wb.make_trace(&WorkloadSpec::baseline_60g());
    let full = SimConfig {
        ram_policy: WritebackPolicy::AsyncWriteThrough,
        ..SimConfig::baseline()
    };
    let tiny = SimConfig {
        ram_size: ByteSize::bytes_exact(4096 * SCALE), // one scaled block
        ram_policy: WritebackPolicy::AsyncWriteThrough,
        ..SimConfig::baseline()
    };
    let r_full = wb.run_with_trace(&full, &trace).unwrap();
    let r_tiny = wb.run_with_trace(&tiny, &trace).unwrap();
    // Writes stay cheap (well under flash latency)…
    assert!(
        r_tiny.write_latency_us() < 10.0,
        "tiny-RAM writes {:.2} µs",
        r_tiny.write_latency_us()
    );
    // …and reads are within ~35 % of the full-RAM configuration (the
    // paper reports "comparable" performance for out-of-RAM workloads).
    assert!(
        r_tiny.read_latency_us() < 1.35 * r_full.read_latency_us(),
        "tiny {:.0} µs vs full {:.0} µs",
        r_tiny.read_latency_us(),
        r_full.read_latency_us()
    );
}

#[test]
fn zero_ram_does_not_work_well() {
    // §7.5: "The no-RAM configuration does not work well" — every write
    // pays flash latency.
    let wb = bench();
    let trace = wb.make_trace(&WorkloadSpec::baseline_60g());
    let cfg = SimConfig {
        ram_size: ByteSize::ZERO,
        ..SimConfig::baseline()
    };
    let r = wb.run_with_trace(&cfg, &trace).unwrap();
    assert!(
        r.write_latency_us() > 15.0,
        "no-RAM writes should pay flash latency, got {:.1} µs",
        r.write_latency_us()
    );
}

#[test]
fn persistence_cost_invisible_benefit_large() {
    // §7.8: doubled flash write latency is "invisible to the application";
    // skipping warmup (crash at start) costs a lot.
    let wb = bench();
    let spec = WorkloadSpec::baseline_60g();
    let trace = wb.make_trace(&spec);

    let plain = wb.run_with_trace(&SimConfig::baseline(), &trace).unwrap();
    let persistent_cfg = SimConfig {
        flash_model: FlashModel::default().with_persistence(true),
        ..SimConfig::baseline()
    };
    let persistent = wb.run_with_trace(&persistent_cfg, &trace).unwrap();
    assert!(
        (persistent.write_latency_us() - plain.write_latency_us()).abs() < 0.5,
        "persistence must be invisible: {:.2} vs {:.2}",
        persistent.write_latency_us(),
        plain.write_latency_us()
    );
    assert!(
        persistent.read_latency_us() < 1.1 * plain.read_latency_us(),
        "persistent reads {:.0} vs plain {:.0}",
        persistent.read_latency_us(),
        plain.read_latency_us()
    );

    // Crash at start (not warmed): markedly worse reads.
    let cold_spec = WorkloadSpec {
        skip_warmup: true,
        ..spec
    };
    let cold = wb.run(&SimConfig::baseline(), &cold_spec).unwrap();
    assert!(
        cold.read_latency_us() > 1.15 * plain.read_latency_us(),
        "cold {:.0} µs vs warmed {:.0} µs",
        cold.read_latency_us(),
        plain.read_latency_us()
    );
}

#[test]
fn shared_working_set_causes_heavy_invalidation_with_flash() {
    // §7.9: "for workloads that fit in flash, the percentage of writes
    // requiring invalidation is high" compared to RAM-only caches.
    let wb = bench();
    let spec = WorkloadSpec {
        working_set: ByteSize::gib(60),
        hosts: 2,
        ws_count: 1,
        ..WorkloadSpec::default()
    };
    let trace = wb.make_trace(&spec);
    let with_flash = wb.run_with_trace(&SimConfig::baseline(), &trace).unwrap();
    let no_flash = wb
        .run_with_trace(
            &SimConfig {
                flash_size: ByteSize::ZERO,
                ..SimConfig::baseline()
            },
            &trace,
        )
        .unwrap();
    assert!(
        with_flash.invalidation_pct() > 1.5 * no_flash.invalidation_pct(),
        "flash {:.0}% vs no-flash {:.0}%",
        with_flash.invalidation_pct(),
        no_flash.invalidation_pct()
    );
    assert!(with_flash.invalidation_pct() > 40.0);
}

#[test]
fn flash_timing_scales_read_latency_linearly() {
    // §7.7 / Figure 9: "application latency scales linearly with the flash
    // latency". Compare latency deltas for three flash read times.
    let wb = bench();
    let trace = wb.make_trace(&WorkloadSpec::baseline_60g());
    let mut lat = Vec::new();
    for us in [0u64, 44, 88] {
        let cfg = SimConfig {
            flash_model: FlashModel::with_read_time_proportional(fcache_des::SimTime::from_micros(
                us,
            )),
            ..SimConfig::baseline()
        };
        lat.push(wb.run_with_trace(&cfg, &trace).unwrap().read_latency_us());
    }
    assert!(
        lat[0] < lat[1] && lat[1] < lat[2],
        "latency must increase: {lat:?}"
    );
    // Midpoint within 15 % of the linear interpolation.
    let mid = (lat[0] + lat[2]) / 2.0;
    assert!(
        (lat[1] - mid).abs() / mid < 0.15,
        "nonlinear scaling: {lat:?} (midpoint {mid:.0})"
    );
}

#[test]
fn prefetch_rate_bounds_latency() {
    // Figure 5: the filer prefetch (fast-read) rate dominates read latency.
    let wb = bench();
    let trace = wb.make_trace(&WorkloadSpec::baseline_80g());
    let mut lat = Vec::new();
    for rate in [0.80, 0.95] {
        let mut cfg = SimConfig::baseline();
        cfg.filer.fast_read_rate = rate;
        lat.push(wb.run_with_trace(&cfg, &trace).unwrap().read_latency_us());
    }
    assert!(
        lat[0] > 1.3 * lat[1],
        "80% prefetch ({:.0} µs) must be far worse than 95% ({:.0} µs)",
        lat[0],
        lat[1]
    );
}

#[test]
fn reports_are_deterministic() {
    let wb = bench();
    let spec = WorkloadSpec::baseline_60g();
    let a = wb.run(&SimConfig::baseline(), &spec).unwrap();
    let b = wb.run(&SimConfig::baseline(), &spec).unwrap();
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.end_time, b.end_time);
    assert_eq!(a.ram, b.ram);
    assert_eq!(a.flash, b.flash);
    assert_eq!(a.filer, b.filer);
}
