//! Mercury-style validation replay (§6.1 substitution).
//!
//! The authors validated their simulator against NetApp's Mercury hardware
//! by replaying four days of below-the-buffer-cache block traces "directly
//! through a 32 GB flash cache. (In our simulator, that means we set the
//! RAM cache size to zero.)" We have no Mercury hardware or NetApp traces
//! (see DESIGN.md §5), so this test replays a generated below-the-cache
//! trace through the same configuration and asserts the analytic
//! properties the validation relied on: component latencies compose
//! exactly, hit rates match an independent reference cache simulation, and
//! repeated runs agree to the nanosecond.

use fcache::{run_trace, SimConfig, Workbench, WorkloadSpec, WritebackPolicy};
use fcache_filer::FilerConfig;
use fcache_types::{ByteSize, OpKind, Trace};

const SCALE: u64 = 1024;

/// Builds the Mercury validation configuration: no RAM tier, 32 GB flash,
/// lookaside (Mercury's design), deterministic filer.
fn mercury_cfg() -> SimConfig {
    SimConfig {
        arch: fcache::Architecture::Lookaside,
        ram_size: ByteSize::ZERO,
        flash_size: ByteSize::gib(32),
        ram_policy: WritebackPolicy::AsyncWriteThrough,
        flash_policy: WritebackPolicy::AsyncWriteThrough,
        filer: FilerConfig {
            fast_read_rate: 1.0,
            ..FilerConfig::default()
        },
        ..SimConfig::baseline()
    }
}

/// Independent single-tier LRU reference: replays the trace against a
/// plain `BlockCache` and returns (hits, lookups) for read blocks.
fn reference_hit_counts(trace: &Trace, capacity_blocks: usize) -> (u64, u64) {
    use fcache_cache::BlockCache;
    let mut cache = BlockCache::new(capacity_blocks);
    let (mut hits, mut lookups) = (0u64, 0u64);
    for op in &trace.ops {
        for b in op.blocks() {
            match op.kind() {
                OpKind::Read => {
                    if !op.warmup() {
                        lookups += 1;
                        if cache.lookup(b) {
                            hits += 1;
                        }
                    } else {
                        cache.lookup(b);
                    }
                    cache.insert(b, false);
                }
                OpKind::Write => {
                    // Lookaside: the write goes to the filer and the flash
                    // copy is updated (clean).
                    cache.insert(b, false);
                }
            }
        }
    }
    (hits, lookups)
}

#[test]
fn simulator_hit_rate_matches_reference_lru() {
    let wb = Workbench::new(SCALE, 7);
    let spec = WorkloadSpec {
        working_set: ByteSize::gib(40),
        seed: 40,
        ..WorkloadSpec::default()
    };
    let trace = wb.make_trace(&spec);
    let cfg = mercury_cfg().scaled_down(SCALE);
    let report = run_trace(&cfg, &trace).unwrap();

    let (ref_hits, ref_lookups) = reference_hit_counts(&trace, cfg.flash_blocks());
    let ref_rate = ref_hits as f64 / ref_lookups as f64;
    let sim_rate = report.flash_hit_rate();

    // The simulator interleaves threads, so insertion order differs
    // slightly from the sequential reference; rates must agree closely.
    assert!(
        (sim_rate - ref_rate).abs() < 0.03,
        "simulator flash hit rate {sim_rate:.4} vs reference LRU {ref_rate:.4}"
    );
}

#[test]
fn single_op_latencies_compose_exactly() {
    // The §6.1 validation checked that "throughput and latencies seen
    // above and below the flash cache … all or nearly all matched within
    // 10%". Our equivalent: a hand-built trace whose per-op latencies are
    // analytically known under the Mercury configuration.
    use fcache_types::{FileId, HostId, ThreadId, TraceMeta, TraceOp};
    let mk = |kind, file: u32, start: u32| {
        TraceOp::new(HostId(0), ThreadId(0), kind, FileId(file), start, 1, false)
    };
    let trace = Trace {
        meta: TraceMeta {
            hosts: 1,
            threads_per_host: 1,
            ..TraceMeta::default()
        },
        ops: vec![
            mk(OpKind::Read, 1, 0),  // cold: net + filer + net + flash fill
            mk(OpKind::Read, 1, 0),  // flash hit: 88 µs
            mk(OpKind::Write, 1, 0), // lookaside, no RAM: filer + flash update
        ],
    };
    let cfg = mercury_cfg();
    let r = run_trace(&cfg, &trace).unwrap();
    // Cold read: 8.2 + 92 + 40.968 + 21 = 162.168 µs; hit: 88 µs.
    let read_total = r.metrics.read_latency.as_micros_f64();
    assert!(
        (read_total - (162.168 + 88.0)).abs() < 0.01,
        "read latency total {read_total} µs"
    );
    // Write: 40.968 (data out) + 92 (filer) + 8.2 (ack) + 21 (flash) = 162.168.
    let write_total = r.metrics.write_latency.as_micros_f64();
    assert!(
        (write_total - 162.168).abs() < 0.01,
        "write latency total {write_total} µs"
    );
}

#[test]
fn replay_is_reproducible_to_the_nanosecond() {
    let wb = Workbench::new(SCALE, 7);
    let spec = WorkloadSpec {
        working_set: ByteSize::gib(24),
        seed: 24,
        ..WorkloadSpec::default()
    };
    let trace = wb.make_trace(&spec);
    let cfg = mercury_cfg().scaled_down(SCALE);
    let a = run_trace(&cfg, &trace).unwrap();
    let b = run_trace(&cfg, &trace).unwrap();
    assert_eq!(a.metrics.read_latency, b.metrics.read_latency);
    assert_eq!(a.metrics.write_latency, b.metrics.write_latency);
    assert_eq!(a.end_time, b.end_time);
    assert_eq!(a.flash, b.flash);
}

#[test]
fn trace_file_roundtrip_replays_identically() {
    // Archive the trace in the FCTRACE1 binary format and replay the
    // decoded copy: reports must be identical.
    let wb = Workbench::new(SCALE, 7);
    let spec = WorkloadSpec {
        working_set: ByteSize::gib(16),
        seed: 16,
        ..WorkloadSpec::default()
    };
    let trace = wb.make_trace(&spec);
    let mut buf = Vec::new();
    trace.encode(&mut buf).unwrap();
    let decoded = Trace::decode(&mut buf.as_slice()).unwrap();
    let cfg = mercury_cfg().scaled_down(SCALE);
    let a = run_trace(&cfg, &trace).unwrap();
    let b = run_trace(&cfg, &decoded).unwrap();
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.end_time, b.end_time);
}
