//! Simulated time.
//!
//! The paper's simulator had an "internal limitation … restrict\[ing\] it to
//! integer multiples of 100 ns"; ours keeps a full nanosecond clock, which
//! subsumes the paper's granularity.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in (or span of) simulated time, in nanoseconds.
///
/// `SimTime` doubles as a duration type: the zero point is the start of the
/// simulation and arithmetic is plain nanosecond arithmetic. Overflow is a
/// programming error and panics in debug builds (u64 nanoseconds cover
/// ~584 years of simulated time).
///
/// # Examples
///
/// ```
/// use fcache_des::SimTime;
///
/// let t = SimTime::from_micros(88);
/// assert_eq!(t.as_nanos(), 88_000);
/// assert_eq!(t + SimTime::from_micros(4), SimTime::from_micros(92));
/// assert_eq!(format!("{t}"), "88.000us");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (time zero).
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable time.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Self(us * 1_000)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000_000)
    }

    /// Constructs from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Self(s * 1_000_000_000)
    }

    /// Nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds as a float (the unit of most of the paper's plots).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    pub const fn checked_add(self, rhs: Self) -> Option<Self> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Self(v)),
            None => None,
        }
    }

    /// Multiplies a (duration-like) time by an integer count.
    pub const fn times(self, n: u64) -> Self {
        Self(self.0 * n)
    }

    /// Scales by a float factor, rounding to the nearest nanosecond.
    /// Negative factors clamp to zero.
    pub fn scale(self, factor: f64) -> Self {
        if factor <= 0.0 {
            return Self::ZERO;
        }
        Self((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Self) -> Self {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: Self) -> Self {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1_000_000.0)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1_000.0)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(SimTime::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimTime::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_nanos(400);
        let b = SimTime::from_nanos(100);
        assert_eq!((a + b).as_nanos(), 500);
        assert_eq!((a - b).as_nanos(), 300);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.times(3).as_nanos(), 1200);
        let mut c = a;
        c += b;
        assert_eq!(c.as_nanos(), 500);
    }

    #[test]
    fn float_views() {
        assert_eq!(SimTime::from_micros(92).as_micros_f64(), 92.0);
        assert_eq!(SimTime::from_secs(2).as_secs_f64(), 2.0);
    }

    #[test]
    fn scale_rounds_and_clamps() {
        assert_eq!(SimTime::from_nanos(100).scale(0.5).as_nanos(), 50);
        assert_eq!(SimTime::from_nanos(3).scale(0.5).as_nanos(), 2); // 1.5 rounds to 2
        assert_eq!(SimTime::from_nanos(100).scale(-1.0), SimTime::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_nanos(400).to_string(), "400ns");
        assert_eq!(SimTime::from_micros(88).to_string(), "88.000us");
        assert_eq!(SimTime::from_millis(8).to_string(), "8.000ms");
        assert_eq!(SimTime::from_secs(30).to_string(), "30.000s");
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX.checked_add(SimTime::from_nanos(1)).is_none());
        assert_eq!(
            SimTime::from_nanos(1).checked_add(SimTime::from_nanos(1)),
            Some(SimTime::from_nanos(2))
        );
    }
}
