//! Thread-local size-class recycling for the executor's hot allocations.
//!
//! Task futures and oneshot channel blocks are allocated on every spawn and
//! freed on completion, always on the thread that owns the simulation (both
//! types are `!Send`). Routing them through a per-thread free list keyed by
//! layout turns steady-state spawning into pointer pops: the set of distinct
//! layouts is the set of spawned future types, a small closed set per
//! program, so a linear scan over the classes beats hashing.

use std::alloc::Layout;
use std::cell::RefCell;
use std::ptr::NonNull;

/// Retention cap per layout class; excess blocks return to the global
/// allocator so one allocation burst cannot pin memory forever.
const PER_CLASS: usize = 4096;

/// Cap on distinct pooled layouts; later layouts fall through to the
/// global allocator (never hit in practice).
const MAX_CLASSES: usize = 64;

thread_local! {
    static POOL: RefCell<Vec<(Layout, Vec<NonNull<u8>>)>> =
        RefCell::new(Vec::with_capacity(MAX_CLASSES));
}

/// Allocates a block of `layout`, reusing a previously freed block of the
/// same layout when one is pooled.
///
/// # Panics
///
/// Panics (via `handle_alloc_error`) on allocation failure. `layout` must
/// have non-zero size.
pub(crate) fn palloc(layout: Layout) -> NonNull<u8> {
    debug_assert!(layout.size() > 0);
    let reused = POOL.with(|p| {
        let mut classes = p.borrow_mut();
        classes
            .iter_mut()
            .find(|(l, _)| *l == layout)
            .and_then(|(_, list)| list.pop())
    });
    reused.unwrap_or_else(|| {
        // SAFETY: non-zero size asserted above.
        NonNull::new(unsafe { std::alloc::alloc(layout) })
            .unwrap_or_else(|| std::alloc::handle_alloc_error(layout))
    })
}

/// Returns a block previously obtained from [`palloc`] with the same
/// `layout`. Must be called on the allocating thread (all users are
/// `!Send`, so this holds by construction).
pub(crate) fn pfree(ptr: NonNull<u8>, layout: Layout) {
    let pooled = POOL.with(|p| {
        let mut classes = p.borrow_mut();
        if let Some((_, list)) = classes.iter_mut().find(|(l, _)| *l == layout) {
            if list.len() < PER_CLASS {
                list.push(ptr);
                return true;
            }
        } else if classes.len() < MAX_CLASSES {
            classes.push((layout, vec![ptr]));
            return true;
        }
        false
    });
    if !pooled {
        // SAFETY: `ptr` came from `palloc` with this exact layout.
        unsafe { std::alloc::dealloc(ptr.as_ptr(), layout) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_are_recycled_by_layout() {
        let a = Layout::from_size_align(128, 8).unwrap();
        let b = Layout::from_size_align(256, 8).unwrap();
        let p1 = palloc(a);
        pfree(p1, a);
        let p2 = palloc(a);
        assert_eq!(p1, p2, "same-layout block must be reused");
        let p3 = palloc(b);
        assert_ne!(p2.as_ptr(), p3.as_ptr());
        pfree(p2, a);
        pfree(p3, b);
    }

    #[test]
    fn distinct_layouts_do_not_mix() {
        let a = Layout::from_size_align(64, 8).unwrap();
        let b = Layout::from_size_align(64, 64).unwrap();
        let p1 = palloc(a);
        pfree(p1, a);
        // Alignment differs: must not hand the 8-aligned block out.
        let p2 = palloc(b);
        assert_eq!(p2.as_ptr() as usize % 64, 0);
        pfree(p2, b);
    }
}
