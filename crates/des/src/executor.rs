//! The deterministic task executor and simulated clock.
//!
//! Tasks are ordinary Rust `Future`s polled by a single-threaded run loop.
//! The loop alternates two steps: drain the FIFO ready queue, then advance
//! the clock to the earliest pending timer and wake the sleepers registered
//! there. The simulation finishes when every non-daemon task has completed;
//! daemon tasks (e.g. periodic writeback syncers, which loop forever) do not
//! keep the simulation alive.

use std::alloc::Layout;
use std::cell::{Cell, RefCell, UnsafeCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::future::Future;
use std::mem::ManuallyDrop;
use std::pin::Pin;
use std::ptr::NonNull;
use std::rc::Rc;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};

use crate::sync::{oneshot, OneshotReceiver};
use crate::time::SimTime;

/// Identifier of a spawned task: slot index in the low 32 bits, generation
/// in the high 32 bits (so a stale waker cannot poll a recycled slot).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) struct TaskId(u64);

impl TaskId {
    fn new(slot: u32, generation: u32) -> Self {
        Self(((generation as u64) << 32) | slot as u64)
    }

    fn slot(self) -> usize {
        (self.0 & 0xffff_ffff) as usize
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// A pooled, pinned, type-erased task future: `Pin<Box<dyn Future>>`
/// semantics with the backing allocation recycled through the thread-local
/// layout pool (`pool::palloc`/`pool::pfree`), so steady-state spawning
/// never touches the global allocator. Spawning used to `Box::pin` every
/// task future; in flush-heavy simulations that was the dominant allocator
/// traffic (the engine spawns a ~1 KiB writeback state machine per dirty
/// block).
struct TaskFuture {
    ptr: NonNull<u8>,
    poll_fn: unsafe fn(NonNull<u8>, &mut Context<'_>) -> Poll<()>,
    /// Drops the payload in place *and* returns the block to the pool.
    drop_fn: unsafe fn(NonNull<u8>),
}

impl TaskFuture {
    fn new<F>(future: F) -> Self
    where
        F: Future<Output = ()> + 'static,
    {
        unsafe fn poll_impl<F: Future<Output = ()>>(
            p: NonNull<u8>,
            cx: &mut Context<'_>,
        ) -> Poll<()> {
            // SAFETY: `p` holds a valid `F` that never moves (heap block,
            // released only on drop), so pinning it is sound.
            unsafe { Pin::new_unchecked(&mut *p.cast::<F>().as_ptr()).poll(cx) }
        }
        unsafe fn drop_impl<F>(p: NonNull<u8>) {
            // SAFETY: `p` holds a valid, initialized `F` from `palloc`.
            unsafe {
                std::ptr::drop_in_place(p.cast::<F>().as_ptr());
                crate::pool::pfree(p, Layout::new::<F>());
            }
        }
        debug_assert!(std::mem::size_of::<F>() > 0, "spawned future is zero-sized");
        let ptr = crate::pool::palloc(Layout::new::<F>());
        // SAFETY: freshly allocated block of `F`'s layout.
        unsafe { ptr.cast::<F>().as_ptr().write(future) };
        Self {
            ptr,
            poll_fn: poll_impl::<F>,
            drop_fn: drop_impl::<F>,
        }
    }
}

impl Drop for TaskFuture {
    fn drop(&mut self) {
        // SAFETY: payload is valid until this first and only drop.
        unsafe { (self.drop_fn)(self.ptr) };
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SlotState {
    /// No task; `generation` is the next to assign and `waker` (if any) is
    /// the previous task's block, kept for rebinding.
    Free,
    /// A parked task waiting to be polled.
    Parked,
    /// The task is currently being polled. The future stays in the slot
    /// (it is heap-pinned, so the slot vector may grow under it), but no
    /// one else may touch it.
    Running,
}

/// One task slot. A struct rather than an enum so `poll_task` can run the
/// future *in place* — flipping `state` and copying out the two raw
/// pointers — instead of shuffling a large enum payload out and back on
/// every poll.
struct Slot {
    state: SlotState,
    daemon: bool,
    /// Current generation while Parked/Running; next to assign while Free.
    generation: u32,
    future: Option<TaskFuture>,
    waker: Option<Waker>,
}

/// FIFO ready queue shared with wakers.
///
/// The executor is single-threaded, but `std::task::Waker` requires
/// `Send + Sync`. Taking a mutex on every push/pop put a lock acquisition
/// (and its fence) on the hottest path of the simulator, even though it is
/// never contended in practice. Instead the queue records the thread that
/// created the simulation and keeps a plain `VecDeque` for that thread;
/// only a waker that fires from a *different* thread (possible if a task
/// output's waker escapes, e.g. through a panic-unwind payload) falls back
/// to a mutex-protected side queue, drained by the owner before each pop.
///
/// Safety argument: `local` is touched only after verifying the caller's
/// [`thread_token`] matches `owner`, so at most one thread at a time ever
/// holds a reference into it (token addresses are unique among live
/// threads); cross-thread pushes go exclusively through `remote`. A token
/// address can recur only after the owner thread exits — at which point the
/// owner no longer touches `local`, and the TLS block's reuse through the
/// allocator orders the old accesses before the new thread's.
struct ReadyQueue {
    owner: usize,
    local: UnsafeCell<VecDeque<TaskId>>,
    remote: Mutex<Vec<TaskId>>,
    has_remote: AtomicBool,
}

thread_local! {
    /// Identity anchor: the address of this thread-local is unique per live
    /// thread, giving a thread-identity check that is one TLS address
    /// computation instead of `thread::current()`'s `Arc<Thread>` clone —
    /// `ReadyQueue::push` runs on every waker wake.
    static THREAD_TOKEN: u8 = const { 0 };
}

fn thread_token() -> usize {
    THREAD_TOKEN.with(|t| t as *const u8 as usize)
}

// SAFETY: `local` is only accessed from `owner` (checked at runtime);
// everything else is `Sync` on its own.
unsafe impl Send for ReadyQueue {}
unsafe impl Sync for ReadyQueue {}

impl ReadyQueue {
    fn new() -> Self {
        Self {
            owner: thread_token(),
            local: UnsafeCell::new(VecDeque::with_capacity(256)),
            remote: Mutex::new(Vec::new()),
            has_remote: AtomicBool::new(false),
        }
    }

    fn push(&self, id: TaskId) {
        if thread_token() == self.owner {
            // SAFETY: we are the owner thread; no other thread touches
            // `local` (see type-level comment).
            unsafe { (*self.local.get()).push_back(id) };
        } else {
            self.remote.lock().expect("ready queue poisoned").push(id);
            self.has_remote.store(true, Ordering::Release);
        }
    }

    /// Push from the executor itself (spawn, timer fire). `Sim` is `!Send`,
    /// so these call sites are always on the owner thread and can skip the
    /// thread-id check that `push` pays for waker-originated wakes.
    fn push_owner(&self, id: TaskId) {
        debug_assert_eq!(thread_token(), self.owner);
        // SAFETY: owner thread only, as asserted above.
        unsafe { (*self.local.get()).push_back(id) };
    }

    /// Pops the next ready task. Must be called from the owner thread (the
    /// run loop); enforced with a debug assertion.
    fn pop(&self) -> Option<TaskId> {
        debug_assert_eq!(
            thread_token(),
            self.owner,
            "ReadyQueue::pop from non-owner thread"
        );
        // SAFETY: owner thread only, as asserted above.
        let local = unsafe { &mut *self.local.get() };
        // A plain load keeps the uncontended hot path free of atomic
        // read-modify-writes; the swap runs only when a remote wake
        // actually happened.
        if self.has_remote.load(Ordering::Acquire) && self.has_remote.swap(false, Ordering::Acquire)
        {
            local.extend(self.remote.lock().expect("ready queue poisoned").drain(..));
        }
        local.pop_front()
    }
}

/// Refcounted waker payload: "wake task `id` by pushing it on `ready`".
///
/// Hand-rolled instead of `Arc<W> → Waker` so a retired task's block can be
/// reused in place: when a slot is recycled and the old block's refcount is
/// 1 (no outstanding clones in timers, channels, or resource queues — the
/// common case), the new task just rewrites `id` instead of allocating.
/// Stale clones from an earlier generation keep their old `id` bits, so
/// their wakes still fail the generation check exactly as before.
#[repr(C)]
struct WakerBlock {
    refs: AtomicUsize,
    /// `TaskId` bits; atomic because a clone on a foreign thread may read
    /// it while the owner thread is long past this generation.
    id: AtomicU64,
    ready: ManuallyDrop<Arc<ReadyQueue>>,
}

static WAKER_VTABLE: RawWakerVTable =
    RawWakerVTable::new(wb_clone, wb_wake, wb_wake_by_ref, wb_drop);

unsafe fn wb_clone(p: *const ()) -> RawWaker {
    // SAFETY: `p` came from `new_task_waker`'s Box and is kept alive by the
    // refcount this clone participates in.
    unsafe { &*(p as *const WakerBlock) }
        .refs
        .fetch_add(1, Ordering::Relaxed);
    RawWaker::new(p, &WAKER_VTABLE)
}

unsafe fn wb_wake_by_ref(p: *const ()) {
    // SAFETY: as in `wb_clone`.
    let b = unsafe { &*(p as *const WakerBlock) };
    b.ready.push(TaskId(b.id.load(Ordering::Relaxed)));
}

unsafe fn wb_wake(p: *const ()) {
    // SAFETY: consuming wake = wake by ref, then drop our reference.
    unsafe {
        wb_wake_by_ref(p);
        wb_drop(p);
    }
}

unsafe fn wb_drop(p: *const ()) {
    // SAFETY: matches one reference created by `new_task_waker`/`wb_clone`.
    let b = unsafe { &*(p as *const WakerBlock) };
    if b.refs.fetch_sub(1, Ordering::Release) == 1 {
        fence(Ordering::Acquire);
        // SAFETY: last reference; reconstruct and drop the Box.
        let mut boxed = unsafe { Box::from_raw(p as *mut WakerBlock) };
        unsafe { ManuallyDrop::drop(&mut boxed.ready) };
    }
}

fn new_task_waker(id: TaskId, ready: Arc<ReadyQueue>) -> Waker {
    let block = Box::into_raw(Box::new(WakerBlock {
        refs: AtomicUsize::new(1),
        id: AtomicU64::new(id.0),
        ready: ManuallyDrop::new(ready),
    }));
    // SAFETY: vtable functions uphold the RawWaker contract over `block`.
    unsafe { Waker::from_raw(RawWaker::new(block as *const (), &WAKER_VTABLE)) }
}

/// Rebinds `waker` (a slot waker built by [`new_task_waker`]) to a new
/// task id if no clones are outstanding. Returns false when clones exist,
/// in which case the caller must allocate a fresh block (the stale block
/// keeps its old id and dies when its clones do).
fn try_rebind_waker(waker: &Waker, id: TaskId) -> bool {
    // SAFETY: slot wakers always come from `new_task_waker`.
    let b = unsafe { &*(waker.data() as *const WakerBlock) };
    // Acquire pairs with the Release decrement in `wb_drop`, so everything
    // a foreign clone did with the block happened-before this rebind.
    if b.refs.load(Ordering::Acquire) == 1 {
        b.id.store(id.0, Ordering::Relaxed);
        true
    } else {
        false
    }
}

/// A timer registration: wake the sleeper once the clock reaches `deadline`.
///
/// The common case — a task awaiting `Sim::sleep` directly or through
/// combinators that pass the task waker through unchanged — is recognized
/// at registration time (the context waker's data pointer matches the
/// waker of the task currently being polled) and stored as bare [`TaskId`]
/// bits. Firing it is a plain ready-queue push: no `Waker` clone at
/// registration, no atomic refcount traffic, no dynamic dispatch. Foreign
/// wakers (tests polling by hand, adapters that wrap the waker) keep the
/// general clone-and-wake path through a boxed `Waker`.
///
/// The representation is packed to 24 bytes — heap sift-up/down moves
/// entries around constantly, and this is the run loop's hottest data
/// structure. `seq_kind` is `(registration_seq << 1) | is_foreign`, which
/// is monotone in registration order, so ordering by `(deadline,
/// seq_kind)` preserves the documented deadline-then-registration order.
struct TimerEntry {
    deadline: SimTime,
    seq_kind: u64,
    /// `TaskId` bits, or a `Box<Waker>` raw pointer when the foreign bit
    /// of `seq_kind` is set (null once fired).
    payload: u64,
}

impl TimerEntry {
    fn task(deadline: SimTime, seq: u64, id: TaskId) -> Self {
        Self {
            deadline,
            seq_kind: seq << 1,
            payload: id.0,
        }
    }

    fn foreign(deadline: SimTime, seq: u64, waker: Waker) -> Self {
        Self {
            deadline,
            seq_kind: (seq << 1) | 1,
            payload: Box::into_raw(Box::new(waker)) as u64,
        }
    }

    fn is_task(&self) -> bool {
        self.seq_kind & 1 == 0
    }

    /// For a task entry, the id to wake.
    fn task_id(&self) -> TaskId {
        debug_assert!(self.is_task());
        TaskId(self.payload)
    }

    /// For a foreign entry, takes ownership of the boxed waker.
    fn take_foreign(&mut self) -> Waker {
        debug_assert!(!self.is_task() && self.payload != 0);
        let b = self.payload as *mut Waker;
        self.payload = 0;
        // SAFETY: set from `Box::into_raw` in `foreign`, taken only once.
        *unsafe { Box::from_raw(b) }
    }
}

impl Drop for TimerEntry {
    fn drop(&mut self) {
        if !self.is_task() && self.payload != 0 {
            // SAFETY: as in `take_foreign`; entry dropped without firing.
            drop(unsafe { Box::from_raw(self.payload as *mut Waker) });
        }
    }
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq_kind == other.seq_kind
    }
}

impl Eq for TimerEntry {}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq_kind).cmp(&(other.deadline, other.seq_kind))
    }
}

struct SimInner {
    now: Cell<SimTime>,
    timers: RefCell<BinaryHeap<Reverse<TimerEntry>>>,
    ready: Arc<ReadyQueue>,
    slots: RefCell<Vec<Slot>>,
    free_slots: RefCell<Vec<u32>>,
    live_tasks: Cell<usize>,
    timer_seq: Cell<u64>,
    events_processed: Cell<u64>,
    /// Identity of the task currently inside `poll_task`, paired with its
    /// waker's data pointer so `register_timer` can detect "the context
    /// waker IS this task's waker" without comparing vtables. Cleared on
    /// poll exit so a stale pointer can never match a later registration.
    current_poll: Cell<Option<(TaskId, *const ())>>,
}

/// Handle to a simulation: clock, spawner, and run loop.
///
/// `Sim` is a cheap `Rc` clone; tasks capture clones to sleep and spawn.
/// Call [`Sim::run`] after spawning the initial tasks.
#[derive(Clone)]
pub struct Sim {
    inner: Rc<SimInner>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Creates a fresh simulation with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        // Pre-size the timer heap and task slab: simulations register
        // thousands of timers and tasks, and growth reallocations would
        // land mid-run on the hot path.
        Self {
            inner: Rc::new(SimInner {
                now: Cell::new(SimTime::ZERO),
                timers: RefCell::new(BinaryHeap::with_capacity(1024)),
                ready: Arc::new(ReadyQueue::new()),
                slots: RefCell::new(Vec::with_capacity(256)),
                free_slots: RefCell::new(Vec::with_capacity(256)),
                live_tasks: Cell::new(0),
                timer_seq: Cell::new(0),
                events_processed: Cell::new(0),
                current_poll: Cell::new(None),
            }),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.inner.now.get()
    }

    /// Total task polls performed so far (a cheap event-count metric).
    pub fn events_processed(&self) -> u64 {
        self.inner.events_processed.get()
    }

    /// Number of live (incomplete) non-daemon tasks.
    pub fn live_tasks(&self) -> usize {
        self.inner.live_tasks.get()
    }

    /// Spawns a task; the simulation runs until all non-daemon tasks finish.
    ///
    /// Returns a [`JoinHandle`] that can be awaited inside the simulation or
    /// queried with [`JoinHandle::try_result`] after [`Sim::run`] returns.
    pub fn spawn<F>(&self, future: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        self.spawn_inner(future, false)
    }

    /// Spawns a daemon task: it runs like any other task but does not keep
    /// the simulation alive (used for periodic syncer threads that loop
    /// forever).
    pub fn spawn_daemon<F>(&self, future: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        self.spawn_inner(future, true)
    }

    fn spawn_inner<F>(&self, future: F, daemon: bool) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let (tx, rx) = oneshot();
        let wrapped = TaskFuture::new(async move {
            let out = future.await;
            // The receiver may have been dropped; that's fine.
            let _ = tx.send(out);
        });

        let mut slots = self.inner.slots.borrow_mut();
        let slot_idx = match self.inner.free_slots.borrow_mut().pop() {
            Some(idx) => {
                debug_assert_eq!(slots[idx as usize].state, SlotState::Free);
                idx
            }
            None => {
                slots.push(Slot {
                    state: SlotState::Free,
                    daemon: false,
                    generation: 0,
                    future: None,
                    waker: None,
                });
                (slots.len() - 1) as u32
            }
        };
        let slot = &mut slots[slot_idx as usize];
        let generation = slot.generation;
        let id = TaskId::new(slot_idx, generation);
        match &slot.waker {
            Some(w) if try_rebind_waker(w, id) => {}
            _ => slot.waker = Some(new_task_waker(id, Arc::clone(&self.inner.ready))),
        }
        slot.state = SlotState::Parked;
        slot.daemon = daemon;
        slot.future = Some(wrapped);
        drop(slots);

        if !daemon {
            self.inner.live_tasks.set(self.inner.live_tasks.get() + 1);
        }
        self.inner.ready.push_owner(id);
        JoinHandle { rx }
    }

    /// Returns a future that completes once the clock has advanced by `d`.
    pub fn sleep(&self, d: SimTime) -> Sleep {
        Sleep {
            sim: self.clone(),
            deadline: self.now().checked_add(d).expect("simulated clock overflow"),
            registered: false,
        }
    }

    /// Returns a future that completes when the clock reaches `deadline`
    /// (immediately if it already has).
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            sim: self.clone(),
            deadline,
            registered: false,
        }
    }

    /// Registers `waker` to fire at `deadline`.
    ///
    /// When `waker` is the waker of the task currently being polled (the
    /// overwhelmingly common case: a task awaiting a sleep, possibly through
    /// pass-the-context-through combinators), only its [`TaskId`] is stored
    /// — no clone, no refcount. Anything else is cloned and woken
    /// dynamically, exactly as before.
    pub(crate) fn register_timer(&self, deadline: SimTime, waker: &Waker) {
        let seq = self.inner.timer_seq.get();
        self.inner.timer_seq.set(seq + 1);
        let entry = match self.inner.current_poll.get() {
            Some((id, data)) if std::ptr::eq(data, waker.data()) => {
                TimerEntry::task(deadline, seq, id)
            }
            _ => TimerEntry::foreign(deadline, seq, waker.clone()),
        };
        self.inner.timers.borrow_mut().push(Reverse(entry));
    }

    /// Polls one task by id; ignores stale or already-running ids.
    fn poll_task(&self, id: TaskId) {
        // Copy out the raw future pointers and the waker's data pointer,
        // then poll in place: the future payload is heap-pinned, so the
        // slot vector is free to grow (nested spawns) during the poll.
        let (fut_ptr, poll_fn, waker_data, daemon) = {
            let mut slots = self.inner.slots.borrow_mut();
            let slot = match slots.get_mut(id.slot()) {
                Some(s) => s,
                None => return,
            };
            if slot.state != SlotState::Parked || slot.generation != id.generation() {
                // Stale wake (recycled slot or duplicate wake while
                // running): ignore.
                return;
            }
            slot.state = SlotState::Running;
            let f = slot.future.as_ref().expect("parked slot without future");
            let w = slot.waker.as_ref().expect("parked slot without waker");
            (f.ptr, f.poll_fn, w.data(), slot.daemon)
        };

        self.inner
            .events_processed
            .set(self.inner.events_processed.get() + 1);
        // Cleared by the guard even if the poll panics, so a dangling data
        // pointer can never match a later registration.
        struct ClearPoll<'a>(&'a Cell<Option<(TaskId, *const ())>>);
        impl Drop for ClearPoll<'_> {
            fn drop(&mut self) {
                self.0.set(None);
            }
        }
        self.inner.current_poll.set(Some((id, waker_data)));
        let _clear = ClearPoll(&self.inner.current_poll);
        // A borrowed view of the slot's waker: same block, no refcount
        // traffic, never dropped (the slot keeps the owning reference).
        let waker =
            ManuallyDrop::new(unsafe { Waker::from_raw(RawWaker::new(waker_data, &WAKER_VTABLE)) });
        let mut cx = Context::from_waker(&waker);
        // SAFETY: `fut_ptr` stays valid for the whole poll — only this
        // function and `shutdown` release task futures, `shutdown` skips
        // Running slots, and re-entrant polls of this task bail on the
        // Running state above.
        let done = unsafe { (poll_fn)(fut_ptr, &mut cx) }.is_ready();
        drop(_clear);

        let mut slots = self.inner.slots.borrow_mut();
        let slot = &mut slots[id.slot()];
        debug_assert!(
            slot.state == SlotState::Running && slot.generation == id.generation(),
            "slot changed while task was running"
        );
        if done {
            slot.state = SlotState::Free;
            slot.generation = id.generation().wrapping_add(1);
            // Drop the future (returning its block to the pool) but keep
            // the waker: the next task spawned here can rebind it.
            slot.future = None;
            self.inner.free_slots.borrow_mut().push(id.slot() as u32);
            if !daemon {
                self.inner.live_tasks.set(self.inner.live_tasks.get() - 1);
            }
        } else {
            slot.state = SlotState::Parked;
        }
    }

    /// Runs the simulation until every non-daemon task completes.
    ///
    /// Returns a [`RunReport`] on success. Fails with [`RunError::Deadlock`]
    /// if live tasks remain but no timer or ready task can make progress
    /// (e.g. a cycle of resource waits).
    pub fn run(&self) -> Result<RunReport, RunError> {
        self.run_until(SimTime::MAX)
    }

    /// Runs until non-daemon tasks complete or the clock would pass `limit`.
    ///
    /// If the time limit stops the run, live tasks stay parked and a later
    /// `run_until` call with a larger limit resumes them.
    pub fn run_until(&self, limit: SimTime) -> Result<RunReport, RunError> {
        loop {
            // Drain everything runnable at the current instant.
            while let Some(id) = self.inner.ready.pop() {
                self.poll_task(id);
            }

            if self.inner.live_tasks.get() == 0 {
                return Ok(self.report(false));
            }

            // Advance the clock to the earliest timer.
            let next_deadline = match self.inner.timers.borrow().peek() {
                Some(Reverse(e)) => e.deadline,
                None => {
                    return Err(RunError::Deadlock {
                        live_tasks: self.inner.live_tasks.get(),
                    })
                }
            };
            if next_deadline > limit {
                return Ok(self.report(true));
            }
            self.inner.now.set(next_deadline);

            // Fire every timer at this deadline, in registration order.
            // Task wakes are ready-queue pushes and cannot touch the timer
            // heap, so they run under one borrow; only a foreign waker
            // (arbitrary code, may re-register) forces the borrow open.
            loop {
                let mut timers = self.inner.timers.borrow_mut();
                match timers.peek() {
                    Some(Reverse(e)) if e.deadline == next_deadline => {
                        let Reverse(mut e) = timers.pop().expect("peeked entry vanished");
                        if e.is_task() {
                            // Registration (seq) order: this entry wakes
                            // first, then the contiguous run of task
                            // wakes behind it at the same deadline.
                            self.inner.ready.push_owner(e.task_id());
                            while let Some(Reverse(n)) = timers.peek() {
                                if n.deadline != next_deadline || !n.is_task() {
                                    break;
                                }
                                let Reverse(n) = timers.pop().expect("peeked entry vanished");
                                self.inner.ready.push_owner(n.task_id());
                            }
                        } else {
                            let w = e.take_foreign();
                            drop(timers);
                            w.wake();
                        }
                    }
                    _ => break,
                }
            }
        }
    }

    fn report(&self, hit_limit: bool) -> RunReport {
        RunReport {
            end_time: self.now(),
            events: self.inner.events_processed.get(),
            live_tasks: self.inner.live_tasks.get(),
            hit_time_limit: hit_limit,
        }
    }

    /// Drops all remaining tasks (daemons and blocked tasks) and timers.
    ///
    /// Call after [`Sim::run`] to break `Rc` reference cycles between the
    /// executor and task futures that captured `Sim` clones.
    pub fn shutdown(&self) {
        self.inner.timers.borrow_mut().clear();
        let mut slots = self.inner.slots.borrow_mut();
        let any_running = slots.iter().any(|s| s.state == SlotState::Running);
        for slot in slots.iter_mut() {
            if slot.state == SlotState::Parked {
                slot.state = SlotState::Free;
                slot.future = None;
                slot.waker = None;
            }
        }
        // A task calling `shutdown` from inside its own poll must not free
        // the slot vector out from under the in-flight poll; everything
        // else (futures, timers) is torn down either way.
        if !any_running {
            slots.clear();
            self.inner.free_slots.borrow_mut().clear();
        }
        self.inner.live_tasks.set(0);
    }
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now())
            .field("live_tasks", &self.inner.live_tasks.get())
            .finish()
    }
}

/// Outcome of [`Sim::run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// Clock value when the run stopped.
    pub end_time: SimTime,
    /// Total task polls performed.
    pub events: u64,
    /// Non-daemon tasks still alive (nonzero only when a time limit stopped
    /// the run).
    pub live_tasks: usize,
    /// True if the run stopped at the `run_until` limit.
    pub hit_time_limit: bool,
}

/// Failure mode of [`Sim::run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunError {
    /// Live tasks remain but nothing can wake them.
    Deadlock {
        /// How many non-daemon tasks are stuck.
        live_tasks: usize,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Deadlock { live_tasks } => {
                write!(
                    f,
                    "simulation deadlock: {live_tasks} task(s) blocked with no pending events"
                )
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Future returned by [`Sim::sleep`] / [`Sim::sleep_until`].
pub struct Sleep {
    sim: Sim,
    deadline: SimTime,
    registered: bool,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.sim.now() >= self.deadline {
            return Poll::Ready(());
        }
        if !self.registered {
            self.registered = true;
            let deadline = self.deadline;
            self.sim.register_timer(deadline, cx.waker());
        }
        Poll::Pending
    }
}

/// Handle for retrieving a spawned task's output.
///
/// Await it inside the simulation, or call [`JoinHandle::try_result`] after
/// the run loop returns.
pub struct JoinHandle<T> {
    rx: OneshotReceiver<T>,
}

impl<T> JoinHandle<T> {
    /// Returns the task output if the task has completed, else `None`.
    pub fn try_result(self) -> Option<T> {
        self.rx.try_recv()
    }

    /// True once the task has completed.
    pub fn is_finished(&self) -> bool {
        self.rx.is_ready()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        match Pin::new(&mut self.rx).poll(cx) {
            Poll::Ready(Ok(v)) => Poll::Ready(v),
            Poll::Ready(Err(_)) => panic!("joined task dropped without completing"),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// Cooperatively yields once, letting every already-ready task run first.
///
/// # Examples
///
/// ```
/// use fcache_des::{executor::yield_now, Sim};
///
/// let sim = Sim::new();
/// sim.spawn(async {
///     yield_now().await;
/// });
/// sim.run().unwrap();
/// ```
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn clock_starts_at_zero_and_advances_via_sleep() {
        let sim = Sim::new();
        assert_eq!(sim.now(), SimTime::ZERO);
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(SimTime::from_nanos(400)).await;
            s.now()
        });
        let report = sim.run().unwrap();
        assert_eq!(h.try_result().unwrap(), SimTime::from_nanos(400));
        assert_eq!(report.end_time, SimTime::from_nanos(400));
        assert!(!report.hit_time_limit);
    }

    #[test]
    fn zero_sleep_completes_immediately() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(SimTime::ZERO).await;
            s.now()
        });
        sim.run().unwrap();
        assert_eq!(h.try_result().unwrap(), SimTime::ZERO);
    }

    #[test]
    fn parallel_sleeps_overlap_not_serialize() {
        let sim = Sim::new();
        for _ in 0..10 {
            let s = sim.clone();
            sim.spawn(async move {
                s.sleep(SimTime::from_micros(7)).await;
            });
        }
        let report = sim.run().unwrap();
        // Ten concurrent 7 µs sleeps finish at t = 7 µs, not 70 µs.
        assert_eq!(report.end_time, SimTime::from_micros(7));
    }

    #[test]
    fn timers_fire_in_deadline_then_registration_order() {
        let sim = Sim::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for (i, us) in [(0u32, 5u64), (1, 3), (2, 5), (3, 1)] {
            let s = sim.clone();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                s.sleep(SimTime::from_micros(us)).await;
                order.borrow_mut().push(i);
            });
        }
        sim.run().unwrap();
        // Deadlines 1, 3, then the two 5 µs sleepers in spawn order.
        assert_eq!(*order.borrow(), vec![3, 1, 0, 2]);
    }

    #[test]
    fn spawned_tasks_can_spawn_more_tasks() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            let inner = s.spawn(async { 21 });
            inner.await * 2
        });
        sim.run().unwrap();
        assert_eq!(h.try_result().unwrap(), 42);
    }

    #[test]
    fn daemon_does_not_keep_sim_alive() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn_daemon(async move {
            loop {
                s.sleep(SimTime::from_secs(1)).await;
            }
        });
        let s2 = sim.clone();
        sim.spawn(async move {
            s2.sleep(SimTime::from_millis(1500)).await;
        });
        let report = sim.run().unwrap();
        // The daemon woke at t=1s but could not extend the run past the last
        // real task at t=1.5s.
        assert_eq!(report.end_time, SimTime::from_millis(1500));
        sim.shutdown();
    }

    #[test]
    fn daemon_work_interleaves_with_tasks() {
        let sim = Sim::new();
        let ticks = Rc::new(Cell::new(0u32));
        let s = sim.clone();
        let t = Rc::clone(&ticks);
        sim.spawn_daemon(async move {
            loop {
                s.sleep(SimTime::from_secs(1)).await;
                t.set(t.get() + 1);
            }
        });
        let s2 = sim.clone();
        sim.spawn(async move {
            s2.sleep(SimTime::from_millis(3500)).await;
        });
        sim.run().unwrap();
        assert_eq!(ticks.get(), 3);
        sim.shutdown();
    }

    #[test]
    fn run_until_stops_and_resumes() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(SimTime::from_secs(10)).await;
            "done"
        });
        let r1 = sim.run_until(SimTime::from_secs(3)).unwrap();
        assert!(r1.hit_time_limit);
        assert_eq!(r1.live_tasks, 1);
        assert!(!h.is_finished());
        let r2 = sim.run().unwrap();
        assert_eq!(r2.end_time, SimTime::from_secs(10));
        assert_eq!(h.try_result().unwrap(), "done");
    }

    #[test]
    fn deadlock_is_detected() {
        let sim = Sim::new();
        sim.spawn(async {
            std::future::pending::<()>().await;
        });
        assert_eq!(sim.run(), Err(RunError::Deadlock { live_tasks: 1 }));
        sim.shutdown();
    }

    #[test]
    fn empty_sim_finishes_immediately() {
        let sim = Sim::new();
        let report = sim.run().unwrap();
        assert_eq!(report.end_time, SimTime::ZERO);
        assert_eq!(report.events, 0);
    }

    #[test]
    fn yield_now_round_robins_ready_tasks() {
        let sim = Sim::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3 {
            let order = Rc::clone(&order);
            sim.spawn(async move {
                order.borrow_mut().push((i, 0));
                yield_now().await;
                order.borrow_mut().push((i, 1));
            });
        }
        sim.run().unwrap();
        let got = order.borrow().clone();
        assert_eq!(got, vec![(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)]);
    }

    #[test]
    fn many_tasks_slot_reuse() {
        let sim = Sim::new();
        // Spawn waves of short tasks so slots recycle across generations.
        let s = sim.clone();
        let h = sim.spawn(async move {
            let mut total = 0u64;
            for wave in 0..50u64 {
                let mut handles = Vec::new();
                for i in 0..20u64 {
                    let s2 = s.clone();
                    handles.push(s.spawn(async move {
                        s2.sleep(SimTime::from_nanos(i + 1)).await;
                        wave + i
                    }));
                }
                for h in handles {
                    total += h.await;
                }
            }
            total
        });
        sim.run().unwrap();
        let expect: u64 = (0..50u64)
            .map(|w| (0..20u64).map(|i| w + i).sum::<u64>())
            .sum();
        assert_eq!(h.try_result().unwrap(), expect);
    }

    #[test]
    fn determinism_identical_runs() {
        fn run_once() -> (SimTime, u64, Vec<u32>) {
            let sim = Sim::new();
            let order = Rc::new(RefCell::new(Vec::new()));
            for i in 0..8u32 {
                let s = sim.clone();
                let order = Rc::clone(&order);
                sim.spawn(async move {
                    for k in 0..5u64 {
                        s.sleep(SimTime::from_nanos((i as u64 * 37 + k * 11) % 23 + 1))
                            .await;
                    }
                    order.borrow_mut().push(i);
                });
            }
            let r = sim.run().unwrap();
            let o = order.borrow().clone();
            (r.end_time, r.events, o)
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn cross_thread_wake_lands_in_remote_queue() {
        use std::sync::{Arc, Mutex};

        // A future that parks forever, handing its waker out.
        struct Park {
            stash: Arc<Mutex<Option<Waker>>>,
            done: Rc<Cell<bool>>,
        }
        impl Future for Park {
            type Output = ();
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                if self.done.get() {
                    return Poll::Ready(());
                }
                *self.stash.lock().unwrap() = Some(cx.waker().clone());
                Poll::Pending
            }
        }

        let sim = Sim::new();
        let stash: Arc<Mutex<Option<Waker>>> = Arc::new(Mutex::new(None));
        let done = Rc::new(Cell::new(false));
        sim.spawn(Park {
            stash: Arc::clone(&stash),
            done: Rc::clone(&done),
        });
        // First run parks the task (deadlock: nothing can wake it yet).
        assert!(matches!(sim.run(), Err(RunError::Deadlock { .. })));
        // Wake from a foreign thread: must take the remote path, not touch
        // the owner-local queue.
        let waker = stash.lock().unwrap().take().expect("waker stashed");
        std::thread::spawn(move || waker.wake()).join().unwrap();
        done.set(true);
        sim.run().unwrap();
        sim.shutdown();
    }

    #[test]
    fn events_processed_counts_polls() {
        let sim = Sim::new();
        sim.spawn(async {});
        sim.run().unwrap();
        assert!(sim.events_processed() >= 1);
    }
}
