//! The deterministic task executor and simulated clock.
//!
//! Tasks are ordinary Rust `Future`s polled by a single-threaded run loop.
//! The loop alternates two steps: drain the FIFO ready queue, then advance
//! the clock to the earliest pending timer and wake the sleepers registered
//! there. The simulation finishes when every non-daemon task has completed;
//! daemon tasks (e.g. periodic writeback syncers, which loop forever) do not
//! keep the simulation alive.

use std::cell::{Cell, RefCell, UnsafeCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use crate::sync::{oneshot, OneshotReceiver};
use crate::time::SimTime;

/// Identifier of a spawned task: slot index in the low 32 bits, generation
/// in the high 32 bits (so a stale waker cannot poll a recycled slot).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) struct TaskId(u64);

impl TaskId {
    fn new(slot: u32, generation: u32) -> Self {
        Self(((generation as u64) << 32) | slot as u64)
    }

    fn slot(self) -> usize {
        (self.0 & 0xffff_ffff) as usize
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

type BoxedFuture = Pin<Box<dyn Future<Output = ()>>>;

/// State of one task slot.
enum Slot {
    /// No task; holds the next generation to assign.
    Free { next_generation: u32 },
    /// A parked task waiting to be polled.
    Parked {
        generation: u32,
        future: BoxedFuture,
        waker: Waker,
        daemon: bool,
    },
    /// The task is currently being polled (future temporarily moved out).
    Running { generation: u32, daemon: bool },
}

/// FIFO ready queue shared with wakers.
///
/// The executor is single-threaded, but `std::task::Waker` requires
/// `Send + Sync`. Taking a mutex on every push/pop put a lock acquisition
/// (and its fence) on the hottest path of the simulator, even though it is
/// never contended in practice. Instead the queue records the thread that
/// created the simulation and keeps a plain `VecDeque` for that thread;
/// only a waker that fires from a *different* thread (possible if a task
/// output's waker escapes, e.g. through a panic-unwind payload) falls back
/// to a mutex-protected side queue, drained by the owner before each pop.
///
/// Safety argument: `local` is touched only after verifying
/// `thread::current().id() == owner`, so at most one thread ever holds a
/// reference into it; cross-thread pushes go exclusively through `remote`.
struct ReadyQueue {
    owner: std::thread::ThreadId,
    local: UnsafeCell<VecDeque<TaskId>>,
    remote: Mutex<Vec<TaskId>>,
    has_remote: AtomicBool,
}

// SAFETY: `local` is only accessed from `owner` (checked at runtime);
// everything else is `Sync` on its own.
unsafe impl Send for ReadyQueue {}
unsafe impl Sync for ReadyQueue {}

impl ReadyQueue {
    fn new() -> Self {
        Self {
            owner: std::thread::current().id(),
            local: UnsafeCell::new(VecDeque::with_capacity(256)),
            remote: Mutex::new(Vec::new()),
            has_remote: AtomicBool::new(false),
        }
    }

    fn push(&self, id: TaskId) {
        if std::thread::current().id() == self.owner {
            // SAFETY: we are the owner thread; no other thread touches
            // `local` (see type-level comment).
            unsafe { (*self.local.get()).push_back(id) };
        } else {
            self.remote.lock().expect("ready queue poisoned").push(id);
            self.has_remote.store(true, Ordering::Release);
        }
    }

    /// Pops the next ready task. Must be called from the owner thread (the
    /// run loop); enforced with a debug assertion.
    fn pop(&self) -> Option<TaskId> {
        debug_assert_eq!(
            std::thread::current().id(),
            self.owner,
            "ReadyQueue::pop from non-owner thread"
        );
        // SAFETY: owner thread only, as asserted above.
        let local = unsafe { &mut *self.local.get() };
        if self.has_remote.swap(false, Ordering::Acquire) {
            local.extend(self.remote.lock().expect("ready queue poisoned").drain(..));
        }
        local.pop_front()
    }
}

struct TaskWaker {
    id: TaskId,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.id);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.push(self.id);
    }
}

/// A timer registration: wake `waker` once the clock reaches `deadline`.
struct TimerEntry {
    deadline: SimTime,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}

impl Eq for TimerEntry {}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

struct SimInner {
    now: Cell<SimTime>,
    timers: RefCell<BinaryHeap<Reverse<TimerEntry>>>,
    ready: Arc<ReadyQueue>,
    slots: RefCell<Vec<Slot>>,
    free_slots: RefCell<Vec<u32>>,
    live_tasks: Cell<usize>,
    timer_seq: Cell<u64>,
    events_processed: Cell<u64>,
}

/// Handle to a simulation: clock, spawner, and run loop.
///
/// `Sim` is a cheap `Rc` clone; tasks capture clones to sleep and spawn.
/// Call [`Sim::run`] after spawning the initial tasks.
#[derive(Clone)]
pub struct Sim {
    inner: Rc<SimInner>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Creates a fresh simulation with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        // Pre-size the timer heap and task slab: simulations register
        // thousands of timers and tasks, and growth reallocations would
        // land mid-run on the hot path.
        Self {
            inner: Rc::new(SimInner {
                now: Cell::new(SimTime::ZERO),
                timers: RefCell::new(BinaryHeap::with_capacity(1024)),
                ready: Arc::new(ReadyQueue::new()),
                slots: RefCell::new(Vec::with_capacity(256)),
                free_slots: RefCell::new(Vec::with_capacity(256)),
                live_tasks: Cell::new(0),
                timer_seq: Cell::new(0),
                events_processed: Cell::new(0),
            }),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.inner.now.get()
    }

    /// Total task polls performed so far (a cheap event-count metric).
    pub fn events_processed(&self) -> u64 {
        self.inner.events_processed.get()
    }

    /// Number of live (incomplete) non-daemon tasks.
    pub fn live_tasks(&self) -> usize {
        self.inner.live_tasks.get()
    }

    /// Spawns a task; the simulation runs until all non-daemon tasks finish.
    ///
    /// Returns a [`JoinHandle`] that can be awaited inside the simulation or
    /// queried with [`JoinHandle::try_result`] after [`Sim::run`] returns.
    pub fn spawn<F>(&self, future: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        self.spawn_inner(future, false)
    }

    /// Spawns a daemon task: it runs like any other task but does not keep
    /// the simulation alive (used for periodic syncer threads that loop
    /// forever).
    pub fn spawn_daemon<F>(&self, future: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        self.spawn_inner(future, true)
    }

    fn spawn_inner<F>(&self, future: F, daemon: bool) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let (tx, rx) = oneshot();
        let wrapped: BoxedFuture = Box::pin(async move {
            let out = future.await;
            // The receiver may have been dropped; that's fine.
            let _ = tx.send(out);
        });

        let mut slots = self.inner.slots.borrow_mut();
        let (slot_idx, generation) = match self.inner.free_slots.borrow_mut().pop() {
            Some(idx) => {
                let generation = match slots[idx as usize] {
                    Slot::Free { next_generation } => next_generation,
                    _ => unreachable!("free list points at a non-free slot"),
                };
                (idx, generation)
            }
            None => {
                slots.push(Slot::Free { next_generation: 0 });
                ((slots.len() - 1) as u32, 0)
            }
        };
        let id = TaskId::new(slot_idx, generation);
        let waker = Waker::from(Arc::new(TaskWaker {
            id,
            ready: Arc::clone(&self.inner.ready),
        }));
        slots[slot_idx as usize] = Slot::Parked {
            generation,
            future: wrapped,
            waker,
            daemon,
        };
        drop(slots);

        if !daemon {
            self.inner.live_tasks.set(self.inner.live_tasks.get() + 1);
        }
        self.inner.ready.push(id);
        JoinHandle { rx }
    }

    /// Returns a future that completes once the clock has advanced by `d`.
    pub fn sleep(&self, d: SimTime) -> Sleep {
        Sleep {
            sim: self.clone(),
            deadline: self.now().checked_add(d).expect("simulated clock overflow"),
            registered: false,
        }
    }

    /// Returns a future that completes when the clock reaches `deadline`
    /// (immediately if it already has).
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            sim: self.clone(),
            deadline,
            registered: false,
        }
    }

    /// Registers `waker` to fire at `deadline`.
    pub(crate) fn register_timer(&self, deadline: SimTime, waker: Waker) {
        let seq = self.inner.timer_seq.get();
        self.inner.timer_seq.set(seq + 1);
        self.inner.timers.borrow_mut().push(Reverse(TimerEntry {
            deadline,
            seq,
            waker,
        }));
    }

    /// Polls one task by id; ignores stale or already-running ids.
    fn poll_task(&self, id: TaskId) {
        let (mut future, waker, daemon) = {
            let mut slots = self.inner.slots.borrow_mut();
            let slot = match slots.get_mut(id.slot()) {
                Some(s) => s,
                None => return,
            };
            match std::mem::replace(slot, Slot::Free { next_generation: 0 }) {
                Slot::Parked {
                    generation,
                    future,
                    waker,
                    daemon,
                } if generation == id.generation() => {
                    *slot = Slot::Running { generation, daemon };
                    (future, waker, daemon)
                }
                other => {
                    // Stale wake (recycled slot or duplicate wake while
                    // running): restore and ignore.
                    *slot = other;
                    return;
                }
            }
        };

        self.inner
            .events_processed
            .set(self.inner.events_processed.get() + 1);
        let mut cx = Context::from_waker(&waker);
        let done = future.as_mut().poll(&mut cx).is_ready();

        let mut slots = self.inner.slots.borrow_mut();
        let slot = &mut slots[id.slot()];
        debug_assert!(
            matches!(*slot, Slot::Running { generation, daemon: d } if generation == id.generation() && d == daemon),
            "slot changed while task was running"
        );
        if done {
            *slot = Slot::Free {
                next_generation: id.generation().wrapping_add(1),
            };
            self.inner.free_slots.borrow_mut().push(id.slot() as u32);
            if !daemon {
                self.inner.live_tasks.set(self.inner.live_tasks.get() - 1);
            }
        } else {
            *slot = Slot::Parked {
                generation: id.generation(),
                future,
                waker,
                daemon,
            };
        }
    }

    /// Runs the simulation until every non-daemon task completes.
    ///
    /// Returns a [`RunReport`] on success. Fails with [`RunError::Deadlock`]
    /// if live tasks remain but no timer or ready task can make progress
    /// (e.g. a cycle of resource waits).
    pub fn run(&self) -> Result<RunReport, RunError> {
        self.run_until(SimTime::MAX)
    }

    /// Runs until non-daemon tasks complete or the clock would pass `limit`.
    ///
    /// If the time limit stops the run, live tasks stay parked and a later
    /// `run_until` call with a larger limit resumes them.
    pub fn run_until(&self, limit: SimTime) -> Result<RunReport, RunError> {
        loop {
            // Drain everything runnable at the current instant.
            while let Some(id) = self.inner.ready.pop() {
                self.poll_task(id);
            }

            if self.inner.live_tasks.get() == 0 {
                return Ok(self.report(false));
            }

            // Advance the clock to the earliest timer.
            let next_deadline = match self.inner.timers.borrow().peek() {
                Some(Reverse(e)) => e.deadline,
                None => {
                    return Err(RunError::Deadlock {
                        live_tasks: self.inner.live_tasks.get(),
                    })
                }
            };
            if next_deadline > limit {
                return Ok(self.report(true));
            }
            self.inner.now.set(next_deadline);

            // Fire every timer at this deadline, in registration order.
            loop {
                let mut timers = self.inner.timers.borrow_mut();
                match timers.peek() {
                    Some(Reverse(e)) if e.deadline == next_deadline => {
                        let Reverse(e) = timers.pop().expect("peeked entry vanished");
                        drop(timers);
                        e.waker.wake();
                    }
                    _ => break,
                }
            }
        }
    }

    fn report(&self, hit_limit: bool) -> RunReport {
        RunReport {
            end_time: self.now(),
            events: self.inner.events_processed.get(),
            live_tasks: self.inner.live_tasks.get(),
            hit_time_limit: hit_limit,
        }
    }

    /// Drops all remaining tasks (daemons and blocked tasks) and timers.
    ///
    /// Call after [`Sim::run`] to break `Rc` reference cycles between the
    /// executor and task futures that captured `Sim` clones.
    pub fn shutdown(&self) {
        self.inner.timers.borrow_mut().clear();
        let mut slots = self.inner.slots.borrow_mut();
        for slot in slots.iter_mut() {
            if let Slot::Parked { .. } = slot {
                *slot = Slot::Free { next_generation: 0 };
            }
        }
        slots.clear();
        self.inner.free_slots.borrow_mut().clear();
        self.inner.live_tasks.set(0);
    }
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now())
            .field("live_tasks", &self.inner.live_tasks.get())
            .finish()
    }
}

/// Outcome of [`Sim::run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// Clock value when the run stopped.
    pub end_time: SimTime,
    /// Total task polls performed.
    pub events: u64,
    /// Non-daemon tasks still alive (nonzero only when a time limit stopped
    /// the run).
    pub live_tasks: usize,
    /// True if the run stopped at the `run_until` limit.
    pub hit_time_limit: bool,
}

/// Failure mode of [`Sim::run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunError {
    /// Live tasks remain but nothing can wake them.
    Deadlock {
        /// How many non-daemon tasks are stuck.
        live_tasks: usize,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Deadlock { live_tasks } => {
                write!(
                    f,
                    "simulation deadlock: {live_tasks} task(s) blocked with no pending events"
                )
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Future returned by [`Sim::sleep`] / [`Sim::sleep_until`].
pub struct Sleep {
    sim: Sim,
    deadline: SimTime,
    registered: bool,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.sim.now() >= self.deadline {
            return Poll::Ready(());
        }
        if !self.registered {
            self.registered = true;
            let deadline = self.deadline;
            self.sim.register_timer(deadline, cx.waker().clone());
        }
        Poll::Pending
    }
}

/// Handle for retrieving a spawned task's output.
///
/// Await it inside the simulation, or call [`JoinHandle::try_result`] after
/// the run loop returns.
pub struct JoinHandle<T> {
    rx: OneshotReceiver<T>,
}

impl<T> JoinHandle<T> {
    /// Returns the task output if the task has completed, else `None`.
    pub fn try_result(self) -> Option<T> {
        self.rx.try_recv()
    }

    /// True once the task has completed.
    pub fn is_finished(&self) -> bool {
        self.rx.is_ready()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        match Pin::new(&mut self.rx).poll(cx) {
            Poll::Ready(Ok(v)) => Poll::Ready(v),
            Poll::Ready(Err(_)) => panic!("joined task dropped without completing"),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// Cooperatively yields once, letting every already-ready task run first.
///
/// # Examples
///
/// ```
/// use fcache_des::{executor::yield_now, Sim};
///
/// let sim = Sim::new();
/// sim.spawn(async {
///     yield_now().await;
/// });
/// sim.run().unwrap();
/// ```
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn clock_starts_at_zero_and_advances_via_sleep() {
        let sim = Sim::new();
        assert_eq!(sim.now(), SimTime::ZERO);
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(SimTime::from_nanos(400)).await;
            s.now()
        });
        let report = sim.run().unwrap();
        assert_eq!(h.try_result().unwrap(), SimTime::from_nanos(400));
        assert_eq!(report.end_time, SimTime::from_nanos(400));
        assert!(!report.hit_time_limit);
    }

    #[test]
    fn zero_sleep_completes_immediately() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(SimTime::ZERO).await;
            s.now()
        });
        sim.run().unwrap();
        assert_eq!(h.try_result().unwrap(), SimTime::ZERO);
    }

    #[test]
    fn parallel_sleeps_overlap_not_serialize() {
        let sim = Sim::new();
        for _ in 0..10 {
            let s = sim.clone();
            sim.spawn(async move {
                s.sleep(SimTime::from_micros(7)).await;
            });
        }
        let report = sim.run().unwrap();
        // Ten concurrent 7 µs sleeps finish at t = 7 µs, not 70 µs.
        assert_eq!(report.end_time, SimTime::from_micros(7));
    }

    #[test]
    fn timers_fire_in_deadline_then_registration_order() {
        let sim = Sim::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for (i, us) in [(0u32, 5u64), (1, 3), (2, 5), (3, 1)] {
            let s = sim.clone();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                s.sleep(SimTime::from_micros(us)).await;
                order.borrow_mut().push(i);
            });
        }
        sim.run().unwrap();
        // Deadlines 1, 3, then the two 5 µs sleepers in spawn order.
        assert_eq!(*order.borrow(), vec![3, 1, 0, 2]);
    }

    #[test]
    fn spawned_tasks_can_spawn_more_tasks() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            let inner = s.spawn(async { 21 });
            inner.await * 2
        });
        sim.run().unwrap();
        assert_eq!(h.try_result().unwrap(), 42);
    }

    #[test]
    fn daemon_does_not_keep_sim_alive() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn_daemon(async move {
            loop {
                s.sleep(SimTime::from_secs(1)).await;
            }
        });
        let s2 = sim.clone();
        sim.spawn(async move {
            s2.sleep(SimTime::from_millis(1500)).await;
        });
        let report = sim.run().unwrap();
        // The daemon woke at t=1s but could not extend the run past the last
        // real task at t=1.5s.
        assert_eq!(report.end_time, SimTime::from_millis(1500));
        sim.shutdown();
    }

    #[test]
    fn daemon_work_interleaves_with_tasks() {
        let sim = Sim::new();
        let ticks = Rc::new(Cell::new(0u32));
        let s = sim.clone();
        let t = Rc::clone(&ticks);
        sim.spawn_daemon(async move {
            loop {
                s.sleep(SimTime::from_secs(1)).await;
                t.set(t.get() + 1);
            }
        });
        let s2 = sim.clone();
        sim.spawn(async move {
            s2.sleep(SimTime::from_millis(3500)).await;
        });
        sim.run().unwrap();
        assert_eq!(ticks.get(), 3);
        sim.shutdown();
    }

    #[test]
    fn run_until_stops_and_resumes() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(SimTime::from_secs(10)).await;
            "done"
        });
        let r1 = sim.run_until(SimTime::from_secs(3)).unwrap();
        assert!(r1.hit_time_limit);
        assert_eq!(r1.live_tasks, 1);
        assert!(!h.is_finished());
        let r2 = sim.run().unwrap();
        assert_eq!(r2.end_time, SimTime::from_secs(10));
        assert_eq!(h.try_result().unwrap(), "done");
    }

    #[test]
    fn deadlock_is_detected() {
        let sim = Sim::new();
        sim.spawn(async {
            std::future::pending::<()>().await;
        });
        assert_eq!(sim.run(), Err(RunError::Deadlock { live_tasks: 1 }));
        sim.shutdown();
    }

    #[test]
    fn empty_sim_finishes_immediately() {
        let sim = Sim::new();
        let report = sim.run().unwrap();
        assert_eq!(report.end_time, SimTime::ZERO);
        assert_eq!(report.events, 0);
    }

    #[test]
    fn yield_now_round_robins_ready_tasks() {
        let sim = Sim::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3 {
            let order = Rc::clone(&order);
            sim.spawn(async move {
                order.borrow_mut().push((i, 0));
                yield_now().await;
                order.borrow_mut().push((i, 1));
            });
        }
        sim.run().unwrap();
        let got = order.borrow().clone();
        assert_eq!(got, vec![(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)]);
    }

    #[test]
    fn many_tasks_slot_reuse() {
        let sim = Sim::new();
        // Spawn waves of short tasks so slots recycle across generations.
        let s = sim.clone();
        let h = sim.spawn(async move {
            let mut total = 0u64;
            for wave in 0..50u64 {
                let mut handles = Vec::new();
                for i in 0..20u64 {
                    let s2 = s.clone();
                    handles.push(s.spawn(async move {
                        s2.sleep(SimTime::from_nanos(i + 1)).await;
                        wave + i
                    }));
                }
                for h in handles {
                    total += h.await;
                }
            }
            total
        });
        sim.run().unwrap();
        let expect: u64 = (0..50u64)
            .map(|w| (0..20u64).map(|i| w + i).sum::<u64>())
            .sum();
        assert_eq!(h.try_result().unwrap(), expect);
    }

    #[test]
    fn determinism_identical_runs() {
        fn run_once() -> (SimTime, u64, Vec<u32>) {
            let sim = Sim::new();
            let order = Rc::new(RefCell::new(Vec::new()));
            for i in 0..8u32 {
                let s = sim.clone();
                let order = Rc::clone(&order);
                sim.spawn(async move {
                    for k in 0..5u64 {
                        s.sleep(SimTime::from_nanos((i as u64 * 37 + k * 11) % 23 + 1))
                            .await;
                    }
                    order.borrow_mut().push(i);
                });
            }
            let r = sim.run().unwrap();
            let o = order.borrow().clone();
            (r.end_time, r.events, o)
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn cross_thread_wake_lands_in_remote_queue() {
        use std::sync::{Arc, Mutex};

        // A future that parks forever, handing its waker out.
        struct Park {
            stash: Arc<Mutex<Option<Waker>>>,
            done: Rc<Cell<bool>>,
        }
        impl Future for Park {
            type Output = ();
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                if self.done.get() {
                    return Poll::Ready(());
                }
                *self.stash.lock().unwrap() = Some(cx.waker().clone());
                Poll::Pending
            }
        }

        let sim = Sim::new();
        let stash: Arc<Mutex<Option<Waker>>> = Arc::new(Mutex::new(None));
        let done = Rc::new(Cell::new(false));
        sim.spawn(Park {
            stash: Arc::clone(&stash),
            done: Rc::clone(&done),
        });
        // First run parks the task (deadlock: nothing can wake it yet).
        assert!(matches!(sim.run(), Err(RunError::Deadlock { .. })));
        // Wake from a foreign thread: must take the remote path, not touch
        // the owner-local queue.
        let waker = stash.lock().unwrap().take().expect("waker stashed");
        std::thread::spawn(move || waker.wake()).join().unwrap();
        done.set(true);
        sim.run().unwrap();
        sim.shutdown();
    }

    #[test]
    fn events_processed_counts_polls() {
        let sim = Sim::new();
        sim.spawn(async {});
        sim.run().unwrap();
        assert!(sim.events_processed() >= 1);
    }
}
