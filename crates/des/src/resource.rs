//! FIFO counting semaphore for modeling contention points.
//!
//! The paper models the network as segments where "each segment can carry
//! one packet at a time" (§5); a [`Resource`] with capacity 1 is exactly
//! that. Waiters are served in strict FIFO order, which is what produces the
//! paper's eviction convoys ("multiple threads doing evictions contend for
//! the network, convoy, and slow down", §7.1).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// Internal wait-list entry state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum WaitState {
    Waiting,
    Granted,
    Cancelled,
}

/// One wait-list entry. Slots live in a slab inside [`ResourceState`] and
/// are recycled through a free list, so steady-state waiting allocates
/// nothing (the `Rc<RefCell<..>>`-per-wait representation this replaces was
/// the dominant small-allocation source in contended simulations).
struct WaiterSlot {
    state: WaitState,
    waker: Option<Waker>,
}

struct ResourceState {
    capacity: usize,
    available: usize,
    /// FIFO of indices into `slots`.
    queue: VecDeque<u32>,
    slots: Vec<WaiterSlot>,
    free: Vec<u32>,
    // Statistics.
    acquires: u64,
    waits: u64,
}

impl ResourceState {
    fn alloc_slot(&mut self, waker: Waker) -> u32 {
        if let Some(i) = self.free.pop() {
            let s = &mut self.slots[i as usize];
            s.state = WaitState::Waiting;
            s.waker = Some(waker);
            i
        } else {
            self.slots.push(WaiterSlot {
                state: WaitState::Waiting,
                waker: Some(waker),
            });
            (self.slots.len() - 1) as u32
        }
    }

    /// Returns one permit, handing it to the first live waiter if any.
    fn release(&mut self) {
        while let Some(i) = self.queue.pop_front() {
            let s = &mut self.slots[i as usize];
            match s.state {
                WaitState::Cancelled => {
                    self.free.push(i);
                    continue;
                }
                WaitState::Waiting => {
                    s.state = WaitState::Granted;
                    if let Some(waker) = s.waker.take() {
                        waker.wake();
                    }
                    return;
                }
                WaitState::Granted => unreachable!("granted waiter still queued"),
            }
        }
        self.available += 1;
        debug_assert!(
            self.available <= self.capacity,
            "released more than capacity"
        );
    }
}

/// A FIFO counting semaphore over simulated time.
///
/// Cloning the handle shares the same underlying permits.
///
/// # Examples
///
/// ```
/// use fcache_des::{Resource, Sim, SimTime};
///
/// let sim = Sim::new();
/// let wire = Resource::new(1);
/// for _ in 0..3 {
///     let s = sim.clone();
///     let wire = wire.clone();
///     sim.spawn(async move {
///         let _guard = wire.acquire().await;
///         s.sleep(SimTime::from_micros(10)).await; // hold the wire 10 µs
///     });
/// }
/// let report = sim.run().unwrap();
/// // Three holders serialized on one permit: 30 µs total.
/// assert_eq!(report.end_time, SimTime::from_micros(30));
/// ```
#[derive(Clone)]
pub struct Resource {
    state: Rc<RefCell<ResourceState>>,
}

impl Resource {
    /// Creates a resource with `capacity` permits.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "resource capacity must be nonzero");
        Self {
            state: Rc::new(RefCell::new(ResourceState {
                capacity,
                available: capacity,
                queue: VecDeque::new(),
                slots: Vec::new(),
                free: Vec::new(),
                acquires: 0,
                waits: 0,
            })),
        }
    }

    /// Acquires one permit, waiting FIFO behind earlier requesters.
    pub fn acquire(&self) -> Acquire {
        Acquire {
            resource: self.clone(),
            waiter: None,
        }
    }

    /// Attempts to take a permit without waiting.
    pub fn try_acquire(&self) -> Option<ResourceGuard> {
        let mut st = self.state.borrow_mut();
        if st.queue.is_empty() && st.available > 0 {
            st.available -= 1;
            st.acquires += 1;
            Some(ResourceGuard {
                state: Rc::clone(&self.state),
            })
        } else {
            None
        }
    }

    /// Permits currently free.
    pub fn available(&self) -> usize {
        self.state.borrow().available
    }

    /// Requests currently queued.
    pub fn queue_len(&self) -> usize {
        let st = self.state.borrow();
        st.queue
            .iter()
            .filter(|&&i| st.slots[i as usize].state == WaitState::Waiting)
            .count()
    }

    /// Total successful acquisitions so far.
    pub fn total_acquires(&self) -> u64 {
        self.state.borrow().acquires
    }

    /// Total acquisitions that had to wait.
    pub fn total_waits(&self) -> u64 {
        self.state.borrow().waits
    }
}

impl fmt::Debug for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.borrow();
        f.debug_struct("Resource")
            .field("capacity", &st.capacity)
            .field("available", &st.available)
            .field("queued", &st.queue.len())
            .finish()
    }
}

/// RAII permit for a [`Resource`]; dropping it releases the permit.
pub struct ResourceGuard {
    state: Rc<RefCell<ResourceState>>,
}

impl Drop for ResourceGuard {
    fn drop(&mut self) {
        self.state.borrow_mut().release();
    }
}

impl fmt::Debug for ResourceGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ResourceGuard")
    }
}

/// Future returned by [`Resource::acquire`].
pub struct Acquire {
    resource: Resource,
    /// Index of this future's waiter slot, once queued.
    waiter: Option<u32>,
}

impl Future for Acquire {
    type Output = ResourceGuard;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<ResourceGuard> {
        let mut st = self.resource.state.borrow_mut();
        if let Some(i) = self.waiter {
            match st.slots[i as usize].state {
                WaitState::Granted => {
                    st.free.push(i); // consumed; drop must not re-release
                    st.acquires += 1;
                    drop(st);
                    self.waiter = None;
                    Poll::Ready(ResourceGuard {
                        state: Rc::clone(&self.resource.state),
                    })
                }
                WaitState::Waiting => {
                    st.slots[i as usize].waker = Some(cx.waker().clone());
                    Poll::Pending
                }
                WaitState::Cancelled => unreachable!("polling a cancelled acquire"),
            }
        } else {
            if st.queue.is_empty() && st.available > 0 {
                st.available -= 1;
                st.acquires += 1;
                return Poll::Ready(ResourceGuard {
                    state: Rc::clone(&self.resource.state),
                });
            }
            st.waits += 1;
            let i = st.alloc_slot(cx.waker().clone());
            st.queue.push_back(i);
            drop(st);
            self.waiter = Some(i);
            Poll::Pending
        }
    }
}

impl Drop for Acquire {
    fn drop(&mut self) {
        if let Some(i) = self.waiter.take() {
            let mut st = self.resource.state.borrow_mut();
            match st.slots[i as usize].state {
                // Still queued: mark for `release` to skip and recycle.
                WaitState::Waiting => st.slots[i as usize].state = WaitState::Cancelled,
                WaitState::Granted => {
                    // We were handed a permit but never observed it: give
                    // it back so it is not leaked.
                    st.free.push(i);
                    st.release();
                }
                WaitState::Cancelled => unreachable!("dropping a consumed acquire twice"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sim, SimTime};
    use std::cell::RefCell as StdRefCell;

    #[test]
    fn uncontended_acquire_is_immediate() {
        let sim = Sim::new();
        let r = Resource::new(2);
        let s = sim.clone();
        let r2 = r.clone();
        sim.spawn(async move {
            let _a = r2.acquire().await;
            let _b = r2.acquire().await;
            assert_eq!(s.now(), SimTime::ZERO);
        });
        sim.run().unwrap();
        assert_eq!(r.available(), 2);
        assert_eq!(r.total_acquires(), 2);
        assert_eq!(r.total_waits(), 0);
    }

    #[test]
    fn capacity_one_serializes_holders() {
        let sim = Sim::new();
        let r = Resource::new(1);
        let finish = Rc::new(StdRefCell::new(Vec::new()));
        for i in 0..4u32 {
            let s = sim.clone();
            let r = r.clone();
            let finish = Rc::clone(&finish);
            sim.spawn(async move {
                let _g = r.acquire().await;
                s.sleep(SimTime::from_micros(10)).await;
                finish.borrow_mut().push((i, s.now()));
            });
        }
        let report = sim.run().unwrap();
        assert_eq!(report.end_time, SimTime::from_micros(40));
        // FIFO: tasks finish in spawn order at 10, 20, 30, 40 µs.
        let got = finish.borrow().clone();
        for (idx, (i, t)) in got.iter().enumerate() {
            assert_eq!(*i as usize, idx);
            assert_eq!(*t, SimTime::from_micros(10 * (idx as u64 + 1)));
        }
        assert_eq!(r.total_waits(), 3);
    }

    #[test]
    fn capacity_n_allows_n_concurrent() {
        let sim = Sim::new();
        let r = Resource::new(3);
        for _ in 0..6 {
            let s = sim.clone();
            let r = r.clone();
            sim.spawn(async move {
                let _g = r.acquire().await;
                s.sleep(SimTime::from_micros(10)).await;
            });
        }
        let report = sim.run().unwrap();
        // Two batches of three.
        assert_eq!(report.end_time, SimTime::from_micros(20));
    }

    #[test]
    fn try_acquire_respects_queue() {
        let sim = Sim::new();
        let r = Resource::new(1);
        let g = r.try_acquire().unwrap();
        assert!(r.try_acquire().is_none());
        drop(g);
        assert!(r.try_acquire().is_some());
        drop(sim);
    }

    #[test]
    fn guard_drop_wakes_next_waiter() {
        let sim = Sim::new();
        let r = Resource::new(1);
        let s1 = sim.clone();
        let r1 = r.clone();
        sim.spawn(async move {
            let g = r1.acquire().await;
            s1.sleep(SimTime::from_micros(5)).await;
            drop(g);
        });
        let s2 = sim.clone();
        let r2 = r.clone();
        let h = sim.spawn(async move {
            let _g = r2.acquire().await;
            s2.now()
        });
        sim.run().unwrap();
        assert_eq!(h.try_result().unwrap(), SimTime::from_micros(5));
    }

    #[test]
    fn dropping_waiting_acquire_does_not_stall_queue() {
        let sim = Sim::new();
        let r = Resource::new(1);
        // Holder keeps the permit for 10 µs.
        {
            let s = sim.clone();
            let r = r.clone();
            sim.spawn(async move {
                let _g = r.acquire().await;
                s.sleep(SimTime::from_micros(10)).await;
            });
        }
        // This waiter gives up (drops the acquire future) at 5 µs via select-
        // like structure: we emulate by polling manually inside a task.
        {
            let s = sim.clone();
            let r = r.clone();
            sim.spawn(async move {
                let acq = r.acquire();
                // Poll it once so it queues, then drop it.
                futures_poll_once(acq).await;
                s.sleep(SimTime::from_micros(1)).await;
            });
        }
        // Third task must still get the permit at t=10.
        let s = sim.clone();
        let r3 = r.clone();
        let h = sim.spawn(async move {
            // Let the other two queue first.
            s.sleep(SimTime::from_nanos(1)).await;
            let _g = r3.acquire().await;
            s.now()
        });
        sim.run().unwrap();
        assert_eq!(h.try_result().unwrap(), SimTime::from_micros(10));
    }

    /// Polls a future exactly once, then drops it.
    async fn futures_poll_once<F: Future + Unpin>(mut f: F) {
        use std::pin::Pin;
        use std::task::Poll;
        std::future::poll_fn(move |cx| {
            let _ = Pin::new(&mut f).poll(cx);
            Poll::Ready(())
        })
        .await;
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_panics() {
        let _ = Resource::new(0);
    }

    #[test]
    fn stats_count_waits() {
        let sim = Sim::new();
        let r = Resource::new(1);
        for _ in 0..3 {
            let s = sim.clone();
            let r = r.clone();
            sim.spawn(async move {
                let _g = r.acquire().await;
                s.sleep(SimTime::from_micros(1)).await;
            });
        }
        sim.run().unwrap();
        assert_eq!(r.total_acquires(), 3);
        assert_eq!(r.total_waits(), 2);
    }
}
