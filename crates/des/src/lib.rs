//! Deterministic discrete-event simulation (DES) kernel.
//!
//! The paper's simulator "issues I/O requests from the trace as quickly as
//! possible given that each application thread can have only one I/O in
//! progress. I/O requests may stall at various points in the system; all
//! executions are fully interleaved." (§5). This crate provides exactly that
//! execution model as a tiny, deterministic, single-threaded async runtime
//! over *simulated* time:
//!
//! - [`Sim`] — the simulation handle: spawn tasks, read the clock, run.
//! - [`Sim::sleep`] — model a service latency (device access, wire time).
//! - [`Resource`] — a FIFO counting semaphore used to model contention
//!   points such as "each segment can carry one packet at a time".
//! - [`oneshot`] and [`JoinHandle`] — completion signalling.
//!
//! Determinism: the executor is single-threaded, the ready queue is FIFO,
//! timers fire in (deadline, registration order), and resources grant in
//! strict FIFO order. Two runs of the same program produce identical event
//! orders and identical clock readings.
//!
//! # Examples
//!
//! ```
//! use fcache_des::{Sim, SimTime};
//!
//! let sim = Sim::new();
//! let s = sim.clone();
//! let h = sim.spawn(async move {
//!     s.sleep(SimTime::from_micros(5)).await;
//!     s.now()
//! });
//! sim.run().unwrap();
//! assert_eq!(h.try_result().unwrap(), SimTime::from_micros(5));
//! ```

pub mod completion;
pub mod executor;
mod pool;
pub mod resource;
pub mod sync;
pub mod time;

pub use completion::{CompletionSet, WaitAll};
pub use executor::{JoinHandle, RunError, RunReport, Sim};
pub use resource::{Resource, ResourceGuard};
pub use sync::{oneshot, OneshotReceiver, OneshotSender, RecvError};
pub use time::SimTime;
