//! Completion handles for overlapped submissions.
//!
//! A [`CompletionSet`] lets one task hold several in-flight sub-operations
//! — e.g. every block of a device batch queued into a bounded NCQ — and
//! suspend until the *last* of them completes, without spawning executor
//! tasks. Submissions are polled in submission order on every wake, so a
//! set draining through a FIFO [`crate::Resource`] admits its entries in
//! exactly the order they were submitted: determinism is preserved by
//! construction.
//!
//! Compared to `Sim::spawn` + joining handles, a completion set keeps the
//! sub-futures inside the owning task: no task slots, no join wakeups, and
//! the executor's event count grows only with the owning task's own polls.
//!
//! # Examples
//!
//! ```
//! use fcache_des::{CompletionSet, Sim, SimTime};
//!
//! let sim = Sim::new();
//! let s = sim.clone();
//! let h = sim.spawn(async move {
//!     let mut batch = CompletionSet::new();
//!     for us in [7u64, 3, 9] {
//!         let s = s.clone();
//!         batch.submit(async move { s.sleep(SimTime::from_micros(us)).await });
//!     }
//!     batch.wait_all().await;
//!     s.now()
//! });
//! sim.run().unwrap();
//! // Three overlapped sleeps complete at the longest, not the sum.
//! assert_eq!(h.try_result().unwrap(), SimTime::from_micros(9));
//! ```

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

/// A set of in-flight sub-operations awaited together.
///
/// Futures submitted to the set are not polled until [`wait_all`]
/// (`CompletionSet::wait_all`) is awaited; the first poll then runs them
/// in submission order, which is what queues their resource acquisitions
/// FIFO. The set may be reused after `wait_all` completes.
#[derive(Default)]
pub struct CompletionSet<'a> {
    pending: Vec<Pin<Box<dyn Future<Output = ()> + 'a>>>,
}

impl<'a> CompletionSet<'a> {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self {
            pending: Vec::new(),
        }
    }

    /// Submits one sub-operation. It starts executing on the next
    /// [`wait_all`](Self::wait_all) poll, after everything submitted
    /// before it.
    pub fn submit<F: Future<Output = ()> + 'a>(&mut self, fut: F) {
        self.pending.push(Box::pin(fut));
    }

    /// Number of submissions still incomplete.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when no submissions are in flight.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Completes when every submission has completed (immediately if the
    /// set is empty). Sub-futures are polled in submission order on every
    /// wake; completed ones are retired as they finish, so the last
    /// completion resolves the whole set.
    pub fn wait_all(&mut self) -> WaitAll<'_, 'a> {
        WaitAll { set: self }
    }
}

impl std::fmt::Debug for CompletionSet<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompletionSet")
            .field("pending", &self.pending.len())
            .finish()
    }
}

/// Future returned by [`CompletionSet::wait_all`].
pub struct WaitAll<'s, 'a> {
    set: &'s mut CompletionSet<'a>,
}

impl Future for WaitAll<'_, '_> {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let pending = &mut self.set.pending;
        let mut i = 0;
        while i < pending.len() {
            match pending[i].as_mut().poll(cx) {
                // `remove` keeps the submission order of the survivors, so
                // later polls still visit them deterministically in order.
                Poll::Ready(()) => {
                    drop(pending.remove(i));
                }
                Poll::Pending => i += 1,
            }
        }
        if pending.is_empty() {
            Poll::Ready(())
        } else {
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Resource, Sim, SimTime};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn empty_set_completes_immediately() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            CompletionSet::new().wait_all().await;
            s.now()
        });
        sim.run().unwrap();
        assert_eq!(h.try_result().unwrap(), SimTime::ZERO);
    }

    #[test]
    fn overlapped_sleeps_finish_at_the_longest() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            let mut set = CompletionSet::new();
            for us in [5u64, 11, 2, 7] {
                let s = s.clone();
                set.submit(async move { s.sleep(SimTime::from_micros(us)).await });
            }
            set.wait_all().await;
            s.now()
        });
        let report = sim.run().unwrap();
        assert_eq!(h.try_result().unwrap(), SimTime::from_micros(11));
        assert_eq!(report.end_time, SimTime::from_micros(11));
    }

    #[test]
    fn submissions_acquire_a_fifo_resource_in_submission_order() {
        let sim = Sim::new();
        let order: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        let s = sim.clone();
        let order2 = Rc::clone(&order);
        sim.spawn(async move {
            let res = Rc::new(Resource::new(1));
            let mut set = CompletionSet::new();
            for i in 0..4u32 {
                let res = Rc::clone(&res);
                let s = s.clone();
                let order = Rc::clone(&order2);
                set.submit(async move {
                    let _g = res.acquire().await;
                    order.borrow_mut().push(i);
                    s.sleep(SimTime::from_micros(1)).await;
                });
            }
            set.wait_all().await;
        });
        sim.run().unwrap();
        // One slot: the four submissions serialize in submission order.
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn set_is_reusable_after_wait_all() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            let mut set = CompletionSet::new();
            let s1 = s.clone();
            set.submit(async move { s1.sleep(SimTime::from_micros(3)).await });
            set.wait_all().await;
            assert!(set.is_empty());
            let s2 = s.clone();
            set.submit(async move { s2.sleep(SimTime::from_micros(4)).await });
            set.wait_all().await;
            s.now()
        });
        sim.run().unwrap();
        assert_eq!(h.try_result().unwrap(), SimTime::from_micros(7));
    }

    #[test]
    fn single_submission_behaves_like_plain_await() {
        // A set of one must add no simulated time or ordering effects over
        // awaiting the future directly.
        let run = |wrapped: bool| {
            let sim = Sim::new();
            let s = sim.clone();
            sim.spawn(async move {
                if wrapped {
                    let mut set = CompletionSet::new();
                    let s2 = s.clone();
                    set.submit(async move { s2.sleep(SimTime::from_micros(9)).await });
                    set.wait_all().await;
                } else {
                    s.sleep(SimTime::from_micros(9)).await;
                }
            });
            sim.run().unwrap().end_time
        };
        assert_eq!(run(true), run(false));
    }
}
