//! Single-shot completion signalling between simulation tasks.

use std::alloc::Layout;
use std::cell::{Cell, RefCell};
use std::fmt;
use std::future::Future;
use std::marker::PhantomData;
use std::pin::Pin;
use std::ptr::NonNull;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct Inner<T> {
    value: Option<T>,
    waker: Option<Waker>,
    sender_alive: bool,
}

/// The channel block: manually refcounted (at most 2 — sender and
/// receiver) so its memory can come from the thread-local layout pool
/// instead of the global allocator. The executor creates one per spawned
/// task, which made `Rc::new` here the hottest remaining allocation site.
struct Shared<T> {
    refs: Cell<u32>,
    inner: RefCell<Inner<T>>,
}

/// One reference to the channel block. `!Send` (like the `Rc` it
/// replaces) because the pool and the refcount are single-threaded.
struct SharedRef<T> {
    ptr: NonNull<Shared<T>>,
    _not_send: PhantomData<Rc<()>>,
}

impl<T> SharedRef<T> {
    fn shared(&self) -> &Shared<T> {
        // SAFETY: the block lives until the last `SharedRef` drops.
        unsafe { self.ptr.as_ref() }
    }

    /// Number of live references (1 means "the other side is gone").
    fn refs(&self) -> u32 {
        self.shared().refs.get()
    }
}

impl<T> Drop for SharedRef<T> {
    fn drop(&mut self) {
        let refs = self.shared().refs.get() - 1;
        self.shared().refs.set(refs);
        if refs == 0 {
            // SAFETY: last reference; the block was `palloc`ed in
            // `oneshot` and initialized with `write`.
            unsafe {
                std::ptr::drop_in_place(self.ptr.as_ptr());
                crate::pool::pfree(self.ptr.cast(), Layout::new::<Shared<T>>());
            }
        }
    }
}

/// Creates a oneshot channel.
///
/// The receiver future resolves to `Ok(value)` after [`OneshotSender::send`],
/// or `Err(RecvError)` if the sender is dropped first.
///
/// # Examples
///
/// ```
/// use fcache_des::{oneshot, Sim, SimTime};
///
/// let sim = Sim::new();
/// let (tx, rx) = oneshot();
/// let s = sim.clone();
/// sim.spawn(async move {
///     s.sleep(SimTime::from_micros(1)).await;
///     tx.send(123).unwrap();
/// });
/// let h = sim.spawn(async move { rx.await.unwrap() });
/// sim.run().unwrap();
/// assert_eq!(h.try_result().unwrap(), 123);
/// ```
pub fn oneshot<T>() -> (OneshotSender<T>, OneshotReceiver<T>) {
    let ptr = crate::pool::palloc(Layout::new::<Shared<T>>()).cast::<Shared<T>>();
    // SAFETY: fresh block of the right layout.
    unsafe {
        ptr.as_ptr().write(Shared {
            refs: Cell::new(2),
            inner: RefCell::new(Inner {
                value: None,
                waker: None,
                sender_alive: true,
            }),
        });
    }
    (
        OneshotSender {
            shared: SharedRef {
                ptr,
                _not_send: PhantomData,
            },
        },
        OneshotReceiver {
            shared: SharedRef {
                ptr,
                _not_send: PhantomData,
            },
        },
    )
}

/// Sending half of a oneshot channel.
pub struct OneshotSender<T> {
    shared: SharedRef<T>,
}

impl<T> OneshotSender<T> {
    /// Delivers the value, waking the receiver.
    ///
    /// Returns the value back if the receiver was dropped.
    pub fn send(self, value: T) -> Result<(), T> {
        if self.shared.refs() == 1 {
            return Err(value);
        }
        let mut sh = self.shared.shared().inner.borrow_mut();
        sh.value = Some(value);
        if let Some(w) = sh.waker.take() {
            w.wake();
        }
        // Mark delivered so Drop does not report a dead sender.
        sh.sender_alive = false;
        Ok(())
    }
}

impl<T> Drop for OneshotSender<T> {
    fn drop(&mut self) {
        let mut sh = self.shared.shared().inner.borrow_mut();
        sh.sender_alive = false;
        if let Some(w) = sh.waker.take() {
            w.wake();
        }
    }
}

impl<T> fmt::Debug for OneshotSender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OneshotSender")
    }
}

/// Error returned when the sender is dropped without sending.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oneshot sender dropped without sending")
    }
}

impl std::error::Error for RecvError {}

/// Receiving half of a oneshot channel; a future yielding `Result<T, RecvError>`.
pub struct OneshotReceiver<T> {
    shared: SharedRef<T>,
}

impl<T> OneshotReceiver<T> {
    /// Takes the value if it has already been delivered.
    pub fn try_recv(self) -> Option<T> {
        self.shared.shared().inner.borrow_mut().value.take()
    }

    /// True if a value is waiting.
    pub fn is_ready(&self) -> bool {
        self.shared.shared().inner.borrow().value.is_some()
    }
}

impl<T> Future for OneshotReceiver<T> {
    type Output = Result<T, RecvError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut sh = self.shared.shared().inner.borrow_mut();
        if let Some(v) = sh.value.take() {
            return Poll::Ready(Ok(v));
        }
        if !sh.sender_alive {
            return Poll::Ready(Err(RecvError));
        }
        sh.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

impl<T> fmt::Debug for OneshotReceiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OneshotReceiver {{ ready: {} }}", self.is_ready())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sim, SimTime};

    #[test]
    fn send_then_recv() {
        let sim = Sim::new();
        let (tx, rx) = oneshot();
        tx.send(7u32).unwrap();
        let h = sim.spawn(async move { rx.await.unwrap() });
        sim.run().unwrap();
        assert_eq!(h.try_result().unwrap(), 7);
    }

    #[test]
    fn recv_waits_for_send() {
        let sim = Sim::new();
        let (tx, rx) = oneshot();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(SimTime::from_micros(3)).await;
            tx.send("hello").unwrap();
        });
        let s2 = sim.clone();
        let h = sim.spawn(async move {
            let v = rx.await.unwrap();
            (v, s2.now())
        });
        sim.run().unwrap();
        assert_eq!(h.try_result().unwrap(), ("hello", SimTime::from_micros(3)));
    }

    #[test]
    fn dropped_sender_yields_error() {
        let sim = Sim::new();
        let (tx, rx) = oneshot::<u32>();
        sim.spawn(async move {
            drop(tx);
        });
        let h = sim.spawn(rx);
        sim.run().unwrap();
        assert_eq!(h.try_result().unwrap(), Err(RecvError));
    }

    #[test]
    fn send_to_dropped_receiver_returns_value() {
        let (tx, rx) = oneshot::<u32>();
        drop(rx);
        assert_eq!(tx.send(9), Err(9));
    }

    #[test]
    fn try_recv_and_is_ready() {
        let (tx, rx) = oneshot();
        assert!(!rx.is_ready());
        tx.send(1u8).unwrap();
        assert!(rx.is_ready());
        assert_eq!(rx.try_recv(), Some(1));
    }
}
