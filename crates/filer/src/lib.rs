//! File server ("filer") model.
//!
//! §5 of the paper: "We do not attempt to model the caches or prefetching
//! behavior of the filer directly. … Instead we use a simple model: a
//! 'fast' latency for cache hits, a 'slow' latency for misses, and a
//! prefetch success rate that determines what fraction of reads are fast.
//! (Which reads are fast is random. Writes are buffered and always fast.)"
//!
//! Table 1 values: fast read 92 µs/block, slow read 7952 µs/block, write
//! 92 µs/block, fast read rate 90 %. Figure 5 sweeps the rate between a
//! pessimal 80 % and an optimistic 95 %.
//!
//! The filer itself is modeled as infinitely parallel — the paper assumes
//! "a high-performance filer with sophisticated read-ahead, nonvolatile
//! cache, and large server memory" (§2); the per-host network segment is
//! the contention point, not filer service.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use fcache_des::{Sim, SimTime};
use fcache_types::{mix64, BlockAddr, FaultEffect, FaultError, FaultSchedule};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Filer timing parameters (Table 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FilerConfig {
    /// Service time for a read that hits filer cache / readahead.
    pub fast_read: SimTime,
    /// Service time for a read that misses to disk.
    pub slow_read: SimTime,
    /// Service time for a (buffered) write.
    pub write: SimTime,
    /// Probability a block read is fast (the prefetch success rate).
    pub fast_read_rate: f64,
    /// RNG seed for the fast/slow draws.
    pub seed: u64,
}

impl Default for FilerConfig {
    fn default() -> Self {
        Self {
            fast_read: SimTime::from_micros(92),
            slow_read: SimTime::from_micros(7952),
            write: SimTime::from_micros(92),
            fast_read_rate: 0.90,
            seed: 0xf11e_5e12,
        }
    }
}

impl FilerConfig {
    /// Table 1 values.
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// Copy with a different prefetch success rate (Figure 5 sweep).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not within `[0, 1]`.
    pub fn with_fast_read_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0,1]");
        self.fast_read_rate = rate;
        self
    }

    /// Expected per-block read service time under this configuration.
    pub fn expected_read(&self) -> SimTime {
        let f = self.fast_read_rate;
        SimTime::from_nanos(
            (self.fast_read.as_nanos() as f64 * f + self.slow_read.as_nanos() as f64 * (1.0 - f))
                .round() as u64,
        )
    }
}

/// Service counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FilerStats {
    /// Block reads served fast.
    pub fast_reads: u64,
    /// Block reads served slow.
    pub slow_reads: u64,
    /// Blocks written.
    pub writes: u64,
}

impl FilerStats {
    /// Observed fast-read fraction.
    pub fn fast_fraction(&self) -> f64 {
        let n = self.fast_reads + self.slow_reads;
        if n == 0 {
            0.0
        } else {
            self.fast_reads as f64 / n as f64
        }
    }
}

/// Fault-injection state for a filer: the resolved schedule plus a
/// dedicated RNG for `ErrorRate` draws. The service-draw RNG is left
/// untouched so a faulted run's fast/slow luck matches the healthy run's.
struct FilerFaults {
    sched: FaultSchedule,
    rng: RefCell<SmallRng>,
}

/// The shared file server.
#[derive(Clone)]
pub struct Filer {
    sim: Sim,
    cfg: FilerConfig,
    rng: Rc<RefCell<SmallRng>>,
    stats: Rc<Cell<FilerStats>>,
    faults: Option<Rc<FilerFaults>>,
}

impl Filer {
    /// Creates a filer attached to a simulation.
    pub fn new(sim: Sim, cfg: FilerConfig) -> Self {
        Self {
            sim,
            rng: Rc::new(RefCell::new(SmallRng::seed_from_u64(cfg.seed))),
            cfg,
            stats: Rc::new(Cell::new(FilerStats::default())),
            faults: None,
        }
    }

    /// Attaches a resolved fault schedule (seeded error draws). Without
    /// this, the `try_*` paths behave exactly like their plain
    /// counterparts.
    pub fn with_faults(mut self, sched: FaultSchedule, seed: u64) -> Self {
        self.faults = Some(Rc::new(FilerFaults {
            sched,
            rng: RefCell::new(SmallRng::seed_from_u64(seed)),
        }));
        self
    }

    /// The fault effect in force right now ([`FaultEffect::None`] when no
    /// schedule is attached).
    pub fn fault_effect(&self) -> FaultEffect {
        match &self.faults {
            None => FaultEffect::None,
            Some(f) => {
                let now = self.sim.now().as_nanos();
                let mut rng = f.rng.borrow_mut();
                f.sched.effect_at(now, &mut || rng.gen_range(0.0f64..1.0))
            }
        }
    }

    /// Configuration in force.
    pub fn config(&self) -> FilerConfig {
        self.cfg
    }

    /// Counters so far.
    pub fn stats(&self) -> FilerStats {
        self.stats.get()
    }

    /// Resets counters (end of warmup).
    pub fn reset_stats(&self) {
        self.stats.set(FilerStats::default());
    }

    /// Whether a specific block reads fast, derived by hashing the block
    /// address with the filer seed (threshold = `fast_read_rate`).
    ///
    /// Hashing the *content* of the request instead of consuming a shared
    /// RNG sequence is the common-random-numbers variance-reduction
    /// technique: two configurations replaying the same trace see the same
    /// filer luck for the same blocks regardless of how their timing
    /// reorders request arrivals, so paired comparisons (latency vs. flash
    /// size, flash timing, …) measure the configuration difference rather
    /// than filer-draw noise. Across distinct blocks the outcomes remain
    /// pseudorandom at the configured rate, which is all the paper's model
    /// requires ("Which reads are fast is random", §5).
    pub fn block_is_fast(&self, addr: BlockAddr) -> bool {
        let rate = self.cfg.fast_read_rate;
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let threshold = (rate * (u64::MAX as f64)) as u64;
        mix64(self.cfg.seed ^ addr.to_u64().rotate_left(17)) < threshold
    }

    /// Draws the service time for reading the given blocks: each block is
    /// fast with probability `fast_read_rate` (content-hashed; see
    /// [`Filer::block_is_fast`]); the request's service time is the sum.
    pub fn draw_read_service_for(&self, blocks: &[BlockAddr]) -> SimTime {
        let mut total = SimTime::ZERO;
        let mut stats = self.stats.get();
        for &b in blocks {
            if self.block_is_fast(b) {
                total += self.cfg.fast_read;
                stats.fast_reads += 1;
            } else {
                total += self.cfg.slow_read;
                stats.slow_reads += 1;
            }
        }
        self.stats.set(stats);
        total
    }

    /// Draws the service time for an `nblocks`-long read: each block is
    /// independently fast with probability `fast_read_rate`; the request's
    /// service time is the sum.
    ///
    /// This sequence-RNG path serves callers without block addresses; the
    /// simulator engine uses [`Filer::read_blocks`].
    pub fn draw_read_service(&self, nblocks: u32) -> SimTime {
        let mut total = SimTime::ZERO;
        let mut stats = self.stats.get();
        let mut rng = self.rng.borrow_mut();
        for _ in 0..nblocks {
            if rng.gen_bool(self.cfg.fast_read_rate) {
                total += self.cfg.fast_read;
                stats.fast_reads += 1;
            } else {
                total += self.cfg.slow_read;
                stats.slow_reads += 1;
            }
        }
        drop(rng);
        self.stats.set(stats);
        total
    }

    /// Service time for an `nblocks`-long (buffered, always fast) write.
    pub fn draw_write_service(&self, nblocks: u32) -> SimTime {
        let mut stats = self.stats.get();
        stats.writes += nblocks as u64;
        self.stats.set(stats);
        self.cfg.write.times(nblocks as u64)
    }

    /// Services a read request: sleeps for the drawn service time.
    pub async fn read(&self, nblocks: u32) {
        let t = self.draw_read_service(nblocks);
        self.sim.sleep(t).await;
    }

    /// Services a read request for specific blocks (content-hashed
    /// fast/slow draws): sleeps for the drawn service time.
    pub async fn read_blocks(&self, blocks: &[BlockAddr]) {
        let t = self.draw_read_service_for(blocks);
        self.sim.sleep(t).await;
    }

    /// Services a write request: sleeps for the drawn service time.
    pub async fn write(&self, nblocks: u32) {
        let t = self.draw_write_service(nblocks);
        self.sim.sleep(t).await;
    }

    /// Fault-aware [`Filer::read_blocks`]: consults the attached schedule
    /// at `sim.now()` and either fails (no service, no stats, no time),
    /// serves with inflated latency, or serves normally.
    pub async fn try_read_blocks(&self, blocks: &[BlockAddr]) -> Result<(), FaultError> {
        match self.fault_effect() {
            FaultEffect::Fail { clause, .. } => Err(FaultError { clause }),
            FaultEffect::SlowBy(factor) => {
                let t = self.draw_read_service_for(blocks);
                self.sim.sleep(t.scale(factor)).await;
                Ok(())
            }
            FaultEffect::None => {
                self.read_blocks(blocks).await;
                Ok(())
            }
        }
    }

    /// Fault-aware [`Filer::write`]; same contract as
    /// [`Filer::try_read_blocks`].
    pub async fn try_write(&self, nblocks: u32) -> Result<(), FaultError> {
        match self.fault_effect() {
            FaultEffect::Fail { clause, .. } => Err(FaultError { clause }),
            FaultEffect::SlowBy(factor) => {
                let t = self.draw_write_service(nblocks);
                self.sim.sleep(t.scale(factor)).await;
                Ok(())
            }
            FaultEffect::None => {
                self.write(nblocks).await;
                Ok(())
            }
        }
    }
}

impl std::fmt::Debug for Filer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Filer")
            .field("cfg", &self.cfg)
            .field("stats", &self.stats.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let cfg = FilerConfig::default();
        assert_eq!(cfg.fast_read, SimTime::from_micros(92));
        assert_eq!(cfg.slow_read, SimTime::from_micros(7952));
        assert_eq!(cfg.write, SimTime::from_micros(92));
        assert!((cfg.fast_read_rate - 0.9).abs() < 1e-9);
    }

    #[test]
    fn expected_read_mixes_fast_and_slow() {
        // 0.9 × 92 + 0.1 × 7952 = 878 µs.
        let e = FilerConfig::default().expected_read();
        assert_eq!(e, SimTime::from_nanos(878_000));
    }

    #[test]
    fn fast_fraction_converges_to_rate() {
        let sim = Sim::new();
        let filer = Filer::new(sim, FilerConfig::default());
        let mut total = SimTime::ZERO;
        let n = 50_000;
        for _ in 0..n {
            total += filer.draw_read_service(1);
        }
        let frac = filer.stats().fast_fraction();
        assert!((frac - 0.9).abs() < 0.01, "observed fast fraction {frac}");
        // Mean service near the analytic expectation.
        let mean_us = total.as_micros_f64() / n as f64;
        assert!((mean_us - 878.0).abs() < 40.0, "mean read {mean_us} µs");
    }

    #[test]
    fn writes_always_fast_and_counted() {
        let sim = Sim::new();
        let filer = Filer::new(sim, FilerConfig::default());
        assert_eq!(filer.draw_write_service(8), SimTime::from_micros(92 * 8));
        assert_eq!(filer.stats().writes, 8);
    }

    #[test]
    fn read_sleeps_service_time() {
        let sim = Sim::new();
        let filer = Filer::new(sim.clone(), FilerConfig::default().with_fast_read_rate(1.0));
        let s = sim.clone();
        let h = sim.spawn(async move {
            filer.read(2).await;
            s.now()
        });
        sim.run().unwrap();
        assert_eq!(h.try_result().unwrap(), SimTime::from_micros(184));
    }

    #[test]
    fn rate_extremes() {
        let sim = Sim::new();
        let always_fast = Filer::new(sim.clone(), FilerConfig::default().with_fast_read_rate(1.0));
        assert_eq!(always_fast.draw_read_service(3), SimTime::from_micros(276));
        let always_slow = Filer::new(sim, FilerConfig::default().with_fast_read_rate(0.0));
        assert_eq!(always_slow.draw_read_service(1), SimTime::from_micros(7952));
    }

    #[test]
    #[should_panic(expected = "rate must be in [0,1]")]
    fn invalid_rate_panics() {
        let _ = FilerConfig::default().with_fast_read_rate(1.5);
    }

    #[test]
    fn content_hashed_draws_converge_and_pair() {
        use fcache_types::FileId;
        let sim = Sim::new();
        let filer = Filer::new(sim.clone(), FilerConfig::default());
        let addrs: Vec<BlockAddr> = (0..50_000u32)
            .map(|i| BlockAddr::new(FileId(i >> 10), i & 0x3ff))
            .collect();
        let t1 = filer.draw_read_service_for(&addrs);
        let frac = filer.stats().fast_fraction();
        assert!((frac - 0.9).abs() < 0.01, "observed fast fraction {frac}");
        // Paired: a second filer with the same seed sees identical luck
        // for the same blocks, independent of request order.
        let filer2 = Filer::new(sim, FilerConfig::default());
        let mut rev = addrs.clone();
        rev.reverse();
        let t2 = filer2.draw_read_service_for(&rev);
        assert_eq!(t1, t2);
        for &a in addrs.iter().take(100) {
            assert_eq!(filer.block_is_fast(a), filer2.block_is_fast(a));
        }
        // Rate extremes stay exact.
        let always = Filer::new(Sim::new(), FilerConfig::default().with_fast_read_rate(1.0));
        let never = Filer::new(Sim::new(), FilerConfig::default().with_fast_read_rate(0.0));
        for &a in addrs.iter().take(1000) {
            assert!(always.block_is_fast(a));
            assert!(!never.block_is_fast(a));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = {
            let sim = Sim::new();
            let f = Filer::new(sim, FilerConfig::default());
            (0..100)
                .map(|_| f.draw_read_service(1).as_nanos())
                .collect::<Vec<_>>()
        };
        let b = {
            let sim = Sim::new();
            let f = Filer::new(sim, FilerConfig::default());
            (0..100)
                .map(|_| f.draw_read_service(1).as_nanos())
                .collect::<Vec<_>>()
        };
        assert_eq!(a, b);
    }
}
