//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny slice of the `rand` 0.8 API the simulator uses:
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! and [`rngs::SmallRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — the same algorithm family `rand`'s 64-bit `SmallRng` uses —
//! so statistical quality matches what the simulator was written against.
//! Streams are fully deterministic for a given seed.

use std::ops::{Range, RangeInclusive};

/// Random number sources.
pub mod rngs {
    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::SmallRng;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SmallRng {
    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types that can seed themselves from integers or byte arrays.
pub trait SeedableRng: Sized {
    /// Seed type for [`SeedableRng::from_seed`].
    type Seed: Default + AsMut<[u8]>;

    /// Builds a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator by expanding a 64-bit seed (SplitMix64).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let w = splitmix64(&mut state).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&w[..n]);
        }
        Self::from_seed(seed)
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(b);
        }
        // An all-zero state is a fixed point of xoshiro; perturb it.
        if s == [0, 0, 0, 0] {
            s = [
                0x9e37_79b9_7f4a_7c15,
                0x6a09_e667_f3bc_c909,
                0xbb67_ae85_84ca_a73b,
                0x3c6e_f372_fe94_f82b,
            ];
        }
        Self { s }
    }
}

/// Uniform sampling over a range, dispatched by range/element type.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift maps a 64-bit draw onto [0, span) with
                // negligible bias for the spans the simulator uses.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

/// The user-facing generator interface.
pub trait Rng {
    /// Next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from a range (`0..n`, `0..=n`, `0.0..1.0`).
    #[inline]
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: true with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        if p >= 1.0 {
            return true;
        }
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl Rng for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0u64..=5);
            assert!(w <= 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn unsized_rng_callable_through_generic() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(draw(&mut rng) < 100);
    }
}
