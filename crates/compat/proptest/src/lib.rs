//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! a miniature property-testing framework exposing the subset of the
//! `proptest` API the test suites use: the [`proptest!`] / [`prop_oneof!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros, [`Strategy`] with
//! `prop_map`, [`Just`](strategy::Just), `any::<T>()`, `collection::vec`, range and tuple
//! strategies, [`ProptestConfig`], and [`TestCaseError`].
//!
//! Cases are generated from a deterministic per-test seed (derived from the
//! test name) so failures are reproducible; there is no shrinking — the
//! failing case index and seed are reported instead.

/// Deterministic RNG handed to strategies.
pub mod test_runner {
    use std::fmt;

    /// SplitMix64-based generator used to drive strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator for one test case.
        pub fn deterministic(test_seed: u64, case: u32) -> Self {
            Self {
                state: test_seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(u64::from(case).wrapping_mul(0xbf58_476d_1ce4_e5b9))
                    | 1,
            }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Per-block test configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }

        /// Case count, honoring the `PROPTEST_CASES` env override.
        pub fn resolved_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Failure raised by `prop_assert*` inside a property body.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The property is false for the generated input.
        Fail(String),
    }

    impl TestCaseError {
        /// Creates a failure with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
            }
        }
    }

    /// FNV-1a hash of a test name, for per-test seed derivation.
    pub fn seed_of(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

use test_runner::TestRng;

/// Value-generation strategies.
pub mod strategy {
    use super::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Boxed sampling closure, one arm of a [`Union`].
    pub type ArmFn<V> = Box<dyn Fn(&mut TestRng) -> V>;

    /// Uniform choice between boxed strategies ([`crate::prop_oneof!`]).
    pub struct Union<V> {
        arms: Vec<ArmFn<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union from sampling closures.
        pub fn new(arms: Vec<ArmFn<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            (self.arms[i])(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// Strategy for `any::<T>()`: the type's full domain.
    pub struct Any<T> {
        _marker: PhantomData<T>,
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Self {
                _marker: PhantomData,
            }
        }
    }

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::default()
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end.saturating_sub(self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// Vector strategy: `vec(element_strategy, min..max)`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub use strategy::Strategy;
pub use test_runner::{ProptestConfig, TestCaseError};

/// Asserts a condition inside a property body, failing the case (not
/// panicking directly) so the harness can report the case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $({
                let s = $strat;
                ::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::sample(&s, rng)
                }) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            }),+
        ])
    };
}

/// Declares property tests.
///
/// Supports the forms the repository uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn prop(x in 0u32..10, flag in any::<bool>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr) $(
        #[test]
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = config.resolved_cases();
            let test_seed = $crate::test_runner::seed_of(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(test_seed, case);
                $(let $pat = $crate::strategy::Strategy::sample(&{ $strat }, &mut __rng);)+
                let mut __case = move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                };
                if let ::core::result::Result::Err(e) = __case() {
                    panic!(
                        "proptest {} failed at case {case}/{cases} (seed {test_seed:#x}): {e}",
                        stringify!($name),
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_and_map_compose() {
        let strat = prop_oneof![
            Just(1u32),
            (10u32..20).prop_map(|x| x * 2),
            collection::vec(0u32..4, 1..4).prop_map(|v| v.len() as u32),
        ];
        let mut rng = TestRng::deterministic(1, 0);
        for _ in 0..100 {
            let v: u32 = Strategy::sample(&strat, &mut rng);
            assert!(v == 1 || (20..40).contains(&v) || (1..4).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_in_bounds(x in 3u8..9, y in 0u64..100, f in 0.0f64..1.0, b in any::<bool>()) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 100);
            prop_assert!((0.0..1.0).contains(&f));
            let _ = b;
        }

        #[test]
        fn vec_lengths_respected(v in collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn tuple_strategies(t in (0u16..4, any::<bool>(), 1u32..3)) {
            let (a, _b, c) = t;
            prop_assert!(a < 4);
            prop_assert_eq!(c.min(2), c);
        }
    }

    #[test]
    fn prop_assert_returns_err_not_panic() {
        fn body(x: u32) -> Result<(), TestCaseError> {
            prop_assert!(x > 100, "x was {x}");
            Ok(())
        }
        assert!(body(5).is_err());
        assert!(body(500).is_ok());
        fn body_eq(x: u32) -> Result<(), TestCaseError> {
            prop_assert_eq!(x, 7u32);
            Ok(())
        }
        assert!(body_eq(7).is_ok());
        assert!(matches!(body_eq(8), Err(TestCaseError::Fail(_))));
    }
}
