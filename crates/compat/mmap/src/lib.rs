//! Minimal read-only file memory mapping.
//!
//! The trace replay fast path wants the whole FCTRACE1 archive addressable
//! as one `&[u8]` so records decode straight out of the page cache with no
//! intermediate copies. The usual crates for this are unavailable offline,
//! so this is the smallest possible binding: `mmap`/`munmap` declared as
//! unix `extern "C"` symbols, a RAII [`Mmap`] wrapper, and nothing else.
//!
//! On non-unix targets (or when the map fails — empty file, exotic
//! filesystem, resource limits) [`Mmap::map`] returns an error and callers
//! fall back to buffered reads; the mapping is strictly an optimization.
//!
//! # Examples
//!
//! ```
//! let dir = std::env::temp_dir().join("fcache_mmap_doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("blob.bin");
//! std::fs::write(&path, b"hello mapping").unwrap();
//!
//! let file = std::fs::File::open(&path).unwrap();
//! match fcache_mmap::Mmap::map(&file) {
//!     Ok(m) => assert_eq!(&m[..], b"hello mapping"),
//!     Err(_) => { /* platform without mmap: fall back to reads */ }
//! }
//! # std::fs::remove_file(&path).unwrap();
//! ```

use std::fs::File;
use std::io;

#[cfg(unix)]
mod sys {
    use std::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A read-only, privately mapped view of an entire file.
///
/// Dereferences to `&[u8]`; the mapping is released on drop. The file
/// descriptor itself may be closed as soon as `map` returns — the mapping
/// keeps the pages alive.
pub struct Mmap {
    ptr: *const u8,
    len: usize,
}

impl Mmap {
    /// Maps the whole of `file` read-only.
    ///
    /// Fails on non-unix targets, on empty files (a zero-length `mmap` is
    /// an error; callers treat empty as "nothing to decode" anyway), and
    /// whenever the syscall itself fails. The file's read position is not
    /// touched, so a caller can fall back to reading the same handle.
    pub fn map(file: &File) -> io::Result<Self> {
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;

            let len = file.metadata()?.len();
            if len == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "cannot map an empty file",
                ));
            }
            let len = usize::try_from(len)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file exceeds usize"))?;
            // SAFETY: a fresh private read-only mapping of a file we hold
            // open; the kernel validates every argument and we check for
            // MAP_FAILED before using the pointer.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr == sys::MAP_FAILED {
                return Err(io::Error::last_os_error());
            }
            Ok(Self {
                ptr: ptr as *const u8,
                len,
            })
        }
        #[cfg(not(unix))]
        {
            let _ = file;
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "memory mapping is only wired up on unix",
            ))
        }
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mapping is empty (never constructed; `map` rejects
    /// empty files).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len` bytes
        // (established in `map`, released only in `drop`). A private
        // mapping does not observe later file truncation on the platforms
        // we run on beyond SIGBUS semantics shared by every mmap user;
        // the archives mapped here are written before being opened.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        // SAFETY: unmapping the exact region returned by `mmap`.
        unsafe {
            sys::munmap(self.ptr as *mut _, self.len);
        }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Seek};

    fn temp_file(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("fcache_mmap_test_{name}"));
        std::fs::write(&path, contents).expect("write temp file");
        path
    }

    #[test]
    fn maps_whole_file_contents() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let path = temp_file("whole", &data);
        let file = File::open(&path).expect("open");
        let m = Mmap::map(&file).expect("map");
        assert_eq!(m.len(), data.len());
        assert_eq!(&m[..], &data[..]);
        drop(m);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_is_rejected_and_handle_still_readable() {
        let path = temp_file("empty", b"");
        let mut file = File::open(&path).expect("open");
        assert!(Mmap::map(&file).is_err());
        // The failed map must not disturb the handle for the fallback.
        let mut buf = Vec::new();
        file.rewind().expect("rewind");
        file.read_to_end(&mut buf).expect("read");
        assert!(buf.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapping_outlives_the_file_handle() {
        let path = temp_file("outlive", b"still here");
        let m = {
            let file = File::open(&path).expect("open");
            Mmap::map(&file).expect("map")
        };
        assert_eq!(&m[..], b"still here");
        std::fs::remove_file(&path).ok();
    }
}
