//! The file-server model: a list of files with sizes and popularities,
//! plus a popularity-weighted sampler.

use fcache_types::{block::blocks_for_bytes, ByteSize, FileId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::dist::{lognormal, pareto, ZipfSmallInt};

/// Parameters for generating an [`FsModel`].
///
/// Defaults approximate the Impressions defaults: a lognormal file-size
/// body (median ≈ 4 KB) with a Pareto tail supplying the rare very large
/// files, and Zipfian small-integer popularities.
#[derive(Clone, Debug)]
pub struct FsModelConfig {
    /// Target total size; generation stops at the first file that reaches
    /// it (paper: 1.4 TB).
    pub total_bytes: ByteSize,
    /// Lognormal location (ln bytes). exp(9.0) ≈ 8.1 KB median.
    pub lognormal_mu: f64,
    /// Lognormal scale.
    pub lognormal_sigma: f64,
    /// Fraction of files drawn from the Pareto tail instead of the body.
    pub pareto_fraction: f64,
    /// Pareto scale (minimum tail file size, bytes).
    pub pareto_scale: f64,
    /// Pareto shape.
    pub pareto_shape: f64,
    /// Per-file size clamp in bytes.
    pub max_file_bytes: u64,
    /// Number of distinct popularity classes (Zipf over `1..=n`).
    pub popularity_classes: u32,
    /// Zipf exponent for popularity classes.
    pub popularity_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FsModelConfig {
    fn default() -> Self {
        Self {
            // The paper's model is "1.4 TB": 1400 GiB here.
            total_bytes: ByteSize::gib(1400),
            lognormal_mu: 9.0,
            lognormal_sigma: 2.4,
            pareto_fraction: 0.002,
            pareto_scale: 64.0 * 1024.0 * 1024.0,
            pareto_shape: 1.2,
            max_file_bytes: 16 << 30,
            popularity_classes: 20,
            popularity_exponent: 1.0,
            seed: 0x1391e551,
        }
    }
}

impl FsModelConfig {
    /// The paper's 1.4 TB model at a linear scale factor (1 = paper scale).
    pub fn paper_scaled(scale: u64, seed: u64) -> Self {
        Self {
            total_bytes: ByteSize::bytes_exact((1400u64 << 30) / scale),
            seed,
            ..Self::default()
        }
    }
}

/// One file in the model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FileInfo {
    /// File identifier (index into the model).
    pub id: FileId,
    /// Size in bytes.
    pub bytes: u64,
    /// Size in whole 4 KB blocks (rounded up, minimum 1).
    pub blocks: u32,
    /// Small-integer popularity weight (≥ 1).
    pub popularity: u32,
}

/// A generated file-server model.
///
/// # Examples
///
/// ```
/// use fcache_fsmodel::{FsModel, FsModelConfig};
/// use fcache_types::ByteSize;
///
/// let cfg = FsModelConfig {
///     total_bytes: ByteSize::mib(64),
///     seed: 7,
///     ..FsModelConfig::default()
/// };
/// let model = FsModel::generate(cfg);
/// assert!(model.total_bytes() >= 64 << 20);
/// assert!(model.file_count() > 0);
/// ```
#[derive(Clone, Debug)]
pub struct FsModel {
    files: Vec<FileInfo>,
    total_bytes: u64,
    total_blocks: u64,
    /// Cumulative popularity weights, for O(log n) weighted sampling.
    cum_weights: Vec<u64>,
}

impl FsModel {
    /// Generates a model from the configuration; deterministic in the seed.
    pub fn generate(cfg: FsModelConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let zipf = ZipfSmallInt::new(cfg.popularity_classes, cfg.popularity_exponent);
        let target = cfg.total_bytes.bytes();
        let mut files = Vec::new();
        let mut total = 0u64;
        while total < target {
            let raw = if rng.gen_bool(cfg.pareto_fraction) {
                pareto(&mut rng, cfg.pareto_scale, cfg.pareto_shape)
            } else {
                lognormal(&mut rng, cfg.lognormal_mu, cfg.lognormal_sigma)
            };
            let bytes = (raw.round() as u64).clamp(1, cfg.max_file_bytes);
            let blocks = blocks_for_bytes(bytes).max(1) as u32;
            let popularity = zipf.sample(&mut rng);
            files.push(FileInfo {
                id: FileId(files.len() as u32),
                bytes,
                blocks,
                popularity,
            });
            total += bytes;
        }
        let mut cum = Vec::with_capacity(files.len());
        let mut acc = 0u64;
        for f in &files {
            acc += f.popularity as u64;
            cum.push(acc);
        }
        let total_blocks = files.iter().map(|f| f.blocks as u64).sum();
        Self {
            files,
            total_bytes: total,
            total_blocks,
            cum_weights: cum,
        }
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Sum of file sizes in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Sum of file sizes in blocks.
    pub fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    /// Looks up a file.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn file(&self, id: FileId) -> &FileInfo {
        &self.files[id.0 as usize]
    }

    /// All files.
    pub fn files(&self) -> &[FileInfo] {
        &self.files
    }

    /// Draws a file weighted by popularity ("the distribution of I/Os among
    /// files (and selection of files for working sets) is weighted by
    /// popularity", §4).
    pub fn sample_weighted<R: Rng + ?Sized>(&self, rng: &mut R) -> &FileInfo {
        let total = *self.cum_weights.last().expect("model has files");
        let x = rng.gen_range(0..total);
        let idx = self.cum_weights.partition_point(|&c| c <= x);
        &self.files[idx]
    }

    /// Summary of the size distribution: (median bytes, mean bytes, max bytes).
    pub fn size_summary(&self) -> (u64, u64, u64) {
        let mut sizes: Vec<u64> = self.files.iter().map(|f| f.bytes).collect();
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2];
        let mean = self.total_bytes / self.files.len() as u64;
        let max = *sizes.last().expect("model has files");
        (median, mean, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(seed: u64) -> FsModelConfig {
        FsModelConfig {
            total_bytes: ByteSize::mib(256),
            seed,
            ..FsModelConfig::default()
        }
    }

    #[test]
    fn reaches_size_target_without_overshoot_blowup() {
        let m = FsModel::generate(small_cfg(1));
        let target = 256u64 << 20;
        assert!(m.total_bytes() >= target);
        // Overshoot bounded by the per-file clamp.
        assert!(m.total_bytes() < target + (16u64 << 30));
    }

    #[test]
    fn deterministic_in_seed() {
        let a = FsModel::generate(small_cfg(42));
        let b = FsModel::generate(small_cfg(42));
        assert_eq!(a.files(), b.files());
        let c = FsModel::generate(small_cfg(43));
        assert_ne!(a.files(), c.files());
    }

    #[test]
    fn ids_are_dense_indices() {
        let m = FsModel::generate(small_cfg(2));
        for (i, f) in m.files().iter().enumerate() {
            assert_eq!(f.id, FileId(i as u32));
            assert_eq!(m.file(f.id), f);
        }
    }

    #[test]
    fn block_counts_round_up_and_are_positive() {
        let m = FsModel::generate(small_cfg(3));
        for f in m.files() {
            assert!(f.blocks >= 1);
            assert!(u64::from(f.blocks) * 4096 >= f.bytes);
            assert!((u64::from(f.blocks) - 1) * 4096 < f.bytes);
        }
        assert_eq!(
            m.total_blocks(),
            m.files().iter().map(|f| f.blocks as u64).sum::<u64>()
        );
    }

    #[test]
    fn size_distribution_shape() {
        let m = FsModel::generate(FsModelConfig {
            total_bytes: ByteSize::gib(2),
            seed: 4,
            ..FsModelConfig::default()
        });
        let (median, mean, max) = m.size_summary();
        // Lognormal body: median near exp(9) ≈ 8.1 KB (loose bounds).
        assert!(median > 2_000 && median < 40_000, "median {median}");
        // Heavy tail: mean far above median, max far above mean.
        assert!(mean > 4 * median, "mean {mean} median {median}");
        assert!(max > 10 * mean, "max {max} mean {mean}");
    }

    #[test]
    fn popularity_within_classes_and_skewed() {
        let m = FsModel::generate(small_cfg(5));
        let mut counts = [0u32; 21];
        for f in m.files() {
            assert!((1..=20).contains(&f.popularity));
            counts[f.popularity as usize] += 1;
        }
        assert!(counts[1] > counts[10], "Zipf should prefer class 1");
    }

    #[test]
    fn weighted_sampling_prefers_popular_files() {
        let m = FsModel::generate(small_cfg(6));
        let mut rng = SmallRng::seed_from_u64(7);
        let mut by_pop = [0u64; 21];
        let n = 200_000;
        for _ in 0..n {
            by_pop[m.sample_weighted(&mut rng).popularity as usize] += 1;
        }
        // Expected draw share of a class is proportional to
        // count(class) × class; compare class 1 per-file rate vs class 5.
        let files_in = |p: u32| m.files().iter().filter(|f| f.popularity == p).count() as f64;
        if files_in(1) > 50.0 && files_in(5) > 5.0 {
            let rate1 = by_pop[1] as f64 / files_in(1);
            let rate5 = by_pop[5] as f64 / files_in(5);
            let ratio = rate5 / rate1;
            assert!(
                (ratio - 5.0).abs() < 1.5,
                "per-file draw ratio {ratio} should be ≈5"
            );
        }
    }

    #[test]
    fn paper_scaled_divides_total() {
        let cfg = FsModelConfig::paper_scaled(1024, 9);
        assert_eq!(cfg.total_bytes.bytes(), (1400u64 << 30) / 1024);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            #[test]
            fn sampling_never_out_of_range(seed in any::<u64>()) {
                let m = FsModel::generate(FsModelConfig {
                    total_bytes: ByteSize::mib(16),
                    seed,
                    ..FsModelConfig::default()
                });
                let mut rng = SmallRng::seed_from_u64(seed ^ 0xabcd);
                for _ in 0..200 {
                    let f = m.sample_weighted(&mut rng);
                    prop_assert!((f.id.0 as usize) < m.file_count());
                }
            }
        }
    }
}
