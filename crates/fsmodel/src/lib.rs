//! Impressions-style file-system model generator.
//!
//! §4 of the paper: "The trace generator starts from a list of files and
//! file sizes from the Impressions file system generator \[4\]." All
//! presented results use "the same 1.4 TB file server model we generated
//! with Impressions".
//!
//! We cannot run the original Impressions C tool, so this crate generates a
//! statistically equivalent model (see DESIGN.md §5): file sizes drawn from
//! a lognormal body with a Pareto tail — the hybrid distribution Impressions
//! itself uses, following Agrawal et al.'s metadata study — and per-file
//! "small integer popularities … generated from a Zipfian distribution"
//! (§4) used to weight file selection.
//!
//! The output is exactly what the downstream trace generator consumes: a
//! list of `(file id, size, popularity)` plus a popularity-weighted sampler.

pub mod dist;
pub mod model;

pub use dist::{lognormal, pareto, ZipfSmallInt};
pub use model::{FileInfo, FsModel, FsModelConfig};
