//! Random distributions used by the model generator.
//!
//! The `rand` crate's distribution add-ons are not available offline, so
//! the lognormal, Pareto, and Zipf samplers are implemented here from first
//! principles. All take the RNG explicitly for determinism.

use rand::Rng;

/// Samples a standard normal deviate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples a lognormal deviate with location `mu` and scale `sigma`
/// (parameters of the underlying normal, in log-space).
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * standard_normal(rng)).exp()
}

/// Samples a Pareto deviate with scale `x_m` (minimum) and shape `alpha`.
///
/// # Panics
///
/// Panics if `alpha` is not positive or `x_m` is not positive.
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, x_m: f64, alpha: f64) -> f64 {
    assert!(alpha > 0.0 && x_m > 0.0, "invalid Pareto parameters");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    x_m / u.powf(1.0 / alpha)
}

/// Zipfian sampler over the small integers `1..=n`.
///
/// P(k) ∝ 1/k^s. Used for the paper's "small integer popularities …
/// generated from a Zipfian distribution" (§4).
///
/// # Examples
///
/// ```
/// use fcache_fsmodel::ZipfSmallInt;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let z = ZipfSmallInt::new(10, 1.0);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let k = z.sample(&mut rng);
/// assert!((1..=10).contains(&k));
/// ```
#[derive(Clone, Debug)]
pub struct ZipfSmallInt {
    /// Cumulative probabilities for 1..=n.
    cdf: Vec<f64>,
}

impl ZipfSmallInt {
    /// Builds the sampler for `1..=n` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u32, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be nonempty");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Number of support points.
    pub fn n(&self) -> u32 {
        self.cdf.len() as u32
    }

    /// Draws one value in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let u: f64 = rng.gen_range(0.0..1.0);
        // First index whose cdf ≥ u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i as u32 + 1,
            Err(i) => (i as u32).min(self.n() - 1) + 1,
        }
    }

    /// Probability mass of value `k` (1-based).
    pub fn pmf(&self, k: u32) -> f64 {
        assert!(k >= 1 && k <= self.n(), "k out of support");
        let i = (k - 1) as usize;
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn normal_mean_and_sd() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mu = 8.33;
        let mut xs: Vec<f64> = (0..50_001).map(|_| lognormal(&mut rng, mu, 2.4)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        let expect = mu.exp();
        assert!(
            (median / expect - 1.0).abs() < 0.1,
            "median {median} vs exp(mu) {expect}"
        );
    }

    #[test]
    fn pareto_respects_minimum_and_tail() {
        let mut rng = SmallRng::seed_from_u64(3);
        let xs: Vec<f64> = (0..20_000).map(|_| pareto(&mut rng, 100.0, 1.5)).collect();
        assert!(xs.iter().all(|&x| x >= 100.0));
        // P(X > 200) = (100/200)^1.5 ≈ 0.3536.
        let frac = xs.iter().filter(|&&x| x > 200.0).count() as f64 / xs.len() as f64;
        assert!((frac - 0.3536).abs() < 0.02, "tail fraction {frac}");
    }

    #[test]
    fn zipf_prefers_small_values() {
        let z = ZipfSmallInt::new(20, 1.0);
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 100_000;
        let mut counts = [0u32; 21];
        for _ in 0..n {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[5]);
        assert!(counts[5] > counts[20]);
        // Observed frequency of 1 close to pmf(1).
        let f1 = counts[1] as f64 / n as f64;
        assert!((f1 - z.pmf(1)).abs() < 0.01, "f1 {f1} pmf {}", z.pmf(1));
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = ZipfSmallInt::new(12, 1.3);
        let total: f64 = (1..=12).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_samples_in_support() {
        let z = ZipfSmallInt::new(3, 0.8);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            let k = z.sample(&mut rng);
            assert!((1..=3).contains(&k));
        }
    }

    #[test]
    #[should_panic(expected = "support must be nonempty")]
    fn zipf_zero_support_panics() {
        let _ = ZipfSmallInt::new(0, 1.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn zipf_sample_always_in_bounds(n in 1u32..64, s in 0.0f64..3.0, seed in any::<u64>()) {
                let z = ZipfSmallInt::new(n, s);
                let mut rng = SmallRng::seed_from_u64(seed);
                for _ in 0..100 {
                    let k = z.sample(&mut rng);
                    prop_assert!(k >= 1 && k <= n);
                }
            }

            #[test]
            fn pareto_always_at_least_minimum(xm in 1.0f64..1e6, alpha in 0.2f64..5.0, seed in any::<u64>()) {
                let mut rng = SmallRng::seed_from_u64(seed);
                for _ in 0..50 {
                    prop_assert!(pareto(&mut rng, xm, alpha) >= xm);
                }
            }
        }
    }
}
