//! Shared harness for the paper-figure benchmarks.
//!
//! Every table and figure in the paper's evaluation (§7) has a bench
//! target in `benches/` that regenerates it: a workload sweep, the
//! configurations under comparison, and a printed table with the same rows
//! or series the paper reports. Each bench also writes a gnuplot-ready
//! `.dat` file under `target/paper-figures/`.
//!
//! Scale: benches default to a per-figure scale factor chosen so the whole
//! suite finishes in minutes; set `FCACHE_SCALE` to override (e.g.
//! `FCACHE_SCALE=64 cargo bench --bench fig4_flash_vs_none`, or `1` for
//! paper scale if you have the time and memory). See DESIGN.md §4 for why
//! linear scaling preserves curve shapes.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

pub use fcache::{
    read_rows, run_source, run_sweep, run_trace, sink_fn, Architecture, DecodedRow, FlashTiming,
    JsonlSink, MemorySink, ResultRow, ResultSink, Scenario, SimConfig, SimReport, Sweep,
    SweepResults, TeeSink, Workbench, Workload, WorkloadSpec, WritebackPolicy, REPORT_SCHEMA,
};
pub use fcache_types::{ByteSize, Json, Trace, TraceReader, TraceSource};

/// Runs a set of paper-scale configurations against one trace through the
/// [`Sweep`] fan-out, unwrapping each report.
///
/// This is the figure harnesses' inner loop: every figure compares several
/// configurations over the same workload, and the configurations are
/// independent — exactly the shape a `Sweep` fans out. Results come back
/// in `cfgs` order and are bit-identical to serial `run_with_trace` calls.
///
/// # Panics
///
/// Panics if any simulation fails, naming the failing configuration's
/// sweep label (a figure cannot be produced from a partial sweep).
pub fn run_configs(wb: &Workbench, cfgs: &[SimConfig], trace: &Trace) -> Vec<SimReport> {
    wb.run_sweep_with_trace(cfgs, trace)
        .expect_reports("figure sweep")
}

/// The sink plumbing shared by the figure harnesses: streams every
/// finished job's row to `<name>.jsonl` under [`figures_dir`] (durable,
/// schema-versioned, flushed per row) while extracting the two scalars the
/// figures plot — `(read_latency_us, write_latency_us)` — into a
/// job-indexed slot table. No report vector is ever materialized.
///
/// Sweep sink deliveries are serialized, so no lock is needed around the
/// slots.
pub struct FigSink {
    jsonl: JsonlSink,
    slots: Vec<Option<(f64, f64)>>,
}

impl FigSink {
    /// Creates the sink for a figure with `jobs` sweep jobs, writing
    /// `<name>.jsonl` under the figures directory.
    ///
    /// # Panics
    ///
    /// Panics if the results file cannot be created (a figure without its
    /// durable rows is not worth running).
    pub fn new(name: &str, jobs: usize) -> Self {
        let path = figures_dir().join(format!("{name}.jsonl"));
        Self {
            jsonl: JsonlSink::create(&path)
                .unwrap_or_else(|e| panic!("create {}: {e}", path.display())),
            slots: vec![None; jobs],
        }
    }

    /// Checks the sweep outcome and returns the per-job scalars in job
    /// order.
    ///
    /// # Panics
    ///
    /// Panics — naming `what` and the job — if any job failed, the sink
    /// errored, or a slot was never delivered (a figure cannot be
    /// produced from a partial sweep).
    pub fn finish(self, results: &SweepResults, what: &str) -> Vec<(f64, f64)> {
        if let Some(err) = results.first_error() {
            panic!("{what}: {err}");
        }
        if let Some(err) = results.sink_error() {
            panic!("{what} results sink: {err}");
        }
        self.slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| panic!("{what}: job {i} never delivered")))
            .collect()
    }
}

impl ResultSink for FigSink {
    fn on_row(&mut self, row: ResultRow) -> std::io::Result<()> {
        let r = &row.report;
        let slot = (row.index, (r.read_latency_us(), r.write_latency_us()));
        self.jsonl.on_row(row)?;
        self.slots[slot.0] = Some(slot.1);
        eprint!(".");
        Ok(())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.jsonl.flush()
    }
}

/// Reads the scale-factor override, falling back to the figure's default.
pub fn scale_from_env(default: u64) -> u64 {
    match std::env::var("FCACHE_SCALE") {
        Ok(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("ignoring unparsable FCACHE_SCALE={v:?}; using 1/{default}");
            default
        }),
        Err(_) => default,
    }
}

/// Output directory for `.dat` series files.
pub fn figures_dir() -> PathBuf {
    let base = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    let dir = PathBuf::from(base).join("paper-figures");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// A printable, saveable results table (one paper figure/table).
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, columns: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Appends a free-form note printed under the table.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }

    /// Renders the table as text.
    pub fn render(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        let _ = writeln!(out, "=== {} ===", self.title);
        for (i, c) in self.columns.iter().enumerate() {
            let _ = write!(out, "{:>width$}  ", c, width = w[i]);
        }
        let _ = writeln!(out);
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(out, "{:>width$}  ", cell, width = w[i]);
            }
            let _ = writeln!(out);
        }
        for n in &self.notes {
            let _ = writeln!(out, "# {n}");
        }
        out
    }

    /// Prints to stdout and writes `<name>.dat` under the figures dir.
    pub fn emit(&self, name: &str) {
        print!("{}", self.render());
        let mut dat = String::new();
        let _ = writeln!(dat, "# {}", self.title);
        let _ = writeln!(dat, "# {}", self.columns.join("\t"));
        for row in &self.rows {
            let _ = writeln!(dat, "{}", row.join("\t"));
        }
        let path = figures_dir().join(format!("{name}.dat"));
        if let Err(e) = fs::write(&path, dat) {
            eprintln!("could not write {}: {e}", path.display());
        } else {
            println!("# series written to {}", path.display());
        }
    }
}

/// Formats a float cell.
pub fn f(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a float cell with two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Prints the standard bench header.
pub fn header(figure: &str, scale: u64, what: &str) {
    println!();
    println!("############################################################");
    println!("# {figure}: {what}");
    println!("# scale 1/{scale} (set FCACHE_SCALE to override; 1 = paper scale)");
    println!("############################################################");
}

/// Emits a PASS/WARN shape check line (benches report, they do not panic).
pub fn shape_check(name: &str, ok: bool, detail: String) {
    let status = if ok { "PASS" } else { "WARN" };
    println!("# shape[{status}] {name}: {detail}");
}

/// The working-set sweep used by Figures 4, 5, 10, and 12 (paper-scale
/// GiB values: "working set sizes, ranging from 5 GB to 640 GB", §7.2).
pub const WS_SWEEP_GIB: [u64; 10] = [5, 10, 20, 40, 60, 80, 120, 160, 320, 640];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-col"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["300".into(), "4".into()]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("=== demo ==="));
        assert!(s.contains("# a note"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn row_arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn scale_default_when_unset() {
        std::env::remove_var("FCACHE_SCALE");
        assert_eq!(scale_from_env(512), 512);
    }
}
