//! Figure 1: SSD access latency as a function of time.
//!
//! §6.2: the authors logged the simulator's flash I/Os for the 60 GB
//! working-set workload on a 58 GB device, replayed the log against real
//! consumer SSDs, and plotted per-10,000-I/O average read and write
//! latencies. The reproduction runs the same workload with flash I/O
//! logging and replays the log through the behavioral [`SsdModel`].
//!
//! Shape to reproduce: the read band sits *above* the write band; writes
//! keep a stable mean from beginning to end; reads degrade as the device
//! fills; and cache-shaped reads beat purely random reads.

use fcache_bench::{
    f, header, scale_from_env, shape_check, ByteSize, SimConfig, Table, Workbench, WorkloadSpec,
};
use fcache_device::{IoDirection, IoLogEntry, SsdConfig, SsdModel};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let scale = scale_from_env(256);
    header(
        "Figure 1",
        scale,
        "SSD read/write latency vs cumulative I/Os (10k-I/O windows)",
    );

    // 60 GB working set against a 58 GB flash cache, logging flash I/Os.
    let wb = Workbench::new(scale, 42);
    let cfg = SimConfig {
        flash_size: ByteSize::gib(58),
        log_flash_io: true,
        ..SimConfig::baseline()
    };
    let report = wb
        .run(&cfg, &WorkloadSpec::baseline_60g())
        .expect("simulation");
    let log = report.flash_iolog.expect("flash log enabled");
    println!("# captured {} flash I/Os from the simulator run", log.len());

    // Replay through the behavioral SSD model (58 GB device, scaled).
    let device_blocks = ((58u64 << 30) / 4096 / scale).max(1024);
    let mut ssd = SsdModel::new(SsdConfig::sized(device_blocks, 7));
    let window = 10_000usize.min((log.len() / 20).max(100));
    let stats = ssd.replay_windows(&log, window);

    let mut t = Table::new(
        "Figure 1 — latency per window (µs)",
        &["ios_done", "read_avg_us", "write_avg_us"],
    );
    for w in &stats {
        t.row(vec![
            w.start_io.to_string(),
            f(w.read_avg_us),
            f(w.write_avg_us),
        ]);
    }
    t.note(format!(
        "window = {window} I/Os; device = {device_blocks} blocks"
    ));
    t.emit("fig1_ssd_latency");

    // Shape checks.
    let reads: Vec<f64> = stats
        .iter()
        .filter(|w| w.reads > 0)
        .map(|w| w.read_avg_us)
        .collect();
    let writes: Vec<f64> = stats
        .iter()
        .filter(|w| w.writes > 0)
        .map(|w| w.write_avg_us)
        .collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    shape_check(
        "read band above write band",
        mean(&reads) > 1.5 * mean(&writes),
        format!(
            "mean read {:.1} µs vs mean write {:.1} µs",
            mean(&reads),
            mean(&writes)
        ),
    );
    if writes.len() >= 4 {
        let first = mean(&writes[..writes.len() / 4]);
        let last = mean(&writes[writes.len() * 3 / 4..]);
        shape_check(
            "write mean stable over device life",
            (last - first).abs() / first < 0.10,
            format!("first-quarter {first:.1} µs vs last-quarter {last:.1} µs"),
        );
    }
    if reads.len() >= 4 {
        let first = mean(&reads[..reads.len() / 4]);
        let last = mean(&reads[reads.len() * 3 / 4..]);
        shape_check(
            "read latency drifts up as device fills",
            last > first,
            format!("first-quarter {first:.1} µs vs last-quarter {last:.1} µs"),
        );
    }

    // §6.2 finding 3: cache-shaped replay beats purely random I/Os "with a
    // read/write mix similar to that found in the simulator logs".
    let write_frac =
        log.iter().filter(|e| e.dir == IoDirection::Write).count() as f64 / log.len().max(1) as f64;
    let mut rng = SmallRng::seed_from_u64(99);
    let random: Vec<IoLogEntry> = (0..log.len().min(500_000))
        .map(|_| IoLogEntry {
            dir: if rng.gen_bool(write_frac) {
                IoDirection::Write
            } else {
                IoDirection::Read
            },
            lba: rng.gen_range(0..device_blocks),
        })
        .collect();
    let mut ssd_rand = SsdModel::new(SsdConfig::sized(device_blocks, 7));
    let rand_stats = ssd_rand.replay_windows(&random, window);
    let rand_read = mean(
        &rand_stats
            .iter()
            .filter(|w| w.reads > 0)
            .map(|w| w.read_avg_us)
            .collect::<Vec<_>>(),
    );
    shape_check(
        "cache-shaped reads beat random reads",
        mean(&reads) < rand_read,
        format!("shaped {:.1} µs vs random {rand_read:.1} µs", mean(&reads)),
    );
}
