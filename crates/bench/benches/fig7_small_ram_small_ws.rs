//! Figure 7: the tiny-RAM configuration against a RAM-sized workload
//! (5 GB working set).
//!
//! §7.5: "this configuration carries a 25-30% penalty, which is noticeable
//! but far less than the factor of five or so seen without the flash
//! cache."

use fcache_bench::{
    f, f2, header, run_configs, scale_from_env, shape_check, ByteSize, SimConfig, Table, Workbench,
    WorkloadSpec, WritebackPolicy,
};

fn main() {
    let scale = scale_from_env(64);
    header(
        "Figure 7",
        scale,
        "tiny RAM with a RAM-sized (5 GB) workload",
    );

    let wb = Workbench::new(scale, 42);
    let spec = WorkloadSpec {
        working_set: ByteSize::gib(5),
        seed: 5,
        ..WorkloadSpec::default()
    };
    let trace = wb.make_trace(&spec);

    let sizes: [(u64, &str); 8] = [
        (0, "0"),
        (64 << 10, "64K"),
        (256 << 10, "256K"),
        (1 << 20, "1M"),
        (16 << 20, "16M"),
        (256 << 20, "256M"),
        (4u64 << 30, "4G"),
        (8u64 << 30, "8G"),
    ];
    let mut t = Table::new(
        "Figure 7 — latency vs RAM size (5 GB working set)",
        &["ram", "read_p1", "read_a", "write_p1", "write_a"],
    );
    let mut tiny_read = 0.0;
    let mut full_read = 0.0;
    let mut noflash_tiny_read = 0.0;
    for (bytes, label) in sizes {
        let mut scaled = bytes / scale;
        if bytes > 0 && scaled < 4096 {
            scaled = 4096;
        }
        let mut row = vec![label.to_string()];
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        let cfgs: Vec<SimConfig> = [
            WritebackPolicy::Periodic(1),
            WritebackPolicy::AsyncWriteThrough,
        ]
        .into_iter()
        .map(|policy| SimConfig {
            ram_size: ByteSize::bytes_exact(scaled * scale),
            ram_policy: policy,
            ..SimConfig::baseline()
        })
        .collect();
        for r in run_configs(&wb, &cfgs, &trace) {
            reads.push(r.read_latency_us());
            writes.push(r.write_latency_us());
        }
        row.push(f(reads[0]));
        row.push(f(reads[1]));
        row.push(f2(writes[0]));
        row.push(f2(writes[1]));
        t.row(row);
        if label == "256K" {
            tiny_read = reads[1];
            // The no-flash comparison the paper cites ("factor of five").
            let cfg = SimConfig {
                ram_size: ByteSize::bytes_exact(scaled * scale),
                flash_size: ByteSize::ZERO,
                ram_policy: WritebackPolicy::AsyncWriteThrough,
                ..SimConfig::baseline()
            };
            noflash_tiny_read = wb
                .run_with_trace(&cfg, &trace)
                .expect("run")
                .read_latency_us();
        }
        if label == "8G" {
            full_read = reads[1];
        }
        eprint!(".");
    }
    eprintln!();
    t.note("paper: the small-RAM penalty is 25-30% for a RAM-sized workload,");
    t.note("far less than the ~5x seen without the flash cache.");
    t.emit("fig7_small_ram_5g");

    let penalty = (tiny_read - full_read) / full_read;
    shape_check(
        "tiny-RAM penalty is moderate",
        penalty > 0.05 && penalty < 1.0,
        format!(
            "256K read {tiny_read:.0} µs vs 8G {full_read:.0} µs ({:.0}% penalty; paper 25-30%)",
            100.0 * penalty
        ),
    );
    shape_check(
        "without flash the tiny-RAM penalty is far larger",
        noflash_tiny_read > 2.0 * tiny_read,
        format!("no-flash 256K read {noflash_tiny_read:.0} µs vs with-flash {tiny_read:.0} µs"),
    );
}
