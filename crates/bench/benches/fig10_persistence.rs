//! Figure 10: the effect of flash-cache persistence.
//!
//! §7.8: persistence is modeled as a second flash write per block (data +
//! metadata); the benefit is measured by *skipping the warmup phase* —
//! "equivalent to having a non-persistent flash cache and crashing at the
//! beginning of the simulator run".
//!
//! Shape to reproduce: the doubled flash write latency is invisible to the
//! application; the not-warmed (post-crash) runs are substantially slower
//! than the warmed ones; the no-flash line is shown for comparison.
//!
//! Pipeline shape: all 30 jobs (10 working sets × 3 scenario kinds) run as
//! ONE sweep whose rows stream through a tee of a durable JSONL sink
//! (`target/paper-figures/fig10_persistence.jsonl`) and a scalar
//! extractor. No report vector is ever materialized.

use fcache_bench::{
    f, header, scale_from_env, shape_check, ByteSize, FigSink, SimConfig, Sweep, Table, Workbench,
    WorkloadSpec, WS_SWEEP_GIB,
};
use fcache_device::FlashModel;

/// The three scenario kinds per working-set row, in job order.
const KINDS: usize = 3;

fn main() {
    let scale = scale_from_env(1024);
    header(
        "Figure 10",
        scale,
        "persistence: warmed vs not-warmed vs no flash",
    );

    let wb = Workbench::new(scale, 42);
    let persistent = SimConfig {
        flash_model: FlashModel::default().with_persistence(true),
        ..SimConfig::baseline()
    };
    let no_flash = SimConfig {
        flash_size: ByteSize::ZERO,
        ..SimConfig::baseline()
    };

    // Rows stream out as (read_us, write_us) pairs, slot-indexed by
    // `ws_i * KINDS + kind`; the durable JSONL keeps the full reports.
    let mut sink = FigSink::new("fig10_persistence", WS_SWEEP_GIB.len() * KINDS);

    // The grid is not a rectangular config × workload product (the cold
    // spec only pairs with the persistent config), so the jobs are
    // explicit scenarios; each regenerates its own stream, nothing is
    // materialized.
    let mut sweep = Sweep::new();
    for ws in WS_SWEEP_GIB {
        let warmed_spec = WorkloadSpec {
            working_set: ByteSize::gib(ws),
            seed: ws,
            ..WorkloadSpec::default()
        };
        let cold_spec = WorkloadSpec {
            skip_warmup: true,
            ..warmed_spec.clone()
        };
        sweep = sweep
            .scenario(
                format!("ws{ws}/no-flash warmed"),
                wb.scenario(&no_flash, &warmed_spec),
            )
            .scenario(
                format!("ws{ws}/flash64 not-warmed"),
                wb.scenario(&persistent, &cold_spec),
            )
            .scenario(
                format!("ws{ws}/flash64 warmed"),
                wb.scenario(&persistent, &warmed_spec),
            );
    }
    let results = sweep.sink(&mut sink).run();
    eprintln!();
    let slots = sink.finish(&results, "figure 10 sweep");

    let mut t = Table::new(
        "Figure 10 — read latency (µs/block)",
        &[
            "ws_gib",
            "noflash_warmed",
            "flash64_not_warmed",
            "flash64_warmed",
            "warmed_write_us",
        ],
    );
    let mut cold_gap = Vec::new();
    let mut write_cost = Vec::new();
    for (wi, &ws) in WS_SWEEP_GIB.iter().enumerate() {
        let (nf_read, _) = slots[wi * KINDS];
        let (cold_read, _) = slots[wi * KINDS + 1];
        let (warm_read, warm_write) = slots[wi * KINDS + 2];
        t.row(vec![
            ws.to_string(),
            f(nf_read),
            f(cold_read),
            f(warm_read),
            f(warm_write),
        ]);
        if (20..=160).contains(&ws) {
            cold_gap.push(cold_read / warm_read);
        }
        write_cost.push(warm_write);
    }
    t.note("not-warmed = crash at start of run with a non-persistent cache.");
    t.note("full rows (schema-versioned JSONL): paper-figures/fig10_persistence.jsonl");
    t.emit("fig10_persistence");

    let mean_gap = cold_gap.iter().sum::<f64>() / cold_gap.len() as f64;
    shape_check(
        "not-warmed substantially slower than warmed",
        mean_gap > 1.15,
        format!("mean cold/warm read ratio {mean_gap:.2} (20-160 GiB region)"),
    );
    let wmax = write_cost.iter().cloned().fold(0.0f64, f64::max);
    shape_check(
        "doubled (persistent) flash write latency invisible to the app",
        wmax < 1.0,
        format!("max write latency with persistence {wmax:.2} µs"),
    );
}
