//! Figure 10: the effect of flash-cache persistence.
//!
//! §7.8: persistence is modeled as a second flash write per block (data +
//! metadata); the benefit is measured by *skipping the warmup phase* —
//! "equivalent to having a non-persistent flash cache and crashing at the
//! beginning of the simulator run".
//!
//! Shape to reproduce: the doubled flash write latency is invisible to the
//! application; the not-warmed (post-crash) runs are substantially slower
//! than the warmed ones; the no-flash line is shown for comparison.

use fcache_bench::{
    f, header, scale_from_env, shape_check, ByteSize, SimConfig, Sweep, Table, Workbench,
    WorkloadSpec, WS_SWEEP_GIB,
};
use fcache_device::FlashModel;

fn main() {
    let scale = scale_from_env(1024);
    header(
        "Figure 10",
        scale,
        "persistence: warmed vs not-warmed vs no flash",
    );

    let wb = Workbench::new(scale, 42);
    let persistent = SimConfig {
        flash_model: FlashModel::default().with_persistence(true),
        ..SimConfig::baseline()
    };
    let no_flash = SimConfig {
        flash_size: ByteSize::ZERO,
        ..SimConfig::baseline()
    };

    let mut t = Table::new(
        "Figure 10 — read latency (µs/block)",
        &[
            "ws_gib",
            "noflash_warmed",
            "flash64_not_warmed",
            "flash64_warmed",
            "warmed_write_us",
        ],
    );
    let mut cold_gap = Vec::new();
    let mut write_cost = Vec::new();
    for ws in WS_SWEEP_GIB {
        let warmed_spec = WorkloadSpec {
            working_set: ByteSize::gib(ws),
            seed: ws,
            ..WorkloadSpec::default()
        };
        let cold_spec = WorkloadSpec {
            skip_warmup: true,
            ..warmed_spec.clone()
        };

        // Three independent jobs over two distinct workloads (the cold
        // spec drops the warmup half) — fan them out as per-job scenarios;
        // each job regenerates its own stream, nothing is materialized.
        let mut results = Sweep::new()
            .scenario("no-flash warmed", wb.scenario(&no_flash, &warmed_spec))
            .scenario("flash64 not-warmed", wb.scenario(&persistent, &cold_spec))
            .scenario("flash64 warmed", wb.scenario(&persistent, &warmed_spec))
            .run()
            .expect_reports("figure 10 sweep")
            .into_iter();
        let nf = results.next().unwrap();
        let cold = results.next().unwrap();
        let warm = results.next().unwrap();
        t.row(vec![
            ws.to_string(),
            f(nf.read_latency_us()),
            f(cold.read_latency_us()),
            f(warm.read_latency_us()),
            f(warm.write_latency_us()),
        ]);
        if (20..=160).contains(&ws) {
            cold_gap.push(cold.read_latency_us() / warm.read_latency_us());
        }
        write_cost.push(warm.write_latency_us());
        eprint!(".");
    }
    eprintln!();
    t.note("not-warmed = crash at start of run with a non-persistent cache.");
    t.emit("fig10_persistence");

    let mean_gap = cold_gap.iter().sum::<f64>() / cold_gap.len() as f64;
    shape_check(
        "not-warmed substantially slower than warmed",
        mean_gap > 1.15,
        format!("mean cold/warm read ratio {mean_gap:.2} (20-160 GiB region)"),
    );
    let wmax = write_cost.iter().cloned().fold(0.0f64, f64::max);
    shape_check(
        "doubled (persistent) flash write latency invisible to the app",
        wmax < 1.0,
        format!("max write latency with persistence {wmax:.2} µs"),
    );
}
