//! FTL lifetime exploration (the paper's §8 future work).
//!
//! "Flash caching is a good candidate for a custom flash translation layer
//! [FlashTier] — exploring approaches and algorithms as well as
//! establishing satisfactory lifetime for this application remains as
//! future work."
//!
//! This bench captures the baseline cache workload's actual flash write
//! stream from the simulator and replays it through the page-mapped FTL
//! model at several overprovisioning levels, against a uniform-random
//! control. It also measures the effect of trimming evicted blocks
//! (FlashTier's key cache-specific FTL optimization).

use fcache_bench::{
    f2, header, scale_from_env, shape_check, SimConfig, Table, Workbench, WorkloadSpec,
};
use fcache_device::ftl::{Ftl, FtlConfig};
use fcache_device::IoDirection;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let scale = scale_from_env(512);
    header(
        "FTL lifetime",
        scale,
        "write amplification of the cache workload (future work §8)",
    );

    // Capture the flash write stream of the 80 GB baseline workload.
    let wb = Workbench::new(scale, 42);
    let cfg = SimConfig {
        log_flash_io: true,
        ..SimConfig::baseline()
    };
    let report = wb
        .run(&cfg, &WorkloadSpec::baseline_80g())
        .expect("simulation");
    let log = report.flash_iolog.expect("flash log enabled");
    let writes: Vec<u64> = log
        .iter()
        .filter(|e| e.dir == IoDirection::Write)
        .map(|e| e.lba)
        .collect();
    println!(
        "# captured {} flash writes from the cache workload",
        writes.len()
    );

    let logical_pages = (64u64 << 30) / 4096 / scale; // the 64 GB flash, scaled
    let mut t = Table::new(
        "FTL — write amplification and wear",
        &["workload", "op_pct", "WA", "erases_per_block", "max_erase"],
    );

    let mut cache_wa = Vec::new();
    let mut rand_wa = Vec::new();
    for op_pct in [7u32, 15, 28] {
        // Cache workload replay.
        let mut ftl = Ftl::new(FtlConfig {
            logical_pages,
            overprovision_pct: op_pct,
            ..FtlConfig::default()
        });
        for &lba in &writes {
            ftl.write(lba);
        }
        let s = ftl.stats();
        t.row(vec![
            "cache".into(),
            op_pct.to_string(),
            f2(s.write_amplification()),
            f2(s.mean_erases_per_block(ftl.config().physical_blocks())),
            ftl.max_erases().to_string(),
        ]);
        cache_wa.push(s.write_amplification());

        // Uniform random control with the same volume.
        let mut ftl_r = Ftl::new(FtlConfig {
            logical_pages,
            overprovision_pct: op_pct,
            ..FtlConfig::default()
        });
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..writes.len() {
            ftl_r.write(rng.gen_range(0..logical_pages));
        }
        let sr = ftl_r.stats();
        t.row(vec![
            "uniform-random".into(),
            op_pct.to_string(),
            f2(sr.write_amplification()),
            f2(sr.mean_erases_per_block(ftl_r.config().physical_blocks())),
            ftl_r.max_erases().to_string(),
        ]);
        rand_wa.push(sr.write_amplification());
    }

    // Trim-on-evict: replay with 25% interleaved trims (a cache FTL knows
    // exactly which blocks it evicted).
    let mut ftl_trim = Ftl::new(FtlConfig {
        logical_pages,
        overprovision_pct: 7,
        ..FtlConfig::default()
    });
    let mut rng = SmallRng::seed_from_u64(10);
    for &lba in &writes {
        if rng.gen_bool(0.25) {
            ftl_trim.trim(rng.gen_range(0..logical_pages));
        }
        ftl_trim.write(lba);
    }
    let st = ftl_trim.stats();
    t.row(vec![
        "cache + trim-on-evict".into(),
        "7".into(),
        f2(st.write_amplification()),
        f2(st.mean_erases_per_block(ftl_trim.config().physical_blocks())),
        ftl_trim.max_erases().to_string(),
    ]);
    t.note("a cache-aware FTL (FlashTier-style trim of evicted blocks) cuts WA further.");
    t.emit("ftl_lifetime");

    shape_check(
        "overprovisioning reduces write amplification",
        cache_wa.windows(2).all(|w| w[1] <= w[0] + 0.01),
        format!("cache WA at 7/15/28% OP: {cache_wa:.2?}"),
    );
    shape_check(
        "trim-on-evict reduces write amplification",
        st.write_amplification() < cache_wa[0],
        format!(
            "trim {:.2} vs plain {:.2}",
            st.write_amplification(),
            cache_wa[0]
        ),
    );
}
