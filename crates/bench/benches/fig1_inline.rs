//! Figure 1 (inline): SSD latency bands from an in-engine simulated run.
//!
//! The original `fig1_ssd_latency` bench reproduces Figure 1 the way the
//! authors did — log the simulator's flash I/Os, then replay the log
//! offline against the behavioral SSD model. This bench regenerates the
//! same bands **without the offline step**: the run itself services every
//! flash op through the queue-aware device timing service
//! (`flash_timing = ssd`), and the per-window averages come straight out
//! of the report (`SimReport::device_windows`).
//!
//! Shape to reproduce (§6.2): writes keep a stable mean from beginning to
//! end; read latency rises as the device fills (plus the weak wear
//! effect); and the cache-shaped access the engine generates is cheaper
//! per read than purely random I/O against the same device. All of it
//! deterministic per seed.

use fcache_bench::{
    f, f2, header, scale_from_env, shape_check, ByteSize, FlashTiming, SimConfig, Table, Workbench,
    WorkloadSpec,
};
use fcache_device::{IoDirection, IoLogEntry, SsdConfig, SsdModel};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let scale = scale_from_env(256);
    header(
        "Figure 1 (inline)",
        scale,
        "device-service latency bands from a simulated run (no offline replay)",
    );

    // 60 GB working set against a 58 GB flash cache; the device service
    // auto-fits the SSD to the flash tier and produces the window series.
    let wb = Workbench::new(scale, 42);
    let trace = wb.make_trace(&WorkloadSpec::baseline_60g());
    let window = ((trace.stats().blocks as usize) / 20).clamp(200, 10_000);
    let cfg = SimConfig {
        flash_size: ByteSize::gib(58),
        flash_timing: FlashTiming::Ssd(SsdConfig::auto()),
        device_window: window,
        ..SimConfig::baseline()
    };
    let report = wb.run_with_trace(&cfg, &trace).expect("simulation");
    let windows = report.device_windows.clone().expect("windows enabled");
    println!(
        "# {} device I/Os serviced in-engine across {} windows",
        report.device.ops(),
        windows.len()
    );
    println!(
        "# device queue: mean depth {:.2}, peak {}, {} submissions waited",
        report.device.mean_queue_depth(),
        report.device.depth_max,
        report.device.queue_waits
    );

    let mut t = Table::new(
        "Figure 1 (inline) — device latency per window (µs)",
        &["ios_done", "read_avg_us", "write_avg_us"],
    );
    for w in &windows {
        t.row(vec![
            w.start_io.to_string(),
            f(w.read_avg_us),
            f(w.write_avg_us),
        ]);
    }
    t.note(format!(
        "window = {window} device I/Os; in-engine service, seed {}",
        cfg.seed
    ));
    t.emit("fig1_inline");

    // Shape checks on the bands.
    let reads: Vec<f64> = windows
        .iter()
        .filter(|w| w.reads > 0)
        .map(|w| w.read_avg_us)
        .collect();
    let writes: Vec<f64> = windows
        .iter()
        .filter(|w| w.writes > 0)
        .map(|w| w.write_avg_us)
        .collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    if writes.len() >= 4 {
        let first = mean(&writes[..writes.len() / 4]);
        let last = mean(&writes[writes.len() * 3 / 4..]);
        shape_check(
            "write mean stable over device life",
            (last - first).abs() / first < 0.10,
            format!("first-quarter {first:.1} µs vs last-quarter {last:.1} µs"),
        );
    }
    if reads.len() >= 4 {
        let first = mean(&reads[..reads.len() / 4]);
        let last = mean(&reads[reads.len() * 3 / 4..]);
        shape_check(
            "read latency rises as the device fills",
            last > first,
            format!("first-quarter {first:.1} µs vs last-quarter {last:.1} µs"),
        );
    }

    // Locality: replay the same volume of *random* I/O (same read/write
    // mix) through an identical fresh device; the engine's cache-shaped
    // stream must read cheaper. The baseline device is resolved exactly
    // the way the in-engine service resolves it for host 0.
    let scaled = cfg.clone().scaled_down(scale);
    let device_blocks = scaled.flash_size.blocks().max(1);
    let resolved = SsdConfig::auto()
        .fit_capacity(device_blocks)
        .for_host(scaled.seed, 0);
    let total_ios: u64 = windows.iter().map(|w| w.reads + w.writes).sum();
    let total_reads: u64 = windows.iter().map(|w| w.reads).sum();
    let write_frac = 1.0 - total_reads as f64 / total_ios.max(1) as f64;
    let mut rng = SmallRng::seed_from_u64(99);
    let random: Vec<IoLogEntry> = (0..total_ios.min(500_000))
        .map(|_| IoLogEntry {
            dir: if rng.gen_bool(write_frac) {
                IoDirection::Write
            } else {
                IoDirection::Read
            },
            lba: rng.gen_range(0..device_blocks),
        })
        .collect();
    let mut baseline = SsdModel::new(resolved);
    let rand_stats = baseline.replay_windows(&random, window);
    let rand_read = mean(
        &rand_stats
            .iter()
            .filter(|w| w.reads > 0)
            .map(|w| w.read_avg_us)
            .collect::<Vec<_>>(),
    );
    let shaped_read = mean(&reads);
    shape_check(
        "cache-shaped reads beat random reads",
        shaped_read < rand_read,
        format!("in-engine {shaped_read:.1} µs vs random {rand_read:.1} µs"),
    );

    // Determinism: the same seed regenerates the identical series.
    let again = wb
        .run_with_trace(&cfg, &trace)
        .expect("repeat simulation")
        .device_windows
        .expect("windows enabled");
    shape_check(
        "window series deterministic per seed",
        again == windows,
        format!("{} windows compared bit-for-bit", windows.len()),
    );
    println!(
        "# application read latency under ssd timing: {} µs/block (flat-timing baseline differs — device queuing is visible to policy)",
        f2(report.read_latency_us())
    );
}
