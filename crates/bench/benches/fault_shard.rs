//! Fault shard: the Figure 2 policy comparison rerun against a sharded
//! remote tier (4 shards, replication 2, hedged reads) with one shard
//! failing mid-run.
//!
//! A 150 s outage takes shard 1 down inside the measured half (hedged
//! reads shorten the closed-loop run, so the window sits earlier than in
//! `fault_outage`). Reads
//! whose primary replica died must fail over to the survivor, writes to
//! the dead shard are acknowledged by the live replica and re-replicated
//! when the shard returns. The questions: does every job keep every
//! operation (zero acknowledged writes lost), does in-window availability
//! stay at 100% behind replication, does recovery heal the tier by run
//! end, and do the §7.1 orderings — synchronous-to-filer policies write
//! slowest, unified reads fastest — survive the sharded backend as they
//! do over the single filer?
//!
//! Run with: `cargo bench --bench fault_shard`
//! (`FCACHE_SCALE=256` for a heavier workload).

use fcache::DegradedPolicy;
use fcache_bench::{
    f, f2, header, run_configs, scale_from_env, shape_check, Architecture, SimConfig, Table,
    Workbench, WorkloadSpec, WritebackPolicy,
};
use fcache_device::SimTime;
use fcache_types::FaultPlan;

fn main() {
    let scale = scale_from_env(1024);
    header(
        "Fault shard",
        scale,
        "7 RAM policies × 3 architectures, 4-shard/replication-2 tier, healthy vs 150 s \
         shard outage (80 GB WS)",
    );

    let wb = Workbench::new(scale, 42);
    let trace = wb.make_trace(&WorkloadSpec::baseline_80g());

    // Shard 1 dies inside the measured half (paper-scale clause). Queue
    // degraded policy: with a live replica it never actually queues.
    let plan = FaultPlan::parse("shard1:outage@1000s-1150s").expect("spec");

    let combos: Vec<(Architecture, WritebackPolicy)> = Architecture::ALL
        .into_iter()
        .flat_map(|arch| WritebackPolicy::ALL.into_iter().map(move |rp| (arch, rp)))
        .collect();
    let mut healthy_cfgs = Vec::new();
    let mut faulted_cfgs = Vec::new();
    for &(arch, ram_policy) in &combos {
        let base = SimConfig {
            arch,
            ram_policy,
            shards: 4,
            replicas: 2,
            hedge: Some(SimTime::from_micros(500)),
            ..SimConfig::baseline()
        };
        healthy_cfgs.push(base.clone());
        let mut faulted = base;
        faulted.fault_plan = plan.clone();
        faulted.robustness.degraded = DegradedPolicy::Queue;
        faulted_cfgs.push(faulted);
    }
    let healthy = run_configs(&wb, &healthy_cfgs, &trace);
    let faulted = run_configs(&wb, &faulted_cfgs, &trace);

    let per_arch = WritebackPolicy::ALL.len();
    let mut table = Table::new(
        "Fault shard — healthy vs 150 s shard-1 outage (4 shards × 2 replicas, hedged)",
        &[
            "arch/ram",
            "read us",
            "read+out",
            "write us",
            "write+out",
            "failover",
            "re-repl",
            "avail%",
        ],
    );
    for (i, &(arch, rp)) in combos.iter().enumerate() {
        let (h, o) = (&healthy[i], &faulted[i]);
        // One distinct fault window (the shard outage): its availability is
        // the fraction of remote fetches first attempted inside it that
        // ultimately succeeded.
        let avail = o
            .robustness
            .windows
            .iter()
            .map(|w| w.availability())
            .fold(1.0, f64::min);
        table.row(vec![
            format!("{arch}/{}", rp.label()),
            f(h.read_latency_us()),
            f(o.read_latency_us()),
            f2(h.write_latency_us()),
            f2(o.write_latency_us()),
            o.shard.remote.failovers.to_string(),
            o.shard.remote.re_replicated_blocks.to_string(),
            format!("{:.1}", 100.0 * avail),
        ]);
    }
    table.emit("fault_shard");

    // Replication masks the outage completely: nothing fails, nothing
    // queues behind a dead shard, and the op tallies match the healthy
    // runs exactly — zero acknowledged writes (or reads) lost.
    shape_check(
        "single-shard outage at replication 2 loses no operations",
        healthy.iter().zip(&faulted).all(|(h, o)| {
            h.metrics.read_ops == o.metrics.read_ops
                && h.metrics.write_ops == o.metrics.write_ops
                && o.robustness.failed_ops == 0
        }),
        format!(
            "{} jobs, op tallies equal healthy vs faulted, 0 failed",
            faulted.len()
        ),
    );
    shape_check(
        "reads fail over to the surviving replica on every job",
        faulted.iter().all(|r| r.shard.remote.failovers > 0),
        format!(
            "min failovers {}",
            faulted
                .iter()
                .map(|r| r.shard.remote.failovers)
                .min()
                .unwrap_or(0)
        ),
    );
    shape_check(
        "in-window availability stays at 100% behind replication",
        faulted.iter().all(|r| {
            !r.robustness.windows.is_empty()
                && r.robustness
                    .windows
                    .iter()
                    .all(|w| w.ops > 0 && w.ok == w.ops)
        }),
        "every in-window fetch served by a live replica".to_string(),
    );
    shape_check(
        "recovery re-replicates every under-replicated block by run end",
        faulted.iter().all(|r| {
            let rem = &r.shard.remote;
            rem.under_peak > 0 && rem.re_replicated_blocks > 0 && rem.under_now == 0
        }),
        format!(
            "max under-replication peak {} blocks",
            faulted
                .iter()
                .map(|r| r.shard.remote.under_peak)
                .max()
                .unwrap_or(0)
        ),
    );

    // §7.1 rankings over the sharded tier. Lookaside and unified expose a
    // synchronous-to-filer corner through the RAM tier's `s` policy; that
    // corner must still write slowest with a shard down.
    for (ai, arch) in Architecture::ALL.into_iter().enumerate() {
        if arch == Architecture::Naive {
            continue;
        }
        let writes: Vec<f64> = (0..per_arch)
            .map(|ri| faulted[ai * per_arch + ri].write_latency_us())
            .collect();
        let sync_i = WritebackPolicy::ALL
            .iter()
            .position(|&p| p == WritebackPolicy::WriteThrough)
            .expect("s in policy list");
        let worst = writes.iter().cloned().fold(0.0, f64::max);
        shape_check(
            &format!("{arch}: synchronous-to-filer corner still writes slowest with a shard down"),
            writes[sync_i] >= worst,
            format!("s = {:.2} µs, max = {worst:.2} µs", writes[sync_i]),
        );
    }
    // Unified posts the lowest mean read latency over the healthy sharded
    // tier; the shard outage must not flip that architecture ranking.
    let mean_read = |reports: &[fcache_bench::SimReport], ai: usize| {
        (0..per_arch)
            .map(|ri| reports[ai * per_arch + ri].read_latency_us())
            .sum::<f64>()
            / per_arch as f64
    };
    for reports in [&healthy, &faulted] {
        let naive = mean_read(reports, 0);
        let unified = mean_read(reports, 2);
        shape_check(
            "unified still reads fastest",
            unified < naive,
            format!("unified {unified:.1} µs vs naive {naive:.1} µs"),
        );
    }
}
