//! Table 1: timing model parameters.
//!
//! The paper's Table 1 lists the per-block and per-packet latencies every
//! experiment uses. This bench prints the reproduction's values and checks
//! them against the published numbers (with the paper's "ms" column
//! corrected to µs — see DESIGN.md §3).

use fcache_bench::{header, shape_check, SimConfig, Table};

fn main() {
    header("Table 1", 1, "timing model parameters");
    let cfg = SimConfig::baseline();
    print!("{}", cfg.timing_table());

    let mut t = Table::new(
        "Table 1 — paper vs reproduction",
        &["parameter", "paper", "ours"],
    );
    let rows: [(&str, &str, String); 9] = [
        ("RAM read", "400 ns", format!("{}", cfg.ram_model.read)),
        ("RAM write", "400 ns", format!("{}", cfg.ram_model.write)),
        (
            "Flash read",
            "88 us",
            format!("{}", cfg.flash_model.read_latency()),
        ),
        (
            "Flash write",
            "21 us",
            format!("{}", cfg.flash_model.write_latency()),
        ),
        (
            "Net base/packet",
            "8.2 us",
            format!("{}", cfg.net.base_latency),
        ),
        ("Net per bit", "1 ns", format!("{}", cfg.net.per_bit)),
        (
            "Filer fast read",
            "92 us",
            format!("{}", cfg.filer.fast_read),
        ),
        (
            "Filer slow read",
            "7952 us",
            format!("{}", cfg.filer.slow_read),
        ),
        ("Filer write", "92 us", format!("{}", cfg.filer.write)),
    ];
    for (name, paper, ours) in rows {
        t.row(vec![name.into(), paper.into(), ours]);
    }
    t.row(vec![
        "Fast read rate".into(),
        "90%".into(),
        format!("{:.0}%", cfg.filer.fast_read_rate * 100.0),
    ]);
    t.emit("table1");

    shape_check(
        "table1",
        cfg.ram_model.read.as_nanos() == 400
            && cfg.flash_model.read_latency().as_nanos() == 88_000
            && cfg.flash_model.write_latency().as_nanos() == 21_000
            && cfg.net.base_latency.as_nanos() == 8_200
            && cfg.filer.slow_read.as_nanos() == 7_952_000,
        "all defaults equal the published Table 1 values".into(),
    );
}
