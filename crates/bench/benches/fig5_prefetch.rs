//! Figure 5: the effect of the filer's prefetch (fast-read) rate.
//!
//! §7.3: a large client cache may reduce the filer's ability to prefetch.
//! The paper bounds the effect by running an 80 % rate (pessimal) and a
//! 95 % rate (optimistic) with and without a 64 GB flash.
//!
//! Shape to reproduce: latency is dominated by filer misses, so the two
//! rates bracket a wide band; in the pessimal world the flash is only
//! beneficial for workloads that fit in flash but not in RAM (the "pocket"
//! between the no-flash/95 % and flash/80 % curves).

use fcache_bench::{
    f, header, run_configs, scale_from_env, shape_check, ByteSize, SimConfig, Table, Workbench,
    WorkloadSpec, WS_SWEEP_GIB,
};

fn main() {
    let scale = scale_from_env(1024);
    header(
        "Figure 5",
        scale,
        "read latency for 80% vs 95% filer prefetch rates",
    );

    let wb = Workbench::new(scale, 42);
    let mut t = Table::new(
        "Figure 5 — read latency (µs/block)",
        &[
            "ws_gib",
            "noflash_80",
            "noflash_95",
            "flash64_80",
            "flash64_95",
        ],
    );
    let mut series = vec![Vec::new(); 4];
    for ws in WS_SWEEP_GIB {
        let spec = WorkloadSpec {
            working_set: ByteSize::gib(ws),
            seed: ws,
            ..WorkloadSpec::default()
        };
        let trace = wb.make_trace(&spec);
        let mut row = vec![ws.to_string()];
        let cfgs: Vec<SimConfig> = [(0u64, 0.80), (0, 0.95), (64, 0.80), (64, 0.95)]
            .iter()
            .map(|(flash, rate)| {
                let mut cfg = SimConfig {
                    flash_size: ByteSize::gib(*flash),
                    ..SimConfig::baseline()
                };
                cfg.filer.fast_read_rate = *rate;
                cfg
            })
            .collect();
        for (i, r) in run_configs(&wb, &cfgs, &trace).into_iter().enumerate() {
            row.push(f(r.read_latency_us()));
            series[i].push(r.read_latency_us());
        }
        t.row(row);
        eprint!(".");
    }
    eprintln!();
    t.note("paper: filer prefetching dominates; compare lines of similar shape.");
    t.emit("fig5_prefetch");

    let last = WS_SWEEP_GIB.len() - 1;
    shape_check(
        "95% rate far better than 80% (no flash, large WS)",
        series[1][last] < 0.6 * series[0][last],
        format!("{:.0} µs vs {:.0} µs", series[1][last], series[0][last]),
    );
    // The pessimal pocket: at a WS that fits flash (60 GiB), flash/80%
    // still beats no-flash/80%; at very large WS the advantage shrinks.
    let at_60 = WS_SWEEP_GIB.iter().position(|w| *w == 60).unwrap();
    shape_check(
        "flash wins inside the pocket (60 GiB, 80% rate)",
        series[2][at_60] < 0.7 * series[0][at_60],
        format!("{:.0} µs vs {:.0} µs", series[2][at_60], series[0][at_60]),
    );
    // Pessimal-world crossover: no-flash at 95% can beat 64G flash at 80%
    // once the WS falls well out of flash.
    shape_check(
        "pessimal crossover exists at large WS",
        series[1][last] < series[2][last],
        format!(
            "noflash/95 {:.0} µs vs flash/80 {:.0} µs",
            series[1][last], series[2][last]
        ),
    );
}
