//! Figure 8: application latency as a function of the write percentage
//! (0–100 %, 60 GB and 80 GB working sets, baseline caches).
//!
//! Shape to reproduce (§7.6): "As long as the write percentage remains
//! below 90 %, avoiding synchronous RAM evictions, performance is
//! independent of the write rate" — reads stable, writes at RAM speed —
//! with complex degradation effects above 90 % ("taken with a grain of
//! salt").
//!
//! Pipeline shape: the whole figure is ONE config × workload grid — the
//! baseline configuration crossed with a 22-point workload axis
//! ([`Sweep::workloads`]) — streamed through a tee of a durable JSONL sink
//! (`target/paper-figures/fig8_write_ratio.jsonl`) and a scalar extractor.
//! No report vector is ever materialized.

use fcache_bench::{
    f, f2, header, scale_from_env, shape_check, ByteSize, FigSink, SimConfig, Sweep, Table,
    Workbench, WorkloadSpec,
};

fn main() {
    let scale = scale_from_env(1024);
    header("Figure 8", scale, "latency vs write percentage");

    let wb = Workbench::new(scale, 42);
    let pcts = [0u32, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
    let ws_gib = [60u64, 80];

    // The workload axis, pct-major: job index = pct_i * 2 + ws_i.
    let specs: Vec<WorkloadSpec> = pcts
        .iter()
        .flat_map(|&pct| {
            ws_gib.iter().map(move |&ws| WorkloadSpec {
                working_set: ByteSize::gib(ws),
                write_fraction: f64::from(pct) / 100.0,
                seed: ws * 100 + u64::from(pct),
                ..WorkloadSpec::default()
            })
        })
        .collect();

    // Each finished job streams its row to the durable JSONL and drops to
    // two scalars; the slot table is the only thing retained.
    let mut sink = FigSink::new("fig8_write_ratio", specs.len());
    let results = Sweep::new()
        .workloads(wb.workloads(&specs))
        .config("baseline", SimConfig::baseline().scaled_down(wb.scale()))
        .sink(&mut sink)
        .run();
    eprintln!();
    let slots = sink.finish(&results, "figure 8 sweep");

    let mut t = Table::new(
        "Figure 8 — latency vs write percentage",
        &["write_pct", "read60", "read80", "write60", "write80"],
    );
    let mut stable_writes = Vec::new();
    let mut stable_reads = Vec::new();
    for (pi, &pct) in pcts.iter().enumerate() {
        let (read60, write60) = slots[pi * 2];
        let (read80, write80) = slots[pi * 2 + 1];
        t.row(vec![
            pct.to_string(),
            if pct == 100 { "-".into() } else { f(read60) },
            if pct == 100 { "-".into() } else { f(read80) },
            if pct == 0 { "-".into() } else { f2(write60) },
            if pct == 0 { "-".into() } else { f2(write80) },
        ]);
        if (10..=80).contains(&pct) {
            stable_writes.push(write80);
        }
        if (10..=50).contains(&pct) {
            stable_reads.push(read80);
        }
    }
    t.note("paper: below ~90% writes, reads are stable and writes stay at RAM speed.");
    t.note("our model saturates the gigabit segment with writeback traffic somewhat");
    t.note("earlier (reads rise above ~50-60% writes); the paper itself flags this");
    t.note("region as 'network saturation … imperfectly modeled' (§7.6).");
    t.note("full rows (schema-versioned JSONL): paper-figures/fig8_write_ratio.jsonl");
    t.emit("fig8_write_ratio");

    let wmax = stable_writes.iter().cloned().fold(0.0f64, f64::max);
    shape_check(
        "writes at RAM speed for 10-80% write ratios",
        wmax < 1.0,
        format!("max write latency {wmax:.2} µs"),
    );
    let rmin = stable_reads.iter().cloned().fold(f64::INFINITY, f64::min);
    let rmax = stable_reads.iter().cloned().fold(0.0f64, f64::max);
    shape_check(
        "reads stable for low-to-moderate write ratios (10-50%)",
        rmax < 1.7 * rmin,
        format!("read latency range {rmin:.0}–{rmax:.0} µs (80 GB WS)"),
    );
}
