//! Figure 8: application latency as a function of the write percentage
//! (0–100 %, 60 GB and 80 GB working sets, baseline caches).
//!
//! Shape to reproduce (§7.6): "As long as the write percentage remains
//! below 90 %, avoiding synchronous RAM evictions, performance is
//! independent of the write rate" — reads stable, writes at RAM speed —
//! with complex degradation effects above 90 % ("taken with a grain of
//! salt").

use fcache_bench::{
    f, f2, header, scale_from_env, shape_check, ByteSize, SimConfig, Sweep, Table, Workbench,
    WorkloadSpec,
};

fn main() {
    let scale = scale_from_env(1024);
    header("Figure 8", scale, "latency vs write percentage");

    let wb = Workbench::new(scale, 42);
    let pcts = [0u32, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100];

    let mut t = Table::new(
        "Figure 8 — latency vs write percentage",
        &["write_pct", "read60", "read80", "write60", "write80"],
    );
    let mut stable_writes = Vec::new();
    let mut stable_reads = Vec::new();
    for pct in pcts {
        let mut row = vec![pct.to_string()];
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        // The two working-set sizes use distinct workloads, so fan them
        // out as per-job scenarios: each job regenerates its own stream,
        // so neither trace is ever materialized.
        let mut sweep = Sweep::new();
        for ws in [60u64, 80] {
            let spec = WorkloadSpec {
                working_set: ByteSize::gib(ws),
                write_fraction: f64::from(pct) / 100.0,
                seed: ws * 100 + u64::from(pct),
                ..WorkloadSpec::default()
            };
            sweep = sweep.scenario(
                format!("{ws}G/{pct}%"),
                wb.scenario(&SimConfig::baseline(), &spec),
            );
        }
        for r in sweep.run().expect_reports("figure 8 sweep") {
            reads.push(r.read_latency_us());
            writes.push(r.write_latency_us());
        }
        row.push(if pct == 100 { "-".into() } else { f(reads[0]) });
        row.push(if pct == 100 { "-".into() } else { f(reads[1]) });
        row.push(if pct == 0 { "-".into() } else { f2(writes[0]) });
        row.push(if pct == 0 { "-".into() } else { f2(writes[1]) });
        t.row(row);
        if (10..=80).contains(&pct) {
            stable_writes.push(writes[1]);
        }
        if (10..=50).contains(&pct) {
            stable_reads.push(reads[1]);
        }
        eprint!(".");
    }
    eprintln!();
    t.note("paper: below ~90% writes, reads are stable and writes stay at RAM speed.");
    t.note("our model saturates the gigabit segment with writeback traffic somewhat");
    t.note("earlier (reads rise above ~50-60% writes); the paper itself flags this");
    t.note("region as 'network saturation … imperfectly modeled' (§7.6).");
    t.emit("fig8_write_ratio");

    let wmax = stable_writes.iter().cloned().fold(0.0f64, f64::max);
    shape_check(
        "writes at RAM speed for 10-80% write ratios",
        wmax < 1.0,
        format!("max write latency {wmax:.2} µs"),
    );
    let rmin = stable_reads.iter().cloned().fold(f64::INFINITY, f64::min);
    let rmax = stable_reads.iter().cloned().fold(0.0f64, f64::max);
    shape_check(
        "reads stable for low-to-moderate write ratios (10-50%)",
        rmax < 1.7 * rmin,
        format!("read latency range {rmin:.0}–{rmax:.0} µs (80 GB WS)"),
    );
}
