//! Extension experiments beyond the paper's figures.
//!
//! Two sweeps the paper motivates but does not plot:
//!
//! 1. **Host scaling** — "one or more compute servers" (§3): how do
//!    latency and invalidation pressure evolve from 1 to 8 hosts, with
//!    private vs shared working sets? (The paper's consistency experiments
//!    stop at 2 hosts.)
//! 2. **Fine syncer-period sweep** — the paper samples p ∈ {1, 5, 15, 30};
//!    this sweep fills in the curve and shows where the periodic policy
//!    starts to misbehave, complementing §3.6's "we did not try other more
//!    elaborate policies".

use fcache_bench::{
    f, f2, header, run_configs, scale_from_env, shape_check, ByteSize, SimConfig, Table, Workbench,
    WorkloadSpec, WritebackPolicy,
};

fn main() {
    let scale = scale_from_env(1024);
    header(
        "Extensions",
        scale,
        "host scaling and fine syncer-period sweep",
    );

    let wb = Workbench::new(scale, 42);

    // --- Host scaling ---------------------------------------------------
    let mut t = Table::new(
        "Extension A — host scaling (60 GB per working set, 30% writes)",
        &["hosts", "sharing", "read_us", "write_us", "inval_pct"],
    );
    let mut shared_inval = Vec::new();
    for hosts in [1u16, 2, 4, 8] {
        for shared in [false, true] {
            if hosts == 1 && shared {
                continue;
            }
            let spec = WorkloadSpec {
                working_set: ByteSize::gib(60),
                hosts,
                ws_count: if shared { 1 } else { hosts as usize },
                seed: 6000 + u64::from(hosts) * 2 + u64::from(shared),
                ..WorkloadSpec::default()
            };
            let r = wb.run(&SimConfig::baseline(), &spec).expect("run");
            t.row(vec![
                hosts.to_string(),
                if shared {
                    "shared".into()
                } else {
                    "private".to_string()
                },
                f(r.read_latency_us()),
                f2(r.write_latency_us()),
                f(r.invalidation_pct()),
            ]);
            if shared {
                shared_inval.push(r.invalidation_pct());
            }
            eprint!(".");
        }
    }
    eprintln!();
    t.note("private working sets keep reads fast; residual invalidations come");
    t.note("from the popular files all hosts touch. sharing one set drives both");
    t.note("latency and invalidation pressure up with host count.");
    t.emit("ext_host_scaling");

    shape_check(
        "invalidation pressure grows with shared host count",
        shared_inval.windows(2).all(|w| w[1] >= w[0] * 0.9) // monotone-ish
            && shared_inval.last().unwrap() > shared_inval.first().unwrap(),
        format!("shared-WS invalidation % by host count: {shared_inval:.0?}"),
    );

    // --- Fine syncer-period sweep ----------------------------------------
    let trace = wb.make_trace(&WorkloadSpec::baseline_80g());
    let mut t2 = Table::new(
        "Extension B — RAM syncer period sweep (naive, flash policy a)",
        &["period_s", "read_us", "write_us"],
    );
    let mut writes = Vec::new();
    let periods = [1u32, 2, 3, 5, 8, 10, 15, 20, 30, 45, 60];
    let cfgs: Vec<SimConfig> = periods
        .iter()
        .map(|secs| SimConfig {
            ram_policy: WritebackPolicy::Periodic(*secs),
            ..SimConfig::baseline()
        })
        .collect();
    for (secs, r) in periods.iter().zip(run_configs(&wb, &cfgs, &trace)) {
        t2.row(vec![
            secs.to_string(),
            f(r.read_latency_us()),
            f2(r.write_latency_us()),
        ]);
        writes.push((*secs, r.write_latency_us()));
        eprint!(".");
    }
    eprintln!();
    t2.note("longer periods let dirty data pile up; eventually evictions of");
    t2.note("dirty blocks put writeback stalls on application paths.");
    t2.emit("ext_period_sweep");

    let early = writes
        .iter()
        .filter(|(s, _)| *s <= 5)
        .map(|(_, w)| *w)
        .fold(0.0, f64::max);
    shape_check(
        "short periods keep writes at RAM speed",
        early < 1.0,
        format!("max write latency for p1..p5: {early:.2} µs"),
    );
}
