//! Ablation study of the reproduction's modeling choices (DESIGN.md §6).
//!
//! Not a paper figure: this bench quantifies how much each simulator
//! design decision matters, so readers can judge the robustness of the
//! reproduced shapes. Knobs:
//!
//! - `populate_flash_on_read` — §3.2's "newly referenced blocks are first
//!   placed in flash, then into RAM" vs a flash cache that only absorbs
//!   writebacks.
//! - `inclusive_promotion` — whether RAM hits refresh the flash LRU
//!   position (maintains the naive/lookaside subset property).
//! - `charge_flash_read_on_writeback` — whether flushing a dirty block
//!   out of flash pays a flash read first.
//! - `duplex_network` — full-duplex segments vs the paper's one packet at
//!   a time.
//! - `syncer_window` — how many writebacks the periodic syncer keeps in
//!   flight (1 = fully synchronous flush loop).

use fcache_bench::{
    f, f2, header, run_configs, scale_from_env, shape_check, SimConfig, Table, Workbench,
    WorkloadSpec,
};
use fcache_cache::EvictionPolicy;

fn main() {
    let scale = scale_from_env(1024);
    header(
        "Ablations",
        scale,
        "sensitivity of the baseline to modeling choices",
    );

    let wb = Workbench::new(scale, 42);
    let trace = wb.make_trace(&WorkloadSpec::baseline_80g());

    let base = SimConfig::baseline();
    let variants: Vec<(&str, SimConfig)> = vec![
        ("baseline", base.clone()),
        (
            "no populate-on-read",
            SimConfig {
                populate_flash_on_read: false,
                ..base.clone()
            },
        ),
        (
            "no inclusive promotion",
            SimConfig {
                inclusive_promotion: false,
                ..base.clone()
            },
        ),
        (
            "free flash-read on writeback",
            SimConfig {
                charge_flash_read_on_writeback: false,
                ..base.clone()
            },
        ),
        (
            "full-duplex network",
            SimConfig {
                duplex_network: true,
                ..base.clone()
            },
        ),
        (
            "syncer window = 1",
            SimConfig {
                syncer_window: 1,
                ..base.clone()
            },
        ),
        (
            "syncer window = 256",
            SimConfig {
                syncer_window: 256,
                ..base.clone()
            },
        ),
        (
            "FIFO replacement",
            SimConfig {
                replacement: EvictionPolicy::Fifo,
                ..base.clone()
            },
        ),
        (
            "CLOCK replacement",
            SimConfig {
                replacement: EvictionPolicy::Clock,
                ..base.clone()
            },
        ),
    ];

    let mut t = Table::new(
        "Ablations — 80 GB working set, naive baseline",
        &[
            "variant",
            "read_us",
            "write_us",
            "flash_hit_pct",
            "net_packets",
        ],
    );
    let mut results = Vec::new();
    let cfgs: Vec<SimConfig> = variants.iter().map(|(_, cfg)| cfg.clone()).collect();
    for ((name, _), r) in variants.iter().zip(run_configs(&wb, &cfgs, &trace)) {
        t.row(vec![
            name.to_string(),
            f(r.read_latency_us()),
            f2(r.write_latency_us()),
            f(100.0 * r.flash_hit_rate_of_all_reads()),
            r.net.packets.to_string(),
        ]);
        results.push((name.to_string(), r));
        eprint!(".");
    }
    eprintln!();
    t.emit("ablations");

    let get = |name: &str| {
        results
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| r)
            .unwrap()
    };
    let baseline = get("baseline");

    shape_check(
        "populate-on-read is load-bearing for reads",
        get("no populate-on-read").read_latency_us() > 1.15 * baseline.read_latency_us(),
        format!(
            "without populate: {:.0} µs vs baseline {:.0} µs",
            get("no populate-on-read").read_latency_us(),
            baseline.read_latency_us()
        ),
    );
    shape_check(
        "inclusive promotion is a second-order effect",
        (get("no inclusive promotion").read_latency_us() - baseline.read_latency_us()).abs()
            < 0.2 * baseline.read_latency_us(),
        format!(
            "without promotion: {:.0} µs vs baseline {:.0} µs",
            get("no inclusive promotion").read_latency_us(),
            baseline.read_latency_us()
        ),
    );
    shape_check(
        "duplex changes little at 30% writes",
        (get("full-duplex network").read_latency_us() - baseline.read_latency_us()).abs()
            < 0.2 * baseline.read_latency_us(),
        format!(
            "duplex: {:.0} µs vs baseline {:.0} µs",
            get("full-duplex network").read_latency_us(),
            baseline.read_latency_us()
        ),
    );
    shape_check(
        "a synchronous (window=1) syncer still keeps writes cheap at 30% writes",
        get("syncer window = 1").write_latency_us() < 10.0,
        format!(
            "window=1 write latency {:.2} µs",
            get("syncer window = 1").write_latency_us()
        ),
    );
    shape_check(
        "replacement policy is second-order (paper's §1 scoping holds)",
        {
            let spread = [
                get("FIFO replacement").read_latency_us(),
                get("CLOCK replacement").read_latency_us(),
                baseline.read_latency_us(),
            ];
            let max = spread.iter().cloned().fold(0.0, f64::max);
            let min = spread.iter().cloned().fold(f64::INFINITY, f64::min);
            max < 1.25 * min
        },
        format!(
            "LRU {:.0} / CLOCK {:.0} / FIFO {:.0} µs reads",
            baseline.read_latency_us(),
            get("CLOCK replacement").read_latency_us(),
            get("FIFO replacement").read_latency_us()
        ),
    );
}
