//! Micro/throughput benchmarks for the simulator itself (not paper
//! figures): data-structure op rates, end-to-end simulated-ops/sec for the
//! baseline layered and unified configurations, and serial-vs-parallel
//! sweep wall-clock.
//!
//! Emits a human table on stdout and machine-readable JSON to
//! `BENCH_micro.json` (schema below) so successive PRs can track the
//! performance trajectory:
//!
//! ```json
//! {"bench":"micro","schema":1,"results":[
//!   {"name":"layered_sim_ops_per_sec","value":123.0,"unit":"blocks/s"}, ...]}
//! ```
//!
//! `FCACHE_SCALE` overrides the workload scale (default 1/1024);
//! `FCACHE_BENCH_OUT` overrides the JSON output path.

use std::fmt::Write as _;
use std::rc::Rc;
use std::time::Instant;

use fcache::DeviceService;
use fcache_bench::{
    run_sweep, scale_from_env, Architecture, FlashTiming, SimConfig, Sweep, Workbench, Workload,
    WorkloadSpec,
};
use fcache_cache::{BlockCache, LruList, UnifiedCache};
use fcache_des::{Sim, SimTime};
use fcache_device::{IoLog, SsdConfig};
use fcache_fleet::{Fleet, FleetSpec};
use fcache_types::{
    BlockAddr, ByteReader, ByteSize, FaultPlan, FileId, FleetTopology, HostId, TraceOp, TraceReader,
};

/// The pre-refactor cache hot path, reconstructed for comparison: SipHash
/// `HashMap` keyed map plus a *separate* SipHash `HashSet` for dirtiness —
/// two hash probes (and two hash computations) per dirty-tracking insert,
/// as the seed's `BlockCache` did before the dirty bit was folded into the
/// LRU entry. Measured under the identical insert/evict workload so
/// `BENCH_micro.json` records the hot-path multiple this refactor bought.
struct LegacyCache {
    map: std::collections::HashMap<u64, fcache_cache::lru::NodeId>,
    lru: LruList<(BlockAddr, bool)>,
    dirty: std::collections::HashSet<u64>,
    capacity: usize,
}

impl LegacyCache {
    fn insert(&mut self, addr: BlockAddr, dirty: bool) {
        let key = addr.to_u64();
        if let Some(&id) = self.map.get(&key) {
            self.lru.touch(id);
            if dirty {
                self.dirty.insert(key);
            }
            return;
        }
        if self.lru.len() >= self.capacity {
            if let Some((victim, _)) = self.lru.pop_back() {
                let vkey = victim.to_u64();
                self.map.remove(&vkey);
                self.dirty.remove(&vkey);
            }
        }
        let id = self.lru.push_front((addr, dirty));
        self.map.insert(key, id);
        if dirty {
            self.dirty.insert(key);
        }
    }
}

struct Results {
    entries: Vec<(String, f64, &'static str)>,
}

impl Results {
    fn push(&mut self, name: &str, value: f64, unit: &'static str) {
        // Big rates print as integers; small ratios/walls keep decimals.
        if value >= 1000.0 {
            println!("{name:<34} {value:>14.0} {unit}");
        } else {
            println!("{name:<34} {value:>14.3} {unit}");
        }
        self.entries.push((name.to_string(), value, unit));
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{\"bench\":\"micro\",\"schema\":1,\"results\":[");
        for (i, (name, value, unit)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"value\":{value:.3},\"unit\":\"{unit}\"}}"
            );
        }
        out.push_str("]}");
        out
    }
}

fn bench_block_cache(res: &mut Results) {
    const N: u32 = 2_000_000;
    let mut cache = BlockCache::new(65_536);
    let t0 = Instant::now();
    for n in 0..N {
        cache.insert(BlockAddr::new(FileId(0), n), n % 3 == 0);
    }
    res.push(
        "block_cache_insert_evict_per_sec",
        f64::from(N) / t0.elapsed().as_secs_f64(),
        "ops/s",
    );

    let mut hits = 0u64;
    let t0 = Instant::now();
    for n in 0..N {
        // All resident: pure hit-path lookups (one hash probe each).
        hits += u64::from(cache.lookup(BlockAddr::new(FileId(0), N - 1 - (n % 65_536))));
    }
    assert_eq!(hits, u64::from(N));
    res.push(
        "block_cache_hit_lookup_per_sec",
        f64::from(N) / t0.elapsed().as_secs_f64(),
        "ops/s",
    );

    let mut legacy = LegacyCache {
        map: std::collections::HashMap::with_capacity(65_536),
        lru: LruList::with_capacity(65_536),
        dirty: std::collections::HashSet::new(),
        capacity: 65_536,
    };
    let t0 = Instant::now();
    for n in 0..N {
        legacy.insert(BlockAddr::new(FileId(0), n), n % 3 == 0);
    }
    let legacy_rate = f64::from(N) / t0.elapsed().as_secs_f64();
    res.push("legacy_two_probe_insert_per_sec", legacy_rate, "ops/s");
    res.push(
        "cache_hot_path_speedup_vs_legacy",
        res.entries
            .iter()
            .find(|(n, _, _)| n == "block_cache_insert_evict_per_sec")
            .map(|(_, v, _)| v / legacy_rate)
            .unwrap_or(0.0),
        "x",
    );

    let mut unified = UnifiedCache::new(8_192, 57_344);
    let t0 = Instant::now();
    for n in 0..N {
        unified.insert(BlockAddr::new(FileId(0), n), n % 3 == 0);
    }
    res.push(
        "unified_insert_evict_per_sec",
        f64::from(N) / t0.elapsed().as_secs_f64(),
        "ops/s",
    );
}

fn bench_des(res: &mut Results) {
    const SLEEPS: u64 = 200_000;
    let t0 = Instant::now();
    let sim = Sim::new();
    for lane in 0..8u64 {
        let s = sim.clone();
        sim.spawn(async move {
            for i in 0..SLEEPS / 8 {
                s.sleep(SimTime::from_nanos((lane * 37 + i) % 97 + 1)).await;
            }
        });
    }
    sim.run().unwrap();
    sim.shutdown();
    res.push(
        "des_timer_events_per_sec",
        SLEEPS as f64 / t0.elapsed().as_secs_f64(),
        "events/s",
    );
}

/// Raw device-service throughput: flash ops pushed through the queue-aware
/// SSD timing path (slot acquire + model draw + timed sleep) by eight
/// concurrent submitters in a dedicated DES — the per-op cost of
/// `flash_timing = ssd`, isolated from the rest of the engine.
fn bench_ssd_service(res: &mut Results) {
    const OPS: u64 = 200_000;
    const LANES: u64 = 8;
    let cfg = SimConfig {
        flash_size: ByteSize::mib(256),
        flash_timing: FlashTiming::Ssd(SsdConfig::auto()),
        ..SimConfig::baseline()
    };
    let t0 = Instant::now();
    let sim = Sim::new();
    let dev = Rc::new(DeviceService::new(
        sim.clone(),
        &cfg,
        HostId(0),
        IoLog::disabled(),
    ));
    for lane in 0..LANES {
        let dev = Rc::clone(&dev);
        sim.spawn(async move {
            for i in 0..OPS / LANES {
                let addr = BlockAddr::new(FileId(0), (lane * 1_000_003 + i * 17) as u32);
                if i % 3 == 0 {
                    dev.write(addr, None).await;
                } else {
                    dev.read(addr, None).await;
                }
            }
        });
    }
    sim.run().expect("ssd service run");
    sim.shutdown();
    assert_eq!(dev.stats().ops(), OPS);
    res.push(
        "ssd_service_ops_per_sec",
        OPS as f64 / t0.elapsed().as_secs_f64(),
        "ops/s",
    );
}

/// Intra-batch NCQ overlap in *simulated* time: one submitter issuing
/// 16-block `read_batch` calls back to back. With overlapped submission the
/// batch finishes when its last member completes, not after the serial sum
/// of per-command service times — so summed device busy time divided by
/// elapsed simulated time is the concurrency the batch path extracts from
/// the queue. Serial submission would pin this at 1.0; PERF.md invariant 14
/// requires > 1.
fn bench_ssd_batch_overlap(res: &mut Results) {
    const BATCHES: u32 = 2_000;
    const BATCH: u32 = 16;
    let cfg = SimConfig {
        flash_size: ByteSize::mib(256),
        flash_timing: FlashTiming::Ssd(SsdConfig::auto()),
        ..SimConfig::baseline()
    };
    let sim = Sim::new();
    let dev = Rc::new(DeviceService::new(
        sim.clone(),
        &cfg,
        HostId(0),
        IoLog::disabled(),
    ));
    {
        let dev = Rc::clone(&dev);
        sim.spawn(async move {
            for b in 0..BATCHES {
                let addrs: Vec<BlockAddr> = (0..BATCH)
                    .map(|i| BlockAddr::new(FileId(0), b * BATCH + i))
                    .collect();
                dev.read_batch(&addrs, None).await;
            }
        });
    }
    sim.run().expect("batch overlap run");
    let stats = dev.stats();
    let elapsed = sim.now();
    sim.shutdown();
    assert_eq!(stats.reads, u64::from(BATCHES * BATCH));
    res.push(
        "ssd_batch_overlap_speedup",
        stats.read_time.as_nanos() as f64 / elapsed.as_nanos().max(1) as f64,
        "x",
    );
}

fn main() {
    let scale = scale_from_env(1024);
    println!("# micro benchmarks, workload scale 1/{scale}");
    let mut res = Results {
        entries: Vec::new(),
    };

    bench_block_cache(&mut res);
    bench_des(&mut res);
    bench_ssd_service(&mut res);
    bench_ssd_batch_overlap(&mut res);

    // End-to-end throughput: simulated trace blocks per wall-clock second.
    let wb = Workbench::new(scale, 42);
    let trace = wb.make_trace(&WorkloadSpec::baseline_60g());
    let blocks = trace.stats().blocks as f64;

    let layered = SimConfig::baseline();
    let t0 = Instant::now();
    let r = wb.run_with_trace(&layered, &trace).expect("layered run");
    let layered_wall = t0.elapsed().as_secs_f64();
    assert!(r.metrics.read_ops > 0);
    res.push("layered_sim_ops_per_sec", blocks / layered_wall, "blocks/s");

    // The same run under queue-aware SSD timing: the wall-clock ratio to
    // the flat run is the whole-engine overhead of `flash_timing = ssd`
    // (recorded in PERF.md invariant 7).
    let layered_ssd = SimConfig {
        flash_timing: FlashTiming::Ssd(SsdConfig::auto()),
        ..SimConfig::baseline()
    };
    let t0 = Instant::now();
    let r = wb
        .run_with_trace(&layered_ssd, &trace)
        .expect("layered ssd run");
    let ssd_wall = t0.elapsed().as_secs_f64();
    assert!(r.device.ops() > 0);
    res.push("layered_ssd_sim_ops_per_sec", blocks / ssd_wall, "blocks/s");
    res.push(
        "ssd_timing_overhead_vs_flat",
        ssd_wall / layered_wall.max(1e-9),
        "x",
    );

    // The same run through a mid-run filer outage: the wall-clock ratio to
    // the clean run is the engine cost of the engaged robustness layer
    // (retry/park bookkeeping, recovery drains) on top of the simulation.
    let layered_faulted = SimConfig {
        fault_plan: FaultPlan::parse("filer:outage@40s-60s").expect("spec"),
        ..SimConfig::baseline()
    };
    let t0 = Instant::now();
    let r = wb
        .run_with_trace(&layered_faulted, &trace)
        .expect("faulted run");
    let faulted_wall = t0.elapsed().as_secs_f64();
    assert!(r.robustness.engaged());
    res.push(
        "fault_outage_sim_ops_per_sec",
        blocks / faulted_wall,
        "blocks/s",
    );
    res.push(
        "fault_outage_overhead_vs_clean",
        faulted_wall / layered_wall.max(1e-9),
        "x",
    );

    // The same run with telemetry engaged (10 s unified windows, spans
    // recorded in-memory): the ratio to the plain run is the whole-engine
    // cost of span bookkeeping — PERF.md invariant 12 demands this is pure
    // addition, so the ratio should hover near 1.
    let layered_telemetry = SimConfig {
        telemetry_windows: Some(SimTime::from_micros(10_000_000)),
        ..SimConfig::baseline()
    };
    let t0 = Instant::now();
    let r = wb
        .run_with_trace(&layered_telemetry, &trace)
        .expect("telemetry run");
    let telemetry_wall = t0.elapsed().as_secs_f64();
    assert!(r.telemetry.engaged() && r.telemetry.spans > 0);
    res.push(
        "telemetry_overhead_vs_off",
        telemetry_wall / layered_wall.max(1e-9),
        "x",
    );

    // Span streaming: the same telemetry run also writing one JSON row per
    // op to a file (`--trace-out`) — the sustained span encode+write rate.
    let span_path = std::env::temp_dir().join("fcache_bench_spans.jsonl");
    let layered_streamed = SimConfig {
        trace_out: Some(span_path.clone()),
        ..layered_telemetry
    };
    let t0 = Instant::now();
    let r = wb
        .run_with_trace(&layered_streamed, &trace)
        .expect("span stream run");
    let stream_wall = t0.elapsed().as_secs_f64();
    assert!(r.telemetry.spans > 0);
    res.push(
        "span_stream_ops_per_sec",
        r.telemetry.spans as f64 / stream_wall.max(1e-9),
        "spans/s",
    );
    let _ = std::fs::remove_file(&span_path);

    // Packed-op footprint: the trajectory record of the 16-byte layout vs
    // the seed's 20-byte field-per-flag struct (host + thread + kind enum +
    // file + start + nblocks + warmup bool, 4-byte aligned).
    res.push(
        "trace_bytes_per_op",
        std::mem::size_of::<TraceOp>() as f64,
        "B",
    );
    res.push("trace_bytes_per_op_seed", 20.0, "B");

    // Streamed replay throughput — the zero-copy fast path: a `ByteReader`
    // over the raw FCTRACE1 image forks one cursor per (host, thread) slot
    // and each engine task decodes its records straight out of the archive
    // bytes, with no chunk queues or op buffering in between. This is what
    // `fcsim replay` runs over a mapped archive.
    let mut archive = Vec::new();
    trace.encode(&mut archive).expect("encode trace");
    let scaled_layered = layered.clone().scaled_down(wb.scale());
    // Best-of-3 wall time: the replay engine is deterministic, so repeat
    // variation is pure measurement noise (scheduler, cache state of a
    // shared CI core) and the minimum is the least-contaminated sample.
    let replay_reps = 3;
    let mut replay_wall = f64::MAX;
    for _ in 0..replay_reps {
        let t0 = Instant::now();
        let mut bytes = ByteReader::new(&archive).expect("trace header");
        let r = fcache_bench::run_source(&scaled_layered, &mut bytes).expect("forked replay");
        replay_wall = replay_wall.min(t0.elapsed().as_secs_f64());
        assert!(r.metrics.read_ops > 0);
    }
    res.push(
        "trace_replay_ops_per_sec",
        trace.len() as f64 / replay_wall,
        "ops/s",
    );

    // The chunk-fed fallback for comparison: buffered `TraceReader` decode
    // through the per-slot feed (spill-bounded queues, resident op memory
    // O(chunk)) — the path non-mappable inputs take.
    let mut chunked_wall = f64::MAX;
    for _ in 0..replay_reps {
        let t0 = Instant::now();
        let mut reader = TraceReader::new(archive.as_slice()).expect("trace header");
        let r = fcache_bench::run_source(&scaled_layered, &mut reader).expect("chunked replay");
        chunked_wall = chunked_wall.min(t0.elapsed().as_secs_f64());
        assert!(r.metrics.read_ops > 0);
    }
    res.push(
        "trace_replay_chunked_ops_per_sec",
        trace.len() as f64 / chunked_wall,
        "ops/s",
    );

    // End-to-end file replay through a real memory mapping: archive on
    // disk, `Workload::file` (open → mmap → `ByteReader` → forked cursors),
    // including open/map/header cost.
    let replay_path = std::env::temp_dir().join("fcache_bench_replay.fctrace");
    std::fs::write(&replay_path, &archive).expect("write archive");
    let mut mmap_wall = f64::MAX;
    for _ in 0..replay_reps {
        let t0 = Instant::now();
        let r = fcache_bench::Scenario::new(scaled_layered.clone(), Workload::file(&replay_path))
            .run()
            .expect("mmap replay");
        mmap_wall = mmap_wall.min(t0.elapsed().as_secs_f64());
        assert!(r.metrics.read_ops > 0);
    }
    let _ = std::fs::remove_file(&replay_path);
    res.push(
        "replay_mmap_ops_per_sec",
        trace.len() as f64 / mmap_wall,
        "ops/s",
    );

    let unified = SimConfig {
        arch: Architecture::Unified,
        ..SimConfig::baseline()
    };
    let t0 = Instant::now();
    wb.run_with_trace(&unified, &trace).expect("unified run");
    res.push(
        "unified_sim_ops_per_sec",
        blocks / t0.elapsed().as_secs_f64(),
        "blocks/s",
    );

    // Sweep scaling: the same 4 configurations serial vs parallel.
    let cfgs: Vec<SimConfig> = [0u64, 32, 64, 128]
        .iter()
        .map(|g| {
            SimConfig {
                flash_size: ByteSize::gib(*g),
                ..SimConfig::baseline()
            }
            .scaled_down(scale)
        })
        .collect();
    let t0 = Instant::now();
    for cfg in &cfgs {
        fcache_bench::run_trace(cfg, &trace).expect("serial sweep");
    }
    let serial_wall = t0.elapsed().as_secs_f64();
    res.push("sweep4_serial_wall_s", serial_wall, "s");

    let jobs: Vec<_> = cfgs.iter().map(|cfg| (cfg.clone(), &trace)).collect();
    let t0 = Instant::now();
    let reports = run_sweep(&jobs, None);
    let parallel_wall = t0.elapsed().as_secs_f64();
    assert!(reports.iter().all(|r| r.is_ok()));
    res.push("sweep4_parallel_wall_s", parallel_wall, "s");
    res.push("sweep4_speedup", serial_wall / parallel_wall.max(1e-9), "x");

    // Fully streamed sweep: the same 4 configurations, but each job
    // regenerates its own `TraceStream` instead of borrowing the resident
    // trace — the O(chunk × jobs) sweep mode. Throughput counts every
    // job's ops (generation + simulation per job).
    let spec = WorkloadSpec::baseline_60g();
    let t0 = Instant::now();
    let streamed = Sweep::over(Workload::stream(|| wb.make_stream(&spec)))
        .configs(cfgs.iter().cloned())
        .run();
    let streamed_wall = t0.elapsed().as_secs_f64();
    let reports = streamed.into_reports().expect("streamed sweep");
    assert_eq!(reports.len(), cfgs.len());
    res.push(
        "sweep_streamed_ops_per_sec",
        (trace.len() * cfgs.len()) as f64 / streamed_wall.max(1e-9),
        "ops/s",
    );
    res.push(
        "sweep_workers",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1) as f64,
        "threads",
    );

    // Fleet throughput: 1000 hosts in 100-host cells on shared wires
    // (fan-in 4), one DES job per cell through the in-process fleet path.
    // Deeper scaling than the single-host benches keeps this smoke-speed;
    // the metric is simulated blocks across all cells per wall second.
    let fleet_scale = scale.max(4096);
    let fleet = Fleet::new(
        SimConfig {
            ram_size: ByteSize::gib(8),
            flash_size: ByteSize::gib(32),
            ..SimConfig::baseline()
        },
        FleetSpec {
            hosts: 1000,
            cell_hosts: 100,
            hosts_per_segment: 4,
            workload: WorkloadSpec {
                working_set: ByteSize::gib(32),
                seed: 7,
                ..WorkloadSpec::default()
            },
            scale: fleet_scale,
        },
    );
    let t0 = Instant::now();
    let summary = fleet.run().expect("fleet run").summary();
    let fleet_wall = t0.elapsed().as_secs_f64();
    assert!(summary.hosts == 1000 && summary.queue_waits > 0);
    res.push(
        "fleet_1k_hosts_ops_per_sec",
        (summary.metrics.read_blocks + summary.metrics.write_blocks) as f64 / fleet_wall.max(1e-9),
        "blocks/s",
    );

    // Invariant 13's price tag: a one-host fleet cell is the pre-fleet
    // engine plus per-host metric sinks and the fleet fold, so the wall
    // ratio to the plain run on the same trace should hover near 1.
    let layered_fleet = SimConfig {
        fleet: Some(FleetTopology {
            cell: 0,
            cells: 1,
            host_base: 0,
            fleet_hosts: 1,
            hosts_per_segment: 1,
        }),
        ..SimConfig::baseline()
    };
    let t0 = Instant::now();
    let r = wb
        .run_with_trace(&layered_fleet, &trace)
        .expect("fleet-engaged run");
    let fleet1_wall = t0.elapsed().as_secs_f64();
    assert!(r.fleet.engaged());
    res.push(
        "fleet_overhead_vs_single_host",
        fleet1_wall / layered_wall.max(1e-9),
        "x",
    );

    let out = std::env::var("FCACHE_BENCH_OUT").unwrap_or_else(|_| "BENCH_micro.json".into());
    let json = res.to_json();
    println!("{json}");
    if let Err(e) = std::fs::write(&out, format!("{json}\n")) {
        eprintln!("could not write {out}: {e}");
    } else {
        println!("# json written to {out}");
    }
}
