//! Criterion microbenchmarks for the core data structures and the
//! simulation engine itself (not paper figures — these measure the
//! reproduction's own performance).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use fcache::{run_trace, SimConfig};
use fcache_cache::{BlockCache, UnifiedCache};
use fcache_des::{Resource, Sim, SimTime};
use fcache_device::{SsdConfig, SsdModel};
use fcache_fsmodel::{FsModel, FsModelConfig};
use fcache_trace::{generate, TraceGenConfig};
use fcache_types::{BlockAddr, ByteSize, FileId};

fn bench_lru_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("block_cache");
    g.throughput(Throughput::Elements(1));
    g.bench_function("insert_evict_cycle", |b| {
        let mut cache = BlockCache::new(4096);
        let mut n = 0u32;
        b.iter(|| {
            cache.insert(BlockAddr::new(FileId(0), n), n % 3 == 0);
            n = n.wrapping_add(1);
        });
    });
    g.bench_function("hit_lookup", |b| {
        let mut cache = BlockCache::new(4096);
        for i in 0..4096 {
            cache.insert(BlockAddr::new(FileId(0), i), false);
        }
        let mut n = 0u32;
        b.iter(|| {
            let hit = cache.lookup(BlockAddr::new(FileId(0), n % 4096));
            n = n.wrapping_add(1);
            hit
        });
    });
    g.bench_function("unified_insert", |b| {
        let mut cache = UnifiedCache::new(512, 4096);
        let mut n = 0u32;
        b.iter(|| {
            cache.insert(BlockAddr::new(FileId(0), n), false);
            n = n.wrapping_add(1);
        });
    });
    g.finish();
}

fn bench_des(c: &mut Criterion) {
    let mut g = c.benchmark_group("des");
    g.bench_function("spawn_sleep_chain_1000", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let s = sim.clone();
            sim.spawn(async move {
                for i in 0..1000u64 {
                    s.sleep(SimTime::from_nanos(i % 97 + 1)).await;
                }
            });
            sim.run().unwrap();
            sim.shutdown();
        });
    });
    g.bench_function("resource_contention_100x10", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let r = Resource::new(4);
            for _ in 0..100 {
                let s = sim.clone();
                let r = r.clone();
                sim.spawn(async move {
                    for _ in 0..10 {
                        let _g = r.acquire().await;
                        s.sleep(SimTime::from_nanos(50)).await;
                    }
                });
            }
            sim.run().unwrap();
            sim.shutdown();
        });
    });
    g.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("generators");
    g.sample_size(10);
    g.bench_function("fsmodel_256m", |b| {
        b.iter(|| {
            FsModel::generate(FsModelConfig {
                total_bytes: ByteSize::mib(256),
                seed: 1,
                ..FsModelConfig::default()
            })
        });
    });
    let model = FsModel::generate(FsModelConfig {
        total_bytes: ByteSize::mib(256),
        seed: 1,
        ..FsModelConfig::default()
    });
    g.bench_function("trace_16m_ws", |b| {
        b.iter(|| {
            generate(
                &model,
                TraceGenConfig {
                    working_set: ByteSize::mib(16),
                    seed: 2,
                    ..TraceGenConfig::default()
                },
            )
        });
    });
    g.finish();
}

fn bench_ssd_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("ssd_model");
    g.throughput(Throughput::Elements(1));
    g.bench_function("read", |b| {
        let mut ssd = SsdModel::new(SsdConfig::small(1 << 20, 3));
        let mut lba = 0u64;
        b.iter(|| {
            let t = ssd.read(lba);
            lba = lba.wrapping_add(977);
            t
        });
    });
    g.bench_function("write", |b| {
        let mut ssd = SsdModel::new(SsdConfig::small(1 << 20, 3));
        let mut lba = 0u64;
        b.iter(|| {
            let t = ssd.write(lba);
            lba = lba.wrapping_add(977);
            t
        });
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    let model = FsModel::generate(FsModelConfig {
        total_bytes: ByteSize::mib(128),
        seed: 1,
        ..FsModelConfig::default()
    });
    let trace = generate(
        &model,
        TraceGenConfig {
            working_set: ByteSize::mib(8),
            seed: 2,
            ..TraceGenConfig::default()
        },
    );
    let cfg = SimConfig {
        ram_size: ByteSize::mib(1),
        flash_size: ByteSize::mib(8),
        ..SimConfig::baseline()
    };
    g.throughput(Throughput::Elements(trace.stats().blocks));
    g.bench_function("baseline_sim_8m_ws", |b| {
        b.iter_batched(
            || trace.clone(),
            |t| run_trace(&cfg, &t).unwrap(),
            BatchSize::LargeInput,
        );
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_lru_cache,
    bench_des,
    bench_generators,
    bench_ssd_model,
    bench_end_to_end
);
criterion_main!(benches);
