//! Figure 2: application read and write latency across all 49 RAM × flash
//! writeback-policy combinations for the three architectures (80 GB
//! working set, 8 GB RAM, 64 GB flash).
//!
//! Shape to reproduce (§7.1): "excepting policies that result in
//! synchronous writes to the filer (synchronous or none) the writeback
//! policy does not matter"; the unified architecture posts the lowest read
//! latencies; naive and lookaside write at RAM speed while unified pays
//! ~8/9 of the flash write latency.

use fcache_bench::{
    f, f2, header, run_configs, scale_from_env, shape_check, Architecture, SimConfig, Table,
    Workbench, WorkloadSpec, WritebackPolicy,
};

fn main() {
    let scale = scale_from_env(1024);
    header(
        "Figure 2",
        scale,
        "49 policy combinations × 3 architectures (80 GB WS)",
    );

    let wb = Workbench::new(scale, 42);
    let trace = wb.make_trace(&WorkloadSpec::baseline_80g());

    for arch in Architecture::ALL {
        let mut reads = Table::new(
            &format!("Figure 2 — read latency (µs/block), {arch}"),
            &["ram\\flash", "s", "a", "p1", "p5", "p15", "p30", "n"],
        );
        let mut writes = Table::new(
            &format!("Figure 2 — write latency (µs/block), {arch}"),
            &["ram\\flash", "s", "a", "p1", "p5", "p15", "p30", "n"],
        );
        let mut interior_writes = Vec::new();
        let mut sync_writes = Vec::new();
        // All 49 policy combinations are independent: fan them out as one
        // parallel sweep per architecture instead of 49 serial runs.
        let combos: Vec<(WritebackPolicy, WritebackPolicy)> = WritebackPolicy::ALL
            .into_iter()
            .flat_map(|rp| WritebackPolicy::ALL.into_iter().map(move |fp| (rp, fp)))
            .collect();
        let cfgs: Vec<SimConfig> = combos
            .iter()
            .map(|&(ram_policy, flash_policy)| SimConfig {
                arch,
                ram_policy,
                flash_policy,
                ..SimConfig::baseline()
            })
            .collect();
        let results = run_configs(&wb, &cfgs, &trace);
        for (chunk, ram_policy) in results
            .chunks(WritebackPolicy::ALL.len())
            .zip(WritebackPolicy::ALL)
        {
            let mut rrow = vec![ram_policy.label()];
            let mut wrow = vec![ram_policy.label()];
            for (r, flash_policy) in chunk.iter().zip(WritebackPolicy::ALL) {
                rrow.push(f(r.read_latency_us()));
                wrow.push(f2(r.write_latency_us()));
                // The benign interior (§7.1): both tiers asynchronous-ish —
                // `a` or `pN` — so no app write ever blocks on the filer.
                let async_ish = |p: WritebackPolicy| {
                    matches!(
                        p,
                        WritebackPolicy::AsyncWriteThrough | WritebackPolicy::Periodic(_)
                    )
                };
                // "Policies that result in synchronous writes to the filer":
                // naive needs both tiers write-through; lookaside `s` writes
                // straight to the filer; for unified, either tier's `s`
                // exposes it (writes land in whichever frame is LRU).
                let sync_to_filer = match arch {
                    Architecture::Naive => {
                        ram_policy == WritebackPolicy::WriteThrough
                            && flash_policy == WritebackPolicy::WriteThrough
                    }
                    Architecture::Lookaside => ram_policy == WritebackPolicy::WriteThrough,
                    Architecture::Unified => {
                        ram_policy == WritebackPolicy::WriteThrough
                            || flash_policy == WritebackPolicy::WriteThrough
                    }
                };
                if async_ish(ram_policy) && async_ish(flash_policy) {
                    interior_writes.push(r.write_latency_us());
                } else if sync_to_filer {
                    sync_writes.push(r.write_latency_us());
                }
            }
            reads.row(rrow);
            writes.row(wrow);
            eprint!(".");
        }
        eprintln!();
        reads.emit(&format!("fig2_read_{arch}"));
        writes.emit(&format!("fig2_write_{arch}"));

        let max_interior = interior_writes.iter().cloned().fold(0.0, f64::max);
        let min_sync = sync_writes.iter().cloned().fold(f64::INFINITY, f64::min);
        // Unified pays ~8/9 × 21 µs by design. Lookaside's long-period
        // syncers share the wire with reads, so a small tail of dirty
        // evictions (p30 row) is expected — still an order of magnitude
        // below the synchronous corner.
        let interior_bound = match arch {
            Architecture::Naive => 2.0,
            Architecture::Lookaside => 25.0,
            Architecture::Unified => 30.0,
        };
        shape_check(
            &format!("{arch}: benign policy interior is flat"),
            max_interior < interior_bound,
            format!("max interior write latency {max_interior:.2} µs (bound {interior_bound})"),
        );
        if min_sync.is_finite() {
            shape_check(
                &format!("{arch}: synchronous-to-filer writes are far slower"),
                min_sync > 2.0 * max_interior.max(0.4) && min_sync > 30.0,
                format!("min sync-to-filer write {min_sync:.1} µs vs interior {max_interior:.2}"),
            );
        }
    }
}
