//! Figure 2: application read and write latency across all 49 RAM × flash
//! writeback-policy combinations for the three architectures (80 GB
//! working set, 8 GB RAM, 64 GB flash).
//!
//! Shape to reproduce (§7.1): "excepting policies that result in
//! synchronous writes to the filer (synchronous or none) the writeback
//! policy does not matter"; the unified architecture posts the lowest read
//! latencies; naive and lookaside write at RAM speed while unified pays
//! ~8/9 of the flash write latency.
//!
//! Pipeline shape: all 147 combinations (49 policy pairs × 3
//! architectures) run as ONE sweep over the shared materialized trace,
//! streamed through a tee of one durable JSONL sink
//! (`target/paper-figures/fig2_policy_surface.jsonl` — one row per job,
//! globally unique indices) and a scalar extractor. No report vector is
//! ever materialized.

use fcache_bench::{
    f, f2, figures_dir, header, scale_from_env, shape_check, Architecture, FigSink, SimConfig,
    Sweep, Table, Workbench, Workload, WorkloadSpec, WritebackPolicy,
};

fn main() {
    let scale = scale_from_env(1024);
    header(
        "Figure 2",
        scale,
        "49 policy combinations × 3 architectures (80 GB WS)",
    );

    let wb = Workbench::new(scale, 42);
    let trace = wb.make_trace(&WorkloadSpec::baseline_80g());

    // One flat job list, arch-major: job index =
    // arch_i * 49 + ram_i * 7 + flash_i. Keeping all 147 jobs in a single
    // sweep gives the JSONL globally unique row indices (the row key
    // everywhere else in the pipeline) and the widest fan-out.
    let combos: Vec<(Architecture, WritebackPolicy, WritebackPolicy)> = Architecture::ALL
        .into_iter()
        .flat_map(|arch| {
            WritebackPolicy::ALL.into_iter().flat_map(move |rp| {
                WritebackPolicy::ALL
                    .into_iter()
                    .map(move |fp| (arch, rp, fp))
            })
        })
        .collect();
    let mut sink = FigSink::new("fig2_policy_surface", combos.len());
    let mut sweep = Sweep::over(Workload::trace(&trace));
    for &(arch, ram_policy, flash_policy) in &combos {
        sweep = sweep.config(
            format!("{arch}/r={}/f={}", ram_policy.label(), flash_policy.label()),
            SimConfig {
                arch,
                ram_policy,
                flash_policy,
                ..SimConfig::baseline()
            }
            .scaled_down(wb.scale()),
        );
    }
    let results = sweep.sink(&mut sink).run();
    eprintln!();
    let slots = sink.finish(&results, "figure 2 sweep");
    let per_arch = WritebackPolicy::ALL.len() * WritebackPolicy::ALL.len();

    for (ai, arch) in Architecture::ALL.into_iter().enumerate() {
        let mut reads = Table::new(
            &format!("Figure 2 — read latency (µs/block), {arch}"),
            &["ram\\flash", "s", "a", "p1", "p5", "p15", "p30", "n"],
        );
        let mut writes = Table::new(
            &format!("Figure 2 — write latency (µs/block), {arch}"),
            &["ram\\flash", "s", "a", "p1", "p5", "p15", "p30", "n"],
        );
        let mut interior_writes = Vec::new();
        let mut sync_writes = Vec::new();

        for (ri, ram_policy) in WritebackPolicy::ALL.into_iter().enumerate() {
            let mut rrow = vec![ram_policy.label()];
            let mut wrow = vec![ram_policy.label()];
            for (fi, flash_policy) in WritebackPolicy::ALL.into_iter().enumerate() {
                let (read_us, write_us) =
                    slots[ai * per_arch + ri * WritebackPolicy::ALL.len() + fi];
                rrow.push(f(read_us));
                wrow.push(f2(write_us));
                // The benign interior (§7.1): both tiers asynchronous-ish —
                // `a` or `pN` — so no app write ever blocks on the filer.
                let async_ish = |p: WritebackPolicy| {
                    matches!(
                        p,
                        WritebackPolicy::AsyncWriteThrough | WritebackPolicy::Periodic(_)
                    )
                };
                // "Policies that result in synchronous writes to the filer":
                // naive needs both tiers write-through; lookaside `s` writes
                // straight to the filer; for unified, either tier's `s`
                // exposes it (writes land in whichever frame is LRU).
                let sync_to_filer = match arch {
                    Architecture::Naive => {
                        ram_policy == WritebackPolicy::WriteThrough
                            && flash_policy == WritebackPolicy::WriteThrough
                    }
                    Architecture::Lookaside => ram_policy == WritebackPolicy::WriteThrough,
                    Architecture::Unified => {
                        ram_policy == WritebackPolicy::WriteThrough
                            || flash_policy == WritebackPolicy::WriteThrough
                    }
                };
                if async_ish(ram_policy) && async_ish(flash_policy) {
                    interior_writes.push(write_us);
                } else if sync_to_filer {
                    sync_writes.push(write_us);
                }
            }
            reads.row(rrow);
            writes.row(wrow);
        }
        reads.emit(&format!("fig2_read_{arch}"));
        writes.emit(&format!("fig2_write_{arch}"));

        let max_interior = interior_writes.iter().cloned().fold(0.0, f64::max);
        let min_sync = sync_writes.iter().cloned().fold(f64::INFINITY, f64::min);
        // Unified pays ~8/9 × 21 µs by design. Lookaside's long-period
        // syncers share the wire with reads, so a small tail of dirty
        // evictions (p30 row) is expected — still an order of magnitude
        // below the synchronous corner.
        let interior_bound = match arch {
            Architecture::Naive => 2.0,
            Architecture::Lookaside => 25.0,
            Architecture::Unified => 30.0,
        };
        shape_check(
            &format!("{arch}: benign policy interior is flat"),
            max_interior < interior_bound,
            format!("max interior write latency {max_interior:.2} µs (bound {interior_bound})"),
        );
        if min_sync.is_finite() {
            shape_check(
                &format!("{arch}: synchronous-to-filer writes are far slower"),
                min_sync > 2.0 * max_interior.max(0.4) && min_sync > 30.0,
                format!("min sync-to-filer write {min_sync:.1} µs vs interior {max_interior:.2}"),
            );
        }
    }
    println!(
        "# all 147 rows (schema-versioned JSONL): {}",
        figures_dir().join("fig2_policy_surface.jsonl").display()
    );
}
