//! Figure 6: application latency with very small RAM caches (60 GB and
//! 80 GB working sets, 64 GB flash).
//!
//! §7.5: "The no-RAM configuration does not work well, but it is
//! surprising how well a relatively small (e.g., 64 MB) RAM cache
//! performs. If we use the asynchronous write-through policy, a tiny
//! 256 KB is sufficient as a write buffer. For the smallest caches the
//! periodic syncer does not run often enough, so the RAM cache fills with
//! dirty blocks and performance drops."
//!
//! Default scale 1/64 keeps the paper's 256 KB point resolvable (one 4 KB
//! scaled block = 256 KB paper-equivalent).

use fcache_bench::{
    f, f2, header, run_configs, scale_from_env, shape_check, ByteSize, SimConfig, Table, Workbench,
    WorkloadSpec, WritebackPolicy,
};

fn main() {
    let scale = scale_from_env(64);
    header(
        "Figure 6",
        scale,
        "latency vs RAM cache size (policies a and p1)",
    );

    let wb = Workbench::new(scale, 42);
    // Paper-scale RAM sizes: Figure 6's x-axis (0, 64K .. 4G) plus the 8G
    // baseline. Sizes that scale below one block are floored to one block
    // and marked.
    let sizes: [(u64, &str); 9] = [
        (0, "0"),
        (64 << 10, "64K"),
        (256 << 10, "256K"),
        (1 << 20, "1M"),
        (16 << 20, "16M"),
        (256 << 20, "256M"),
        (1 << 30, "1G"),
        (4u64 << 30, "4G"),
        (8u64 << 30, "8G"),
    ];

    for ws in [60u64, 80] {
        let spec = WorkloadSpec {
            working_set: ByteSize::gib(ws),
            seed: ws,
            ..WorkloadSpec::default()
        };
        let trace = wb.make_trace(&spec);
        let mut t = Table::new(
            &format!("Figure 6 — latency vs RAM size ({ws} GB working set)"),
            &["ram", "read_p1", "read_a", "write_p1", "write_a"],
        );
        let mut tiny_a = (0.0, 0.0);
        let mut full_a = (0.0, 0.0);
        for (bytes, label) in sizes {
            let mut scaled = bytes / scale;
            if bytes > 0 && scaled < 4096 {
                scaled = 4096; // floor: one scaled block
            }
            let mut row = vec![label.to_string()];
            let mut reads = Vec::new();
            let mut writes = Vec::new();
            let cfgs: Vec<SimConfig> = [
                WritebackPolicy::Periodic(1),
                WritebackPolicy::AsyncWriteThrough,
            ]
            .into_iter()
            .map(|policy| SimConfig {
                ram_size: ByteSize::bytes_exact(scaled * scale),
                ram_policy: policy,
                ..SimConfig::baseline()
            })
            .collect();
            for r in run_configs(&wb, &cfgs, &trace) {
                reads.push(r.read_latency_us());
                writes.push(r.write_latency_us());
            }
            row.push(f(reads[0]));
            row.push(f(reads[1]));
            row.push(f2(writes[0]));
            row.push(f2(writes[1]));
            t.row(row);
            if label == "256K" {
                tiny_a = (reads[1], writes[1]);
            }
            if label == "8G" {
                full_a = (reads[1], writes[1]);
            }
            eprint!(".");
        }
        eprintln!();
        t.note("paper: with policy (a), 256 KB of RAM performs comparably to 8 GB.");
        t.emit(&format!("fig6_small_ram_{ws}g"));

        shape_check(
            &format!("{ws} GB WS: 256 KB + async ≈ 8 GB reads"),
            tiny_a.0 < 1.4 * full_a.0,
            format!("256K read {:.0} µs vs 8G read {:.0} µs", tiny_a.0, full_a.0),
        );
        shape_check(
            &format!("{ws} GB WS: 256 KB + async writes stay cheap"),
            tiny_a.1 < 25.0,
            format!("256K write {:.2} µs (flash write is 21 µs)", tiny_a.1),
        );
    }
}
