//! Figure 11: cache-consistency invalidations and read latency as a
//! function of the write percentage (two hosts sharing one working set —
//! the worst case).
//!
//! Shape to reproduce (§7.9): with a 64 GB flash the fraction of block
//! writes requiring invalidation is far higher than with RAM-only caches
//! (the shared working set stays resident at both hosts), and read latency
//! grows with the write percentage because invalidated blocks must be
//! re-fetched from the filer.

use fcache_bench::{
    f, header, run_configs, scale_from_env, shape_check, ByteSize, SimConfig, Table, Workbench,
    WorkloadSpec,
};

fn main() {
    let scale = scale_from_env(1024);
    header(
        "Figure 11",
        scale,
        "invalidations and read latency vs write percentage (2 hosts)",
    );

    let wb = Workbench::new(scale, 42);
    let pcts = [10u32, 20, 30, 40, 50, 60, 70, 80, 90];

    let mut t = Table::new(
        "Figure 11 — invalidations (% of block writes) and read latency (µs)",
        &[
            "write_pct",
            "inval_noflash60",
            "inval_flash60",
            "inval_noflash80",
            "inval_flash80",
            "read_flash60",
            "read_flash80",
        ],
    );
    let mut flash_inval = Vec::new();
    let mut noflash_inval = Vec::new();
    let mut flash_reads = Vec::new();
    for pct in pcts {
        let mut row = vec![pct.to_string()];
        let mut reads = Vec::new();
        for ws in [60u64, 80] {
            let spec = WorkloadSpec {
                working_set: ByteSize::gib(ws),
                write_fraction: f64::from(pct) / 100.0,
                hosts: 2,
                ws_count: 1,
                seed: ws * 1000 + u64::from(pct),
                ..WorkloadSpec::default()
            };
            let trace = wb.make_trace(&spec);
            let results = run_configs(
                &wb,
                &[
                    SimConfig {
                        flash_size: ByteSize::ZERO,
                        ..SimConfig::baseline()
                    },
                    SimConfig::baseline(),
                ],
                &trace,
            );
            let (nf, fl) = (&results[0], &results[1]);
            row.push(f(nf.invalidation_pct()));
            row.push(f(fl.invalidation_pct()));
            reads.push(fl.read_latency_us());
            if ws == 60 {
                flash_inval.push(fl.invalidation_pct());
                noflash_inval.push(nf.invalidation_pct());
                flash_reads.push(fl.read_latency_us());
            }
        }
        // Reorder: inval columns first, then the two read columns.
        let r = vec![
            row[0].clone(),
            row[1].clone(),
            row[2].clone(),
            row[3].clone(),
            row[4].clone(),
            f(reads[0]),
            f(reads[1]),
        ];
        t.row(r);
        eprint!(".");
    }
    eprintln!();
    t.note("worst case: both hosts share the entire working set (§7.9).");
    t.emit("fig11_inval_write_pct");

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    shape_check(
        "flash invalidation rate far above RAM-only",
        mean(&flash_inval) > 1.5 * mean(&noflash_inval),
        format!(
            "mean {:.0}% vs {:.0}%",
            mean(&flash_inval),
            mean(&noflash_inval)
        ),
    );
    shape_check(
        "read latency grows with write percentage",
        flash_reads.last().unwrap() > flash_reads.first().unwrap(),
        format!(
            "60 GB flash reads {:.0} µs @10% → {:.0} µs @90%",
            flash_reads[0],
            flash_reads.last().unwrap()
        ),
    );
}
