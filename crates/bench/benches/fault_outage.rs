//! Fault outage: the Figure 2 policy comparison rerun with a mid-run
//! filer outage, to test whether the paper's policy rankings survive
//! disruption.
//!
//! A 200 s filer outage is injected into the measured half of the run
//! (queue degraded policy: cache hits keep serving, misses and flushes
//! park until recovery). The questions: do all jobs still finish with
//! every operation accounted for, does the robustness layer engage on
//! every one, and do the §7.1 orderings — synchronous-to-filer policies
//! write slowest, unified reads fastest — hold under the outage as they
//! do on the healthy runs?
//!
//! Run with: `cargo bench --bench fault_outage`
//! (`FCACHE_SCALE=256` for a heavier workload).

use fcache::DegradedPolicy;
use fcache_bench::{
    f, f2, header, run_configs, scale_from_env, shape_check, Architecture, SimConfig, Table,
    Workbench, WorkloadSpec, WritebackPolicy,
};
use fcache_types::FaultPlan;

fn main() {
    let scale = scale_from_env(1024);
    header(
        "Fault outage",
        scale,
        "7 RAM policies × 3 architectures, healthy vs 200 s filer outage (80 GB WS)",
    );

    let wb = Workbench::new(scale, 42);
    let trace = wb.make_trace(&WorkloadSpec::baseline_80g());

    // The outage sits in the measured half of the ~2300 s-equivalent run
    // (paper-scale clause; divides by the time scale with everything
    // else). Queue policy: the availability-first default.
    let plan = FaultPlan::parse("filer:outage@1500s-1700s").expect("spec");

    let combos: Vec<(Architecture, WritebackPolicy)> = Architecture::ALL
        .into_iter()
        .flat_map(|arch| WritebackPolicy::ALL.into_iter().map(move |rp| (arch, rp)))
        .collect();
    let mut healthy_cfgs = Vec::new();
    let mut faulted_cfgs = Vec::new();
    for &(arch, ram_policy) in &combos {
        let base = SimConfig {
            arch,
            ram_policy,
            ..SimConfig::baseline()
        };
        healthy_cfgs.push(base.clone());
        let mut faulted = base;
        faulted.fault_plan = plan.clone();
        faulted.robustness.degraded = DegradedPolicy::Queue;
        faulted_cfgs.push(faulted);
    }
    let healthy = run_configs(&wb, &healthy_cfgs, &trace);
    let faulted = run_configs(&wb, &faulted_cfgs, &trace);

    let per_arch = WritebackPolicy::ALL.len();
    let mut table = Table::new(
        "Fault outage — healthy vs 200 s filer outage (queue policy)",
        &[
            "arch/ram",
            "read us",
            "read+out",
            "write us",
            "write+out",
            "queued",
            "degr%",
        ],
    );
    for (i, &(arch, rp)) in combos.iter().enumerate() {
        let (h, o) = (&healthy[i], &faulted[i]);
        table.row(vec![
            format!("{arch}/{}", rp.label()),
            f(h.read_latency_us()),
            f(o.read_latency_us()),
            f2(h.write_latency_us()),
            f2(o.write_latency_us()),
            o.robustness.queued_ops.to_string(),
            format!("{:.1}", 100.0 * o.robustness.degraded_fraction(o.end_time)),
        ]);
    }
    table.emit("fault_outage");

    // Every faulted job engaged the robustness layer, and the queue
    // policy lost nothing: post-warmup op tallies match the healthy runs
    // exactly (parking delays ops, it never drops them).
    shape_check(
        "outage engages the robustness layer on every job",
        faulted
            .iter()
            .all(|r| r.robustness.engaged() && r.robustness.degraded_time.as_nanos() > 0),
        format!(
            "min queued ops {}",
            faulted
                .iter()
                .map(|r| r.robustness.queued_ops)
                .min()
                .unwrap_or(0)
        ),
    );
    shape_check(
        "queue policy loses no operations",
        healthy.iter().zip(&faulted).all(|(h, o)| {
            h.metrics.read_ops == o.metrics.read_ops
                && h.metrics.write_ops == o.metrics.write_ops
                && o.robustness.failed_ops == 0
        }),
        format!(
            "{} jobs, op tallies equal healthy vs faulted, 0 failed",
            faulted.len()
        ),
    );

    // §7.1 rankings under disruption. Lookaside and unified expose a
    // synchronous-to-filer corner through the RAM tier's `s` policy
    // (naive's corner needs the flash tier too, which stays `a` here);
    // that corner must still write slowest with the outage in place.
    for (ai, arch) in Architecture::ALL.into_iter().enumerate() {
        if arch == Architecture::Naive {
            continue;
        }
        let writes: Vec<f64> = (0..per_arch)
            .map(|ri| faulted[ai * per_arch + ri].write_latency_us())
            .collect();
        let sync_i = WritebackPolicy::ALL
            .iter()
            .position(|&p| p == WritebackPolicy::WriteThrough)
            .expect("s in policy list");
        let worst = writes.iter().cloned().fold(0.0, f64::max);
        shape_check(
            &format!("{arch}: synchronous-to-filer corner still writes slowest under outage"),
            writes[sync_i] >= worst,
            format!("s = {:.2} µs, max = {worst:.2} µs", writes[sync_i]),
        );
    }
    // Unified posts the lowest mean read latency healthy; the outage
    // must not flip that architecture ranking.
    let mean_read = |reports: &[fcache_bench::SimReport], ai: usize| {
        (0..per_arch)
            .map(|ri| reports[ai * per_arch + ri].read_latency_us())
            .sum::<f64>()
            / per_arch as f64
    };
    for reports in [&healthy, &faulted] {
        let naive = mean_read(reports, 0);
        let unified = mean_read(reports, 2);
        shape_check(
            "unified still reads fastest",
            unified < naive,
            format!("unified {unified:.1} µs vs naive {naive:.1} µs"),
        );
    }
}
