//! Figure 12: cache-consistency invalidations and read latency as a
//! function of the working-set size (two hosts sharing one working set,
//! 30 % writes).
//!
//! Shape to reproduce (§7.9): "for workloads that fit in flash, the
//! percentage of writes requiring invalidation is high … The invalidation
//! rate drops off for out-of-cache workloads, but neither as quickly nor
//! as significantly as with the smaller RAM cache."

use fcache_bench::{
    f, header, run_configs, scale_from_env, shape_check, ByteSize, SimConfig, Table, Workbench,
    WorkloadSpec, WS_SWEEP_GIB,
};

fn main() {
    let scale = scale_from_env(1024);
    header(
        "Figure 12",
        scale,
        "invalidations and read latency vs working-set size (2 hosts)",
    );

    let wb = Workbench::new(scale, 42);
    let mut t = Table::new(
        "Figure 12 — invalidations (% of block writes) and read latency (µs)",
        &[
            "ws_gib",
            "inval_noflash",
            "inval_flash64",
            "read_noflash",
            "read_flash64",
        ],
    );
    let mut fit_inval = Vec::new();
    let mut out_inval = Vec::new();
    let mut noflash_inval_all = Vec::new();
    for ws in WS_SWEEP_GIB {
        let spec = WorkloadSpec {
            working_set: ByteSize::gib(ws),
            hosts: 2,
            ws_count: 1,
            seed: ws,
            ..WorkloadSpec::default()
        };
        let trace = wb.make_trace(&spec);
        let results = run_configs(
            &wb,
            &[
                SimConfig {
                    flash_size: ByteSize::ZERO,
                    ..SimConfig::baseline()
                },
                SimConfig::baseline(),
            ],
            &trace,
        );
        let (nf, fl) = (&results[0], &results[1]);
        t.row(vec![
            ws.to_string(),
            f(nf.invalidation_pct()),
            f(fl.invalidation_pct()),
            f(nf.read_latency_us()),
            f(fl.read_latency_us()),
        ]);
        if ws <= 60 {
            fit_inval.push(fl.invalidation_pct());
        } else if ws >= 160 {
            out_inval.push(fl.invalidation_pct());
        }
        noflash_inval_all.push(nf.invalidation_pct());
        eprint!(".");
    }
    eprintln!();
    t.note("worst case: both hosts share the entire working set (§7.9).");
    t.emit("fig12_inval_ws");

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    shape_check(
        "in-flash workloads: high invalidation rate",
        mean(&fit_inval) > 40.0,
        format!(
            "mean invalidation for WS ≤ 60 GiB: {:.0}%",
            mean(&fit_inval)
        ),
    );
    shape_check(
        "invalidations drop for out-of-cache workloads but stay elevated",
        mean(&out_inval) < mean(&fit_inval) && mean(&out_inval) > mean(&noflash_inval_all),
        format!(
            "out-of-cache {:.0}% < in-cache {:.0}%, still above no-flash {:.0}%",
            mean(&out_inval),
            mean(&fit_inval),
            mean(&noflash_inval_all)
        ),
    );
}
