//! Figure 9: application read latency for a range of flash read times
//! (write time proportional), all three architectures, 60 GB and 80 GB
//! working sets.
//!
//! Shape to reproduce (§7.7): "application latency scales linearly with
//! the flash latency"; when the working set fits in flash the architecture
//! makes little difference, and when it falls out the unified
//! architecture's larger effective size wins. The leftmost point (0 µs)
//! "represents the potential performance of phase-change memory".

use fcache_bench::{
    f, header, run_configs, scale_from_env, shape_check, Architecture, ByteSize, SimConfig, Table,
    Workbench, WorkloadSpec,
};
use fcache_des::SimTime;
use fcache_device::FlashModel;

fn main() {
    let scale = scale_from_env(1024);
    header(
        "Figure 9",
        scale,
        "read latency vs flash read time (writes proportional)",
    );

    let wb = Workbench::new(scale, 42);
    let times_us = [0u64, 11, 22, 44, 66, 88, 100];

    let mut t = Table::new(
        "Figure 9 — read latency (µs/block)",
        &[
            "flash_read_us",
            "lookaside80",
            "naive80",
            "unified80",
            "lookaside60",
            "naive60",
            "unified60",
        ],
    );
    // series[arch][ws_index][time_index]
    let mut series = vec![[Vec::new(), Vec::new()]; 3];
    let traces: Vec<_> = [80u64, 60]
        .iter()
        .map(|ws| {
            let spec = WorkloadSpec {
                working_set: ByteSize::gib(*ws),
                seed: *ws,
                ..WorkloadSpec::default()
            };
            wb.make_trace(&spec)
        })
        .collect();
    for us in times_us {
        let mut row = vec![us.to_string()];
        let cfgs: Vec<SimConfig> = [
            Architecture::Lookaside,
            Architecture::Naive,
            Architecture::Unified,
        ]
        .into_iter()
        .map(|arch| SimConfig {
            arch,
            flash_model: FlashModel::with_read_time_proportional(SimTime::from_micros(us)),
            ..SimConfig::baseline()
        })
        .collect();
        for (wi, trace) in traces.iter().enumerate() {
            for (ai, r) in run_configs(&wb, &cfgs, trace).into_iter().enumerate() {
                row.push(f(r.read_latency_us()));
                series[ai][wi].push(r.read_latency_us());
            }
        }
        t.row(row);
        eprint!(".");
    }
    eprintln!();
    t.note("leftmost row (0 µs) models phase-change memory.");
    t.emit("fig9_flash_timing");

    // Linearity: naive/80GB — midpoint of 0 and 88 within 15% of the 44 point.
    let naive80 = &series[1][0];
    let i0 = 0;
    let i44 = times_us.iter().position(|t| *t == 44).unwrap();
    let i88 = times_us.iter().position(|t| *t == 88).unwrap();
    let mid = (naive80[i0] + naive80[i88]) / 2.0;
    shape_check(
        "latency scales linearly with flash read time",
        (naive80[i44] - mid).abs() / mid < 0.15,
        format!(
            "naive/80G at 0/44/88 µs = {:.0}/{:.0}/{:.0} µs (midpoint {mid:.0})",
            naive80[i0], naive80[i44], naive80[i88]
        ),
    );
    // Unified advantage at 80 GB (falls out of flash), smaller at 60 GB.
    let at88 = |ai: usize, wi: usize| series[ai][wi][i88];
    shape_check(
        "unified wins when the WS falls out of flash",
        at88(2, 0) < at88(1, 0),
        format!(
            "80G at 88 µs: unified {:.0} vs naive {:.0}",
            at88(2, 0),
            at88(1, 0)
        ),
    );
}
