//! Figure 3: read latency vs working-set size, separating the structural
//! effect of effective cache size from the latency of the cache medium.
//!
//! Three configurations (§7.1):
//! - `8G RAM + 64G flash, naive` — the real system;
//! - `8G RAM + 64G RAM-speed flash, naive` — same structure, flash as fast
//!   as RAM (isolates the structural effect);
//! - `8G RAM + 56G RAM-speed flash, unified` — 64 GB *effective* unified.
//!
//! Shape to reproduce: the two RAM-latency configurations with equal
//! effective size (64 GB) track each other; the real-flash line sits above
//! them by the flash read latency's contribution.

use fcache_bench::{
    f, header, run_configs, scale_from_env, shape_check, Architecture, ByteSize, SimConfig, Table,
    Workbench, WorkloadSpec, WS_SWEEP_GIB,
};
use fcache_des::SimTime;
use fcache_device::{FlashModel, RamModel};

fn main() {
    let scale = scale_from_env(1024);
    header(
        "Figure 3",
        scale,
        "effective cache size vs cache-medium latency",
    );

    let wb = Workbench::new(scale, 42);

    let real = SimConfig::baseline();
    let ram_speed_flash = SimConfig {
        flash_model: FlashModel {
            read: RamModel::default().read,
            write: RamModel::default().write,
            persistent: false,
        },
        ..SimConfig::baseline()
    };
    let unified_56 = SimConfig {
        arch: Architecture::Unified,
        flash_size: ByteSize::gib(56),
        flash_model: FlashModel {
            read: SimTime::from_nanos(400),
            write: SimTime::from_nanos(400),
            persistent: false,
        },
        ..SimConfig::baseline()
    };

    let mut t = Table::new(
        "Figure 3 — read latency (µs/block)",
        &[
            "ws_gib",
            "8G+64G_flash_naive",
            "8G+64G_ramspeed_naive",
            "8G+56G_ramspeed_unified",
        ],
    );
    let mut structural_gap = Vec::new();
    let mut medium_gap = Vec::new();
    for ws in WS_SWEEP_GIB {
        let spec = WorkloadSpec {
            working_set: ByteSize::gib(ws),
            seed: ws,
            ..WorkloadSpec::default()
        };
        let trace = wb.make_trace(&spec);
        let cfgs = [real.clone(), ram_speed_flash.clone(), unified_56.clone()];
        let results = run_configs(&wb, &cfgs, &trace);
        let (a, b, c) = (
            results[0].read_latency_us(),
            results[1].read_latency_us(),
            results[2].read_latency_us(),
        );
        // The smallest working sets have too few filer reads for the
        // Bernoulli fast/slow draws to average out; exclude them from the
        // shape statistics (they are still printed).
        if ws >= 20 {
            structural_gap.push((b - c).abs() / b.max(c));
            medium_gap.push(a - b);
        }
        t.row(vec![ws.to_string(), f(a), f(b), f(c)]);
        eprint!(".");
    }
    eprintln!();
    t.note("paper: the two RAM-speed 64G-effective lines are identical; the");
    t.note("difference to the top line is the flash medium's latency.");
    t.emit("fig3_effective_size");

    let mean_struct = structural_gap.iter().sum::<f64>() / structural_gap.len() as f64;
    shape_check(
        "equal effective sizes track each other",
        mean_struct < 0.15,
        format!(
            "mean relative gap between RAM-speed lines {:.1}%",
            100.0 * mean_struct
        ),
    );
    shape_check(
        "real flash sits above RAM-speed flash",
        medium_gap.iter().all(|g| *g > 0.0),
        format!("per-point medium gaps (µs): {medium_gap:.0?}"),
    );
}
