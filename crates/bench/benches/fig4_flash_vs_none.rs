//! Figure 4: read latency as a function of working-set size for flash
//! cache sizes {none, 32 GB, 64 GB, 128 GB} (8 GB RAM).
//!
//! Shape to reproduce (§7.2): "even when the working set far exceeds the
//! flash size, the flash improves performance significantly"; read latency
//! improves dramatically while the working set fits in the flash, with the
//! knee at the flash size; the RAM hit rate is small in all configurations
//! while the flash hit rate grows with the flash ("from 0 … to 47% in the
//! 128 GB configuration"); writes sit at the RAM write latency everywhere.

use fcache_bench::{
    f, header, run_configs, scale_from_env, shape_check, ByteSize, SimConfig, Table, Workbench,
    WorkloadSpec, WS_SWEEP_GIB,
};

fn main() {
    let scale = scale_from_env(1024);
    header(
        "Figure 4",
        scale,
        "read latency vs working-set size across flash sizes",
    );

    let wb = Workbench::new(scale, 42);
    let flash_sizes = [0u64, 32, 64, 128];

    let mut t = Table::new(
        "Figure 4 — read latency (µs/block)",
        &["ws_gib", "no_flash", "32G", "64G", "128G"],
    );
    let mut hits = Table::new(
        "§7.2 — hit rates (%)",
        &[
            "ws_gib",
            "ram_hit",
            "flash_hit_32G",
            "flash_hit_64G",
            "flash_hit_128G",
        ],
    );
    let mut latencies = vec![Vec::new(); flash_sizes.len()];
    let mut write_lat_max: f64 = 0.0;
    for ws in WS_SWEEP_GIB {
        let spec = WorkloadSpec {
            working_set: ByteSize::gib(ws),
            seed: ws,
            ..WorkloadSpec::default()
        };
        let trace = wb.make_trace(&spec);
        let mut row = vec![ws.to_string()];
        let mut hrow = vec![ws.to_string()];
        let mut ram_hit = 0.0;
        let cfgs: Vec<SimConfig> = flash_sizes
            .iter()
            .map(|fs| SimConfig {
                flash_size: ByteSize::gib(*fs),
                ..SimConfig::baseline()
            })
            .collect();
        for (i, (fs, r)) in flash_sizes
            .iter()
            .zip(run_configs(&wb, &cfgs, &trace))
            .enumerate()
        {
            row.push(f(r.read_latency_us()));
            latencies[i].push(r.read_latency_us());
            write_lat_max = write_lat_max.max(r.write_latency_us());
            if *fs == 0 {
                ram_hit = 100.0 * r.ram_hit_rate();
            } else {
                hrow.push(f(100.0 * r.flash_hit_rate_of_all_reads()));
            }
        }
        hrow.insert(1, f(ram_hit));
        t.row(row);
        hits.row(hrow);
        eprint!(".");
    }
    eprintln!();
    t.note("paper: no-flash plateaus near 900 µs; flash curves knee at the flash size.");
    t.emit("fig4_read_latency");
    hits.note("paper: RAM hit rate small (3.4%); flash hit up to 47% at 128 GB.");
    hits.emit("fig4_hit_rates");

    // Shape checks.
    let last = WS_SWEEP_GIB.len() - 1;
    shape_check(
        "no-flash plateau near 900 µs",
        (latencies[0][last] - 900.0).abs() < 150.0,
        format!(
            "no-flash at {} GiB = {:.0} µs",
            WS_SWEEP_GIB[last], latencies[0][last]
        ),
    );
    // Larger flash is monotonically better (or equal) at large WS.
    let at_320 = WS_SWEEP_GIB.iter().position(|w| *w == 320).unwrap();
    shape_check(
        "bigger flash reads faster at 320 GiB",
        latencies[1][at_320] < latencies[0][at_320]
            && latencies[2][at_320] < latencies[1][at_320]
            && latencies[3][at_320] < latencies[2][at_320],
        format!(
            "none/32/64/128 = {:.0}/{:.0}/{:.0}/{:.0} µs",
            latencies[0][at_320], latencies[1][at_320], latencies[2][at_320], latencies[3][at_320]
        ),
    );
    // Flash helps even when the WS far exceeds it.
    shape_check(
        "flash helps at 640 GiB >> 64 GiB flash",
        latencies[2][last] < 0.9 * latencies[0][last],
        format!(
            "64G {:.0} µs vs none {:.0} µs",
            latencies[2][last], latencies[0][last]
        ),
    );
    shape_check(
        "writes at RAM speed throughout",
        write_lat_max < 1.0,
        format!("max write latency {write_lat_max:.2} µs"),
    );
}
