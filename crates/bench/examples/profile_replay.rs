//! Scratch profiling harness: replays the bench workload repeatedly under a
//! SIGPROF flat sampler (raw instruction pointers, resolved offline with
//! `addr2line`) so hot functions are visible without perf/gdb.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use fcache_bench::{run_source, run_trace, SimConfig, Workbench, WorkloadSpec};
use fcache_types::TraceReader;

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static ALLOC_BYTES: AtomicUsize = AtomicUsize::new(0);

const SIZE_CLASSES: usize = 64;
static SIZE_HIST: [AtomicUsize; SIZE_CLASSES] = [const { AtomicUsize::new(0) }; SIZE_CLASSES];

fn note_size(sz: usize) {
    // Exact size buckets for small sizes, then power-of-two classes.
    let idx = if sz < 48 {
        sz
    } else {
        48 + (63 - (sz as u64).leading_zeros() as usize).min(15)
    };
    SIZE_HIST[idx.min(SIZE_CLASSES - 1)].fetch_add(1, Ordering::Relaxed);
}

// Caller capture: frame-pointer walk (build with
// RUSTFLAGS="-Cforce-frame-pointers=yes") recording up to 4 caller IPs for
// allocations in the size band [TRACK_LO, TRACK_HI).
static TRACK_LO: AtomicUsize = AtomicUsize::new(0);
static TRACK_HI: AtomicUsize = AtomicUsize::new(0);
const MAX_SITES: usize = 1_000_000;
static mut SITES: [[u64; 4]; MAX_SITES] = [[0; 4]; MAX_SITES];
static NSITES: AtomicUsize = AtomicUsize::new(0);

#[inline(never)]
unsafe fn record_site() {
    let mut fp: u64;
    std::arch::asm!("mov {}, rbp", out(reg) fp);
    let i = NSITES.fetch_add(1, Ordering::Relaxed);
    if i >= MAX_SITES {
        return;
    }
    let mut out = [0u64; 4];
    for slot in out.iter_mut() {
        if fp == 0 || !fp.is_multiple_of(8) {
            break;
        }
        let ret = *((fp + 8) as *const u64);
        if ret == 0 {
            break;
        }
        *slot = ret;
        fp = *(fp as *const u64);
    }
    SITES[i] = out;
}

unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size(), Ordering::Relaxed);
        note_size(layout.size());
        let lo = TRACK_LO.load(Ordering::Relaxed);
        if lo != 0 && layout.size() >= lo && layout.size() < TRACK_HI.load(Ordering::Relaxed) {
            record_site();
        }
        std::alloc::System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        std::alloc::System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new, Ordering::Relaxed);
        std::alloc::System.realloc(ptr, layout, new)
    }
}

#[global_allocator]
static GA: CountingAlloc = CountingAlloc;

const MAX_SAMPLES: usize = 4_000_000;
static mut SAMPLES: [u64; MAX_SAMPLES] = [0; MAX_SAMPLES];
static NSAMPLES: AtomicUsize = AtomicUsize::new(0);

#[cfg(target_os = "linux")]
mod prof {
    use super::{MAX_SAMPLES, NSAMPLES, SAMPLES};
    use std::sync::atomic::Ordering;

    #[repr(C)]
    struct Sigaction {
        sa_sigaction: usize,
        sa_mask: [u64; 16],
        sa_flags: i32,
        sa_restorer: usize,
    }

    #[repr(C)]
    struct Timeval {
        tv_sec: i64,
        tv_usec: i64,
    }

    #[repr(C)]
    struct Itimerval {
        it_interval: Timeval,
        it_value: Timeval,
    }

    extern "C" {
        fn sigaction(signum: i32, act: *const Sigaction, old: *mut Sigaction) -> i32;
        fn setitimer(which: i32, new: *const Itimerval, old: *mut Itimerval) -> i32;
    }

    const SIGPROF: i32 = 27;
    const ITIMER_PROF: i32 = 2;
    const SA_SIGINFO: i32 = 4;
    const SA_RESTART: i32 = 0x10000000;

    unsafe extern "C" fn handler(_sig: i32, _info: *mut u8, uctx: *mut u8) {
        // x86_64 glibc ucontext_t: uc_mcontext.gregs starts at offset 40,
        // REG_RIP = 16.
        let rip = *(uctx.add(40 + 16 * 8) as *const u64);
        let i = NSAMPLES.fetch_add(1, Ordering::Relaxed);
        if i < MAX_SAMPLES {
            SAMPLES[i] = rip;
        }
    }

    pub fn start() {
        unsafe {
            let act = Sigaction {
                sa_sigaction: handler as *const () as usize,
                sa_mask: [0; 16],
                sa_flags: SA_SIGINFO | SA_RESTART,
                sa_restorer: 0,
            };
            assert_eq!(sigaction(SIGPROF, &act, std::ptr::null_mut()), 0);
            // 1 kHz profiling timer.
            let it = Itimerval {
                it_interval: Timeval {
                    tv_sec: 0,
                    tv_usec: 1000,
                },
                it_value: Timeval {
                    tv_sec: 0,
                    tv_usec: 1000,
                },
            };
            assert_eq!(setitimer(ITIMER_PROF, &it, std::ptr::null_mut()), 0);
        }
    }

    pub fn handler_addr() -> usize {
        handler as *const () as usize
    }

    pub fn stop() {
        unsafe {
            let it = Itimerval {
                it_interval: Timeval {
                    tv_sec: 0,
                    tv_usec: 0,
                },
                it_value: Timeval {
                    tv_sec: 0,
                    tv_usec: 0,
                },
            };
            setitimer(ITIMER_PROF, &it, std::ptr::null_mut());
        }
    }
}

fn main() {
    let scale: u64 = std::env::var("PROF_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    let wb = Workbench::new(scale, 42);
    let trace = wb.make_trace(&WorkloadSpec::baseline_60g());
    let mut archive = Vec::new();
    trace.encode(&mut archive).expect("encode");
    let cfg = SimConfig::baseline().scaled_down(scale);

    let reps = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5usize);
    let profile = std::env::args().nth(2).as_deref() == Some("prof");
    if let Ok(band) = std::env::var("PROF_ALLOC_BAND") {
        let (lo, hi) = band.split_once(':').expect("LO:HI");
        TRACK_LO.store(lo.parse().expect("lo"), Ordering::Relaxed);
        TRACK_HI.store(hi.parse().expect("hi"), Ordering::Relaxed);
    }

    let mut events = 0u64;
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let b0 = ALLOC_BYTES.load(Ordering::Relaxed);
    let mut cursor = f64::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        let r = run_trace(&cfg, &trace).expect("run_trace");
        cursor = cursor.min(t.elapsed().as_secs_f64());
        assert!(r.metrics.read_ops > 0);
        events = r.events;
    }
    let allocs = (ALLOCS.load(Ordering::Relaxed) - a0) as f64 / reps as f64;
    let bytes = (ALLOC_BYTES.load(Ordering::Relaxed) - b0) as f64 / reps as f64;
    println!(
        "events/op = {:.1}  blocks/op = {:.1}  allocs/op = {:.1}  alloc B/op = {:.0}",
        events as f64 / trace.len() as f64,
        trace.stats().blocks as f64 / trace.len() as f64,
        allocs / trace.len() as f64,
        bytes / trace.len() as f64,
    );
    let mut hist: Vec<(usize, usize)> = SIZE_HIST
        .iter()
        .enumerate()
        .map(|(i, c)| (i, c.load(Ordering::Relaxed)))
        .filter(|&(_, c)| c > 0)
        .collect();
    hist.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    for (i, c) in hist.iter().take(12) {
        let label = if *i < 48 {
            format!("{i} B")
        } else {
            format!("2^{}..", i - 48)
        };
        println!(
            "  size {label:>8}: {c} allocs ({:.1}/op)",
            *c as f64 / (reps * trace.len()) as f64
        );
    }
    let nsites = NSITES.load(Ordering::Relaxed).min(MAX_SITES);
    if nsites > 0 {
        let mut out = String::new();
        unsafe {
            for site in SITES[..nsites].iter() {
                use std::fmt::Write as _;
                let _ = writeln!(
                    out,
                    "{:#x} {:#x} {:#x} {:#x}",
                    site[0], site[1], site[2], site[3]
                );
            }
        }
        std::fs::write("/tmp/alloc_sites.txt", out).expect("write sites");
        let maps = std::fs::read_to_string("/proc/self/maps").unwrap_or_default();
        std::fs::write("/tmp/profile_maps.txt", maps).expect("write maps");
        println!(
            "wrote {nsites} alloc sites; handler at {:#x}",
            prof::handler_addr()
        );
    }

    if profile {
        #[cfg(target_os = "linux")]
        {
            prof::start();
            let t0 = Instant::now();
            while t0.elapsed().as_secs_f64() < 10.0 {
                run_trace(&cfg, &trace).expect("run_trace");
            }
            prof::stop();
            let n = NSAMPLES.load(Ordering::Relaxed).min(MAX_SAMPLES);
            let mut out = String::new();
            unsafe {
                for &s in &SAMPLES[..n] {
                    out.push_str(&format!("{s:#x}\n"));
                }
            }
            std::fs::write("/tmp/profile_ips.txt", out).expect("write samples");
            let maps = std::fs::read_to_string("/proc/self/maps").unwrap_or_default();
            std::fs::write("/tmp/profile_maps.txt", maps).expect("write maps");
            println!("wrote {n} samples to /tmp/profile_ips.txt");
            println!("handler at {:#x}", prof::handler_addr());
        }
        return;
    }

    let mut streamed = f64::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        let mut reader = TraceReader::new(archive.as_slice()).expect("header");
        let r = run_source(&cfg, &mut reader).expect("run_source");
        streamed = streamed.min(t.elapsed().as_secs_f64());
        assert!(r.metrics.read_ops > 0);
    }

    println!(
        "ops={} cursor={:.1}ms ({:.0} ops/s)  streamed={:.1}ms ({:.0} ops/s)",
        trace.len(),
        cursor * 1e3,
        trace.len() as f64 / cursor,
        streamed * 1e3,
        trace.len() as f64 / streamed,
    );
}
