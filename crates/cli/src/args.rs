//! Minimal flag parser (no external dependencies).
//!
//! Supports `--name value` and `--flag` boolean forms. Unknown flags are
//! errors; every command documents its accepted flags.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed flags: name → raw value (empty string for bare boolean flags).
#[derive(Debug, Default)]
pub struct Flags {
    values: BTreeMap<String, String>,
}

/// Error from argument parsing.
#[derive(Debug)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Flags {
    /// Parses `--name value` / `--flag` pairs, validating against the
    /// allowed flag list (`bool_flags` take no value).
    pub fn parse(
        args: &[String],
        allowed: &[&str],
        bool_flags: &[&str],
    ) -> Result<Flags, ArgError> {
        let mut values = BTreeMap::new();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            let name = arg
                .strip_prefix("--")
                .ok_or_else(|| ArgError(format!("expected a --flag, got {arg:?}")))?;
            if !allowed.contains(&name) && !bool_flags.contains(&name) {
                return Err(ArgError(format!("unknown flag --{name}")));
            }
            if bool_flags.contains(&name) {
                values.insert(name.to_string(), String::new());
                i += 1;
            } else {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| ArgError(format!("--{name} requires a value")))?;
                values.insert(name.to_string(), value.clone());
                i += 2;
            }
        }
        Ok(Flags { values })
    }

    /// Raw string value of a flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(|s| s.as_str())
    }

    /// True if a boolean flag was given.
    pub fn has(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    /// Parses a flag value via `FromStr`, with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError>
    where
        T::Err: fmt::Display,
    {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse::<T>()
                .map_err(|e| ArgError(format!("invalid value for --{name}: {e}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_pairs_and_bools() {
        let f = Flags::parse(
            &argv(&["--ws", "80G", "--persistent"]),
            &["ws"],
            &["persistent"],
        )
        .unwrap();
        assert_eq!(f.get("ws"), Some("80G"));
        assert!(f.has("persistent"));
        assert!(!f.has("ws-count"));
    }

    #[test]
    fn rejects_unknown_and_missing_value() {
        assert!(Flags::parse(&argv(&["--bogus", "1"]), &["ws"], &[]).is_err());
        assert!(Flags::parse(&argv(&["--ws"]), &["ws"], &[]).is_err());
        assert!(Flags::parse(&argv(&["ws", "80G"]), &["ws"], &[]).is_err());
    }

    #[test]
    fn get_parsed_defaults_and_errors() {
        let f = Flags::parse(&argv(&["--scale", "64"]), &["scale"], &[]).unwrap();
        assert_eq!(f.get_parsed("scale", 1u64).unwrap(), 64);
        assert_eq!(f.get_parsed("missing", 7u64).unwrap(), 7);
        let bad = Flags::parse(&argv(&["--scale", "x"]), &["scale"], &[]).unwrap();
        assert!(bad.get_parsed("scale", 1u64).is_err());
    }
}
