//! Subcommand implementations.

use std::error::Error;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

use fcache::{
    chrome_trace, read_rows, read_span_rows, Architecture, DecodedRow, DegradedPolicy, FlashTiming,
    HistogramSnapshot, JsonlSink, LatencyHistogram, MemorySink, ResultSink, Scenario, SimConfig,
    SpanRow, Sweep, Workbench, Workload, WorkloadSpec, WritebackPolicy, REPORT_SCHEMA,
};
use fcache_device::{SimTime, SsdConfig};
use fcache_fleet::{worker_part_path, Fleet, FleetSpec, FleetSummary};
use fcache_types::{stream_stats, ByteSize, FaultPlan, Phase, TraceReader, TraceSource};

use crate::args::{ArgError, Flags};

type CmdResult = Result<(), Box<dyn Error>>;

const USAGE: &str = "\
fcsim — client-side flash-cache simulator (USENIX ATC '13 reproduction)

USAGE:
  fcsim run [flags]          run one configuration against a generated workload
  fcsim sweep [flags]        run a config sweep in parallel (see SWEEP FLAGS)
  fcsim fleet [flags]        run a fleet of hosts as cells on a shared backend
                             and merge fleet-level percentiles (see FLEET
                             FLAGS); --procs P fans the cells out across P
                             worker OS processes
  fcsim report FILE          summarize a JSONL results file written by
                             `sweep --out` (schema check + metrics table)
  fcsim table1               print the Table 1 timing parameters
  fcsim gen-trace [flags]    generate a trace file (--out required)
  fcsim trace FILE           analyze a span stream written by --trace-out:
                             per-phase totals/percentiles and the top N
                             slowest ops (--top N, default 10); --export-chrome
                             OUT writes Chrome trace-event JSON (load it in
                             chrome://tracing or https://ui.perfetto.dev)
  fcsim trace-stats --in F   summarize a trace file (streamed, O(chunk) memory)
  fcsim trace-dump --in F    print trace records as text (--limit N, default 20)
  fcsim replay [flags]       run a configuration against a trace file (--in),
                             streamed through chunked reads
  fcsim help                 this text

SWEEP FLAGS (in addition to the common/workload flags):
  --arch-list a,b,...              architectures to sweep     [naive]
  --flash-list S1,S2,...           flash sizes to sweep       [0,32G,64G,128G]
  --threads N                      worker threads (0 = auto)  [0]
  --jobs N                         alias for --threads
  --streamed                       regenerate the workload per job instead of
                                   sharing one materialized trace: sweep
                                   memory drops to O(chunk x jobs)
  --serial                         run serially (baseline for timing)
  --out FILE                       stream each finished job to FILE as one
                                   schema-versioned JSON row per line,
                                   flushed per row (durable results)
  --resume                         with --out: skip jobs whose rows are
                                   already in FILE (tolerates the torn last
                                   line a killed run leaves) and append the
                                   rest — the final row set matches an
                                   uninterrupted run

FLEET FLAGS (in addition to the common/workload flags):
  --hosts N                        total fleet hosts          [1000]
  --cell-hosts N                   hosts per cell — one cell is one
                                   deterministic DES job and one result
                                   row                        [100]
  --fanin N                        hosts sharing each half-duplex uplink
                                   (queuing on the shared wire) [4]
  --procs P                        worker OS processes; cells are dealt
                                   round-robin across workers [1]
  --threads N                      worker threads per process (0 = auto) [0]
  --out FILE                       merged per-cell rows; worker K streams to
                                   FILE.K and the coordinator merges the
                                   parts in cell order. The merged FILE is
                                   byte-identical for any --procs P.
  --resume                         with --out: finish only the cells missing
                                   from surviving FILE.K parts, then remerge
  --worker K                       internal: run as worker K of --procs
                                   (the coordinator spawns these)
  Fleet runs default to --scale 4096; per-cell seeds and workloads are
  derived from --seed, so results do not depend on --procs or --threads.

COMMON FLAGS (run / replay):
  --arch naive|lookaside|unified   cache architecture        [naive]
  --ram SIZE                       RAM cache size            [8G]
  --flash SIZE                     flash cache size          [64G]
  --ram-policy s|a|pN|n            RAM writeback policy      [p1]
  --flash-policy s|a|pN|n          flash writeback policy    [a]
  --prefetch RATE                  filer fast-read rate      [0.9]
  --persistent                     persistent (recoverable) flash metadata
  --duplex                         full-duplex network segments
  --flash-timing flat|ssd          flash device timing model [flat]
  --ssd-capacity SIZE              SSD device capacity       [auto: flash-sized]
  --ssd-read-base MICROS           SSD base read service time  [52]
  --ssd-write-base MICROS          SSD mean write service time [21]
  --scale N                        divide all byte sizes by N [64]
  --seed N                         RNG seed                  [42]
  --fault SPEC                     inject faults (run / sweep / replay):
                                   clauses `target:kind@window` joined by `;`
                                   with target filer|net|net-up|net-down|device
                                   |shard<k>|shard*, kind outage|slowx<f>|err<p>,
                                   window <start>-<end> (paper-scale, e.g.
                                   40s-60s) or ~<count>x<len>/<gap> episodes
  --degraded queue|failfast|strict reads that hit a filer outage: park until
                                   recovery, fail fast, or fail the run [queue]
  --shards K                       shard the remote tier across K filers [1]
  --replicas R                     replicate each block on R shards (reads
                                   serve from any live replica, writes ack
                                   all live replicas)              [1]
  --hedge MICROS                   hedge remote reads: race a second replica
                                   if the first is silent for MICROS
                                   (requires --replicas >= 2)   [off]
  --windows DUR                    collect unified telemetry windows of DUR
                                   (paper-scale, e.g. 10s): hit rate, dirty
                                   ratio, queue depth, retries, degraded
                                   time, per-shard availability     [off]
  --trace-out FILE                 stream one JSON span per measured op to
                                   FILE (per-phase latency attribution;
                                   analyze with `fcsim trace`). In a sweep
                                   each job writes FILE.<index>     [off]

  `--flash-timing ssd` services every flash op through a bounded NCQ-style
  queue in front of the behavioral SSD model (FTL map-cache locality, fill
  and wear penalties) instead of the flat Table 1 latencies; the --ssd-*
  overrides require it.

WORKLOAD FLAGS (run / gen-trace):
  --ws SIZE                        working-set size (paper scale) [80G]
  --write-pct P                    write percentage          [30]
  --hosts N                        number of hosts           [1]
  --ws-count N                     distinct working sets     [1]
  --skip-warmup                    drop the warmup half (crash-at-start)

Sizes accept 4096, 256K, 8G, 1.5G forms. At --scale N every byte size
(model, working set, caches) is divided by N; latencies are unchanged, so
curve shapes match paper scale (DESIGN.md §4).";

/// Dispatches a command line.
pub fn dispatch(argv: &[String]) -> CmdResult {
    match argv.first().map(|s| s.as_str()) {
        None | Some("help") | Some("--help") | Some("-h") => {
            println!("{USAGE}");
            Ok(())
        }
        Some("run") => cmd_run(&argv[1..]),
        Some("sweep") => cmd_sweep(&argv[1..]),
        Some("fleet") => cmd_fleet(&argv[1..]),
        Some("report") => cmd_report(&argv[1..]),
        Some("table1") => cmd_table1(),
        Some("gen-trace") => cmd_gen_trace(&argv[1..]),
        Some("trace") => cmd_trace(&argv[1..]),
        Some("trace-stats") => cmd_trace_stats(&argv[1..]),
        Some("trace-dump") => cmd_trace_dump(&argv[1..]),
        Some("replay") => cmd_replay(&argv[1..]),
        Some(other) => Err(Box::new(ArgError(format!(
            "unknown command {other:?}; try `fcsim help`"
        )))),
    }
}

const CFG_FLAGS: &[&str] = &[
    "arch",
    "ram",
    "flash",
    "ram-policy",
    "flash-policy",
    "prefetch",
    "scale",
    "seed",
    "ws",
    "write-pct",
    "hosts",
    "ws-count",
    "in",
    "out",
    "limit",
    "arch-list",
    "flash-list",
    "jobs",
    "threads",
    "flash-timing",
    "ssd-capacity",
    "ssd-read-base",
    "ssd-write-base",
    "fault",
    "degraded",
    "shards",
    "replicas",
    "hedge",
    "windows",
    "trace-out",
    "cell-hosts",
    "fanin",
    "procs",
    "worker",
];
const CFG_BOOLS: &[&str] = &[
    "persistent",
    "duplex",
    "skip-warmup",
    "serial",
    "streamed",
    "resume",
];

fn config_from(flags: &Flags) -> Result<SimConfig, ArgError> {
    let mut cfg = SimConfig::baseline();
    cfg.arch = flags.get_parsed("arch", Architecture::Naive)?;
    cfg.ram_size = flags.get_parsed("ram", ByteSize::gib(8))?;
    cfg.flash_size = flags.get_parsed("flash", ByteSize::gib(64))?;
    cfg.ram_policy = flags.get_parsed("ram-policy", WritebackPolicy::Periodic(1))?;
    cfg.flash_policy = flags.get_parsed("flash-policy", WritebackPolicy::AsyncWriteThrough)?;
    let prefetch: f64 = flags.get_parsed("prefetch", 0.9)?;
    if !(0.0..=1.0).contains(&prefetch) {
        return Err(ArgError("--prefetch must be in [0,1]".into()));
    }
    cfg.filer.fast_read_rate = prefetch;
    cfg.flash_model.persistent = flags.has("persistent");
    cfg.duplex_network = flags.has("duplex");
    cfg.seed = flags.get_parsed("seed", 42u64)?;
    cfg.flash_timing = flash_timing_from(flags)?;
    if let Some(spec) = flags.get("fault") {
        cfg.fault_plan = FaultPlan::parse(spec).map_err(|e| ArgError(format!("--fault: {e}")))?;
    }
    if let Some(label) = flags.get("degraded") {
        cfg.robustness.degraded =
            DegradedPolicy::parse(label).map_err(|e| ArgError(format!("--degraded: {e}")))?;
    }
    cfg.shards = flags.get_parsed("shards", 1u16)?;
    if cfg.shards == 0 {
        return Err(ArgError("--shards must be at least 1".into()));
    }
    // An out-of-range shard clause would only surface as a panic deep in
    // the run; catch it here as an ordinary flag error.
    for clause in &cfg.fault_plan.clauses {
        if let fcache_types::FaultTarget::Shard(Some(k)) = clause.target {
            if k >= cfg.shards {
                return Err(ArgError(format!(
                    "--fault: clause targets shard{k} but --shards is {}",
                    cfg.shards
                )));
            }
        }
    }
    cfg.replicas = flags.get_parsed("replicas", 1u16)?;
    if cfg.replicas == 0 || cfg.replicas > cfg.shards {
        return Err(ArgError(format!(
            "--replicas must be in 1..={} (one per distinct shard), got {}",
            cfg.shards, cfg.replicas
        )));
    }
    if let Some(raw) = flags.get("hedge") {
        if cfg.replicas < 2 {
            return Err(ArgError(
                "--hedge requires --replicas >= 2 (a hedge needs a second replica)".into(),
            ));
        }
        let us: f64 = raw
            .parse()
            .map_err(|e| ArgError(format!("invalid value for --hedge: {e}")))?;
        if !us.is_finite() || us <= 0.0 {
            return Err(ArgError("--hedge must be positive microseconds".into()));
        }
        cfg.hedge = Some(SimTime::from_nanos((us * 1000.0).round() as u64));
    }
    if let Some(raw) = flags.get("windows") {
        let ns =
            fcache_types::parse_time_ns(raw).map_err(|e| ArgError(format!("--windows: {e}")))?;
        if ns == 0 {
            return Err(ArgError("--windows must be a positive duration".into()));
        }
        cfg.telemetry_windows = Some(SimTime::from_nanos(ns));
    }
    if let Some(path) = flags.get("trace-out") {
        cfg.trace_out = Some(path.into());
    }
    Ok(cfg)
}

/// Parses the device timing selector and its `--ssd-*` overrides.
fn flash_timing_from(flags: &Flags) -> Result<FlashTiming, ArgError> {
    let mode = flags.get("flash-timing").unwrap_or("flat");
    let overrides = ["ssd-capacity", "ssd-read-base", "ssd-write-base"];
    match mode {
        "flat" => {
            if let Some(given) = overrides.iter().find(|f| flags.get(f).is_some()) {
                return Err(ArgError(format!("--{given} requires --flash-timing ssd")));
            }
            Ok(FlashTiming::Flat)
        }
        "ssd" => {
            let mut sc = SsdConfig::auto();
            if let Some(raw) = flags.get("ssd-capacity") {
                let size: ByteSize = raw
                    .parse()
                    .map_err(|e| ArgError(format!("invalid value for --ssd-capacity: {e}")))?;
                if size.blocks() == 0 {
                    return Err(ArgError(
                        "--ssd-capacity must be at least one 4K block".into(),
                    ));
                }
                // Fit, don't just set: the FTL region size and map-cache
                // coverage must follow the device size or locality behavior
                // silently disappears for small devices.
                sc = sc.fit_capacity(size.blocks());
            }
            for (flag, slot) in [
                ("ssd-read-base", &mut sc.read_base),
                ("ssd-write-base", &mut sc.write_base),
            ] {
                if let Some(raw) = flags.get(flag) {
                    let us: f64 = raw
                        .parse()
                        .map_err(|e| ArgError(format!("invalid value for --{flag}: {e}")))?;
                    if !us.is_finite() || us <= 0.0 {
                        return Err(ArgError(format!("--{flag} must be positive microseconds")));
                    }
                    *slot = SimTime::from_nanos((us * 1000.0).round() as u64);
                }
            }
            Ok(FlashTiming::Ssd(sc))
        }
        other => Err(ArgError(format!(
            "--flash-timing must be flat or ssd, got {other:?}"
        ))),
    }
}

fn spec_from(flags: &Flags) -> Result<WorkloadSpec, ArgError> {
    let write_pct: u32 = flags.get_parsed("write-pct", 30u32)?;
    if write_pct > 100 {
        return Err(ArgError("--write-pct must be 0..=100".into()));
    }
    Ok(WorkloadSpec {
        working_set: flags.get_parsed("ws", ByteSize::gib(80))?,
        write_fraction: f64::from(write_pct) / 100.0,
        hosts: flags.get_parsed("hosts", 1u16)?,
        ws_count: flags.get_parsed("ws-count", 1usize)?,
        skip_warmup: flags.has("skip-warmup"),
        seed: flags.get_parsed("seed", 42u64)?,
    })
}

fn cmd_run(args: &[String]) -> CmdResult {
    let flags = Flags::parse(args, CFG_FLAGS, CFG_BOOLS)?;
    let scale: u64 = flags.get_parsed("scale", 64u64)?;
    let cfg = config_from(&flags)?;
    let spec = spec_from(&flags)?;
    let wb = Workbench::new(scale, cfg.seed);
    eprintln!(
        "model: {} files / {} bytes at 1/{scale} scale; ws {} (scaled {})",
        wb.model().file_count(),
        wb.model().total_bytes(),
        spec.working_set,
        spec.working_set.scaled_down(scale),
    );
    eprintln!("flash timing: {}", cfg.flash_timing.describe());
    if cfg.remote_engaged() {
        eprintln!(
            "remote tier: {} shard(s) x {} replica(s){}",
            cfg.shards,
            cfg.replicas,
            match cfg.hedge {
                Some(d) => format!(", hedged reads after {d}"),
                None => ", no hedging".into(),
            }
        );
    }
    if !cfg.fault_plan.is_empty() {
        eprintln!(
            "fault plan: {} (degraded: {})",
            cfg.fault_plan.describe(),
            cfg.robustness.degraded.label()
        );
    }
    // One scenario over a streamed workload: generation feeds the
    // simulator in bounded chunks, so run memory is O(cache + chunk)
    // regardless of the trace volume.
    let report = wb.scenario(&cfg, &spec).run()?;
    print!("{report}");
    println!(
        "read latency       {:.1} us/block",
        report.read_latency_us()
    );
    println!(
        "write latency      {:.2} us/block",
        report.write_latency_us()
    );
    Ok(())
}

fn ensure_unique<T: PartialEq + std::fmt::Display>(list: &[T], flag: &str) -> Result<(), ArgError> {
    for (i, v) in list.iter().enumerate() {
        if list[..i].contains(v) {
            return Err(ArgError(format!("--{flag} contains duplicate {v}")));
        }
    }
    Ok(())
}

fn parse_list<T: std::str::FromStr>(raw: &str, what: &str) -> Result<Vec<T>, ArgError>
where
    T::Err: std::fmt::Display,
{
    raw.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.trim()
                .parse::<T>()
                .map_err(|e| ArgError(format!("invalid {what} {s:?}: {e}")))
        })
        .collect()
}

/// Runs a (architecture × flash size) sweep against one generated workload
/// through the [`Sweep`] builder: a shared materialized trace by default,
/// or per-job regenerated streams with `--streamed`.
fn cmd_sweep(args: &[String]) -> CmdResult {
    let flags = Flags::parse(args, CFG_FLAGS, CFG_BOOLS)?;
    let scale: u64 = flags.get_parsed("scale", 64u64)?;
    let base = config_from(&flags)?;
    let spec = spec_from(&flags)?;
    let archs: Vec<Architecture> = parse_list(
        flags
            .get("arch-list")
            .or_else(|| flags.get("arch"))
            .unwrap_or("naive"),
        "architecture",
    )?;
    // A bare --flash narrows the sweep to that one size; --flash-list wins
    // when both are given.
    let flash_sizes: Vec<ByteSize> = parse_list(
        flags
            .get("flash-list")
            .or_else(|| flags.get("flash"))
            .unwrap_or("0,32G,64G,128G"),
        "size",
    )?;
    if archs.is_empty() || flash_sizes.is_empty() {
        return Err(Box::new(ArgError(
            "--arch-list / --flash-list must name at least one value".into(),
        )));
    }
    // Duplicate axis entries would produce duplicate job labels, which
    // break label-keyed results (resume refuses them with a library
    // assert); reject them here as ordinary flag errors.
    ensure_unique(&archs, "arch-list")?;
    ensure_unique(&flash_sizes, "flash-list")?;
    // --threads is the builder-facing name; --jobs stays as an alias.
    let threads: usize = match flags.get("threads") {
        Some(_) => flags.get_parsed("threads", 0usize)?,
        None => flags.get_parsed("jobs", 0usize)?,
    };
    let workers = if flags.has("serial") { 1 } else { threads };

    let wb = Workbench::new(scale, base.seed);
    let mut cfgs: Vec<SimConfig> = Vec::new();
    let mut labels: Vec<(Architecture, ByteSize)> = Vec::new();
    for arch in &archs {
        for fs in &flash_sizes {
            cfgs.push(
                SimConfig {
                    arch: *arch,
                    flash_size: *fs,
                    ..base.clone()
                }
                .scaled_down(scale),
            );
            labels.push((*arch, *fs));
        }
    }
    // A shared --trace-out path would interleave every job's span rows in
    // one file; give each job its own stream, suffixed by job index.
    if let Some(base_path) = &base.trace_out {
        for (i, cfg) in cfgs.iter_mut().enumerate() {
            cfg.trace_out = Some(format!("{}.{i}", base_path.display()).into());
        }
    }

    let out = flags.get("out");
    if flags.has("resume") && out.is_none() {
        return Err(Box::new(ArgError("--resume requires --out FILE".into())));
    }
    let jobs = cfgs.len();

    // Job labels carry the full workload identity (ws/write-pct/seed,
    // plus hosts/cold when off-baseline), not just arch/flash: resume
    // matches rows by label, and a label that omitted the workload would
    // let a results file from a different --ws/--seed satisfy this sweep
    // with stale rows.
    let spec_label = spec.label();
    let job_labels: Vec<String> = labels
        .iter()
        .map(|(arch, fs)| format!("{}/{} {spec_label}", arch.name(), fs))
        .collect();

    // Every finished job streams through a sink: a durable JSONL file
    // (--out; flushed per row, so a killed sweep resumes with --resume) or
    // an in-memory collector. Reports are never held as a vector. The
    // sinks — and the resume skip set — are prepared before the workload,
    // both for borrow ordering and so a fully-resumed sweep never pays
    // for trace generation.
    let mut jsonl = None;
    let mut memory = MemorySink::new();
    let mut skip: Vec<String> = Vec::new();
    match out {
        Some(path) if flags.has("resume") => {
            // One decode pass: JsonlSink::resume truncates any torn tail
            // and returns the surviving rows, whose serialized configs
            // are checked against the jobs they would skip — resuming
            // against a file produced by different flags is an error, not
            // a silent pile of stale rows.
            let (sink, rows) = JsonlSink::resume(path)?;
            for row in &rows {
                let Some(job) = job_labels
                    .iter()
                    .position(|label| *label == row.label)
                    .map(|i| &cfgs[i])
                else {
                    // A label this sweep would never produce means the
                    // file belongs to a different sweep (other workload
                    // flags, other grid); appending would mix two runs'
                    // rows in one artifact.
                    return Err(format!(
                        "{path}: row {:?} is not part of this sweep; refusing to \
                         resume — use a new --out file",
                        row.label
                    )
                    .into());
                };
                let want = fcache::results::config_to_json(job);
                if row.config != want {
                    return Err(format!(
                        "{path}: row {:?} was produced by a different configuration \
                         (file: {}, requested: {}); refusing to resume — use a new \
                         --out file",
                        row.label,
                        row.config.to_string(),
                        want.to_string(),
                    )
                    .into());
                }
            }
            if !rows.is_empty() {
                eprintln!(
                    "# resuming: {} of {jobs} rows already in {path}",
                    rows.len()
                );
            }
            skip = rows.into_iter().map(|r| r.label).collect();
            jsonl = Some(sink);
        }
        Some(path) => jsonl = Some(JsonlSink::create(path)?),
        None => {}
    }

    // The workload axis: one shared materialized trace (zero-copy across
    // jobs, O(trace) resident) or a per-job regenerated stream
    // (O(chunk × jobs) resident — nothing is ever materialized). A fully
    // resumed sweep runs nothing, so it takes the lazy streamed form and
    // skips trace generation entirely.
    let all_resumed = job_labels.iter().all(|l| skip.contains(l));
    let trace;
    let workload = if flags.has("streamed") || all_resumed {
        wb.workload(&spec)
    } else {
        trace = wb.make_trace(&spec);
        Workload::trace(&trace)
    };
    // Diagnostics go to stderr like the timing footer, keeping stdout a
    // clean one-header table for scripts.
    if all_resumed {
        eprintln!("# workload: all jobs resumed; nothing to generate or run");
    } else {
        eprintln!("# workload: {}", workload.describe());
    }

    let t0 = std::time::Instant::now();
    let mut sweep = Sweep::over(workload).threads(workers).skip_labels(skip);
    for (label, cfg) in job_labels.iter().zip(cfgs.iter()) {
        sweep = sweep.config(label.clone(), cfg.clone());
    }
    let sink: &mut dyn ResultSink = match &mut jsonl {
        Some(sink) => sink,
        None => &mut memory,
    };
    let results = sweep.sink(sink).run();
    let wall = t0.elapsed();
    // A failing job names its config (index + label) instead of
    // unwinding through a positional unwrap.
    if let Some(err) = results.first_error() {
        return Err(Box::new(err));
    }
    if let Some(err) = results.sink_error() {
        return Err(format!("results sink failed: {err}").into());
    }
    let skipped = results.skipped();

    // The printed table reads from the same rows the sink received — for
    // --out, decoded back from the file (so what you see is exactly what
    // the durable artifact holds, resumed rows included).
    let mut rows: Vec<DecodedRow> = match out {
        Some(path) => read_rows(path)?,
        None => memory
            .into_rows()
            .into_iter()
            .map(|r| DecodedRow {
                index: r.index,
                label: r.label,
                config: fcache::results::config_to_json(&r.config),
                report: r.report,
            })
            .collect(),
    };
    rows.sort_by_key(|r| r.index);
    print_rows_table(&rows);
    if let Some(path) = out {
        eprintln!("# {} rows in {path} (schema {REPORT_SCHEMA})", rows.len());
    }
    eprintln!(
        "# {} configs in {:.2}s ({}{})",
        jobs,
        wall.as_secs_f64(),
        if workers == 1 {
            "serial".to_string()
        } else {
            format!(
                "parallel, {} workers",
                if workers == 0 {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                } else {
                    workers
                }
                .min(jobs.max(1))
            )
        },
        if skipped > 0 {
            format!("; {skipped} resumed, {} run", jobs - skipped)
        } else {
            String::new()
        }
    );
    Ok(())
}

/// Runs a fleet of hosts as deterministic cells against a shared backend,
/// optionally fanned out across worker OS processes.
///
/// Three modes share one entry point:
/// - no `--out`: run every cell in this process and print the summary;
/// - `--out` (coordinator): run the cells (in-process at `--procs 1`,
///   else by spawning `--worker K` children of this same binary), then
///   merge the per-worker part files into the canonical cell-ordered
///   FILE — byte-identical for any process count;
/// - `--out --worker K` (internal): run worker K's cells into FILE.K.
fn cmd_fleet(args: &[String]) -> CmdResult {
    let flags = Flags::parse(args, CFG_FLAGS, CFG_BOOLS)?;
    // Paper-scale fleets are huge; default deeper scaling than run/sweep.
    let scale: u64 = flags.get_parsed("scale", 4096u64)?;
    let base = config_from(&flags)?;
    // In a fleet, --hosts is the fleet size; the per-cell host count in
    // the workload template is derived by the plan, so reuse spec_from's
    // parse and override the default.
    let template = spec_from(&flags)?;
    let hosts: u32 = match flags.get("hosts") {
        Some(_) => u32::from(template.hosts),
        None => 1000,
    };
    let cell_hosts: u16 = flags.get_parsed("cell-hosts", 100u16)?;
    let fanin: u16 = flags.get_parsed("fanin", 4u16)?;
    for (flag, v) in [
        ("hosts", u64::from(hosts)),
        ("cell-hosts", u64::from(cell_hosts)),
        ("fanin", u64::from(fanin)),
    ] {
        if v == 0 {
            return Err(Box::new(ArgError(format!("--{flag} must be at least 1"))));
        }
    }
    let procs: u32 = flags.get_parsed("procs", 1u32)?;
    if procs == 0 {
        return Err(Box::new(ArgError("--procs must be at least 1".into())));
    }
    let threads: usize = match flags.get("threads") {
        Some(_) => flags.get_parsed("threads", 0usize)?,
        None => flags.get_parsed("jobs", 0usize)?,
    };
    let out = flags.get("out");
    if flags.has("resume") && out.is_none() {
        return Err(Box::new(ArgError("--resume requires --out FILE".into())));
    }

    let fleet = Fleet::new(
        base,
        FleetSpec {
            hosts,
            cell_hosts,
            hosts_per_segment: fanin,
            workload: template,
            scale,
        },
    )
    .threads(threads);
    let plan = fleet.plan();

    // Worker mode: run this worker's cells into the part file and exit.
    if flags.get("worker").is_some() {
        let worker: u32 = flags.get_parsed("worker", 0u32)?;
        if worker >= procs {
            return Err(Box::new(ArgError(format!(
                "--worker {worker} must be below --procs {procs}"
            ))));
        }
        let out = out.ok_or_else(|| ArgError("--worker requires --out FILE".into()))?;
        let r = fleet.run_worker(Path::new(out), procs, worker, flags.has("resume"))?;
        eprintln!(
            "# worker {worker}/{procs}: {} cells ({} run, {} resumed) -> {}",
            r.cells,
            r.completed,
            r.resumed,
            worker_part_path(Path::new(out), worker).display()
        );
        return Ok(());
    }

    eprintln!(
        "# fleet: {hosts} hosts in {} cells of <= {cell_hosts} (fan-in {fanin}), scale 1/{scale}",
        plan.cells()
    );
    let t0 = std::time::Instant::now();
    let Some(path) = out else {
        if procs > 1 {
            return Err(Box::new(ArgError(
                "--procs > 1 requires --out FILE (workers stream rows to FILE.<k>)".into(),
            )));
        }
        let summary = fleet.run()?.summary();
        print!("{summary}");
        eprintln!(
            "# {} cells in {:.2}s (1 process)",
            plan.cells(),
            t0.elapsed().as_secs_f64()
        );
        return Ok(());
    };

    if procs == 1 {
        // Same part-file + merge path as the multi-process form, so the
        // durable FILE is identical however many workers produced it.
        let r = fleet.run_worker(Path::new(path), 1, 0, flags.has("resume"))?;
        if r.resumed > 0 {
            eprintln!(
                "# resuming: {} of {} cells already done",
                r.resumed, r.cells
            );
        }
    } else {
        // Coordinator: re-invoke this binary once per worker with the
        // original flags plus `--worker K`. A failed or killed worker
        // fails the whole run *without* merging — its part file keeps
        // every row it flushed, so `--resume` finishes the remainder.
        let exe = std::env::current_exe()?;
        let mut children = Vec::new();
        for k in 0..procs {
            let child = std::process::Command::new(&exe)
                .arg("fleet")
                .args(args)
                .arg("--worker")
                .arg(k.to_string())
                .spawn()?;
            children.push((k, child));
        }
        let mut failed = Vec::new();
        for (k, mut child) in children {
            if !child.wait()?.success() {
                failed.push(k.to_string());
            }
        }
        if !failed.is_empty() {
            return Err(format!(
                "fleet worker(s) {} failed; completed cells are preserved in the part \
                 files — rerun with --resume to finish the rest",
                failed.join(", ")
            )
            .into());
        }
    }
    let rows = fleet.merge_parts(Path::new(path), procs)?;
    let wall = t0.elapsed();
    print!("{}", FleetSummary::from_rows(&rows));
    eprintln!("# {} rows in {path} (schema {REPORT_SCHEMA})", rows.len());
    eprintln!(
        "# {} cells in {:.2}s ({procs} process(es))",
        plan.cells(),
        wall.as_secs_f64()
    );
    Ok(())
}

/// Renders decoded result rows as the standard metrics table.
fn print_rows_table(rows: &[DecodedRow]) {
    let label_w = rows
        .iter()
        .map(|r| r.label.len())
        .chain(["label".len()])
        .max()
        .unwrap_or(5);
    println!(
        "{:>label_w$}  {:>9}  {:>9}  {:>7}  {:>7}",
        "label", "read_us", "write_us", "ram%", "flash%"
    );
    for row in rows {
        let r = &row.report;
        println!(
            "{:>label_w$}  {:>9.1}  {:>9.2}  {:>7.1}  {:>7.1}",
            row.label,
            r.read_latency_us(),
            r.write_latency_us(),
            100.0 * r.ram_hit_rate(),
            100.0 * r.flash_hit_rate_of_all_reads(),
        );
    }
}

/// Summarizes a JSONL results file: schema check, row count, metrics
/// table. The strict decode means a corrupt or drifted file fails loudly
/// here rather than feeding silent garbage into a comparison.
fn cmd_report(args: &[String]) -> CmdResult {
    // Accept `fcsim report results.jsonl` or `--in results.jsonl`.
    let (path, rest): (Option<&str>, &[String]) = match args.first() {
        Some(first) if !first.starts_with("--") => (Some(first.as_str()), &args[1..]),
        _ => (None, args),
    };
    let flags = Flags::parse(rest, &["in"], &[])?;
    let path = path
        .or_else(|| flags.get("in"))
        .ok_or_else(|| ArgError("usage: fcsim report FILE".into()))?;
    let mut rows = read_rows(path)?;
    if rows.is_empty() {
        return Err(Box::new(ArgError(format!("{path}: no result rows"))));
    }
    rows.sort_by_key(|r| r.index);
    println!("# {path}: {} rows, schema {REPORT_SCHEMA}", rows.len());
    print_rows_table(&rows);
    let total_reads: u64 = rows.iter().map(|r| r.report.metrics.read_ops).sum();
    let total_writes: u64 = rows.iter().map(|r| r.report.metrics.write_ops).sum();
    let device_ops: u64 = rows.iter().map(|r| r.report.device.ops()).sum();
    println!("# totals: {total_reads} read ops, {total_writes} write ops across all rows");
    if device_ops > 0 {
        println!("# device: {device_ops} serviced ops (ssd timing rows present)");
    }
    let faulted = rows
        .iter()
        .filter(|r| r.report.robustness.engaged())
        .count();
    if faulted > 0 {
        let sum = |f: fn(&fcache::RobustnessStats) -> u64| -> u64 {
            rows.iter().map(|r| f(&r.report.robustness)).sum()
        };
        let degraded = SimTime::from_nanos(sum(|r| r.degraded_time.as_nanos()));
        println!(
            "# robustness: {faulted} faulted rows; {} retries, {} timeouts, {} failed / {} \
             queued ops, {} buffered writes, {degraded} degraded",
            sum(|r| r.retries),
            sum(|r| r.timeouts),
            sum(|r| r.failed_ops),
            sum(|r| r.queued_ops),
            sum(|r| r.buffered_writes),
        );
    }
    let sharded = rows.iter().filter(|r| r.report.shard.engaged()).count();
    if sharded > 0 {
        let sum = |f: fn(&fcache::RemoteStats) -> u64| -> u64 {
            rows.iter().map(|r| f(&r.report.shard.remote)).sum()
        };
        println!(
            "# shards: {sharded} sharded rows; {} failovers, {} hedges launched / {} won / {} \
             cancelled, {} blocks re-replicated",
            sum(|r| r.failovers),
            sum(|r| r.hedges_launched),
            sum(|r| r.hedges_won),
            sum(|r| r.hedges_cancelled),
            sum(|r| r.re_replicated_blocks),
        );
    }
    // Aggregate latency distribution across every row, merged bucket-wise
    // so the percentiles are those of the pooled sample population (the
    // same fold the fleet summary uses), not an average of per-row
    // percentiles.
    let merge = |f: fn(&fcache::MetricsSnapshot) -> &HistogramSnapshot| -> HistogramSnapshot {
        rows.iter().fold(HistogramSnapshot::default(), |acc, r| {
            acc.merged(f(&r.report.metrics))
        })
    };
    let (reads, writes) = (merge(|m| &m.read_hist), merge(|m| &m.write_hist));
    if reads.count() > 0 || writes.count() > 0 {
        let fmt = |h: HistogramSnapshot| {
            let (p50, p95, p99) = h.p50_p95_p99_us();
            format!("p50/p95/p99 {p50:.0}/{p95:.0}/{p99:.0} us")
        };
        println!(
            "# latency: read {} ({} ops), write {} ({} ops), pooled across {} rows",
            fmt(reads),
            reads.count(),
            fmt(writes),
            writes.count(),
            rows.len(),
        );
    }
    Ok(())
}

fn cmd_table1() -> CmdResult {
    print!("{}", SimConfig::baseline().timing_table());
    Ok(())
}

fn cmd_gen_trace(args: &[String]) -> CmdResult {
    let flags = Flags::parse(args, CFG_FLAGS, CFG_BOOLS)?;
    let out = flags
        .get("out")
        .ok_or_else(|| ArgError("--out FILE is required".into()))?;
    let scale: u64 = flags.get_parsed("scale", 64u64)?;
    let spec = spec_from(&flags)?;
    let wb = Workbench::new(scale, flags.get_parsed("seed", 42u64)?);
    let trace = wb.make_trace(&spec);
    let mut w = BufWriter::new(File::create(out)?);
    trace.encode(&mut w)?;
    let s = trace.stats();
    eprintln!("wrote {} ops / {} blocks to {out}", s.ops, s.blocks);
    Ok(())
}

/// Analyzes a span stream written by `--trace-out`: per-phase latency
/// totals and per-op percentiles, the top N slowest ops with their phase
/// breakdown, and an optional Chrome trace-event export for
/// chrome://tracing / Perfetto.
fn cmd_trace(args: &[String]) -> CmdResult {
    // Accept `fcsim trace spans.jsonl` or `--in spans.jsonl`.
    let (path, rest): (Option<&str>, &[String]) = match args.first() {
        Some(first) if !first.starts_with("--") => (Some(first.as_str()), &args[1..]),
        _ => (None, args),
    };
    let flags = Flags::parse(rest, &["in", "top", "export-chrome"], &[])?;
    let path = path.or_else(|| flags.get("in")).ok_or_else(|| {
        ArgError("usage: fcsim trace FILE [--top N] [--export-chrome OUT]".into())
    })?;
    let top: usize = flags.get_parsed("top", 10usize)?;
    let rows = read_span_rows(std::path::Path::new(path))?;
    if rows.is_empty() {
        return Err(Box::new(ArgError(format!("{path}: no span rows"))));
    }
    let total_ns: u64 = rows.iter().map(SpanRow::latency_ns).sum();
    let hosts = {
        let mut hosts: Vec<u64> = rows.iter().map(|r| r.host).collect();
        hosts.sort_unstable();
        hosts.dedup();
        hosts.len()
    };
    println!(
        "# {path}: {} spans over {} host(s), {} total latency",
        rows.len(),
        hosts,
        SimTime::from_nanos(total_ns),
    );
    // Attribution is exact by construction (unattributed awaits accrue to
    // the last-entered phase): a violation means the file was edited or
    // came from a foreign writer.
    let violations = rows
        .iter()
        .filter(|r| r.phase_sum() != r.latency_ns())
        .count();
    if violations > 0 {
        println!("# WARNING: {violations} spans whose phase sum != latency");
    }
    println!(
        "{:<14} {:>12} {:>9} {:>7} {:>10} {:>10} {:>10}",
        "phase", "total", "ops", "share", "p50_us", "p95_us", "p99_us"
    );
    for p in Phase::ALL {
        let hist = LatencyHistogram::new();
        let mut total = 0u64;
        let mut ops = 0u64;
        for r in &rows {
            let ns = r.phases[p.index()];
            if ns > 0 {
                hist.record(SimTime::from_nanos(ns));
                total += ns;
                ops += 1;
            }
        }
        if ops == 0 {
            continue;
        }
        let (p50, p95, p99) = hist.snapshot().p50_p95_p99_us();
        println!(
            "{:<14} {:>12} {:>9} {:>6.1}% {:>10.1} {:>10.1} {:>10.1}",
            p.label(),
            SimTime::from_nanos(total).to_string(),
            ops,
            100.0 * total as f64 / total_ns.max(1) as f64,
            p50,
            p95,
            p99,
        );
    }
    let mut order: Vec<&SpanRow> = rows.iter().collect();
    order.sort_by_key(|r| std::cmp::Reverse((r.latency_ns(), r.op)));
    println!("# top {} slowest ops:", top.min(order.len()));
    for r in order.iter().take(top) {
        let mut breakdown = String::new();
        for p in Phase::ALL {
            let ns = r.phases[p.index()];
            if ns > 0 {
                if !breakdown.is_empty() {
                    breakdown.push_str(", ");
                }
                breakdown.push_str(p.label());
                breakdown.push(' ');
                breakdown.push_str(&SimTime::from_nanos(ns).to_string());
            }
        }
        println!(
            "  op {:>6} host {} {:<5} {:>4} blocks  {:>10}  ({breakdown})",
            r.op,
            r.host,
            r.kind_label(),
            r.blocks,
            SimTime::from_nanos(r.latency_ns()).to_string(),
        );
    }
    if let Some(out) = flags.get("export-chrome") {
        let mut text = String::new();
        chrome_trace(&rows).encode(&mut text);
        std::fs::write(out, text)?;
        eprintln!("# wrote Chrome trace-event JSON to {out} (chrome://tracing or ui.perfetto.dev)");
    }
    Ok(())
}

fn open_trace(flags: &Flags) -> Result<TraceReader<BufReader<File>>, Box<dyn Error>> {
    let path = flags
        .get("in")
        .ok_or_else(|| ArgError("--in FILE is required".into()))?;
    Ok(TraceReader::new(BufReader::new(File::open(path)?))?)
}

fn cmd_trace_stats(args: &[String]) -> CmdResult {
    let flags = Flags::parse(args, CFG_FLAGS, CFG_BOOLS)?;
    let path = flags
        .get("in")
        .ok_or_else(|| ArgError("--in FILE is required".into()))?;
    // Stream the file in bounded chunks: stats over an arbitrarily large
    // archive without ever materializing its ops.
    let t0 = std::time::Instant::now();
    let (_, s, peak) = stream_stats(BufReader::new(File::open(path)?))?;
    let wall = t0.elapsed().as_secs_f64();
    println!("ops                {}", s.ops);
    println!("blocks             {}", s.blocks);
    println!("bytes              {}", s.bytes);
    println!("write fraction     {:.1}%", 100.0 * s.write_fraction());
    println!(
        "warmup fraction    {:.1}% (by bytes)",
        100.0 * s.warmup_fraction()
    );
    println!("hosts              {}", s.max_host + 1);
    println!("threads/host       {}", s.max_thread + 1);
    println!("peak op buffer     {peak} bytes (streamed decode)");
    if wall > 0.0 {
        println!(
            "decode throughput  {:.0} ops/s ({:.1} ms wall)",
            s.ops as f64 / wall,
            wall * 1e3
        );
    }
    Ok(())
}

fn cmd_trace_dump(args: &[String]) -> CmdResult {
    let flags = Flags::parse(args, CFG_FLAGS, CFG_BOOLS)?;
    let mut reader = open_trace(&flags)?;
    let limit: usize = flags.get_parsed("limit", 20usize)?;
    let total = reader.remaining();
    let meta = reader.meta().clone();
    println!(
        "# {} ops; hosts={} threads/host={} ws={} write%={} seed={}",
        total, meta.hosts, meta.threads_per_host, meta.working_set_bytes, meta.write_pct, meta.seed
    );
    // Only the records to print are ever decoded.
    let mut head = Vec::new();
    reader.next_chunk(&mut head, limit)?;
    for op in &head {
        println!("{op}");
    }
    if total as usize > limit {
        println!("... ({} more)", total as usize - limit);
    }
    Ok(())
}

fn cmd_replay(args: &[String]) -> CmdResult {
    let flags = Flags::parse(args, CFG_FLAGS, CFG_BOOLS)?;
    let scale: u64 = flags.get_parsed("scale", 64u64)?;
    let cfg = config_from(&flags)?.scaled_down(scale);
    let path = flags
        .get("in")
        .ok_or_else(|| ArgError("--in FILE is required".into()))?;
    // Surface a missing/unreadable/corrupt archive directly — validating
    // the FCTRACE1 header here keeps the replay fallback below for what
    // it is meant for (archives whose header understates their op ids).
    let total_ops = TraceReader::new(BufReader::new(
        File::open(path).map_err(|e| ArgError(format!("--in {path}: {e}")))?,
    ))
    .map_err(|e| ArgError(format!("--in {path}: {e}")))?
    .remaining();
    // A scenario over a file workload: the archive is memory-mapped and
    // replayed through per-slot cursors when the platform allows (falling
    // back to chunked buffered reads), so resident op memory is
    // O(TRACE_CHUNK_OPS), not O(trace) — paper-scale archives replay on
    // small machines.
    let t0 = std::time::Instant::now();
    let report = match Scenario::new(cfg.clone(), Workload::file(path)).run() {
        Ok(report) => report,
        Err(fcache::SimError::Source(msg)) => {
            // Streamed replay sizes the host/thread grid from the file
            // header; an archive whose header understates its op ids (the
            // encoder never validated this) still replays the slow way,
            // where the grid is widened from the ops themselves.
            eprintln!("# streamed replay unavailable ({msg}); falling back to full decode");
            let mut r = BufReader::new(File::open(path)?);
            let trace = fcache_types::Trace::decode(&mut r)?;
            let scenario = Scenario::new(cfg, Workload::trace(&trace));
            scenario.run()?
        }
        Err(e) => return Err(e.into()),
    };
    let wall = t0.elapsed().as_secs_f64();
    print!("{report}");
    println!(
        "read latency       {:.1} us/block",
        report.read_latency_us()
    );
    println!(
        "write latency      {:.2} us/block",
        report.write_latency_us()
    );
    if wall > 0.0 {
        println!(
            "replay throughput  {:.0} ops/s ({} ops in {:.1} ms wall)",
            total_ops as f64 / wall,
            total_ops,
            wall * 1e3
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn help_and_table1_succeed() {
        assert!(dispatch(&argv(&["help"])).is_ok());
        assert!(dispatch(&argv(&["table1"])).is_ok());
        assert!(dispatch(&argv(&[])).is_ok());
    }

    #[test]
    fn unknown_command_fails() {
        assert!(dispatch(&argv(&["frobnicate"])).is_err());
    }

    #[test]
    fn config_parsing_applies_flags() {
        let flags = Flags::parse(
            &argv(&[
                "--arch",
                "unified",
                "--ram",
                "1G",
                "--flash",
                "16G",
                "--ram-policy",
                "s",
                "--flash-policy",
                "p5",
                "--prefetch",
                "0.8",
                "--persistent",
            ]),
            CFG_FLAGS,
            CFG_BOOLS,
        )
        .unwrap();
        let cfg = config_from(&flags).unwrap();
        assert_eq!(cfg.arch, Architecture::Unified);
        assert_eq!(cfg.ram_size, ByteSize::gib(1));
        assert_eq!(cfg.flash_size, ByteSize::gib(16));
        assert_eq!(cfg.ram_policy, WritebackPolicy::WriteThrough);
        assert_eq!(cfg.flash_policy, WritebackPolicy::Periodic(5));
        assert!((cfg.filer.fast_read_rate - 0.8).abs() < 1e-9);
        assert!(cfg.flash_model.persistent);
    }

    #[test]
    fn flash_timing_flags_select_and_tune_the_ssd_model() {
        let flags = Flags::parse(
            &argv(&[
                "--flash-timing",
                "ssd",
                "--ssd-capacity",
                "1G",
                "--ssd-read-base",
                "60",
                "--ssd-write-base",
                "18.5",
            ]),
            CFG_FLAGS,
            CFG_BOOLS,
        )
        .unwrap();
        let cfg = config_from(&flags).unwrap();
        let FlashTiming::Ssd(sc) = cfg.flash_timing else {
            panic!("expected ssd timing, got {:?}", cfg.flash_timing);
        };
        assert_eq!(sc.capacity_blocks, (1u64 << 30) / 4096);
        assert_eq!(sc.read_base, SimTime::from_micros(60));
        assert_eq!(sc.write_base, SimTime::from_nanos(18_500));
        // The FTL locality parameters were fitted to the 1 GiB device
        // (262144 blocks → regions shrunk until ≥1024 of them exist).
        let fitted = SsdConfig::auto().fit_capacity((1u64 << 30) / 4096);
        assert_eq!(sc.region_shift, fitted.region_shift);
        assert_eq!(sc.map_cache_slots, fitted.map_cache_slots);
        assert!(
            sc.capacity_blocks >> sc.region_shift >= 1024,
            "explicitly sized device must keep enough regions for locality"
        );
        // Defaults: flat, with the auto-capacity sentinel when ssd is bare.
        let bare = Flags::parse(&argv(&[]), CFG_FLAGS, CFG_BOOLS).unwrap();
        assert_eq!(config_from(&bare).unwrap().flash_timing, FlashTiming::Flat);
        let auto = Flags::parse(&argv(&["--flash-timing", "ssd"]), CFG_FLAGS, CFG_BOOLS).unwrap();
        let FlashTiming::Ssd(sc) = config_from(&auto).unwrap().flash_timing else {
            panic!("expected ssd timing");
        };
        assert_eq!(sc.capacity_blocks, 0, "bare ssd keeps the auto sentinel");
    }

    #[test]
    fn flash_timing_flags_reject_bad_input() {
        for bad in [
            &["--flash-timing", "warp"][..],
            &["--ssd-capacity", "1G"][..], // override without ssd mode
            &["--flash-timing", "ssd", "--ssd-read-base", "-3"][..],
            &["--flash-timing", "ssd", "--ssd-read-base", "fast"][..],
            &["--flash-timing", "ssd", "--ssd-capacity", "1K"][..], // < 1 block
        ] {
            let flags = Flags::parse(&argv(bad), CFG_FLAGS, CFG_BOOLS).unwrap();
            assert!(config_from(&flags).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn end_to_end_ssd_run_and_sweep() {
        dispatch(&argv(&[
            "run",
            "--scale",
            "16384",
            "--ws",
            "16G",
            "--seed",
            "7",
            "--flash-timing",
            "ssd",
        ]))
        .unwrap();
        dispatch(&argv(&[
            "sweep",
            "--scale",
            "16384",
            "--ws",
            "16G",
            "--seed",
            "9",
            "--flash-list",
            "0,16G",
            "--flash-timing",
            "ssd",
            "--ssd-read-base",
            "40",
        ]))
        .unwrap();
    }

    #[test]
    fn fault_flags_parse_and_reject() {
        let flags = Flags::parse(
            &argv(&["--fault", "filer:outage@40s-60s", "--degraded", "failfast"]),
            CFG_FLAGS,
            CFG_BOOLS,
        )
        .unwrap();
        let cfg = config_from(&flags).unwrap();
        assert_eq!(cfg.fault_plan.clauses.len(), 1);
        assert_eq!(cfg.robustness.degraded, DegradedPolicy::FailFast);
        // The default is fault-free with the queueing policy.
        let bare = Flags::parse(&argv(&[]), CFG_FLAGS, CFG_BOOLS).unwrap();
        let cfg = config_from(&bare).unwrap();
        assert!(cfg.fault_plan.is_empty());
        assert_eq!(cfg.robustness.degraded, DegradedPolicy::Queue);
        for bad in [
            &["--fault", "filer:outage"][..],         // missing window
            &["--fault", "gremlin:outage@1s-2s"][..], // unknown target
            &["--fault", "filer:slowx0@1s-2s"][..],   // non-positive factor
            &["--degraded", "panic"][..],             // unknown policy
        ] {
            let flags = Flags::parse(&argv(bad), CFG_FLAGS, CFG_BOOLS).unwrap();
            assert!(config_from(&flags).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn shard_flags_parse_and_reject() {
        let flags = Flags::parse(
            &argv(&["--shards", "4", "--replicas", "2", "--hedge", "150"]),
            CFG_FLAGS,
            CFG_BOOLS,
        )
        .unwrap();
        let cfg = config_from(&flags).unwrap();
        assert_eq!(cfg.shards, 4);
        assert_eq!(cfg.replicas, 2);
        assert_eq!(cfg.hedge, Some(SimTime::from_micros(150)));
        assert!(cfg.remote_engaged());
        // Defaults: single shard, single replica, no hedge — disengaged.
        let bare = Flags::parse(&argv(&[]), CFG_FLAGS, CFG_BOOLS).unwrap();
        let cfg = config_from(&bare).unwrap();
        assert_eq!((cfg.shards, cfg.replicas, cfg.hedge), (1, 1, None));
        assert!(!cfg.remote_engaged());
        for bad in [
            &["--shards", "0"][..],                    // no shards at all
            &["--replicas", "2"][..],                  // replicas > shards
            &["--shards", "4", "--replicas", "0"][..], // no replicas
            &["--shards", "2", "--replicas", "3"][..], // replicas > shards
            &["--hedge", "100"][..],                   // hedge without replicas
            &["--shards", "2", "--replicas", "2", "--hedge", "-5"][..],
            &["--shards", "2", "--replicas", "2", "--hedge", "soon"][..],
            &["--fault", "shard9:outage@1s-2s", "--shards", "2"][..], // out of range
            &["--fault", "shard0:outage@1s-2s"][..], // shard clause, 1 shard... fine
        ] {
            let flags = Flags::parse(&argv(bad), CFG_FLAGS, CFG_BOOLS).unwrap();
            let cfg = config_from(&flags);
            // `shard0` against the default single shard is legal (it
            // targets the only shard); every other case is a flag error.
            if bad == ["--fault", "shard0:outage@1s-2s"] {
                assert!(cfg.is_ok(), "rejected {bad:?}: {cfg:?}");
            } else {
                assert!(cfg.is_err(), "accepted {bad:?}");
            }
        }
    }

    #[test]
    fn end_to_end_sharded_run_with_failover() {
        dispatch(&argv(&[
            "run",
            "--scale",
            "16384",
            "--ws",
            "16G",
            "--seed",
            "7",
            "--shards",
            "4",
            "--replicas",
            "2",
            "--hedge",
            "200",
            "--fault",
            "shard1:outage@40s-60s",
        ]))
        .unwrap();
    }

    #[test]
    fn strict_degraded_run_fails_naming_the_clause() {
        // Satellite: `--degraded strict` must fail the run (main maps the
        // Err to exit code 1) with the offending clause in the message.
        let err = dispatch(&argv(&[
            "run",
            "--scale",
            "16384",
            "--ws",
            "16G",
            "--seed",
            "7",
            "--shards",
            "2",
            "--fault",
            "shard0:outage@40s-60s",
            "--degraded",
            "strict",
        ]))
        .expect_err("strict policy must fail the run");
        let msg = err.to_string();
        assert!(msg.contains("shard0:outage"), "names the clause: {msg}");
        assert!(msg.contains("strict degraded policy"), "{msg}");
    }

    #[test]
    fn end_to_end_faulted_run() {
        dispatch(&argv(&[
            "run",
            "--scale",
            "16384",
            "--ws",
            "16G",
            "--seed",
            "7",
            "--fault",
            "filer:outage@40s-60s",
        ]))
        .unwrap();
    }

    #[test]
    fn spec_parsing_validates_ranges() {
        let ok = Flags::parse(
            &argv(&["--ws", "60G", "--write-pct", "50"]),
            CFG_FLAGS,
            CFG_BOOLS,
        )
        .unwrap();
        let spec = spec_from(&ok).unwrap();
        assert_eq!(spec.working_set, ByteSize::gib(60));
        assert!((spec.write_fraction - 0.5).abs() < 1e-9);

        let bad = Flags::parse(&argv(&["--write-pct", "120"]), CFG_FLAGS, CFG_BOOLS).unwrap();
        assert!(spec_from(&bad).is_err());
    }

    #[test]
    fn sweep_runs_parallel_and_serial() {
        for extra in [
            &["--serial"][..],
            &["--jobs", "2"][..],
            &["--threads", "2"][..],
            &["--streamed"][..],
            &["--streamed", "--threads", "2"][..],
        ] {
            let mut args = argv(&[
                "sweep",
                "--scale",
                "16384",
                "--ws",
                "16G",
                "--seed",
                "9",
                "--arch-list",
                "naive,unified",
                "--flash-list",
                "0,16G",
            ]);
            args.extend(argv(extra));
            dispatch(&args).unwrap();
        }
    }

    #[test]
    fn sweep_rejects_bad_lists() {
        assert!(dispatch(&argv(&["sweep", "--arch-list", "bogus"])).is_err());
        assert!(dispatch(&argv(&["sweep", "--flash-list", "1Q"])).is_err());
    }

    #[test]
    fn sweep_out_writes_rows_report_reads_them_and_resume_skips() {
        let path = std::env::temp_dir().join("fcsim_test_results.jsonl");
        let path_s = path.to_str().unwrap().to_string();
        let sweep_args = |extra: &[&str]| {
            let mut a = argv(&[
                "sweep",
                "--scale",
                "16384",
                "--ws",
                "16G",
                "--seed",
                "9",
                "--arch-list",
                "naive,unified",
                "--flash-list",
                "0,16G",
                "--out",
                &path_s,
            ]);
            a.extend(argv(extra));
            a
        };
        dispatch(&sweep_args(&[])).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 4, "one row per job:\n{text}");
        assert!(text.lines().all(|l| l.contains("\"schema\":1")));
        // Labels carry the workload identity, not just arch/flash.
        assert!(
            text.contains("\"label\":\"unified/16G ws=16G wr=30% seed=9\""),
            "{text}"
        );

        // The report subcommand decodes the file (both arg forms).
        dispatch(&argv(&["report", &path_s])).unwrap();
        dispatch(&argv(&["report", "--in", &path_s])).unwrap();

        // A complete file resumes to a no-op: the bytes are untouched.
        dispatch(&sweep_args(&["--resume"])).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), text);

        // Truncate to one complete row plus a torn half-row; resume
        // restores the full row set.
        let lines: Vec<&str> = text.lines().collect();
        std::fs::write(
            &path,
            format!("{}\n{}", lines[0], &lines[1][..lines[1].len() / 2]),
        )
        .unwrap();
        dispatch(&sweep_args(&["--resume"])).unwrap();
        let resumed = std::fs::read_to_string(&path).unwrap();
        let mut want: Vec<&str> = text.lines().collect();
        let mut got: Vec<&str> = resumed.lines().collect();
        want.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, want, "resumed row set must match the full run");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sweep_resume_requires_out() {
        assert!(dispatch(&argv(&["sweep", "--resume"])).is_err());
    }

    #[test]
    fn fleet_out_merges_cells_and_worker_parts_reproduce_it() {
        let dir = std::env::temp_dir();
        let single = dir.join("fcsim_test_fleet_single.jsonl");
        let multi = dir.join("fcsim_test_fleet_multi.jsonl");
        let single_s = single.to_str().unwrap().to_string();
        let multi_s = multi.to_str().unwrap().to_string();
        let fleet_args = |extra: &[&str]| {
            let mut a = argv(&[
                "fleet",
                "--scale",
                "16384",
                "--ws",
                "16G",
                "--seed",
                "9",
                "--hosts",
                "12",
                "--cell-hosts",
                "4",
                "--fanin",
                "2",
            ]);
            a.extend(argv(extra));
            a
        };

        // One process, durable output: one row per cell, merged in cell
        // order through the same part-file path multi-process runs use.
        dispatch(&fleet_args(&["--out", &single_s])).unwrap();
        let text = std::fs::read_to_string(&single).unwrap();
        assert_eq!(text.lines().count(), 3, "one row per cell:\n{text}");
        assert!(text.lines().all(|l| l.contains("\"schema\":1")));
        assert!(text.contains("\"label\":\"cell 0/3 hosts 0..4\""), "{text}");
        assert!(text.contains("\"fleet_cells\":3"), "{text}");

        // The report subcommand reads fleet rows like any results file
        // (and now carries the pooled `# latency:` aggregate).
        dispatch(&argv(&["report", &single_s])).unwrap();

        // A complete fleet resumes to a no-op: the bytes are untouched.
        dispatch(&fleet_args(&["--out", &single_s, "--resume"])).unwrap();
        assert_eq!(std::fs::read_to_string(&single).unwrap(), text);

        // Worker mode (run in-process here; the coordinator spawns these
        // as child processes): two workers split the cells, and merging
        // their parts yields the byte-identical single-process file.
        dispatch(&fleet_args(&[
            "--out", &multi_s, "--procs", "2", "--worker", "0",
        ]))
        .unwrap();
        dispatch(&fleet_args(&[
            "--out", &multi_s, "--procs", "2", "--worker", "1",
        ]))
        .unwrap();
        let base = SimConfig {
            seed: 9,
            ..SimConfig::baseline()
        };
        let fleet = fcache_fleet::Fleet::new(
            base,
            fcache_fleet::FleetSpec {
                hosts: 12,
                cell_hosts: 4,
                hosts_per_segment: 2,
                workload: WorkloadSpec {
                    working_set: ByteSize::gib(16),
                    seed: 9,
                    ..WorkloadSpec::default()
                },
                scale: 16384,
            },
        );
        let rows = fleet.merge_parts(&multi, 2).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(
            std::fs::read_to_string(&multi).unwrap(),
            text,
            "2-process merged file must be byte-identical to the 1-process file"
        );
        for p in [&single, &multi] {
            let _ = std::fs::remove_file(p);
        }
        for k in 0..2 {
            let _ = std::fs::remove_file(worker_part_path(&single, k));
            let _ = std::fs::remove_file(worker_part_path(&multi, k));
        }
    }

    #[test]
    fn fleet_rejects_bad_flags() {
        for bad in [
            &["fleet", "--procs", "0"][..],
            &["fleet", "--fanin", "0"][..],
            &["fleet", "--cell-hosts", "0"][..],
            &["fleet", "--hosts", "0"][..],
            &["fleet", "--resume"][..],
            &["fleet", "--procs", "2"][..], // multi-process needs --out
            &["fleet", "--worker", "0"][..], // worker needs --out
            &["fleet", "--worker", "2", "--procs", "2", "--out", "x"][..],
        ] {
            assert!(dispatch(&argv(bad)).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn sweep_resume_refuses_a_file_from_different_flags() {
        let path = std::env::temp_dir().join("fcsim_test_resume_mismatch.jsonl");
        let path_s = path.to_str().unwrap().to_string();
        let run = |extra: &[&str]| {
            let mut a = argv(&[
                "sweep",
                "--scale",
                "16384",
                "--arch-list",
                "naive",
                "--flash-list",
                "16G",
                "--out",
                &path_s,
            ]);
            a.extend(argv(extra));
            dispatch(&a)
        };
        run(&["--ws", "16G", "--seed", "9"]).unwrap();
        // Different workload (ws or seed): the file's rows are not part
        // of this sweep — stale results must not satisfy a new query.
        let err = run(&["--ws", "24G", "--seed", "9", "--resume"]).unwrap_err();
        assert!(err.to_string().contains("not part of this sweep"), "{err}");
        let err = run(&["--ws", "16G", "--seed", "8", "--resume"]).unwrap_err();
        assert!(err.to_string().contains("not part of this sweep"), "{err}");
        // Same labels but a different configuration knob (--ram): caught
        // by the serialized-config cross-check.
        let err = run(&["--ws", "16G", "--seed", "9", "--ram", "1G", "--resume"]).unwrap_err();
        assert!(err.to_string().contains("different configuration"), "{err}");
        // Identical flags still resume cleanly (no-op on a complete file).
        let before = std::fs::read_to_string(&path).unwrap();
        run(&["--ws", "16G", "--seed", "9", "--resume"]).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), before);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn report_rejects_missing_and_corrupt_files() {
        assert!(dispatch(&argv(&["report"])).is_err());
        assert!(dispatch(&argv(&["report", "/nonexistent/rows.jsonl"])).is_err());
        let path = std::env::temp_dir().join("fcsim_test_corrupt.jsonl");
        std::fs::write(&path, "not json\n").unwrap();
        assert!(dispatch(&argv(&["report", path.to_str().unwrap()])).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn end_to_end_tiny_run() {
        // A very small scale keeps this test fast.
        dispatch(&argv(&[
            "run", "--scale", "16384", "--ws", "16G", "--seed", "7",
        ]))
        .unwrap();
    }

    #[test]
    fn trace_file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("fcsim_test_trace.bin");
        let path_s = path.to_str().unwrap();
        dispatch(&argv(&[
            "gen-trace",
            "--out",
            path_s,
            "--scale",
            "16384",
            "--ws",
            "16G",
            "--seed",
            "3",
        ]))
        .unwrap();
        dispatch(&argv(&["trace-stats", "--in", path_s])).unwrap();
        dispatch(&argv(&["trace-dump", "--in", path_s, "--limit", "5"])).unwrap();
        dispatch(&argv(&["replay", "--in", path_s, "--scale", "16384"])).unwrap();
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn span_stream_roundtrip_through_trace_analyzer() {
        // run --trace-out writes a span stream; `fcsim trace` analyzes it
        // and --export-chrome re-encodes it for chrome://tracing.
        let dir = std::env::temp_dir();
        let spans = dir.join("fcsim_test_spans.jsonl");
        let chrome = dir.join("fcsim_test_spans_chrome.json");
        let spans_s = spans.to_str().unwrap();
        dispatch(&argv(&[
            "run",
            "--scale",
            "16384",
            "--ws",
            "16G",
            "--seed",
            "7",
            "--windows",
            "10s",
            "--trace-out",
            spans_s,
        ]))
        .unwrap();
        let rows = read_span_rows(&spans).unwrap();
        assert!(!rows.is_empty(), "the run must have produced spans");
        assert!(
            rows.iter().all(|r| r.phase_sum() == r.latency_ns()),
            "phase attribution must be exact"
        );
        dispatch(&argv(&["trace", spans_s, "--top", "3"])).unwrap();
        dispatch(&argv(&[
            "trace",
            "--in",
            spans_s,
            "--export-chrome",
            chrome.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&chrome).unwrap();
        assert!(text.starts_with("{\"traceEvents\":["), "{text}");
        // Bad inputs: no file, missing file, not a span stream.
        assert!(dispatch(&argv(&["trace"])).is_err());
        assert!(dispatch(&argv(&["trace", "/nonexistent/spans.jsonl"])).is_err());
        let corrupt = dir.join("fcsim_test_spans_corrupt.jsonl");
        std::fs::write(&corrupt, "not json\n").unwrap();
        assert!(dispatch(&argv(&["trace", corrupt.to_str().unwrap()])).is_err());
        for p in [&spans, &chrome, &corrupt] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn replay_accepts_archive_with_understated_meta() {
        // Older builds could write headers whose host/thread counts
        // understate the op ids; replay must fall back to the widening
        // full-decode path instead of rejecting the archive.
        use fcache_types::{FileId, HostId, OpKind, ThreadId, Trace, TraceMeta, TraceOp};
        let mut trace = Trace::new(TraceMeta {
            hosts: 1, // lies: ops below use host 1 (= 2 hosts)
            threads_per_host: 1,
            ..TraceMeta::default()
        });
        for host in 0..2u16 {
            trace.ops.push(TraceOp::new(
                HostId(host),
                ThreadId(0),
                OpKind::Read,
                FileId(1),
                0,
                4,
                false,
            ));
        }
        let path = std::env::temp_dir().join("fcsim_test_lying_meta.bin");
        let mut w = BufWriter::new(File::create(&path).unwrap());
        trace.encode(&mut w).unwrap();
        drop(w);
        dispatch(&argv(&[
            "replay",
            "--in",
            path.to_str().unwrap(),
            "--scale",
            "16384",
        ]))
        .unwrap();
        let _ = std::fs::remove_file(path);
    }
}
