//! `fcsim` — command-line driver for the client-side flash-cache simulator.
//!
//! Subcommands:
//!
//! - `run` — run one configuration against a generated workload.
//! - `table1` — print the Table 1 timing parameters.
//! - `gen-trace` — generate a trace file (`FCTRACE1` format).
//! - `trace-stats` — summarize a trace file.
//! - `replay` — run a configuration against a trace file.
//!
//! Run `fcsim help` for the full flag list. All sizes accept forms like
//! `8G`, `256K`; `--scale N` divides every byte quantity by `N` (see
//! DESIGN.md §4 on linear scaling).

use std::process::ExitCode;

mod args;
mod commands;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fcsim: {e}");
            ExitCode::FAILURE
        }
    }
}
