//! Block caches for the client-side flash-caching simulator.
//!
//! The paper models every cache as "a single LRU chain of blocks" (§5).
//! This crate provides:
//!
//! - [`LruList`] — a slab-backed intrusive doubly-linked LRU list with O(1)
//!   touch/insert/evict, generic over the per-node payload.
//! - [`BlockCache`] — a single-tier block cache with dirty tracking, used
//!   for the RAM tier and the flash tier of the *naive* and *lookaside*
//!   architectures.
//! - [`UnifiedCache`] — the *unified* architecture's cache: one LRU chain
//!   over RAM and flash *frames*; a block is "placed into the least
//!   recently used buffer, whether RAM or flash, and \[is\] never migrated"
//!   (§3.3).
//!
//! Caches here are pure data structures: they never block and carry no
//! timing. The simulator in the `fcache` crate decides what I/O each cache
//! transition costs and charges simulated time accordingly.

pub mod block_cache;
pub mod lru;
pub mod stats;
pub mod unified;

pub use block_cache::{BlockCache, Eviction, EvictionPolicy, InsertOutcome};
pub use lru::LruList;
pub use stats::CacheStats;
pub use unified::{Medium, UnifiedCache, UnifiedEviction, UnifiedInsert};
