//! The *unified* architecture's cache: one LRU chain over RAM and flash
//! frames.
//!
//! From §3.3 of the paper: "RAM and flash are managed together using a
//! single LRU chain. Data blocks are placed into the least recently used
//! buffer, whether RAM or flash, and are never migrated. No attempt is made
//! to prefer RAM to flash. Here the RAM cache is not a subset of the flash."
//!
//! The chain is a chain of *frames*. A frame physically lives in one
//! medium forever; what changes is which block occupies it and where it sits
//! in the recency order. The effective capacity is the *sum* of the two
//! tiers (72 GB for the baseline 8 GB RAM + 64 GB flash), which is the
//! source of the unified architecture's read-latency advantage (§7.1).

use fcache_types::{BlockAddr, FxBuildHasher, FxHashMap};

use crate::lru::{LruList, NodeId};
use crate::stats::CacheStats;

/// Which physical medium a frame lives in.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Medium {
    /// DRAM frame.
    Ram,
    /// Flash frame.
    Flash,
}

/// A frame in the unified chain.
#[derive(Clone, Copy, Debug)]
struct Frame {
    medium: Medium,
    /// Block currently held (None = free frame).
    block: Option<BlockAddr>,
    dirty: bool,
    /// Intrusive dirty-list links: dirty frames form a doubly-linked list
    /// threaded through the slab, so dirty snapshots iterate O(dirty)
    /// without a second hash structure (links maintained in O(1)).
    dirty_prev: Option<NodeId>,
    dirty_next: Option<NodeId>,
}

/// Block evicted by a unified insert.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UnifiedEviction {
    /// The displaced block.
    pub addr: BlockAddr,
    /// Medium it lived in (its writeback, if dirty, reads from this medium).
    pub medium: Medium,
    /// True if the caller must write the block back.
    pub dirty: bool,
}

/// Result of [`UnifiedCache::insert`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UnifiedInsert {
    /// Medium of the frame the new block landed in (the write/fill pays
    /// this medium's latency).
    pub medium: Medium,
    /// Block displaced from that frame, if it held one.
    pub evicted: Option<UnifiedEviction>,
    /// True if the block was already cached (promoted in place; `medium` is
    /// the frame it already occupied).
    pub already_present: bool,
}

/// One LRU chain over RAM + flash frames.
///
/// # Examples
///
/// ```
/// use fcache_cache::{Medium, UnifiedCache};
/// use fcache_types::{BlockAddr, FileId};
///
/// // 1 RAM frame + 3 flash frames = capacity 4.
/// let mut c = UnifiedCache::new(1, 3);
/// assert_eq!(c.capacity(), 4);
/// let ins = c.insert(BlockAddr::new(FileId(0), 0), false);
/// assert!(ins.evicted.is_none());
/// ```
pub struct UnifiedCache {
    /// One fast-hash probe per lookup; the dirty bit lives inside the frame
    /// (no second structure). See `PERF.md`.
    map: FxHashMap<u64, NodeId>,
    lru: LruList<Frame>,
    /// Count of frames with `dirty == true`.
    dirty_count: usize,
    /// Head of the intrusive dirty list (see `Frame::dirty_prev`).
    dirty_head: Option<NodeId>,
    ram_frames: usize,
    flash_frames: usize,
    stats: CacheStats,
}

impl UnifiedCache {
    /// Creates a unified cache with the given frame counts.
    ///
    /// Free frames are seeded at the LRU end, interleaved proportionally
    /// (roughly one RAM frame per `flash/ram` flash frames) so that fills
    /// draw from both media in the steady-state ratio rather than consuming
    /// one medium wholesale first. "No attempt is made to prefer RAM to
    /// flash" (§3.3).
    pub fn new(ram_frames: usize, flash_frames: usize) -> Self {
        let total = ram_frames + flash_frames;
        let mut lru = LruList::with_capacity(total.min(1 << 22));
        // Interleave: walk both tallies with an error accumulator
        // (Bresenham-style) for a deterministic proportional mix.
        let mut ram_left = ram_frames;
        let mut flash_left = flash_frames;
        let mut acc: i64 = 0;
        for _ in 0..total {
            let medium = if ram_left == 0 {
                Medium::Flash
            } else if flash_left == 0 {
                Medium::Ram
            } else {
                acc += ram_frames as i64;
                if acc >= total as i64 {
                    acc -= total as i64;
                    Medium::Ram
                } else {
                    Medium::Flash
                }
            };
            match medium {
                Medium::Ram => ram_left -= 1,
                Medium::Flash => flash_left -= 1,
            }
            lru.push_back(Frame {
                medium,
                block: None,
                dirty: false,
                dirty_prev: None,
                dirty_next: None,
            });
        }
        Self {
            map: FxHashMap::with_capacity_and_hasher(total.min(1 << 22), FxBuildHasher::default()),
            lru,
            dirty_count: 0,
            dirty_head: None,
            ram_frames,
            flash_frames,
            stats: CacheStats::default(),
        }
    }

    /// Total frame count (RAM + flash) — the effective capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.ram_frames + self.flash_frames
    }

    /// RAM frame count.
    pub fn ram_frames(&self) -> usize {
        self.ram_frames
    }

    /// Flash frame count.
    pub fn flash_frames(&self) -> usize {
        self.flash_frames
    }

    /// Number of blocks currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no blocks are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of dirty blocks.
    pub fn dirty_len(&self) -> usize {
        self.dirty_count
    }

    /// Statistics counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Marks a clean frame dirty, pushing it onto the intrusive dirty
    /// list. Caller ensures the frame is currently clean.
    fn link_dirty(&mut self, id: NodeId) {
        let old_head = self.dirty_head;
        {
            let f = self.lru.get_mut(id).expect("mapped frame lives");
            debug_assert!(!f.dirty, "link_dirty on dirty frame");
            f.dirty = true;
            f.dirty_prev = None;
            f.dirty_next = old_head;
        }
        if let Some(h) = old_head {
            self.lru.get_mut(h).expect("dirty head lives").dirty_prev = Some(id);
        }
        self.dirty_head = Some(id);
        self.dirty_count += 1;
    }

    /// Marks a dirty frame clean, unlinking it from the intrusive dirty
    /// list. Caller ensures the frame is currently dirty.
    fn unlink_dirty(&mut self, id: NodeId) {
        let (prev, next) = {
            let f = self.lru.get_mut(id).expect("mapped frame lives");
            debug_assert!(f.dirty, "unlink_dirty on clean frame");
            f.dirty = false;
            (f.dirty_prev.take(), f.dirty_next.take())
        };
        match prev {
            Some(p) => self.lru.get_mut(p).expect("dirty prev lives").dirty_next = next,
            None => self.dirty_head = next,
        }
        if let Some(n) = next {
            self.lru.get_mut(n).expect("dirty next lives").dirty_prev = prev;
        }
        self.dirty_count -= 1;
    }

    /// Looks a block up; on a hit promotes its frame and returns the medium
    /// (the read pays that medium's latency).
    pub fn lookup(&mut self, addr: BlockAddr) -> Option<Medium> {
        match self.map.get(&addr.to_u64()) {
            Some(&id) => {
                self.lru.touch(id);
                self.stats.hits += 1;
                Some(self.lru.get(id).expect("mapped frame lives").medium)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// True if the block is cached; no promotion, no statistics.
    pub fn contains(&self, addr: BlockAddr) -> bool {
        self.map.contains_key(&addr.to_u64())
    }

    /// Medium of a cached block without promoting it.
    pub fn medium_of(&self, addr: BlockAddr) -> Option<Medium> {
        self.map
            .get(&addr.to_u64())
            .map(|&id| self.lru.get(id).expect("mapped frame lives").medium)
    }

    /// True if the block is cached and dirty.
    pub fn is_dirty(&self, addr: BlockAddr) -> bool {
        match self.map.get(&addr.to_u64()) {
            Some(&id) => self.lru.get(id).expect("mapped frame lives").dirty,
            None => false,
        }
    }

    /// Inserts (or overwrites) a block.
    ///
    /// A new block takes the least-recently-used *frame*, whatever medium
    /// it is, displacing that frame's previous occupant. An existing block
    /// is promoted in place (blocks never migrate between media).
    pub fn insert(&mut self, addr: BlockAddr, dirty: bool) -> UnifiedInsert {
        let key = addr.to_u64();
        if let Some(&id) = self.map.get(&key) {
            self.lru.touch(id);
            let f = self.lru.get(id).expect("mapped frame lives");
            let medium = f.medium;
            if dirty {
                self.stats.overwrites += 1;
                if !f.dirty {
                    self.link_dirty(id);
                }
            }
            return UnifiedInsert {
                medium,
                evicted: None,
                already_present: true,
            };
        }

        let victim_id = self
            .lru
            .back()
            .expect("unified cache has at least one frame");
        let was_dirty = self.lru.get(victim_id).expect("tail frame lives").dirty;
        if was_dirty {
            self.unlink_dirty(victim_id);
        }
        let (medium, evicted) = {
            let f = self.lru.get_mut(victim_id).expect("tail frame lives");
            let medium = f.medium;
            let evicted = f.block.take().map(|old| UnifiedEviction {
                addr: old,
                medium,
                dirty: was_dirty,
            });
            f.block = Some(addr);
            (medium, evicted)
        };
        if let Some(ev) = &evicted {
            self.map.remove(&ev.addr.to_u64());
            if ev.dirty {
                self.stats.dirty_evictions += 1;
            } else {
                self.stats.clean_evictions += 1;
            }
        }
        self.lru.touch(victim_id);
        self.map.insert(key, victim_id);
        if dirty {
            self.link_dirty(victim_id);
        }
        self.stats.insertions += 1;
        UnifiedInsert {
            medium,
            evicted,
            already_present: false,
        }
    }

    /// Marks a cached block clean (after its writeback completes).
    pub fn mark_clean(&mut self, addr: BlockAddr) -> bool {
        match self.map.get(&addr.to_u64()) {
            Some(&id) => {
                if self.lru.get(id).expect("mapped frame lives").dirty {
                    self.unlink_dirty(id);
                }
                true
            }
            None => false,
        }
    }

    /// Removes a block (consistency invalidation). The frame stays in the
    /// chain as a free frame at its current recency position.
    pub fn remove(&mut self, addr: BlockAddr) -> Option<UnifiedEviction> {
        let id = self.map.remove(&addr.to_u64())?;
        let dirty = self.lru.get(id).expect("mapped frame lives").dirty;
        if dirty {
            self.unlink_dirty(id);
        }
        let f = self.lru.get_mut(id).expect("mapped frame lives");
        let medium = f.medium;
        f.block = None;
        self.stats.invalidations += 1;
        Some(UnifiedEviction {
            addr,
            medium,
            dirty,
        })
    }

    /// Appends dirty blocks living in `medium` to `out`, sorted by address
    /// (deterministic flush order). Caller-owned buffer: periodic syncers
    /// reuse one allocation across ticks.
    pub fn dirty_blocks_of_into(&self, medium: Medium, out: &mut Vec<BlockAddr>) {
        let start = out.len();
        let mut cur = self.dirty_head;
        while let Some(id) = cur {
            let f = self.lru.get(id).expect("dirty frame lives");
            if f.medium == medium {
                out.push(f.block.expect("dirty frame holds a block"));
            }
            cur = f.dirty_next;
        }
        out[start..].sort_unstable();
    }

    /// Snapshot of dirty blocks and the medium each lives in, sorted by
    /// address (allocating convenience wrapper; the syncers use
    /// [`UnifiedCache::dirty_blocks_of_into`]).
    pub fn dirty_blocks(&self) -> Vec<(BlockAddr, Medium)> {
        let mut v: Vec<(BlockAddr, Medium)> = Vec::with_capacity(self.dirty_count);
        let mut cur = self.dirty_head;
        while let Some(id) = cur {
            let f = self.lru.get(id).expect("dirty frame lives");
            v.push((f.block.expect("dirty frame holds a block"), f.medium));
            cur = f.dirty_next;
        }
        v.sort_unstable_by_key(|(a, _)| *a);
        v
    }

    /// Verifies internal invariants; test support.
    ///
    /// # Panics
    ///
    /// Panics if frame accounting or the dirty set is inconsistent.
    pub fn check_invariants(&self) {
        assert_eq!(
            self.lru.len(),
            self.capacity(),
            "frame count must never change"
        );
        let mut ram = 0;
        let mut flash = 0;
        let mut occupied = 0;
        let mut dirty = 0;
        for f in self.lru.iter() {
            match f.medium {
                Medium::Ram => ram += 1,
                Medium::Flash => flash += 1,
            }
            if let Some(b) = f.block {
                occupied += 1;
                assert!(
                    self.map.contains_key(&b.to_u64()),
                    "occupied frame not mapped"
                );
                assert_eq!(self.is_dirty(b), f.dirty, "dirty bit mismatch");
                dirty += usize::from(f.dirty);
            } else {
                assert!(!f.dirty, "free frame cannot be dirty");
            }
        }
        assert_eq!(ram, self.ram_frames, "RAM frames leaked");
        assert_eq!(flash, self.flash_frames, "flash frames leaked");
        assert_eq!(occupied, self.map.len(), "map size mismatch");
        assert_eq!(dirty, self.dirty_count, "dirty count mismatch");
        // The intrusive dirty list must contain exactly the dirty frames,
        // with consistent back-links.
        let mut walked = 0;
        let mut prev: Option<NodeId> = None;
        let mut cur = self.dirty_head;
        while let Some(id) = cur {
            let f = self.lru.get(id).expect("dirty frame lives");
            assert!(f.dirty, "dirty list holds clean frame");
            assert_eq!(f.dirty_prev, prev, "dirty list back-link mismatch");
            walked += 1;
            assert!(walked <= self.dirty_count, "dirty list cycle");
            prev = cur;
            cur = f.dirty_next;
        }
        assert_eq!(walked, self.dirty_count, "dirty list length mismatch");
    }
}

impl std::fmt::Debug for UnifiedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UnifiedCache")
            .field("ram_frames", &self.ram_frames)
            .field("flash_frames", &self.flash_frames)
            .field("len", &self.len())
            .field("dirty", &self.dirty_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcache_types::FileId;

    fn addr(n: u32) -> BlockAddr {
        BlockAddr::new(FileId(0), n)
    }

    #[test]
    fn capacity_is_sum_of_tiers() {
        let c = UnifiedCache::new(2, 16);
        assert_eq!(c.capacity(), 18);
        assert_eq!(c.ram_frames(), 2);
        assert_eq!(c.flash_frames(), 16);
        c.check_invariants();
    }

    #[test]
    fn fills_both_media_proportionally() {
        let mut c = UnifiedCache::new(2, 16);
        let mut ram = 0;
        for i in 0..9 {
            let ins = c.insert(addr(i), false);
            assert!(!ins.already_present);
            assert!(ins.evicted.is_none());
            if ins.medium == Medium::Ram {
                ram += 1;
            }
        }
        // Half the cache filled: roughly half the RAM frames used, i.e. the
        // interleave mixed RAM in rather than front- or back-loading it.
        assert_eq!(ram, 1, "expected ~1 of 2 RAM frames after 9 of 18 fills");
        c.check_invariants();
    }

    #[test]
    fn blocks_never_migrate() {
        let mut c = UnifiedCache::new(1, 3);
        c.insert(addr(0), false);
        let m0 = c.medium_of(addr(0)).unwrap();
        for i in 1..4 {
            c.insert(addr(i), false);
        }
        // Promote block 0 many times; medium must not change.
        for _ in 0..10 {
            assert_eq!(c.lookup(addr(0)), Some(m0));
        }
        c.check_invariants();
    }

    #[test]
    fn full_cache_evicts_lru_frame_occupant() {
        let mut c = UnifiedCache::new(1, 2);
        c.insert(addr(0), false);
        c.insert(addr(1), false);
        c.insert(addr(2), true);
        // All frames full; LRU block is 0.
        let ins = c.insert(addr(3), false);
        let ev = ins.evicted.expect("must evict");
        assert_eq!(ev.addr, addr(0));
        assert!(!ev.dirty);
        // New block landed in the frame block 0 occupied.
        assert_eq!(ins.medium, ev.medium);
        c.check_invariants();
    }

    #[test]
    fn dirty_eviction_reports_medium_and_dirty() {
        let mut c = UnifiedCache::new(0, 1);
        c.insert(addr(0), true);
        let ins = c.insert(addr(1), false);
        let ev = ins.evicted.unwrap();
        assert_eq!(ev.addr, addr(0));
        assert_eq!(ev.medium, Medium::Flash);
        assert!(ev.dirty);
        assert_eq!(c.stats().dirty_evictions, 1);
        c.check_invariants();
    }

    #[test]
    fn overwrite_in_place_keeps_medium() {
        let mut c = UnifiedCache::new(1, 1);
        let first = c.insert(addr(0), false);
        let again = c.insert(addr(0), true);
        assert!(again.already_present);
        assert_eq!(again.medium, first.medium);
        assert!(c.is_dirty(addr(0)));
        assert_eq!(c.len(), 1);
        c.check_invariants();
    }

    #[test]
    fn remove_frees_frame_without_losing_it() {
        let mut c = UnifiedCache::new(1, 1);
        c.insert(addr(0), true);
        c.insert(addr(1), false);
        let ev = c.remove(addr(0)).unwrap();
        assert!(ev.dirty);
        assert_eq!(c.len(), 1);
        assert_eq!(c.capacity(), 2);
        // The freed frame is reused by the next insert without eviction.
        let ins = c.insert(addr(2), false);
        assert!(ins.evicted.is_none() || ins.evicted.unwrap().addr != addr(0));
        c.check_invariants();
    }

    #[test]
    fn mark_clean_clears_dirty() {
        let mut c = UnifiedCache::new(1, 1);
        c.insert(addr(0), true);
        assert_eq!(c.dirty_len(), 1);
        assert!(c.mark_clean(addr(0)));
        assert_eq!(c.dirty_len(), 0);
        assert!(!c.mark_clean(addr(5)));
        c.check_invariants();
    }

    #[test]
    fn steady_state_insert_medium_ratio_tracks_frame_ratio() {
        // 1:8 RAM:flash — like the paper's 8 GB RAM + 64 GB flash. In steady
        // state (cache full, uniform random access) roughly 8/9 of new
        // inserts should land in flash (source of the 8/9 × flash-write
        // latency result in §7.1).
        let mut c = UnifiedCache::new(64, 512);
        let mut n = 0u32;
        // Fill.
        for _ in 0..c.capacity() {
            c.insert(addr(n), false);
            n += 1;
        }
        let mut flash_hits = 0;
        let total = 2000;
        for _ in 0..total {
            let ins = c.insert(addr(n), false);
            n += 1;
            assert!(ins.evicted.is_some());
            if ins.medium == Medium::Flash {
                flash_hits += 1;
            }
        }
        let frac = flash_hits as f64 / total as f64;
        assert!(
            (frac - 8.0 / 9.0).abs() < 0.05,
            "flash placement fraction {frac} should be near 8/9"
        );
        c.check_invariants();
    }

    #[test]
    fn dirty_blocks_reports_media() {
        let mut c = UnifiedCache::new(1, 1);
        c.insert(addr(0), true);
        c.insert(addr(1), true);
        let mut media: Vec<_> = c.dirty_blocks().into_iter().map(|(_, m)| m).collect();
        media.sort_by_key(|m| *m == Medium::Flash);
        assert_eq!(media, vec![Medium::Ram, Medium::Flash]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn invariants_hold_under_random_ops(
                ram in 0usize..4,
                flash in 1usize..12,
                ops in proptest::collection::vec((0u32..32, any::<bool>(), 0u8..4), 0..300),
            ) {
                let mut c = UnifiedCache::new(ram, flash);
                for (k, d, sel) in ops {
                    match sel {
                        0 => { c.lookup(addr(k)); }
                        1 => { c.insert(addr(k), d); }
                        2 => { c.remove(addr(k)); }
                        _ => { c.mark_clean(addr(k)); }
                    }
                    c.check_invariants();
                    prop_assert!(c.len() <= c.capacity());
                }
            }

            #[test]
            fn media_never_change_for_resident_blocks(
                ops in proptest::collection::vec((0u32..16, any::<bool>()), 1..200),
            ) {
                let mut c = UnifiedCache::new(2, 6);
                let mut known: std::collections::HashMap<u32, Medium> = Default::default();
                for (k, d) in ops {
                    let before = c.medium_of(addr(k));
                    let ins = c.insert(addr(k), d);
                    if let Some(ev) = ins.evicted {
                        known.remove(&ev.addr.block);
                    }
                    if let Some(m) = before {
                        prop_assert!(ins.already_present);
                        prop_assert_eq!(ins.medium, m);
                    }
                    known.insert(k, ins.medium);
                    prop_assert_eq!(c.medium_of(addr(k)), Some(ins.medium));
                }
            }
        }
    }
}
