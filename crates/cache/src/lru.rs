//! Slab-backed doubly-linked LRU list.
//!
//! All operations are O(1). Node handles ([`NodeId`]) stay valid until the
//! node is removed; the slab recycles slots through a free list.

use core::fmt;

/// Sentinel meaning "no node".
const NIL: u32 = u32::MAX;

/// Handle to a node in an [`LruList`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NodeId(u32);

impl NodeId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

struct Node<T> {
    prev: u32,
    next: u32,
    /// `None` for free slots.
    value: Option<T>,
}

/// A doubly-linked list ordered most-recently-used first.
///
/// # Examples
///
/// ```
/// use fcache_cache::LruList;
///
/// let mut l = LruList::new();
/// let a = l.push_front("a");
/// let _b = l.push_front("b");
/// l.touch(a); // "a" becomes MRU
/// assert_eq!(l.pop_back(), Some("b"));
/// assert_eq!(l.pop_back(), Some("a"));
/// assert_eq!(l.pop_back(), None);
/// ```
pub struct LruList<T> {
    nodes: Vec<Node<T>>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    len: usize,
}

impl<T> Default for LruList<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> LruList<T> {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Creates an empty list with room for `cap` nodes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(cap),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no live nodes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn alloc(&mut self, value: T) -> u32 {
        if let Some(idx) = self.free.pop() {
            let n = &mut self.nodes[idx as usize];
            debug_assert!(n.value.is_none(), "free-list slot still occupied");
            n.value = Some(value);
            idx
        } else {
            self.nodes.push(Node {
                prev: NIL,
                next: NIL,
                value: Some(value),
            });
            (self.nodes.len() - 1) as u32
        }
    }

    fn link_front(&mut self, idx: u32) {
        self.nodes[idx as usize].prev = NIL;
        self.nodes[idx as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let n = &self.nodes[idx as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Inserts a value at the MRU end; returns its handle.
    pub fn push_front(&mut self, value: T) -> NodeId {
        let idx = self.alloc(value);
        self.link_front(idx);
        self.len += 1;
        NodeId(idx)
    }

    /// Inserts a value at the LRU end; returns its handle.
    ///
    /// Used to seed a cache with frames that should be consumed first.
    pub fn push_back(&mut self, value: T) -> NodeId {
        let idx = self.alloc(value);
        // Link at tail.
        self.nodes[idx as usize].next = NIL;
        self.nodes[idx as usize].prev = self.tail;
        if self.tail != NIL {
            self.nodes[self.tail as usize].next = idx;
        } else {
            self.head = idx;
        }
        self.tail = idx;
        self.len += 1;
        NodeId(idx)
    }

    /// Moves a node to the MRU end.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a live node.
    pub fn touch(&mut self, id: NodeId) {
        assert!(self.nodes[id.index()].value.is_some(), "touch of dead node");
        if self.head == id.0 {
            return;
        }
        self.unlink(id.0);
        self.link_front(id.0);
    }

    /// Replaces the value of `id` (the usual caller passes the LRU tail)
    /// and moves the node to the MRU end, returning the old value.
    ///
    /// Equivalent to `remove(id)` + `push_front(value)` — which always
    /// recycles the same slot — but skips the free-list round trip and the
    /// `Option` churn; this is the steady-state path of a full cache, where
    /// every insert evicts.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a live node.
    pub fn replace_to_front(&mut self, id: NodeId, value: T) -> T {
        let old = self.nodes[id.index()]
            .value
            .replace(value)
            .expect("replace_to_front of dead node");
        if self.head != id.0 {
            self.unlink(id.0);
            self.link_front(id.0);
        }
        old
    }

    /// Removes and returns the LRU value.
    pub fn pop_back(&mut self) -> Option<T> {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        self.remove(NodeId(idx))
    }

    /// Handle of the LRU node, if any.
    pub fn back(&self) -> Option<NodeId> {
        if self.tail == NIL {
            None
        } else {
            Some(NodeId(self.tail))
        }
    }

    /// Handle of the MRU node, if any.
    pub fn front(&self) -> Option<NodeId> {
        if self.head == NIL {
            None
        } else {
            Some(NodeId(self.head))
        }
    }

    /// Removes a node, returning its value.
    ///
    /// Returns `None` if the node was already removed.
    pub fn remove(&mut self, id: NodeId) -> Option<T> {
        let value = self.nodes.get_mut(id.index())?.value.take()?;
        self.unlink(id.0);
        self.free.push(id.0);
        self.len -= 1;
        Some(value)
    }

    /// Borrows a node's value.
    pub fn get(&self, id: NodeId) -> Option<&T> {
        self.nodes.get(id.index())?.value.as_ref()
    }

    /// Mutably borrows a node's value.
    pub fn get_mut(&mut self, id: NodeId) -> Option<&mut T> {
        self.nodes.get_mut(id.index())?.value.as_mut()
    }

    /// Iterates values from MRU to LRU.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            list: self,
            cur: self.head,
        }
    }

    /// Removes every node.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.len = 0;
    }
}

impl<T: fmt::Debug> fmt::Debug for LruList<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// Iterator over an [`LruList`], MRU to LRU.
pub struct Iter<'a, T> {
    list: &'a LruList<T>,
    cur: u32,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        if self.cur == NIL {
            return None;
        }
        let n = &self.list.nodes[self.cur as usize];
        self.cur = n.next;
        n.value.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_touch_pop_order() {
        let mut l = LruList::new();
        let a = l.push_front(1);
        let _b = l.push_front(2);
        let _c = l.push_front(3);
        l.touch(a);
        assert_eq!(l.iter().copied().collect::<Vec<_>>(), vec![1, 3, 2]);
        assert_eq!(l.pop_back(), Some(2));
        assert_eq!(l.pop_back(), Some(3));
        assert_eq!(l.pop_back(), Some(1));
        assert!(l.is_empty());
    }

    #[test]
    fn push_back_seeds_lru_end() {
        let mut l = LruList::new();
        l.push_front("mru");
        l.push_back("lru");
        assert_eq!(l.pop_back(), Some("lru"));
        assert_eq!(l.pop_back(), Some("mru"));
    }

    #[test]
    fn remove_middle() {
        let mut l = LruList::new();
        let _a = l.push_front(1);
        let b = l.push_front(2);
        let _c = l.push_front(3);
        assert_eq!(l.remove(b), Some(2));
        assert_eq!(l.len(), 2);
        assert_eq!(l.iter().copied().collect::<Vec<_>>(), vec![3, 1]);
        // Double remove is a no-op.
        assert_eq!(l.remove(b), None);
    }

    #[test]
    fn slot_reuse_after_remove() {
        let mut l = LruList::new();
        let a = l.push_front(1);
        l.remove(a);
        let b = l.push_front(2);
        // Slot is recycled.
        assert_eq!(a.0, b.0);
        assert_eq!(l.get(b), Some(&2));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn touch_head_is_noop() {
        let mut l = LruList::new();
        let _a = l.push_front(1);
        let b = l.push_front(2);
        l.touch(b);
        assert_eq!(l.iter().copied().collect::<Vec<_>>(), vec![2, 1]);
    }

    #[test]
    fn touch_tail_moves_to_front() {
        let mut l = LruList::new();
        let a = l.push_front(1);
        let _b = l.push_front(2);
        l.touch(a);
        assert_eq!(l.front().unwrap(), a);
        assert_eq!(l.get(l.back().unwrap()), Some(&2));
    }

    #[test]
    fn replace_to_front_recycles_in_place() {
        let mut l = LruList::new();
        let a = l.push_front(1);
        let b = l.push_front(2);
        // Replace the tail: node keeps its handle, moves to MRU.
        assert_eq!(l.replace_to_front(a, 10), 1);
        assert_eq!(l.len(), 2);
        assert_eq!(l.iter().copied().collect::<Vec<_>>(), vec![10, 2]);
        assert_eq!(l.front(), Some(a));
        assert_eq!(l.back(), Some(b));
        // Replacing the head keeps order.
        assert_eq!(l.replace_to_front(a, 11), 10);
        assert_eq!(l.iter().copied().collect::<Vec<_>>(), vec![11, 2]);
        // Matches remove + push_front slot reuse.
        let mut m = LruList::new();
        let x = m.push_front(1);
        m.push_front(2);
        m.remove(x);
        let y = m.push_front(3);
        assert_eq!(x, y);
    }

    #[test]
    fn get_mut_updates_value() {
        let mut l = LruList::new();
        let a = l.push_front(10);
        *l.get_mut(a).unwrap() += 5;
        assert_eq!(l.get(a), Some(&15));
    }

    #[test]
    fn single_element_edge_cases() {
        let mut l = LruList::new();
        assert_eq!(l.pop_back(), Option::<i32>::None);
        assert!(l.front().is_none() && l.back().is_none());
        let a = l.push_front(9);
        assert_eq!(l.front(), Some(a));
        assert_eq!(l.back(), Some(a));
        l.touch(a);
        assert_eq!(l.pop_back(), Some(9));
        assert!(l.is_empty());
    }

    #[test]
    fn clear_resets() {
        let mut l = LruList::new();
        l.push_front(1);
        l.push_front(2);
        l.clear();
        assert!(l.is_empty());
        assert_eq!(l.pop_back(), Option::<i32>::None);
        l.push_front(3);
        assert_eq!(l.len(), 1);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use std::collections::VecDeque;

        /// Reference model: VecDeque front = MRU.
        #[derive(Debug, Clone)]
        enum Op {
            Push,
            TouchNth(usize),
            RemoveNth(usize),
            PopBack,
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            prop_oneof![
                Just(Op::Push),
                (0usize..64).prop_map(Op::TouchNth),
                (0usize..64).prop_map(Op::RemoveNth),
                Just(Op::PopBack),
            ]
        }

        proptest! {
            #[test]
            fn matches_reference_model(ops in proptest::collection::vec(op_strategy(), 0..200)) {
                let mut sut = LruList::new();
                let mut ids: Vec<(u32, NodeId)> = Vec::new(); // value -> live node handle
                let mut model: VecDeque<u32> = VecDeque::new();
                // Values are made unique so model order maps 1:1 onto nodes.
                let mut next_val = 0u32;

                for op in ops {
                    match op {
                        Op::Push => {
                            let v = next_val;
                            next_val += 1;
                            let id = sut.push_front(v);
                            ids.push((v, id));
                            model.push_front(v);
                        }
                        Op::TouchNth(n) => {
                            if !model.is_empty() {
                                let n = n % model.len();
                                let v = model.remove(n).unwrap();
                                model.push_front(v);
                                // Find a matching live id for value v.
                                let (_, id) = *ids.iter().find(|(val, id)| *val == v && sut.get(*id) == Some(&v)).unwrap();
                                sut.touch(id);
                            }
                        }
                        Op::RemoveNth(n) => {
                            if !model.is_empty() {
                                let n = n % model.len();
                                let v = model.remove(n).unwrap();
                                let pos = ids.iter().position(|(val, id)| *val == v && sut.get(*id) == Some(&v)).unwrap();
                                let (_, id) = ids.remove(pos);
                                prop_assert_eq!(sut.remove(id), Some(v));
                            }
                        }
                        Op::PopBack => {
                            let expect = model.pop_back();
                            let got = sut.pop_back();
                            prop_assert_eq!(got, expect);
                            if let Some(v) = expect {
                                let pos = ids.iter().position(|(val, id)| *val == v && sut.get(*id).is_none()).or_else(|| ids.iter().position(|(val, _)| *val == v));
                                if let Some(p) = pos { ids.remove(p); }
                            }
                        }
                    }
                    prop_assert_eq!(sut.len(), model.len());
                    prop_assert_eq!(sut.iter().copied().collect::<Vec<_>>(), model.iter().copied().collect::<Vec<_>>());
                }
            }
        }
    }
}
