//! Per-cache counters.

use core::ops::AddAssign;

/// Counters maintained by a cache data structure.
///
/// All counts are in blocks (the caches operate on single 4 KB blocks).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the block.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Blocks inserted.
    pub insertions: u64,
    /// Blocks evicted to make room (clean).
    pub clean_evictions: u64,
    /// Blocks evicted to make room while dirty (caller had to write back).
    pub dirty_evictions: u64,
    /// Blocks removed by explicit invalidation.
    pub invalidations: u64,
    /// Writes absorbed by an already-cached block (overwrite in place).
    pub overwrites: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in [0, 1]; zero when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let n = self.lookups();
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }

    /// Total evictions (clean + dirty).
    pub fn evictions(&self) -> u64 {
        self.clean_evictions + self.dirty_evictions
    }

    /// Resets every counter to zero (used at the end of trace warmup).
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: Self) {
        self.hits += rhs.hits;
        self.misses += rhs.misses;
        self.insertions += rhs.insertions;
        self.clean_evictions += rhs.clean_evictions;
        self.dirty_evictions += rhs.dirty_evictions;
        self.invalidations += rhs.invalidations;
        self.overwrites += rhs.overwrites;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert_eq!(s.hit_rate(), 0.75);
        assert_eq!(s.lookups(), 4);
    }

    #[test]
    fn add_assign_sums_fields() {
        let mut a = CacheStats {
            hits: 1,
            dirty_evictions: 2,
            ..Default::default()
        };
        let b = CacheStats {
            hits: 4,
            clean_evictions: 1,
            ..Default::default()
        };
        a += b;
        assert_eq!(a.hits, 5);
        assert_eq!(a.evictions(), 3);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = CacheStats {
            hits: 9,
            ..Default::default()
        };
        s.reset();
        assert_eq!(s, CacheStats::default());
    }
}
