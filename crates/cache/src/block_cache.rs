//! Single-tier block cache with dirty tracking.
//!
//! Used for the RAM cache everywhere and for the flash cache in the *naive*
//! and *lookaside* architectures. The cache is a timing-free data
//! structure; the simulator charges device/network time around each
//! transition and performs the actual writeback I/O for dirty evictions.
//!
//! The paper fixes the replacement policy: "we put aside other relevant
//! but secondary considerations, such as cache replacement policy (we use
//! LRU)" (§1). [`EvictionPolicy::Lru`] is therefore the default; FIFO and
//! CLOCK (second chance) are provided for the replacement-policy ablation.

use std::collections::{HashMap, HashSet};

use fcache_types::BlockAddr;

use crate::lru::{LruList, NodeId};
use crate::stats::CacheStats;

/// Replacement policy of a [`BlockCache`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum EvictionPolicy {
    /// Least recently used — the paper's policy and the default.
    #[default]
    Lru,
    /// Insertion order; hits do not affect eviction order.
    Fifo,
    /// CLOCK / second chance: hits set a reference bit; eviction rotates
    /// past referenced entries, clearing their bits.
    Clock,
}

/// Per-block cache entry.
#[derive(Clone, Copy, Debug)]
struct Entry {
    addr: BlockAddr,
    dirty: bool,
    /// CLOCK reference bit (unused by LRU/FIFO).
    referenced: bool,
}

/// What `insert` had to evict, if anything.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Eviction {
    /// The block that was evicted.
    pub addr: BlockAddr,
    /// True if the block was dirty: the caller must write it to the next
    /// level before the data is lost ("synchronous evictions once the
    /// cache fills", §7.1).
    pub dirty: bool,
}

/// Result of [`BlockCache::insert`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InsertOutcome {
    /// The block was already cached; it was promoted (and possibly
    /// re-dirtied).
    AlreadyPresent,
    /// Inserted into a free slot.
    Inserted,
    /// Inserted; the returned victim was evicted to make room.
    InsertedEvicting(Eviction),
    /// The cache has zero capacity; nothing was stored.
    ZeroCapacity,
}

/// A fixed-capacity LRU cache of 4 KB blocks with dirty tracking.
///
/// # Examples
///
/// ```
/// use fcache_cache::{BlockCache, InsertOutcome};
/// use fcache_types::{BlockAddr, FileId};
///
/// let mut c = BlockCache::new(2);
/// let a = BlockAddr::new(FileId(1), 0);
/// let b = BlockAddr::new(FileId(1), 1);
/// let d = BlockAddr::new(FileId(1), 2);
/// assert_eq!(c.insert(a, false), InsertOutcome::Inserted);
/// assert_eq!(c.insert(b, false), InsertOutcome::Inserted);
/// assert!(c.lookup(a)); // promotes `a`
/// match c.insert(d, false) {
///     InsertOutcome::InsertedEvicting(ev) => assert_eq!(ev.addr, b),
///     other => panic!("unexpected {other:?}"),
/// }
/// ```
pub struct BlockCache {
    capacity: usize,
    policy: EvictionPolicy,
    map: HashMap<u64, NodeId>,
    lru: LruList<Entry>,
    dirty: HashSet<u64>,
    stats: CacheStats,
}

impl BlockCache {
    /// Creates a cache holding at most `capacity_blocks` blocks.
    ///
    /// A capacity of zero models "no cache at this tier": every lookup
    /// misses and inserts are dropped.
    pub fn new(capacity_blocks: usize) -> Self {
        Self::with_policy(capacity_blocks, EvictionPolicy::Lru)
    }

    /// Creates a cache with an explicit replacement policy (ablation use;
    /// the paper's caches are LRU).
    pub fn with_policy(capacity_blocks: usize, policy: EvictionPolicy) -> Self {
        Self {
            capacity: capacity_blocks,
            policy,
            map: HashMap::with_capacity(capacity_blocks.min(1 << 22)),
            lru: LruList::with_capacity(capacity_blocks.min(1 << 22)),
            dirty: HashSet::new(),
            stats: CacheStats::default(),
        }
    }

    /// Replacement policy in force.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Applies the policy's on-reference behavior to a resident node.
    fn reference(&mut self, id: NodeId) {
        match self.policy {
            EvictionPolicy::Lru => self.lru.touch(id),
            EvictionPolicy::Fifo => {}
            EvictionPolicy::Clock => {
                self.lru
                    .get_mut(id)
                    .expect("mapped node must live")
                    .referenced = true;
            }
        }
    }

    /// Selects and unlinks the eviction victim per the policy.
    fn pop_victim(&mut self) -> Entry {
        match self.policy {
            EvictionPolicy::Lru | EvictionPolicy::Fifo => {
                self.lru.pop_back().expect("full cache has a victim")
            }
            EvictionPolicy::Clock => {
                // Second chance: rotate referenced entries to the front,
                // clearing their bit; evict the first unreferenced one.
                // Terminates: each rotation clears one bit.
                loop {
                    let id = self.lru.back().expect("full cache has a victim");
                    let referenced = {
                        let e = self.lru.get_mut(id).expect("live tail");
                        let r = e.referenced;
                        e.referenced = false;
                        r
                    };
                    if referenced {
                        self.lru.touch(id);
                    } else {
                        return self.lru.remove(id).expect("live tail");
                    }
                }
            }
        }
    }

    /// Maximum block count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current block count.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// True if no blocks are cached.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// True when every slot is occupied.
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity
    }

    /// Number of dirty blocks.
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    /// Statistics counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the statistics counters (cache contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Looks a block up, promoting it to MRU on a hit.
    pub fn lookup(&mut self, addr: BlockAddr) -> bool {
        match self.map.get(&addr.to_u64()) {
            Some(&id) => {
                self.reference(id);
                self.stats.hits += 1;
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// True if the block is cached; no promotion, no statistics.
    pub fn contains(&self, addr: BlockAddr) -> bool {
        self.map.contains_key(&addr.to_u64())
    }

    /// Promotes a block *without* counting a hit or miss (the promotion
    /// itself follows the replacement policy's reference behavior).
    ///
    /// Used for inclusive-cache maintenance: a RAM hit promotes the flash
    /// copy so the flash LRU order stays a superset of RAM recency and the
    /// naive/lookaside subset property holds. Returns false if absent.
    pub fn promote(&mut self, addr: BlockAddr) -> bool {
        match self.map.get(&addr.to_u64()) {
            Some(&id) => {
                self.reference(id);
                true
            }
            None => false,
        }
    }

    /// True if the block is cached and dirty.
    pub fn is_dirty(&self, addr: BlockAddr) -> bool {
        self.dirty.contains(&addr.to_u64())
    }

    /// Inserts (or overwrites) a block, promoting it to MRU.
    ///
    /// If the block is present it stays present; `dirty = true` marks it
    /// dirty (a clean insert never cleans an existing dirty block — data
    /// freshness wins). If the cache is full the LRU block is evicted and
    /// returned so the caller can write it back if dirty.
    pub fn insert(&mut self, addr: BlockAddr, dirty: bool) -> InsertOutcome {
        let key = addr.to_u64();
        if let Some(&id) = self.map.get(&key) {
            self.reference(id);
            if dirty {
                self.stats.overwrites += 1;
                if self.dirty.insert(key) {
                    self.lru.get_mut(id).expect("mapped node must live").dirty = true;
                }
            }
            return InsertOutcome::AlreadyPresent;
        }
        if self.capacity == 0 {
            return InsertOutcome::ZeroCapacity;
        }

        let evicted = if self.lru.len() >= self.capacity {
            let victim = self.pop_victim();
            let vkey = victim.addr.to_u64();
            self.map.remove(&vkey);
            let was_dirty = self.dirty.remove(&vkey);
            debug_assert_eq!(was_dirty, victim.dirty);
            if victim.dirty {
                self.stats.dirty_evictions += 1;
            } else {
                self.stats.clean_evictions += 1;
            }
            Some(Eviction {
                addr: victim.addr,
                dirty: victim.dirty,
            })
        } else {
            None
        };

        let id = self.lru.push_front(Entry {
            addr,
            dirty,
            referenced: false,
        });
        self.map.insert(key, id);
        if dirty {
            self.dirty.insert(key);
        }
        self.stats.insertions += 1;
        match evicted {
            Some(ev) => InsertOutcome::InsertedEvicting(ev),
            None => InsertOutcome::Inserted,
        }
    }

    /// Marks a cached block dirty (no promotion). Returns false if absent.
    pub fn mark_dirty(&mut self, addr: BlockAddr) -> bool {
        let key = addr.to_u64();
        match self.map.get(&key) {
            Some(&id) => {
                self.lru.get_mut(id).expect("mapped node must live").dirty = true;
                self.dirty.insert(key);
                true
            }
            None => false,
        }
    }

    /// Marks a cached block clean (after a completed writeback).
    /// Returns false if the block is absent.
    pub fn mark_clean(&mut self, addr: BlockAddr) -> bool {
        let key = addr.to_u64();
        match self.map.get(&key) {
            Some(&id) => {
                self.lru.get_mut(id).expect("mapped node must live").dirty = false;
                self.dirty.remove(&key);
                true
            }
            None => false,
        }
    }

    /// Removes a block (cache-consistency invalidation or subset
    /// maintenance). Returns whether it was present and whether dirty.
    pub fn remove(&mut self, addr: BlockAddr) -> Option<Eviction> {
        let key = addr.to_u64();
        let id = self.map.remove(&key)?;
        let entry = self.lru.remove(id).expect("mapped node must live");
        let dirty = self.dirty.remove(&key);
        debug_assert_eq!(dirty, entry.dirty);
        self.stats.invalidations += 1;
        Some(Eviction {
            addr: entry.addr,
            dirty: entry.dirty,
        })
    }

    /// Address and dirtiness of the current LRU block, if any.
    pub fn peek_lru(&self) -> Option<Eviction> {
        let id = self.lru.back()?;
        let e = self.lru.get(id).expect("live tail");
        Some(Eviction {
            addr: e.addr,
            dirty: e.dirty,
        })
    }

    /// Snapshot of all dirty block addresses, sorted by address.
    ///
    /// The syncer uses this to flush: it iterates the snapshot, writing each
    /// block to the next level and marking it clean on completion. The sort
    /// keeps simulation runs deterministic (hash-set iteration order is
    /// randomized per instance).
    pub fn dirty_blocks(&self) -> Vec<BlockAddr> {
        let mut v: Vec<BlockAddr> = self.dirty.iter().map(|&k| BlockAddr::from_u64(k)).collect();
        v.sort_unstable();
        v
    }

    /// Iterates cached blocks from MRU to LRU (test/diagnostic use).
    pub fn iter_mru(&self) -> impl Iterator<Item = (BlockAddr, bool)> + '_ {
        self.lru.iter().map(|e| (e.addr, e.dirty))
    }

    /// Verifies internal invariants; test support.
    ///
    /// # Panics
    ///
    /// Panics if the map, LRU list, and dirty set disagree.
    pub fn check_invariants(&self) {
        assert_eq!(self.map.len(), self.lru.len(), "map/lru size mismatch");
        assert!(self.lru.len() <= self.capacity.max(0), "over capacity");
        let mut dirty_seen = 0;
        for (addr, dirty) in self.iter_mru() {
            let id = self.map.get(&addr.to_u64()).expect("lru block not in map");
            assert_eq!(
                self.lru.get(*id).map(|e| e.addr),
                Some(addr),
                "map points at wrong node"
            );
            assert_eq!(
                self.dirty.contains(&addr.to_u64()),
                dirty,
                "dirty set mismatch"
            );
            dirty_seen += usize::from(dirty);
        }
        assert_eq!(dirty_seen, self.dirty.len(), "dirty count mismatch");
    }
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("dirty", &self.dirty_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcache_types::FileId;

    fn addr(n: u32) -> BlockAddr {
        BlockAddr::new(FileId(0), n)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = BlockCache::new(4);
        assert!(!c.lookup(addr(1)));
        c.insert(addr(1), false);
        assert!(c.lookup(addr(1)));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        c.check_invariants();
    }

    #[test]
    fn eviction_order_is_lru() {
        let mut c = BlockCache::new(3);
        c.insert(addr(1), false);
        c.insert(addr(2), false);
        c.insert(addr(3), false);
        assert!(c.lookup(addr(1))); // 1 promoted; LRU is 2
        match c.insert(addr(4), false) {
            InsertOutcome::InsertedEvicting(ev) => {
                assert_eq!(ev.addr, addr(2));
                assert!(!ev.dirty);
            }
            other => panic!("unexpected {other:?}"),
        }
        c.check_invariants();
    }

    #[test]
    fn dirty_eviction_reports_dirty() {
        let mut c = BlockCache::new(1);
        c.insert(addr(1), true);
        match c.insert(addr(2), false) {
            InsertOutcome::InsertedEvicting(ev) => {
                assert_eq!(ev.addr, addr(1));
                assert!(ev.dirty);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.stats().dirty_evictions, 1);
        assert_eq!(c.dirty_len(), 0);
        c.check_invariants();
    }

    #[test]
    fn overwrite_marks_dirty_and_promotes() {
        let mut c = BlockCache::new(2);
        c.insert(addr(1), false);
        c.insert(addr(2), false);
        assert_eq!(c.insert(addr(1), true), InsertOutcome::AlreadyPresent);
        assert!(c.is_dirty(addr(1)));
        // 1 is MRU now, so inserting 3 evicts 2.
        match c.insert(addr(3), false) {
            InsertOutcome::InsertedEvicting(ev) => assert_eq!(ev.addr, addr(2)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.stats().overwrites, 1);
        c.check_invariants();
    }

    #[test]
    fn clean_insert_does_not_clean_dirty_block() {
        let mut c = BlockCache::new(2);
        c.insert(addr(1), true);
        assert_eq!(c.insert(addr(1), false), InsertOutcome::AlreadyPresent);
        assert!(c.is_dirty(addr(1)), "refetch must not lose dirtiness");
    }

    #[test]
    fn mark_clean_and_dirty_roundtrip() {
        let mut c = BlockCache::new(2);
        c.insert(addr(1), true);
        assert_eq!(c.dirty_len(), 1);
        assert!(c.mark_clean(addr(1)));
        assert_eq!(c.dirty_len(), 0);
        assert!(c.mark_dirty(addr(1)));
        assert!(c.is_dirty(addr(1)));
        assert!(!c.mark_dirty(addr(9)));
        assert!(!c.mark_clean(addr(9)));
        c.check_invariants();
    }

    #[test]
    fn remove_invalidates() {
        let mut c = BlockCache::new(2);
        c.insert(addr(1), true);
        let ev = c.remove(addr(1)).unwrap();
        assert!(ev.dirty);
        assert!(!c.contains(addr(1)));
        assert_eq!(c.remove(addr(1)), None);
        assert_eq!(c.stats().invalidations, 1);
        c.check_invariants();
    }

    #[test]
    fn zero_capacity_cache_stores_nothing() {
        let mut c = BlockCache::new(0);
        assert_eq!(c.insert(addr(1), false), InsertOutcome::ZeroCapacity);
        assert!(!c.lookup(addr(1)));
        assert_eq!(c.len(), 0);
        c.check_invariants();
    }

    #[test]
    fn promote_reorders_without_stats() {
        let mut c = BlockCache::new(2);
        c.insert(addr(1), false);
        c.insert(addr(2), false);
        let before = *c.stats();
        assert!(c.promote(addr(1)));
        assert!(!c.promote(addr(9)));
        assert_eq!(
            *c.stats(),
            before,
            "promote must not touch hit/miss counters"
        );
        // 1 is MRU, so 2 is the eviction victim.
        assert_eq!(c.peek_lru().unwrap().addr, addr(2));
        c.check_invariants();
    }

    #[test]
    fn dirty_blocks_snapshot() {
        let mut c = BlockCache::new(8);
        for i in 0..6 {
            c.insert(addr(i), i % 2 == 0);
        }
        let mut dirty = c.dirty_blocks();
        dirty.sort();
        assert_eq!(dirty, vec![addr(0), addr(2), addr(4)]);
    }

    #[test]
    fn peek_lru_matches_next_eviction() {
        let mut c = BlockCache::new(2);
        c.insert(addr(1), true);
        c.insert(addr(2), false);
        let peek = c.peek_lru().unwrap();
        match c.insert(addr(3), false) {
            InsertOutcome::InsertedEvicting(ev) => assert_eq!(ev, peek),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn len_tracks_inserts_up_to_capacity() {
        let mut c = BlockCache::new(3);
        for i in 0..10 {
            c.insert(addr(i), false);
            assert!(c.len() <= 3);
        }
        assert!(c.is_full());
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().insertions, 10);
        assert_eq!(c.stats().evictions(), 7);
        c.check_invariants();
    }

    mod replacement_policies {
        use super::*;

        #[test]
        fn fifo_ignores_hits() {
            let mut c = BlockCache::with_policy(2, EvictionPolicy::Fifo);
            c.insert(addr(1), false);
            c.insert(addr(2), false);
            assert!(c.lookup(addr(1))); // does not protect 1 under FIFO
            match c.insert(addr(3), false) {
                InsertOutcome::InsertedEvicting(ev) => assert_eq!(ev.addr, addr(1)),
                other => panic!("unexpected {other:?}"),
            }
            c.check_invariants();
        }

        #[test]
        fn clock_gives_second_chance() {
            let mut c = BlockCache::with_policy(2, EvictionPolicy::Clock);
            c.insert(addr(1), false);
            c.insert(addr(2), false);
            assert!(c.lookup(addr(1))); // sets 1's reference bit
                                        // Victim scan: 1 is referenced → spared (bit cleared, rotated);
                                        // 2 is unreferenced → evicted.
            match c.insert(addr(3), false) {
                InsertOutcome::InsertedEvicting(ev) => assert_eq!(ev.addr, addr(2)),
                other => panic!("unexpected {other:?}"),
            }
            assert!(c.contains(addr(1)));
            c.check_invariants();
        }

        #[test]
        fn clock_evicts_oldest_when_all_referenced() {
            let mut c = BlockCache::with_policy(3, EvictionPolicy::Clock);
            for i in 1..=3 {
                c.insert(addr(i), false);
                assert!(c.lookup(addr(i)));
            }
            // All referenced: one full rotation clears every bit, then the
            // oldest (1) is the first unreferenced victim.
            match c.insert(addr(4), false) {
                InsertOutcome::InsertedEvicting(ev) => assert_eq!(ev.addr, addr(1)),
                other => panic!("unexpected {other:?}"),
            }
            c.check_invariants();
        }

        #[test]
        fn lru_beats_fifo_on_skewed_access() {
            // A hot block re-referenced between streams survives under LRU
            // and CLOCK but not under FIFO: hit counts order LRU ≥ CLOCK > FIFO.
            let run = |policy| {
                let mut c = BlockCache::with_policy(8, policy);
                let mut hits = 0u64;
                for round in 0..200u32 {
                    if c.lookup(addr(0)) {
                        hits += 1;
                    }
                    c.insert(addr(0), false);
                    for i in 0..4 {
                        let a = addr(1 + (round * 4 + i) % 40);
                        c.lookup(a);
                        c.insert(a, false);
                    }
                }
                c.check_invariants();
                hits
            };
            let lru = run(EvictionPolicy::Lru);
            let clock = run(EvictionPolicy::Clock);
            let fifo = run(EvictionPolicy::Fifo);
            assert!(lru >= clock, "lru {lru} vs clock {clock}");
            assert!(clock > fifo, "clock {clock} vs fifo {fifo}");
        }

        #[test]
        fn policies_share_dirty_semantics() {
            for policy in [
                EvictionPolicy::Lru,
                EvictionPolicy::Fifo,
                EvictionPolicy::Clock,
            ] {
                let mut c = BlockCache::with_policy(1, policy);
                c.insert(addr(1), true);
                match c.insert(addr(2), false) {
                    InsertOutcome::InsertedEvicting(ev) => {
                        assert!(ev.dirty, "{policy:?} must report dirty victim");
                    }
                    other => panic!("unexpected {other:?}"),
                }
                c.check_invariants();
            }
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use std::collections::VecDeque;

        #[derive(Debug, Clone)]
        enum Op {
            Lookup(u32),
            Insert(u32, bool),
            MarkClean(u32),
            Remove(u32),
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            let key = 0u32..24;
            prop_oneof![
                key.clone().prop_map(Op::Lookup),
                (key.clone(), any::<bool>()).prop_map(|(k, d)| Op::Insert(k, d)),
                key.clone().prop_map(Op::MarkClean),
                key.prop_map(Op::Remove),
            ]
        }

        /// Reference model: VecDeque of (key, dirty), front = MRU.
        struct Model {
            cap: usize,
            q: VecDeque<(u32, bool)>,
        }

        impl Model {
            fn lookup(&mut self, k: u32) -> bool {
                if let Some(p) = self.q.iter().position(|&(x, _)| x == k) {
                    let e = self.q.remove(p).unwrap();
                    self.q.push_front(e);
                    true
                } else {
                    false
                }
            }

            fn insert(&mut self, k: u32, d: bool) -> Option<(u32, bool)> {
                if let Some(p) = self.q.iter().position(|&(x, _)| x == k) {
                    let mut e = self.q.remove(p).unwrap();
                    e.1 |= d;
                    self.q.push_front(e);
                    return None;
                }
                let evicted = if self.q.len() >= self.cap {
                    self.q.pop_back()
                } else {
                    None
                };
                self.q.push_front((k, d));
                evicted
            }
        }

        proptest! {
            #[test]
            fn matches_reference_model(
                cap in 1usize..8,
                ops in proptest::collection::vec(op_strategy(), 0..300),
            ) {
                let mut sut = BlockCache::new(cap);
                let mut model = Model { cap, q: VecDeque::new() };
                for op in ops {
                    match op {
                        Op::Lookup(k) => {
                            prop_assert_eq!(sut.lookup(addr(k)), model.lookup(k));
                        }
                        Op::Insert(k, d) => {
                            let expect = model.insert(k, d);
                            match (sut.insert(addr(k), d), expect) {
                                (InsertOutcome::InsertedEvicting(ev), Some((mk, md))) => {
                                    prop_assert_eq!(ev.addr, addr(mk));
                                    prop_assert_eq!(ev.dirty, md);
                                }
                                (InsertOutcome::Inserted, None) => {}
                                (InsertOutcome::AlreadyPresent, None) => {}
                                (got, want) => {
                                    return Err(TestCaseError::fail(
                                        format!("insert mismatch: sut={got:?} model={want:?}")));
                                }
                            }
                        }
                        Op::MarkClean(k) => {
                            let in_model = model.q.iter_mut().find(|(x, _)| *x == k);
                            let expect = in_model.map(|e| { e.1 = false; true }).unwrap_or(false);
                            prop_assert_eq!(sut.mark_clean(addr(k)), expect);
                        }
                        Op::Remove(k) => {
                            let expect = model.q.iter().position(|&(x, _)| x == k)
                                .map(|p| model.q.remove(p).unwrap());
                            let got = sut.remove(addr(k));
                            prop_assert_eq!(got.map(|e| (e.addr, e.dirty)),
                                            expect.map(|(k, d)| (addr(k), d)));
                        }
                    }
                    sut.check_invariants();
                    prop_assert_eq!(sut.len(), model.q.len());
                    prop_assert_eq!(
                        sut.iter_mru().collect::<Vec<_>>(),
                        model.q.iter().map(|&(k, d)| (addr(k), d)).collect::<Vec<_>>()
                    );
                }
            }
        }
    }
}
