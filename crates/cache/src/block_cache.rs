//! Single-tier block cache with dirty tracking.
//!
//! Used for the RAM cache everywhere and for the flash cache in the *naive*
//! and *lookaside* architectures. The cache is a timing-free data
//! structure; the simulator charges device/network time around each
//! transition and performs the actual writeback I/O for dirty evictions.
//!
//! The paper fixes the replacement policy: "we put aside other relevant
//! but secondary considerations, such as cache replacement policy (we use
//! LRU)" (§1). [`EvictionPolicy::Lru`] is therefore the default; FIFO and
//! CLOCK (second chance) are provided for the replacement-policy ablation.

use fcache_types::{BlockAddr, FxBuildHasher, FxHashMap};

use crate::lru::{LruList, NodeId};
use crate::stats::CacheStats;

/// Replacement policy of a [`BlockCache`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum EvictionPolicy {
    /// Least recently used — the paper's policy and the default.
    #[default]
    Lru,
    /// Insertion order; hits do not affect eviction order.
    Fifo,
    /// CLOCK / second chance: hits set a reference bit; eviction rotates
    /// past referenced entries, clearing their bits.
    Clock,
}

/// Per-block cache entry.
#[derive(Clone, Copy, Debug)]
struct Entry {
    addr: BlockAddr,
    dirty: bool,
    /// CLOCK reference bit (unused by LRU/FIFO).
    referenced: bool,
    /// Intrusive dirty-list links: dirty entries form a doubly-linked list
    /// threaded through the slab, so dirty-set snapshots iterate O(dirty)
    /// without a second hash structure (links maintained in O(1)).
    dirty_prev: Option<NodeId>,
    dirty_next: Option<NodeId>,
}

/// What `insert` had to evict, if anything.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Eviction {
    /// The block that was evicted.
    pub addr: BlockAddr,
    /// True if the block was dirty: the caller must write it to the next
    /// level before the data is lost ("synchronous evictions once the
    /// cache fills", §7.1).
    pub dirty: bool,
}

/// Result of [`BlockCache::insert`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InsertOutcome {
    /// The block was already cached; it was promoted (and possibly
    /// re-dirtied).
    AlreadyPresent,
    /// Inserted into a free slot.
    Inserted,
    /// Inserted; the returned victim was evicted to make room.
    InsertedEvicting(Eviction),
    /// The cache has zero capacity; nothing was stored.
    ZeroCapacity,
}

/// A fixed-capacity LRU cache of 4 KB blocks with dirty tracking.
///
/// # Examples
///
/// ```
/// use fcache_cache::{BlockCache, InsertOutcome};
/// use fcache_types::{BlockAddr, FileId};
///
/// let mut c = BlockCache::new(2);
/// let a = BlockAddr::new(FileId(1), 0);
/// let b = BlockAddr::new(FileId(1), 1);
/// let d = BlockAddr::new(FileId(1), 2);
/// assert_eq!(c.insert(a, false), InsertOutcome::Inserted);
/// assert_eq!(c.insert(b, false), InsertOutcome::Inserted);
/// assert!(c.lookup(a)); // promotes `a`
/// match c.insert(d, false) {
///     InsertOutcome::InsertedEvicting(ev) => assert_eq!(ev.addr, b),
///     other => panic!("unexpected {other:?}"),
/// }
/// ```
pub struct BlockCache {
    capacity: usize,
    policy: EvictionPolicy,
    /// One fast-hash probe per lookup; the dirty bit lives inside the LRU
    /// entry (not a second structure), so every hot-path operation touches
    /// exactly one hash table. See `PERF.md`.
    map: FxHashMap<u64, NodeId>,
    lru: LruList<Entry>,
    /// Count of entries with `dirty == true` (kept in lockstep with the
    /// entry bits; the former `HashSet<u64>` second structure is gone).
    dirty_count: usize,
    /// Head of the intrusive dirty list (see `Entry::dirty_prev`).
    dirty_head: Option<NodeId>,
    stats: CacheStats,
}

impl BlockCache {
    /// Creates a cache holding at most `capacity_blocks` blocks.
    ///
    /// A capacity of zero models "no cache at this tier": every lookup
    /// misses and inserts are dropped.
    pub fn new(capacity_blocks: usize) -> Self {
        Self::with_policy(capacity_blocks, EvictionPolicy::Lru)
    }

    /// Creates a cache with an explicit replacement policy (ablation use;
    /// the paper's caches are LRU).
    pub fn with_policy(capacity_blocks: usize, policy: EvictionPolicy) -> Self {
        Self {
            capacity: capacity_blocks,
            policy,
            map: FxHashMap::with_capacity_and_hasher(
                capacity_blocks.min(1 << 22),
                FxBuildHasher::default(),
            ),
            lru: LruList::with_capacity(capacity_blocks.min(1 << 22)),
            dirty_count: 0,
            dirty_head: None,
            stats: CacheStats::default(),
        }
    }

    /// Replacement policy in force.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Applies the policy's on-reference behavior to a resident node.
    fn reference(&mut self, id: NodeId) {
        match self.policy {
            EvictionPolicy::Lru => self.lru.touch(id),
            EvictionPolicy::Fifo => {}
            EvictionPolicy::Clock => {
                self.lru
                    .get_mut(id)
                    .expect("mapped node must live")
                    .referenced = true;
            }
        }
    }

    /// Selects the eviction victim per the policy without unlinking it.
    fn select_victim(&mut self) -> NodeId {
        match self.policy {
            EvictionPolicy::Lru | EvictionPolicy::Fifo => {
                self.lru.back().expect("full cache has a victim")
            }
            EvictionPolicy::Clock => {
                // Second chance: rotate referenced entries to the front,
                // clearing their bit; evict the first unreferenced one.
                // Terminates: each rotation clears one bit.
                loop {
                    let id = self.lru.back().expect("full cache has a victim");
                    let referenced = {
                        let e = self.lru.get_mut(id).expect("live tail");
                        let r = e.referenced;
                        e.referenced = false;
                        r
                    };
                    if referenced {
                        self.lru.touch(id);
                    } else {
                        return id;
                    }
                }
            }
        }
    }

    /// Marks a clean resident entry dirty, pushing it onto the intrusive
    /// dirty list. Caller ensures the entry is currently clean.
    fn link_dirty(&mut self, id: NodeId) {
        let old_head = self.dirty_head;
        {
            let e = self.lru.get_mut(id).expect("mapped node must live");
            debug_assert!(!e.dirty, "link_dirty on dirty entry");
            e.dirty = true;
            e.dirty_prev = None;
            e.dirty_next = old_head;
        }
        if let Some(h) = old_head {
            self.lru.get_mut(h).expect("dirty head lives").dirty_prev = Some(id);
        }
        self.dirty_head = Some(id);
        self.dirty_count += 1;
    }

    /// Marks a dirty resident entry clean, unlinking it from the intrusive
    /// dirty list. Caller ensures the entry is currently dirty.
    fn unlink_dirty(&mut self, id: NodeId) {
        let (prev, next) = {
            let e = self.lru.get_mut(id).expect("mapped node must live");
            debug_assert!(e.dirty, "unlink_dirty on clean entry");
            e.dirty = false;
            (e.dirty_prev.take(), e.dirty_next.take())
        };
        match prev {
            Some(p) => self.lru.get_mut(p).expect("dirty prev lives").dirty_next = next,
            None => self.dirty_head = next,
        }
        if let Some(n) = next {
            self.lru.get_mut(n).expect("dirty next lives").dirty_prev = prev;
        }
        self.dirty_count -= 1;
    }

    /// Maximum block count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current block count.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// True if no blocks are cached.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// True when every slot is occupied.
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity
    }

    /// Number of dirty blocks.
    pub fn dirty_len(&self) -> usize {
        self.dirty_count
    }

    /// Statistics counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the statistics counters (cache contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Looks a block up, promoting it to MRU on a hit.
    pub fn lookup(&mut self, addr: BlockAddr) -> bool {
        match self.map.get(&addr.to_u64()) {
            Some(&id) => {
                self.reference(id);
                self.stats.hits += 1;
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// True if the block is cached; no promotion, no statistics.
    pub fn contains(&self, addr: BlockAddr) -> bool {
        self.map.contains_key(&addr.to_u64())
    }

    /// Promotes a block *without* counting a hit or miss (the promotion
    /// itself follows the replacement policy's reference behavior).
    ///
    /// Used for inclusive-cache maintenance: a RAM hit promotes the flash
    /// copy so the flash LRU order stays a superset of RAM recency and the
    /// naive/lookaside subset property holds. Returns false if absent.
    pub fn promote(&mut self, addr: BlockAddr) -> bool {
        match self.map.get(&addr.to_u64()) {
            Some(&id) => {
                self.reference(id);
                true
            }
            None => false,
        }
    }

    /// True if the block is cached and dirty.
    pub fn is_dirty(&self, addr: BlockAddr) -> bool {
        match self.map.get(&addr.to_u64()) {
            Some(&id) => self.lru.get(id).expect("mapped node must live").dirty,
            None => false,
        }
    }

    /// Inserts (or overwrites) a block, promoting it to MRU.
    ///
    /// If the block is present it stays present; `dirty = true` marks it
    /// dirty (a clean insert never cleans an existing dirty block — data
    /// freshness wins). If the cache is full the LRU block is evicted and
    /// returned so the caller can write it back if dirty.
    pub fn insert(&mut self, addr: BlockAddr, dirty: bool) -> InsertOutcome {
        let key = addr.to_u64();
        if let Some(&id) = self.map.get(&key) {
            self.reference(id);
            if dirty {
                self.stats.overwrites += 1;
                if !self.lru.get(id).expect("mapped node must live").dirty {
                    self.link_dirty(id);
                }
            }
            return InsertOutcome::AlreadyPresent;
        }
        if self.capacity == 0 {
            return InsertOutcome::ZeroCapacity;
        }

        let entry = Entry {
            addr,
            dirty: false,
            referenced: false,
            dirty_prev: None,
            dirty_next: None,
        };
        let outcome = if self.lru.len() >= self.capacity {
            let victim_id = self.select_victim();
            let was_dirty = self.lru.get(victim_id).expect("victim lives").dirty;
            if was_dirty {
                self.unlink_dirty(victim_id);
                self.stats.dirty_evictions += 1;
            } else {
                self.stats.clean_evictions += 1;
            }
            // Recycle the victim's node in place: same slot `remove` +
            // `push_front` would reuse, minus the free-list round trip.
            let victim = self.lru.replace_to_front(victim_id, entry);
            self.map.remove(&victim.addr.to_u64());
            self.map.insert(key, victim_id);
            if dirty {
                self.link_dirty(victim_id);
            }
            InsertOutcome::InsertedEvicting(Eviction {
                addr: victim.addr,
                dirty: was_dirty,
            })
        } else {
            let id = self.lru.push_front(entry);
            self.map.insert(key, id);
            if dirty {
                self.link_dirty(id);
            }
            InsertOutcome::Inserted
        };
        self.stats.insertions += 1;
        outcome
    }

    /// Marks a cached block dirty (no promotion). Returns false if absent.
    pub fn mark_dirty(&mut self, addr: BlockAddr) -> bool {
        match self.map.get(&addr.to_u64()) {
            Some(&id) => {
                if !self.lru.get(id).expect("mapped node must live").dirty {
                    self.link_dirty(id);
                }
                true
            }
            None => false,
        }
    }

    /// Marks a cached block clean (after a completed writeback).
    /// Returns false if the block is absent.
    pub fn mark_clean(&mut self, addr: BlockAddr) -> bool {
        match self.map.get(&addr.to_u64()) {
            Some(&id) => {
                if self.lru.get(id).expect("mapped node must live").dirty {
                    self.unlink_dirty(id);
                }
                true
            }
            None => false,
        }
    }

    /// Removes a block (cache-consistency invalidation or subset
    /// maintenance). Returns whether it was present and whether dirty.
    pub fn remove(&mut self, addr: BlockAddr) -> Option<Eviction> {
        let id = self.map.remove(&addr.to_u64())?;
        let was_dirty = self.lru.get(id).expect("mapped node must live").dirty;
        if was_dirty {
            self.unlink_dirty(id);
        }
        let entry = self.lru.remove(id).expect("mapped node must live");
        self.stats.invalidations += 1;
        Some(Eviction {
            addr: entry.addr,
            dirty: was_dirty,
        })
    }

    /// Address and dirtiness of the current LRU block, if any.
    pub fn peek_lru(&self) -> Option<Eviction> {
        let id = self.lru.back()?;
        let e = self.lru.get(id).expect("live tail");
        Some(Eviction {
            addr: e.addr,
            dirty: e.dirty,
        })
    }

    /// Appends all dirty block addresses to `out`, sorted by address.
    ///
    /// The syncer uses this to flush: it iterates the snapshot, writing each
    /// block to the next level and marking it clean on completion. Taking a
    /// caller-owned buffer lets periodic flushers reuse one allocation
    /// across ticks instead of churning the allocator. The sort keeps flush
    /// order deterministic and independent of hash-map layout.
    pub fn dirty_blocks_into(&self, out: &mut Vec<BlockAddr>) {
        let start = out.len();
        out.reserve(self.dirty_count);
        let mut cur = self.dirty_head;
        while let Some(id) = cur {
            let e = self.lru.get(id).expect("dirty entry lives");
            out.push(e.addr);
            cur = e.dirty_next;
        }
        out[start..].sort_unstable();
    }

    /// Snapshot of all dirty block addresses, sorted by address
    /// (allocating convenience wrapper over [`BlockCache::dirty_blocks_into`]).
    pub fn dirty_blocks(&self) -> Vec<BlockAddr> {
        let mut v = Vec::with_capacity(self.dirty_count);
        self.dirty_blocks_into(&mut v);
        v
    }

    /// Iterates cached blocks from MRU to LRU (test/diagnostic use).
    pub fn iter_mru(&self) -> impl Iterator<Item = (BlockAddr, bool)> + '_ {
        self.lru.iter().map(|e| (e.addr, e.dirty))
    }

    /// Verifies internal invariants; test support.
    ///
    /// # Panics
    ///
    /// Panics if the map, LRU list, and dirty set disagree.
    pub fn check_invariants(&self) {
        assert_eq!(self.map.len(), self.lru.len(), "map/lru size mismatch");
        assert!(self.lru.len() <= self.capacity, "over capacity");
        let mut dirty_seen = 0;
        for (addr, dirty) in self.iter_mru() {
            let id = self.map.get(&addr.to_u64()).expect("lru block not in map");
            assert_eq!(
                self.lru.get(*id).map(|e| e.addr),
                Some(addr),
                "map points at wrong node"
            );
            assert_eq!(self.is_dirty(addr), dirty, "dirty bit mismatch");
            dirty_seen += usize::from(dirty);
        }
        assert_eq!(dirty_seen, self.dirty_count, "dirty count mismatch");
        // The intrusive dirty list must contain exactly the dirty entries,
        // with consistent back-links.
        let mut walked = 0;
        let mut prev: Option<NodeId> = None;
        let mut cur = self.dirty_head;
        while let Some(id) = cur {
            let e = self.lru.get(id).expect("dirty entry lives");
            assert!(e.dirty, "dirty list holds clean entry");
            assert_eq!(e.dirty_prev, prev, "dirty list back-link mismatch");
            walked += 1;
            assert!(walked <= self.dirty_count, "dirty list cycle");
            prev = cur;
            cur = e.dirty_next;
        }
        assert_eq!(walked, self.dirty_count, "dirty list length mismatch");
    }
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("dirty", &self.dirty_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcache_types::FileId;

    fn addr(n: u32) -> BlockAddr {
        BlockAddr::new(FileId(0), n)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = BlockCache::new(4);
        assert!(!c.lookup(addr(1)));
        c.insert(addr(1), false);
        assert!(c.lookup(addr(1)));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        c.check_invariants();
    }

    #[test]
    fn eviction_order_is_lru() {
        let mut c = BlockCache::new(3);
        c.insert(addr(1), false);
        c.insert(addr(2), false);
        c.insert(addr(3), false);
        assert!(c.lookup(addr(1))); // 1 promoted; LRU is 2
        match c.insert(addr(4), false) {
            InsertOutcome::InsertedEvicting(ev) => {
                assert_eq!(ev.addr, addr(2));
                assert!(!ev.dirty);
            }
            other => panic!("unexpected {other:?}"),
        }
        c.check_invariants();
    }

    #[test]
    fn dirty_eviction_reports_dirty() {
        let mut c = BlockCache::new(1);
        c.insert(addr(1), true);
        match c.insert(addr(2), false) {
            InsertOutcome::InsertedEvicting(ev) => {
                assert_eq!(ev.addr, addr(1));
                assert!(ev.dirty);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.stats().dirty_evictions, 1);
        assert_eq!(c.dirty_len(), 0);
        c.check_invariants();
    }

    #[test]
    fn overwrite_marks_dirty_and_promotes() {
        let mut c = BlockCache::new(2);
        c.insert(addr(1), false);
        c.insert(addr(2), false);
        assert_eq!(c.insert(addr(1), true), InsertOutcome::AlreadyPresent);
        assert!(c.is_dirty(addr(1)));
        // 1 is MRU now, so inserting 3 evicts 2.
        match c.insert(addr(3), false) {
            InsertOutcome::InsertedEvicting(ev) => assert_eq!(ev.addr, addr(2)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.stats().overwrites, 1);
        c.check_invariants();
    }

    #[test]
    fn clean_insert_does_not_clean_dirty_block() {
        let mut c = BlockCache::new(2);
        c.insert(addr(1), true);
        assert_eq!(c.insert(addr(1), false), InsertOutcome::AlreadyPresent);
        assert!(c.is_dirty(addr(1)), "refetch must not lose dirtiness");
    }

    #[test]
    fn mark_clean_and_dirty_roundtrip() {
        let mut c = BlockCache::new(2);
        c.insert(addr(1), true);
        assert_eq!(c.dirty_len(), 1);
        assert!(c.mark_clean(addr(1)));
        assert_eq!(c.dirty_len(), 0);
        assert!(c.mark_dirty(addr(1)));
        assert!(c.is_dirty(addr(1)));
        assert!(!c.mark_dirty(addr(9)));
        assert!(!c.mark_clean(addr(9)));
        c.check_invariants();
    }

    #[test]
    fn remove_invalidates() {
        let mut c = BlockCache::new(2);
        c.insert(addr(1), true);
        let ev = c.remove(addr(1)).unwrap();
        assert!(ev.dirty);
        assert!(!c.contains(addr(1)));
        assert_eq!(c.remove(addr(1)), None);
        assert_eq!(c.stats().invalidations, 1);
        c.check_invariants();
    }

    #[test]
    fn zero_capacity_cache_stores_nothing() {
        let mut c = BlockCache::new(0);
        assert_eq!(c.insert(addr(1), false), InsertOutcome::ZeroCapacity);
        assert!(!c.lookup(addr(1)));
        assert_eq!(c.len(), 0);
        c.check_invariants();
    }

    #[test]
    fn promote_reorders_without_stats() {
        let mut c = BlockCache::new(2);
        c.insert(addr(1), false);
        c.insert(addr(2), false);
        let before = *c.stats();
        assert!(c.promote(addr(1)));
        assert!(!c.promote(addr(9)));
        assert_eq!(
            *c.stats(),
            before,
            "promote must not touch hit/miss counters"
        );
        // 1 is MRU, so 2 is the eviction victim.
        assert_eq!(c.peek_lru().unwrap().addr, addr(2));
        c.check_invariants();
    }

    #[test]
    fn dirty_blocks_snapshot() {
        let mut c = BlockCache::new(8);
        for i in 0..6 {
            c.insert(addr(i), i % 2 == 0);
        }
        let mut dirty = c.dirty_blocks();
        dirty.sort();
        assert_eq!(dirty, vec![addr(0), addr(2), addr(4)]);
    }

    #[test]
    fn peek_lru_matches_next_eviction() {
        let mut c = BlockCache::new(2);
        c.insert(addr(1), true);
        c.insert(addr(2), false);
        let peek = c.peek_lru().unwrap();
        match c.insert(addr(3), false) {
            InsertOutcome::InsertedEvicting(ev) => assert_eq!(ev, peek),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn len_tracks_inserts_up_to_capacity() {
        let mut c = BlockCache::new(3);
        for i in 0..10 {
            c.insert(addr(i), false);
            assert!(c.len() <= 3);
        }
        assert!(c.is_full());
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().insertions, 10);
        assert_eq!(c.stats().evictions(), 7);
        c.check_invariants();
    }

    mod replacement_policies {
        use super::*;

        #[test]
        fn fifo_ignores_hits() {
            let mut c = BlockCache::with_policy(2, EvictionPolicy::Fifo);
            c.insert(addr(1), false);
            c.insert(addr(2), false);
            assert!(c.lookup(addr(1))); // does not protect 1 under FIFO
            match c.insert(addr(3), false) {
                InsertOutcome::InsertedEvicting(ev) => assert_eq!(ev.addr, addr(1)),
                other => panic!("unexpected {other:?}"),
            }
            c.check_invariants();
        }

        #[test]
        fn clock_gives_second_chance() {
            let mut c = BlockCache::with_policy(2, EvictionPolicy::Clock);
            c.insert(addr(1), false);
            c.insert(addr(2), false);
            assert!(c.lookup(addr(1))); // sets 1's reference bit
                                        // Victim scan: 1 is referenced → spared (bit cleared, rotated);
                                        // 2 is unreferenced → evicted.
            match c.insert(addr(3), false) {
                InsertOutcome::InsertedEvicting(ev) => assert_eq!(ev.addr, addr(2)),
                other => panic!("unexpected {other:?}"),
            }
            assert!(c.contains(addr(1)));
            c.check_invariants();
        }

        #[test]
        fn clock_evicts_oldest_when_all_referenced() {
            let mut c = BlockCache::with_policy(3, EvictionPolicy::Clock);
            for i in 1..=3 {
                c.insert(addr(i), false);
                assert!(c.lookup(addr(i)));
            }
            // All referenced: one full rotation clears every bit, then the
            // oldest (1) is the first unreferenced victim.
            match c.insert(addr(4), false) {
                InsertOutcome::InsertedEvicting(ev) => assert_eq!(ev.addr, addr(1)),
                other => panic!("unexpected {other:?}"),
            }
            c.check_invariants();
        }

        #[test]
        fn lru_beats_fifo_on_skewed_access() {
            // A hot block re-referenced between streams survives under LRU
            // and CLOCK but not under FIFO: hit counts order LRU ≥ CLOCK > FIFO.
            let run = |policy| {
                let mut c = BlockCache::with_policy(8, policy);
                let mut hits = 0u64;
                for round in 0..200u32 {
                    if c.lookup(addr(0)) {
                        hits += 1;
                    }
                    c.insert(addr(0), false);
                    for i in 0..4 {
                        let a = addr(1 + (round * 4 + i) % 40);
                        c.lookup(a);
                        c.insert(a, false);
                    }
                }
                c.check_invariants();
                hits
            };
            let lru = run(EvictionPolicy::Lru);
            let clock = run(EvictionPolicy::Clock);
            let fifo = run(EvictionPolicy::Fifo);
            assert!(lru >= clock, "lru {lru} vs clock {clock}");
            assert!(clock > fifo, "clock {clock} vs fifo {fifo}");
        }

        #[test]
        fn policies_share_dirty_semantics() {
            for policy in [
                EvictionPolicy::Lru,
                EvictionPolicy::Fifo,
                EvictionPolicy::Clock,
            ] {
                let mut c = BlockCache::with_policy(1, policy);
                c.insert(addr(1), true);
                match c.insert(addr(2), false) {
                    InsertOutcome::InsertedEvicting(ev) => {
                        assert!(ev.dirty, "{policy:?} must report dirty victim");
                    }
                    other => panic!("unexpected {other:?}"),
                }
                c.check_invariants();
            }
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use std::collections::VecDeque;

        #[derive(Debug, Clone)]
        enum Op {
            Lookup(u32),
            Insert(u32, bool),
            MarkClean(u32),
            Remove(u32),
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            let key = 0u32..24;
            prop_oneof![
                key.clone().prop_map(Op::Lookup),
                (key.clone(), any::<bool>()).prop_map(|(k, d)| Op::Insert(k, d)),
                key.clone().prop_map(Op::MarkClean),
                key.prop_map(Op::Remove),
            ]
        }

        /// Reference model: VecDeque of (key, dirty), front = MRU.
        struct Model {
            cap: usize,
            q: VecDeque<(u32, bool)>,
        }

        impl Model {
            fn lookup(&mut self, k: u32) -> bool {
                if let Some(p) = self.q.iter().position(|&(x, _)| x == k) {
                    let e = self.q.remove(p).unwrap();
                    self.q.push_front(e);
                    true
                } else {
                    false
                }
            }

            fn insert(&mut self, k: u32, d: bool) -> Option<(u32, bool)> {
                if let Some(p) = self.q.iter().position(|&(x, _)| x == k) {
                    let mut e = self.q.remove(p).unwrap();
                    e.1 |= d;
                    self.q.push_front(e);
                    return None;
                }
                let evicted = if self.q.len() >= self.cap {
                    self.q.pop_back()
                } else {
                    None
                };
                self.q.push_front((k, d));
                evicted
            }
        }

        /// The pre-refactor representation: recency order in one structure,
        /// dirtiness in a *separate* set (the two-probe model this cache
        /// replaced). The folded single-probe cache must stay observably
        /// identical to it.
        struct TwoStructureModel {
            cap: usize,
            order: VecDeque<u32>, // front = MRU
            dirty: std::collections::HashSet<u32>,
        }

        impl TwoStructureModel {
            fn insert(&mut self, k: u32, d: bool) -> Option<(u32, bool)> {
                if let Some(p) = self.order.iter().position(|&x| x == k) {
                    self.order.remove(p);
                    self.order.push_front(k);
                    if d {
                        self.dirty.insert(k);
                    }
                    return None;
                }
                let evicted = if self.order.len() >= self.cap {
                    self.order.pop_back().map(|v| (v, self.dirty.remove(&v)))
                } else {
                    None
                };
                self.order.push_front(k);
                if d {
                    self.dirty.insert(k);
                }
                evicted
            }
        }

        proptest! {
            #[test]
            fn folded_dirty_bit_matches_two_structure_model(
                cap in 1usize..10,
                ops in proptest::collection::vec(op_strategy(), 0..300),
            ) {
                let mut sut = BlockCache::new(cap);
                let mut model = TwoStructureModel {
                    cap,
                    order: VecDeque::new(),
                    dirty: std::collections::HashSet::new(),
                };
                for op in ops {
                    match op {
                        Op::Lookup(k) => {
                            let hit = sut.lookup(addr(k));
                            if let Some(p) = model.order.iter().position(|&x| x == k) {
                                prop_assert!(hit);
                                model.order.remove(p);
                                model.order.push_front(k);
                            } else {
                                prop_assert!(!hit);
                            }
                        }
                        Op::Insert(k, d) => {
                            match (sut.insert(addr(k), d), model.insert(k, d)) {
                                (InsertOutcome::InsertedEvicting(ev), Some((mk, md))) => {
                                    prop_assert_eq!(ev.addr, addr(mk));
                                    prop_assert_eq!(ev.dirty, md);
                                }
                                (InsertOutcome::Inserted, None)
                                | (InsertOutcome::AlreadyPresent, None) => {}
                                (got, want) => {
                                    return Err(TestCaseError::fail(
                                        format!("insert mismatch: sut={got:?} model={want:?}")));
                                }
                            }
                        }
                        Op::MarkClean(k) => {
                            let present = model.order.contains(&k);
                            model.dirty.remove(&k);
                            prop_assert_eq!(sut.mark_clean(addr(k)), present);
                        }
                        Op::Remove(k) => {
                            let got = sut.remove(addr(k));
                            if let Some(p) = model.order.iter().position(|&x| x == k) {
                                model.order.remove(p);
                                let was_dirty = model.dirty.remove(&k);
                                prop_assert_eq!(got.map(|e| (e.addr, e.dirty)),
                                                Some((addr(k), was_dirty)));
                            } else {
                                prop_assert_eq!(got, None);
                            }
                        }
                    }
                    // Observable dirty state must match the two-structure
                    // model exactly after every operation.
                    sut.check_invariants();
                    prop_assert_eq!(sut.dirty_len(), model.dirty.len());
                    for &k in model.order.iter() {
                        prop_assert_eq!(sut.is_dirty(addr(k)), model.dirty.contains(&k));
                    }
                    let mut expect: Vec<BlockAddr> =
                        model.dirty.iter().map(|&k| addr(k)).collect();
                    expect.sort_unstable();
                    prop_assert_eq!(sut.dirty_blocks(), expect);
                }
            }

            #[test]
            fn matches_reference_model(
                cap in 1usize..8,
                ops in proptest::collection::vec(op_strategy(), 0..300),
            ) {
                let mut sut = BlockCache::new(cap);
                let mut model = Model { cap, q: VecDeque::new() };
                for op in ops {
                    match op {
                        Op::Lookup(k) => {
                            prop_assert_eq!(sut.lookup(addr(k)), model.lookup(k));
                        }
                        Op::Insert(k, d) => {
                            let expect = model.insert(k, d);
                            match (sut.insert(addr(k), d), expect) {
                                (InsertOutcome::InsertedEvicting(ev), Some((mk, md))) => {
                                    prop_assert_eq!(ev.addr, addr(mk));
                                    prop_assert_eq!(ev.dirty, md);
                                }
                                (InsertOutcome::Inserted, None) => {}
                                (InsertOutcome::AlreadyPresent, None) => {}
                                (got, want) => {
                                    return Err(TestCaseError::fail(
                                        format!("insert mismatch: sut={got:?} model={want:?}")));
                                }
                            }
                        }
                        Op::MarkClean(k) => {
                            let in_model = model.q.iter_mut().find(|(x, _)| *x == k);
                            let expect = in_model.map(|e| { e.1 = false; true }).unwrap_or(false);
                            prop_assert_eq!(sut.mark_clean(addr(k)), expect);
                        }
                        Op::Remove(k) => {
                            let expect = model.q.iter().position(|&(x, _)| x == k)
                                .map(|p| model.q.remove(p).unwrap());
                            let got = sut.remove(addr(k));
                            prop_assert_eq!(got.map(|e| (e.addr, e.dirty)),
                                            expect.map(|(k, d)| (addr(k), d)));
                        }
                    }
                    sut.check_invariants();
                    prop_assert_eq!(sut.len(), model.q.len());
                    prop_assert_eq!(
                        sut.iter_mru().collect::<Vec<_>>(),
                        model.q.iter().map(|&(k, d)| (addr(k), d)).collect::<Vec<_>>()
                    );
                }
            }
        }
    }
}
