//! Wire vocabulary for the sim-time telemetry subsystem.
//!
//! An application operation's latency decomposes into a small fixed set of
//! **phases** — where the nanoseconds went while the op was in flight.
//! [`Phase`] names them; the simulator core attributes every awaited
//! interval of an op to exactly one phase, so the per-phase durations sum
//! exactly to the op's reported latency (PERF.md invariant 12). The enum
//! lives here (not in the core crate) because span-stream rows and report
//! sections serialize the phase labels: they are wire format, shared by
//! the writer (core) and the analyzer (`fcsim trace`).

/// One attribution bucket of an op-lifecycle span.
///
/// Discriminants are stable indices into fixed `[_; Phase::COUNT]` arrays;
/// [`Phase::label`] is the stable wire name used in span-stream JSONL rows
/// and serialized reports. Do not reorder without bumping the span-stream
/// golden row.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Phase {
    /// RAM/unified cache probe and fill time (RAM model sleeps, hit
    /// promotion, insertion charges).
    CacheProbe = 0,
    /// Waiting for a flash device queue slot (SSD timing only; the flat
    /// model has no queue).
    FlashQueue = 1,
    /// Flash device service time (the flat per-block latency, or the SSD
    /// model's drawn service time).
    DeviceService = 2,
    /// Network segment transfer legs (request and response packets).
    Net = 3,
    /// Filer service time (fast/slow reads, writes).
    Filer = 4,
    /// Waiting on a replica race: hedged-read completion and shard
    /// failover waits.
    Failover = 5,
    /// Retry machinery: operation timeouts and backoff sleeps.
    RetryBackoff = 6,
    /// Parked in degraded mode waiting for an outage to clear.
    DegradedPark = 7,
}

impl Phase {
    /// Number of phases (the length of per-phase arrays).
    pub const COUNT: usize = 8;

    /// Every phase, in index order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::CacheProbe,
        Phase::FlashQueue,
        Phase::DeviceService,
        Phase::Net,
        Phase::Filer,
        Phase::Failover,
        Phase::RetryBackoff,
        Phase::DegradedPark,
    ];

    /// Stable index into per-phase arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable wire name (the JSON key in span rows and report sections).
    pub fn label(self) -> &'static str {
        match self {
            Phase::CacheProbe => "cache_probe",
            Phase::FlashQueue => "flash_queue",
            Phase::DeviceService => "device_service",
            Phase::Net => "net",
            Phase::Filer => "filer",
            Phase::Failover => "failover",
            Phase::RetryBackoff => "retry_backoff",
            Phase::DegradedPark => "degraded_park",
        }
    }

    /// Inverse of [`Phase::label`] (the analyzer's decode path).
    pub fn from_label(s: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.label() == s)
    }

    /// Phase at a stable index (inverse of [`Phase::index`]).
    pub fn from_index(i: usize) -> Option<Phase> {
        Phase::ALL.get(i).copied()
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_stable_and_dense() {
        for (i, p) in Phase::ALL.into_iter().enumerate() {
            assert_eq!(p.index(), i);
            assert_eq!(Phase::from_index(i), Some(p));
        }
        assert_eq!(Phase::ALL.len(), Phase::COUNT);
        assert_eq!(Phase::from_index(Phase::COUNT), None);
    }

    #[test]
    fn labels_roundtrip_and_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for p in Phase::ALL {
            assert!(seen.insert(p.label()), "duplicate label {}", p.label());
            assert_eq!(Phase::from_label(p.label()), Some(p));
        }
        assert_eq!(Phase::from_label("bogus"), None);
    }

    #[test]
    fn labels_are_snake_case_wire_names() {
        for p in Phase::ALL {
            assert!(p
                .label()
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '_'));
            assert_eq!(p.to_string(), p.label());
        }
    }
}
