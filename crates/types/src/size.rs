//! Human-friendly byte sizes.
//!
//! Experiment configurations in the paper are stated in sizes like "8 GB of
//! RAM and 64 GB of flash"; [`ByteSize`] parses and formats such quantities
//! and supports the exact linear scaling used to run paper-shaped
//! experiments at laptop scale (see DESIGN.md §4).

use core::fmt;
use core::str::FromStr;

/// A byte quantity with binary-unit parsing and formatting.
///
/// # Examples
///
/// ```
/// use fcache_types::ByteSize;
///
/// let flash: ByteSize = "64G".parse().unwrap();
/// assert_eq!(flash.bytes(), 64 << 30);
/// assert_eq!(flash.to_string(), "64G");
/// assert_eq!(flash.scaled_down(64), ByteSize::gib(1));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Constructs from raw bytes.
    pub const fn bytes_exact(b: u64) -> Self {
        Self(b)
    }

    /// Constructs from KiB.
    pub const fn kib(k: u64) -> Self {
        Self(k << 10)
    }

    /// Constructs from MiB.
    pub const fn mib(m: u64) -> Self {
        Self(m << 20)
    }

    /// Constructs from GiB.
    pub const fn gib(g: u64) -> Self {
        Self(g << 30)
    }

    /// Constructs from TiB.
    pub const fn tib(t: u64) -> Self {
        Self(t << 40)
    }

    /// Raw byte count.
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// Number of whole 4 KB blocks this size holds (rounded down — a cache
    /// of 4 KB + 1 byte holds one block).
    pub const fn blocks(self) -> u64 {
        self.0 / crate::block::BLOCK_SIZE
    }

    /// Divides the size by `factor` (linear experiment scaling).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub const fn scaled_down(self, factor: u64) -> Self {
        assert!(factor > 0, "scale factor must be nonzero");
        Self(self.0 / factor)
    }

    /// True if zero bytes.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        const UNITS: [(u64, &str); 4] = [
            (1 << 40, "T"),
            (1 << 30, "G"),
            (1 << 20, "M"),
            (1 << 10, "K"),
        ];
        for (factor, suffix) in UNITS {
            if b >= factor && b.is_multiple_of(factor) {
                return write!(f, "{}{}", b / factor, suffix);
            }
        }
        if b == 0 {
            return write!(f, "0");
        }
        // Fall back to a decimal rendering of the largest unit.
        for (factor, suffix) in UNITS {
            if b >= factor {
                return write!(f, "{:.2}{}", b as f64 / factor as f64, suffix);
            }
        }
        write!(f, "{b}B")
    }
}

impl fmt::Debug for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ByteSize({self})")
    }
}

/// Error parsing a [`ByteSize`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseSizeError(pub String);

impl fmt::Display for ParseSizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid byte size: {:?}", self.0)
    }
}

impl std::error::Error for ParseSizeError {}

impl FromStr for ByteSize {
    type Err = ParseSizeError;

    /// Parses forms like `0`, `4096`, `256K`, `64M`, `8G`, `1.5G`, `2T`,
    /// with an optional `B`/`iB` suffix (`64GiB`, `64GB` are binary here;
    /// the paper's sizes are conventional powers of two).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim();
        if t.is_empty() {
            return Err(ParseSizeError(s.to_string()));
        }
        let lower = t.to_ascii_lowercase();
        let lower = lower
            .strip_suffix("ib")
            .or_else(|| lower.strip_suffix('b'))
            .unwrap_or(&lower);
        let (num, mult) = match lower.as_bytes().last() {
            Some(b'k') => (&lower[..lower.len() - 1], 1u64 << 10),
            Some(b'm') => (&lower[..lower.len() - 1], 1 << 20),
            Some(b'g') => (&lower[..lower.len() - 1], 1 << 30),
            Some(b't') => (&lower[..lower.len() - 1], 1 << 40),
            _ => (lower, 1),
        };
        let num = num.trim();
        if num.is_empty() {
            return Err(ParseSizeError(s.to_string()));
        }
        if let Ok(i) = num.parse::<u64>() {
            return Ok(ByteSize(i.saturating_mul(mult)));
        }
        match num.parse::<f64>() {
            Ok(fv) if fv >= 0.0 && fv.is_finite() => {
                Ok(ByteSize((fv * mult as f64).round() as u64))
            }
            _ => Err(ParseSizeError(s.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(ByteSize::kib(256).bytes(), 256 * 1024);
        assert_eq!(ByteSize::mib(1).bytes(), 1 << 20);
        assert_eq!(ByteSize::gib(8).bytes(), 8u64 << 30);
        assert_eq!(ByteSize::tib(1).bytes(), 1u64 << 40);
    }

    #[test]
    fn parse_plain_and_suffixed() {
        assert_eq!("4096".parse::<ByteSize>().unwrap().bytes(), 4096);
        assert_eq!("256K".parse::<ByteSize>().unwrap(), ByteSize::kib(256));
        assert_eq!("64g".parse::<ByteSize>().unwrap(), ByteSize::gib(64));
        assert_eq!("1.5G".parse::<ByteSize>().unwrap().bytes(), 3 << 29);
        assert_eq!("2T".parse::<ByteSize>().unwrap(), ByteSize::tib(2));
        assert_eq!("64GiB".parse::<ByteSize>().unwrap(), ByteSize::gib(64));
        assert_eq!("64GB".parse::<ByteSize>().unwrap(), ByteSize::gib(64));
        assert_eq!("0".parse::<ByteSize>().unwrap(), ByteSize::ZERO);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "  ", "G", "-1K", "12Q", "1e999G"] {
            assert!(bad.parse::<ByteSize>().is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn display_roundtrips_round_sizes() {
        for s in ["64G", "8G", "256K", "1T", "0"] {
            let v: ByteSize = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
    }

    #[test]
    fn blocks_rounds_down() {
        assert_eq!(ByteSize(4095).blocks(), 0);
        assert_eq!(ByteSize(4096).blocks(), 1);
        assert_eq!(ByteSize::gib(8).blocks(), (8u64 << 30) / 4096);
    }

    #[test]
    fn scaling_preserves_ratios() {
        let ram = ByteSize::gib(8);
        let flash = ByteSize::gib(64);
        let s = 64;
        assert_eq!(
            flash.scaled_down(s).bytes() / ram.scaled_down(s).bytes(),
            flash.bytes() / ram.bytes()
        );
    }

    #[test]
    fn ordering() {
        assert!(ByteSize::kib(1) < ByteSize::mib(1));
    }
}
