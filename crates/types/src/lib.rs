//! Shared vocabulary for the *Flash Caching on the Storage Client*
//! reproduction.
//!
//! This crate defines the domain types every other crate speaks:
//!
//! - [`BlockAddr`] — a 4 KB block within a file, the unit of caching.
//! - [`HostId`] / [`ThreadId`] — who issued an I/O.
//! - [`TraceOp`] / [`Trace`] — the block-level trace format of Section 4 of
//!   the paper, with a compact binary codec.
//! - [`ByteSize`] — human-friendly byte quantities ("8G", "256K") used
//!   throughout experiment configuration.
//! - [`FxHashMap`] / [`FxHasher`] — the deterministic fast hasher every
//!   hot-path map in the simulator uses (see `PERF.md`).
//! - [`Json`] — a hand-rolled, dependency-free JSON value/codec (the
//!   offline environment has no `serde`) used by the structured results
//!   pipeline to write schema-versioned JSONL result rows.
//!
//! The paper's traces "contain read and write operations. Each operation
//! identifies a file and a range of blocks within that file. Each operation
//! also carries a thread ID and host ID." [`TraceOp`] is exactly that record.

pub mod block;
pub mod fault;
pub mod fleet;
pub mod fxhash;
pub mod ids;
pub mod json;
pub mod op;
pub mod size;
pub mod telemetry;
pub mod trace;

pub use block::{BlockAddr, BLOCK_SHIFT, BLOCK_SIZE};
pub use fault::{
    parse_time_ns, FaultClause, FaultDirection, FaultEffect, FaultError, FaultKind, FaultPlan,
    FaultSchedule, FaultTarget, FaultWindow, ResolvedFaultSet, ResolvedWindow,
};
pub use fleet::FleetTopology;
pub use fxhash::{mix64, FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{FileId, HostId, ThreadId};
pub use json::{Json, JsonError};
pub use op::{OpKind, TraceOp};
pub use size::ByteSize;
pub use telemetry::Phase;
pub use trace::{
    stream_stats, ByteReader, SliceSource, SlotCursor, Trace, TraceMeta, TraceReader, TraceSource,
    TraceStats, TRACE_CHUNK_OPS,
};
