//! Trace container, statistics, and a compact binary codec.
//!
//! Traces can be held in memory (the common case — the generator feeds the
//! simulator directly) or serialized to a file with a small little-endian
//! binary format so generated workloads can be archived and replayed.

use std::io::{self, Read, Write};

use crate::{
    ids::{FileId, HostId, ThreadId},
    op::{OpKind, TraceOp},
};

/// Magic bytes identifying the trace file format.
const MAGIC: &[u8; 8] = b"FCTRACE1";

/// Metadata describing how a trace was generated.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct TraceMeta {
    /// Number of hosts issuing I/O.
    pub hosts: u16,
    /// Threads per host.
    pub threads_per_host: u16,
    /// Working-set size in bytes (0 if not applicable).
    pub working_set_bytes: u64,
    /// Fraction of I/Os drawn from the working set, in percent.
    pub working_set_pct: u8,
    /// Write percentage of the workload.
    pub write_pct: u8,
    /// RNG seed the trace was generated from.
    pub seed: u64,
}

/// An in-memory block-level trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Generation metadata.
    pub meta: TraceMeta,
    /// Operations in issue order.
    pub ops: Vec<TraceOp>,
}

impl Trace {
    /// Creates an empty trace with the given metadata.
    pub fn new(meta: TraceMeta) -> Self {
        Self {
            meta,
            ops: Vec::new(),
        }
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the trace has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Computes summary statistics over the trace.
    pub fn stats(&self) -> TraceStats {
        let mut s = TraceStats::default();
        for op in &self.ops {
            s.ops += 1;
            s.blocks += op.nblocks as u64;
            s.bytes += op.bytes();
            if op.kind.is_write() {
                s.write_ops += 1;
                s.write_blocks += op.nblocks as u64;
            }
            if op.warmup {
                s.warmup_ops += 1;
                s.warmup_bytes += op.bytes();
            }
            s.max_host = s.max_host.max(op.host.0);
            s.max_thread = s.max_thread.max(op.thread.0);
        }
        s
    }

    /// Serializes the trace to a writer in the `FCTRACE1` binary format.
    ///
    /// Layout: magic, meta fields, op count, then one 24-byte record per op.
    pub fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&self.meta.hosts.to_le_bytes())?;
        w.write_all(&self.meta.threads_per_host.to_le_bytes())?;
        w.write_all(&self.meta.working_set_bytes.to_le_bytes())?;
        w.write_all(&[self.meta.working_set_pct, self.meta.write_pct])?;
        w.write_all(&self.meta.seed.to_le_bytes())?;
        w.write_all(&(self.ops.len() as u64).to_le_bytes())?;
        for op in &self.ops {
            w.write_all(&op.host.0.to_le_bytes())?;
            w.write_all(&op.thread.0.to_le_bytes())?;
            let flags: u8 = u8::from(op.kind.is_write()) | (u8::from(op.warmup) << 1);
            w.write_all(&[flags, 0, 0, 0])?;
            w.write_all(&op.file.0.to_le_bytes())?;
            w.write_all(&op.start_block.to_le_bytes())?;
            w.write_all(&op.nblocks.to_le_bytes())?;
        }
        Ok(())
    }

    /// Deserializes a trace written by [`Trace::encode`].
    ///
    /// Returns `InvalidData` on a bad magic number or truncated input.
    pub fn decode<R: Read>(r: &mut R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad trace magic",
            ));
        }
        let meta = TraceMeta {
            hosts: read_u16(r)?,
            threads_per_host: read_u16(r)?,
            working_set_bytes: read_u64(r)?,
            working_set_pct: read_u8(r)?,
            write_pct: read_u8(r)?,
            seed: read_u64(r)?,
        };
        let n = read_u64(r)? as usize;
        let mut ops = Vec::with_capacity(n.min(1 << 24));
        for _ in 0..n {
            let host = HostId(read_u16(r)?);
            let thread = ThreadId(read_u16(r)?);
            let mut flags = [0u8; 4];
            r.read_exact(&mut flags)?;
            let kind = if flags[0] & 1 != 0 {
                OpKind::Write
            } else {
                OpKind::Read
            };
            let warmup = flags[0] & 2 != 0;
            let file = FileId(read_u32(r)?);
            let start_block = read_u32(r)?;
            let nblocks = read_u32(r)?;
            if nblocks == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "zero-length trace op",
                ));
            }
            ops.push(TraceOp {
                host,
                thread,
                kind,
                file,
                start_block,
                nblocks,
                warmup,
            });
        }
        Ok(Self { meta, ops })
    }
}

fn read_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u16<R: Read>(r: &mut R) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Summary statistics over a trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total operations.
    pub ops: u64,
    /// Total blocks touched (sum of op lengths).
    pub blocks: u64,
    /// Total bytes moved.
    pub bytes: u64,
    /// Write operations.
    pub write_ops: u64,
    /// Blocks written.
    pub write_blocks: u64,
    /// Operations flagged as warmup.
    pub warmup_ops: u64,
    /// Bytes in warmup operations.
    pub warmup_bytes: u64,
    /// Highest host id seen.
    pub max_host: u16,
    /// Highest thread id seen.
    pub max_thread: u16,
}

impl TraceStats {
    /// Observed write fraction in operations (0.0–1.0).
    pub fn write_fraction(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.write_ops as f64 / self.ops as f64
        }
    }

    /// Observed warmup fraction by bytes (0.0–1.0).
    pub fn warmup_fraction(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            self.warmup_bytes as f64 / self.bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let meta = TraceMeta {
            hosts: 2,
            threads_per_host: 8,
            working_set_bytes: 60 << 30,
            working_set_pct: 80,
            write_pct: 30,
            seed: 42,
        };
        let mut t = Trace::new(meta);
        for i in 0..100u32 {
            t.ops.push(TraceOp {
                host: HostId((i % 2) as u16),
                thread: ThreadId((i % 8) as u16),
                kind: if i % 3 == 0 {
                    OpKind::Write
                } else {
                    OpKind::Read
                },
                file: FileId(i / 10),
                start_block: i * 7,
                nblocks: 1 + i % 5,
                warmup: i < 50,
            });
        }
        t
    }

    #[test]
    fn codec_roundtrip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.encode(&mut buf).unwrap();
        let t2 = Trace::decode(&mut buf.as_slice()).unwrap();
        assert_eq!(t2.meta, t.meta);
        assert_eq!(t2.ops, t.ops);
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let mut buf = Vec::new();
        sample_trace().encode(&mut buf).unwrap();
        buf[0] = b'X';
        assert!(Trace::decode(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut buf = Vec::new();
        sample_trace().encode(&mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(Trace::decode(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn stats_counts() {
        let s = sample_trace().stats();
        assert_eq!(s.ops, 100);
        assert_eq!(s.write_ops, 34);
        assert_eq!(s.warmup_ops, 50);
        assert_eq!(s.max_host, 1);
        assert_eq!(s.max_thread, 7);
        assert!(s.write_fraction() > 0.3 && s.write_fraction() < 0.4);
    }

    #[test]
    fn empty_trace_stats() {
        let t = Trace::new(TraceMeta::default());
        let s = t.stats();
        assert_eq!(s.ops, 0);
        assert_eq!(s.write_fraction(), 0.0);
        assert_eq!(s.warmup_fraction(), 0.0);
        assert!(t.is_empty());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn op_strategy() -> impl Strategy<Value = TraceOp> {
            (
                0u16..4,
                0u16..8,
                any::<bool>(),
                0u32..1000,
                0u32..10_000,
                1u32..64,
                any::<bool>(),
            )
                .prop_map(|(h, t, w, file, start, n, warm)| TraceOp {
                    host: HostId(h),
                    thread: ThreadId(t),
                    kind: if w { OpKind::Write } else { OpKind::Read },
                    file: FileId(file),
                    start_block: start,
                    nblocks: n,
                    warmup: warm,
                })
        }

        proptest! {
            #[test]
            fn codec_roundtrips_arbitrary_traces(
                ops in proptest::collection::vec(op_strategy(), 0..200),
                hosts in 1u16..8,
                seed in any::<u64>(),
            ) {
                let t = Trace {
                    meta: TraceMeta { hosts, threads_per_host: 8, seed, ..TraceMeta::default() },
                    ops,
                };
                let mut buf = Vec::new();
                t.encode(&mut buf).unwrap();
                let d = Trace::decode(&mut buf.as_slice()).unwrap();
                prop_assert_eq!(d.meta, t.meta);
                prop_assert_eq!(d.ops, t.ops);
            }

            #[test]
            fn decode_never_panics_on_corruption(
                mut bytes in proptest::collection::vec(any::<u8>(), 0..256),
            ) {
                // Arbitrary bytes: decode must return Ok or Err, not panic.
                let _ = Trace::decode(&mut bytes.as_slice());
                // Valid header + garbage body.
                let mut buf = Vec::new();
                Trace::new(TraceMeta::default()).encode(&mut buf).unwrap();
                buf.append(&mut bytes);
                let _ = Trace::decode(&mut buf.as_slice());
            }
        }
    }
}
