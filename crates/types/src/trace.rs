//! Trace container, statistics, a compact binary codec, and the streaming
//! [`TraceSource`] abstraction.
//!
//! Traces can be held in memory (the common case — the generator feeds the
//! simulator directly) or serialized to a file with a small little-endian
//! binary format so generated workloads can be archived and replayed.
//! Consumers that do not need the whole trace resident pull ops through a
//! [`TraceSource`] in bounded chunks: [`TraceReader`] streams an archived
//! `FCTRACE1` file with O(chunk) memory, and [`SliceSource`] adapts an
//! in-memory [`Trace`] to the same interface.

use std::io::{self, Read, Write};

use crate::{
    ids::{FileId, HostId, ThreadId},
    op::{OpKind, TraceOp},
};

/// Magic bytes identifying the trace file format.
const MAGIC: &[u8; 8] = b"FCTRACE1";

/// Size of one encoded op record in bytes.
const RECORD_BYTES: usize = 20;

/// Default chunk size (in ops) for streamed trace consumption: 4096 packed
/// ops = 64 KiB resident, independent of trace length.
pub const TRACE_CHUNK_OPS: usize = 4096;

/// Metadata describing how a trace was generated.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct TraceMeta {
    /// Number of hosts issuing I/O.
    pub hosts: u16,
    /// Threads per host.
    pub threads_per_host: u16,
    /// Working-set size in bytes (0 if not applicable).
    pub working_set_bytes: u64,
    /// Fraction of I/Os drawn from the working set, in percent.
    pub working_set_pct: u8,
    /// Write percentage of the workload.
    pub write_pct: u8,
    /// RNG seed the trace was generated from.
    pub seed: u64,
}

/// A pull-based stream of trace operations.
///
/// This is the zero-copy trace pipeline's feeding interface: the replay
/// engine provisions hosts/threads from [`TraceSource::meta`] and then
/// drains ops in bounded chunks, so replay memory is O(chunk) instead of
/// O(trace). Delivery order is the trace's issue order; within one
/// `(host, thread)` pair ops must arrive in program order (the simulator's
/// "one I/O in progress per thread" rule depends on it).
pub trait TraceSource {
    /// Generation metadata; `hosts` × `threads_per_host` bounds the ids the
    /// stream may emit.
    fn meta(&self) -> &TraceMeta;

    /// Appends up to `max` next ops to `out`, returning how many were
    /// appended. Returning `Ok(0)` signals end of stream; the source is
    /// never polled again after that.
    fn next_chunk(&mut self, out: &mut Vec<TraceOp>, max: usize) -> io::Result<usize>;

    /// Forks an independent cursor over just the ops of one
    /// `(host, thread)` slot, in program order — the zero-copy replay fast
    /// path. Random-access sources (an in-memory trace, a mapped archive)
    /// return one cursor per slot so every replay thread pulls its own ops
    /// directly, with no shared chunk queues in between. Sequential
    /// sources return `None` (the default) and are drained through
    /// [`TraceSource::next_chunk`] instead.
    ///
    /// Contract: the union of all slots' cursors is exactly the stream
    /// `next_chunk` would deliver, and a cursor must yield the ops *it*
    /// owns that precede any invalid record, then fail — never an op past
    /// the corruption point.
    fn fork_slot(&self, host: u16, thread: u16) -> Option<Box<dyn SlotCursor + '_>> {
        let _ = (host, thread);
        None
    }
}

/// A pull cursor over one `(host, thread)` slot's ops, in program order.
/// See [`TraceSource::fork_slot`].
pub trait SlotCursor {
    /// Returns the slot's next op, `None` at end of stream, or the decode
    /// error for a corrupt record.
    fn next(&mut self) -> io::Result<Option<TraceOp>>;
}

impl<S: TraceSource + ?Sized> TraceSource for Box<S> {
    fn meta(&self) -> &TraceMeta {
        (**self).meta()
    }

    fn next_chunk(&mut self, out: &mut Vec<TraceOp>, max: usize) -> io::Result<usize> {
        (**self).next_chunk(out, max)
    }

    fn fork_slot(&self, host: u16, thread: u16) -> Option<Box<dyn SlotCursor + '_>> {
        (**self).fork_slot(host, thread)
    }
}

impl<S: TraceSource + ?Sized> TraceSource for &mut S {
    fn meta(&self) -> &TraceMeta {
        (**self).meta()
    }

    fn next_chunk(&mut self, out: &mut Vec<TraceOp>, max: usize) -> io::Result<usize> {
        (**self).next_chunk(out, max)
    }

    fn fork_slot(&self, host: u16, thread: u16) -> Option<Box<dyn SlotCursor + '_>> {
        (**self).fork_slot(host, thread)
    }
}

/// [`TraceSource`] over an in-memory [`Trace`].
///
/// Used to route materialized traces through the same streamed-replay code
/// path as generated or archived ones (and to prove the paths equivalent).
#[derive(Debug)]
pub struct SliceSource<'a> {
    trace: &'a Trace,
    pos: usize,
}

impl<'a> SliceSource<'a> {
    /// Wraps a trace, starting at its first op.
    pub fn new(trace: &'a Trace) -> Self {
        Self { trace, pos: 0 }
    }
}

impl TraceSource for SliceSource<'_> {
    fn meta(&self) -> &TraceMeta {
        &self.trace.meta
    }

    fn next_chunk(&mut self, out: &mut Vec<TraceOp>, max: usize) -> io::Result<usize> {
        let end = (self.pos + max).min(self.trace.ops.len());
        let n = end - self.pos;
        out.extend_from_slice(&self.trace.ops[self.pos..end]);
        self.pos = end;
        Ok(n)
    }

    fn fork_slot(&self, host: u16, thread: u16) -> Option<Box<dyn SlotCursor + '_>> {
        Some(Box::new(SliceCursor {
            ops: &self.trace.ops,
            pos: 0,
            slot: SlotFilter::new(&self.trace.meta, host, thread),
        }))
    }
}

/// The scan filter every [`SlotCursor`] shares: which slot it owns, plus
/// the grid its source's metadata promised. Scanned ops outside the grid
/// fail the cursor (matching the chunk-fed replay path, which fails the
/// run on the same op).
struct SlotFilter {
    host: u16,
    thread: u16,
    grid_hosts: u16,
    grid_threads: u16,
}

impl SlotFilter {
    fn new(meta: &TraceMeta, host: u16, thread: u16) -> Self {
        Self {
            host,
            thread,
            // The replay grid widens zero meta fields to 1; mirror that so
            // out-of-grid detection agrees with the chunk-fed path.
            grid_hosts: meta.hosts.max(1),
            grid_threads: meta.threads_per_host.max(1),
        }
    }

    /// `Ok(true)` when the op belongs to this cursor's slot; an error when
    /// the op falls outside the source's promised grid.
    fn admit(&self, op: &TraceOp) -> io::Result<bool> {
        if op.host().0 >= self.grid_hosts || op.thread().0 >= self.grid_threads {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "op for {} {} outside the {}-host/{}-thread grid its meta promised",
                    op.host(),
                    op.thread(),
                    self.grid_hosts,
                    self.grid_threads,
                ),
            ));
        }
        Ok(op.host().0 == self.host && op.thread().0 == self.thread)
    }
}

/// [`SlotCursor`] over an in-memory trace: scans the op slice, yielding
/// only the ops of one slot. Always starts from the head of the trace,
/// independent of any `next_chunk` progress on the parent source.
struct SliceCursor<'a> {
    ops: &'a [TraceOp],
    pos: usize,
    slot: SlotFilter,
}

impl SlotCursor for SliceCursor<'_> {
    fn next(&mut self) -> io::Result<Option<TraceOp>> {
        while self.pos < self.ops.len() {
            let op = self.ops[self.pos];
            self.pos += 1;
            if self.slot.admit(&op)? {
                return Ok(Some(op));
            }
        }
        Ok(None)
    }
}

/// Zero-copy [`TraceSource`] over a complete in-memory `FCTRACE1` image —
/// typically a memory-mapped archive. The header is parsed up front;
/// records decode straight out of the byte slice with no intermediate read
/// buffer, and [`TraceSource::fork_slot`] hands every replay thread its
/// own scanning cursor over the record region.
///
/// # Examples
///
/// ```
/// use fcache_types::{ByteReader, Trace, TraceMeta, TraceSource};
///
/// let mut buf = Vec::new();
/// Trace::new(TraceMeta::default()).encode(&mut buf).unwrap();
/// let mut reader = ByteReader::new(&buf).unwrap();
/// let mut chunk = Vec::new();
/// assert_eq!(reader.next_chunk(&mut chunk, 1024).unwrap(), 0);
/// ```
#[derive(Debug)]
pub struct ByteReader<'a> {
    /// Record region of the archive (header already consumed).
    records: &'a [u8],
    meta: TraceMeta,
    /// Byte offset of the next `next_chunk` record within `records`.
    pos: usize,
    /// Ops not yet yielded through `next_chunk`.
    remaining: u64,
}

impl<'a> ByteReader<'a> {
    /// Validates the `FCTRACE1` header of a complete archive image.
    pub fn new(bytes: &'a [u8]) -> io::Result<Self> {
        // `&[u8]: Read` advances the slice, so after the header parse `r`
        // is exactly the record region.
        let mut r = bytes;
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad trace magic",
            ));
        }
        let meta = TraceMeta {
            hosts: read_u16(&mut r)?,
            threads_per_host: read_u16(&mut r)?,
            working_set_bytes: read_u64(&mut r)?,
            working_set_pct: read_u8(&mut r)?,
            write_pct: read_u8(&mut r)?,
            seed: read_u64(&mut r)?,
        };
        let remaining = read_u64(&mut r)?;
        Ok(Self {
            records: r,
            meta,
            pos: 0,
            remaining,
        })
    }

    /// Ops not yet yielded through `next_chunk`.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

/// Borrows the record at byte offset `pos`, or fails like a truncated
/// read would.
fn record_at(records: &[u8], pos: usize) -> io::Result<&[u8; RECORD_BYTES]> {
    records
        .get(pos..pos + RECORD_BYTES)
        .map(|rec| rec.try_into().expect("slice is RECORD_BYTES long"))
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "trace record region truncated",
            )
        })
}

impl TraceSource for ByteReader<'_> {
    fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    fn next_chunk(&mut self, out: &mut Vec<TraceOp>, max: usize) -> io::Result<usize> {
        let n = (self.remaining.min(max as u64)) as usize;
        out.reserve(n);
        for _ in 0..n {
            out.push(decode_record(record_at(self.records, self.pos)?)?);
            self.pos += RECORD_BYTES;
        }
        self.remaining -= n as u64;
        Ok(n)
    }

    fn fork_slot(&self, host: u16, thread: u16) -> Option<Box<dyn SlotCursor + '_>> {
        // Count from the header, not `remaining`: cursors always cover the
        // whole stream regardless of `next_chunk` progress.
        let total = self.remaining + (self.pos / RECORD_BYTES) as u64;
        Some(Box::new(ByteCursor {
            records: self.records,
            pos: 0,
            remaining: total,
            slot: SlotFilter::new(&self.meta, host, thread),
        }))
    }
}

/// [`SlotCursor`] over a raw `FCTRACE1` record region.
///
/// Every record scanned past is fully decoded — not just the ones this
/// slot owns — so a corrupt, truncated, or out-of-grid record stops the
/// cursor exactly where the streamed [`TraceReader`] path would stop,
/// preserving the "every op before the bad record, none after" delivery
/// contract.
struct ByteCursor<'a> {
    records: &'a [u8],
    pos: usize,
    remaining: u64,
    slot: SlotFilter,
}

impl SlotCursor for ByteCursor<'_> {
    fn next(&mut self) -> io::Result<Option<TraceOp>> {
        while self.remaining > 0 {
            let op = decode_record(record_at(self.records, self.pos)?)?;
            self.pos += RECORD_BYTES;
            self.remaining -= 1;
            if self.slot.admit(&op)? {
                return Ok(Some(op));
            }
        }
        Ok(None)
    }
}

/// An in-memory block-level trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Generation metadata.
    pub meta: TraceMeta,
    /// Operations in issue order.
    pub ops: Vec<TraceOp>,
}

impl Trace {
    /// Creates an empty trace with the given metadata.
    pub fn new(meta: TraceMeta) -> Self {
        Self {
            meta,
            ops: Vec::new(),
        }
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the trace has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Computes summary statistics over the trace.
    pub fn stats(&self) -> TraceStats {
        let mut s = TraceStats::default();
        for op in &self.ops {
            s.accumulate(op);
        }
        s
    }

    /// Serializes the trace to a writer in the `FCTRACE1` binary format.
    ///
    /// Layout: magic, meta fields, op count, then one 20-byte record per op.
    /// The record format is unchanged from the seed (the packed in-memory
    /// layout is a RAM optimization, not a wire change), so archives written
    /// by older builds round-trip.
    pub fn encode<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&self.meta.hosts.to_le_bytes())?;
        w.write_all(&self.meta.threads_per_host.to_le_bytes())?;
        w.write_all(&self.meta.working_set_bytes.to_le_bytes())?;
        w.write_all(&[self.meta.working_set_pct, self.meta.write_pct])?;
        w.write_all(&self.meta.seed.to_le_bytes())?;
        w.write_all(&(self.ops.len() as u64).to_le_bytes())?;
        for op in &self.ops {
            encode_record(op, w)?;
        }
        Ok(())
    }

    /// Deserializes a trace written by [`Trace::encode`].
    ///
    /// Returns `InvalidData` on a bad magic number or truncated input. This
    /// materializes every op; use [`TraceReader`] to stream with O(chunk)
    /// memory instead.
    pub fn decode<R: Read>(r: &mut R) -> io::Result<Self> {
        let mut reader = TraceReader::new(r)?;
        let mut ops = Vec::with_capacity((reader.remaining() as usize).min(1 << 24));
        while reader.next_chunk(&mut ops, TRACE_CHUNK_OPS)? > 0 {}
        Ok(Self {
            meta: reader.into_meta(),
            ops,
        })
    }
}

/// Writes one op as a 20-byte `FCTRACE1` record.
fn encode_record<W: Write>(op: &TraceOp, w: &mut W) -> io::Result<()> {
    let mut rec = [0u8; RECORD_BYTES];
    rec[0..2].copy_from_slice(&op.host().0.to_le_bytes());
    rec[2..4].copy_from_slice(&op.thread().0.to_le_bytes());
    rec[4] = u8::from(op.is_write()) | (u8::from(op.warmup()) << 1);
    rec[8..12].copy_from_slice(&op.file().0.to_le_bytes());
    rec[12..16].copy_from_slice(&op.start_block().to_le_bytes());
    rec[16..20].copy_from_slice(&op.nblocks().to_le_bytes());
    w.write_all(&rec)
}

/// Parses one 20-byte `FCTRACE1` record into a packed op.
fn decode_record(rec: &[u8; RECORD_BYTES]) -> io::Result<TraceOp> {
    let host = HostId(u16::from_le_bytes([rec[0], rec[1]]));
    let thread = ThreadId(u16::from_le_bytes([rec[2], rec[3]]));
    let kind = if rec[4] & 1 != 0 {
        OpKind::Write
    } else {
        OpKind::Read
    };
    let warmup = rec[4] & 2 != 0;
    let file = FileId(u32::from_le_bytes([rec[8], rec[9], rec[10], rec[11]]));
    let start_block = u32::from_le_bytes([rec[12], rec[13], rec[14], rec[15]]);
    let nblocks = u32::from_le_bytes([rec[16], rec[17], rec[18], rec[19]]);
    if nblocks == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "zero-length trace op",
        ));
    }
    if nblocks > TraceOp::MAX_NBLOCKS {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "trace op block count exceeds packed range",
        ));
    }
    Ok(TraceOp::new(
        host,
        thread,
        kind,
        file,
        start_block,
        nblocks,
        warmup,
    ))
}

/// Streaming `FCTRACE1` decoder: reads the header eagerly, then yields ops
/// in bounded chunks so an arbitrarily large archive replays with O(chunk)
/// resident memory.
///
/// # Examples
///
/// ```
/// use fcache_types::{Trace, TraceMeta, TraceReader, TraceSource};
///
/// let mut buf = Vec::new();
/// Trace::new(TraceMeta::default()).encode(&mut buf).unwrap();
/// let mut reader = TraceReader::new(buf.as_slice()).unwrap();
/// let mut chunk = Vec::new();
/// assert_eq!(reader.next_chunk(&mut chunk, 1024).unwrap(), 0);
/// ```
#[derive(Debug)]
pub struct TraceReader<R> {
    r: R,
    meta: TraceMeta,
    remaining: u64,
}

impl<R: Read> TraceReader<R> {
    /// Reads and validates the `FCTRACE1` header, leaving the reader
    /// positioned at the first op record.
    pub fn new(mut r: R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad trace magic",
            ));
        }
        let meta = TraceMeta {
            hosts: read_u16(&mut r)?,
            threads_per_host: read_u16(&mut r)?,
            working_set_bytes: read_u64(&mut r)?,
            working_set_pct: read_u8(&mut r)?,
            write_pct: read_u8(&mut r)?,
            seed: read_u64(&mut r)?,
        };
        let remaining = read_u64(&mut r)?;
        Ok(Self { r, meta, remaining })
    }

    /// Ops not yet yielded.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Consumes the reader, returning the header metadata.
    pub fn into_meta(self) -> TraceMeta {
        self.meta
    }
}

impl<R: Read> TraceSource for TraceReader<R> {
    fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    fn next_chunk(&mut self, out: &mut Vec<TraceOp>, max: usize) -> io::Result<usize> {
        let n = (self.remaining.min(max as u64)) as usize;
        out.reserve(n);
        let mut rec = [0u8; RECORD_BYTES];
        for _ in 0..n {
            self.r.read_exact(&mut rec)?;
            out.push(decode_record(&rec)?);
        }
        self.remaining -= n as u64;
        Ok(n)
    }
}

/// Streams a `FCTRACE1` archive computing its [`TraceStats`] with O(chunk)
/// memory; returns the header meta, the stats, and the peak resident
/// op-buffer size in bytes.
pub fn stream_stats<R: Read>(r: R) -> io::Result<(TraceMeta, TraceStats, usize)> {
    let mut reader = TraceReader::new(r)?;
    let mut stats = TraceStats::default();
    let mut chunk: Vec<TraceOp> = Vec::with_capacity(TRACE_CHUNK_OPS);
    loop {
        chunk.clear();
        if reader.next_chunk(&mut chunk, TRACE_CHUNK_OPS)? == 0 {
            break;
        }
        for op in &chunk {
            stats.accumulate(op);
        }
    }
    let peak = chunk.capacity() * std::mem::size_of::<TraceOp>();
    Ok((reader.into_meta(), stats, peak))
}

fn read_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u16<R: Read>(r: &mut R) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Summary statistics over a trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total operations.
    pub ops: u64,
    /// Total blocks touched (sum of op lengths).
    pub blocks: u64,
    /// Total bytes moved.
    pub bytes: u64,
    /// Write operations.
    pub write_ops: u64,
    /// Blocks written.
    pub write_blocks: u64,
    /// Operations flagged as warmup.
    pub warmup_ops: u64,
    /// Bytes in warmup operations.
    pub warmup_bytes: u64,
    /// Highest host id seen.
    pub max_host: u16,
    /// Highest thread id seen.
    pub max_thread: u16,
}

impl TraceStats {
    /// Folds one op into the summary (streaming-friendly building block of
    /// [`Trace::stats`] and [`stream_stats`]).
    pub fn accumulate(&mut self, op: &TraceOp) {
        self.ops += 1;
        self.blocks += op.nblocks() as u64;
        self.bytes += op.bytes();
        if op.is_write() {
            self.write_ops += 1;
            self.write_blocks += op.nblocks() as u64;
        }
        if op.warmup() {
            self.warmup_ops += 1;
            self.warmup_bytes += op.bytes();
        }
        self.max_host = self.max_host.max(op.host().0);
        self.max_thread = self.max_thread.max(op.thread().0);
    }

    /// Observed write fraction in operations (0.0–1.0).
    pub fn write_fraction(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.write_ops as f64 / self.ops as f64
        }
    }

    /// Observed warmup fraction by bytes (0.0–1.0).
    pub fn warmup_fraction(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            self.warmup_bytes as f64 / self.bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let meta = TraceMeta {
            hosts: 2,
            threads_per_host: 8,
            working_set_bytes: 60 << 30,
            working_set_pct: 80,
            write_pct: 30,
            seed: 42,
        };
        let mut t = Trace::new(meta);
        for i in 0..100u32 {
            t.ops.push(TraceOp::new(
                HostId((i % 2) as u16),
                ThreadId((i % 8) as u16),
                if i % 3 == 0 {
                    OpKind::Write
                } else {
                    OpKind::Read
                },
                FileId(i / 10),
                i * 7,
                1 + i % 5,
                i < 50,
            ));
        }
        t
    }

    #[test]
    fn codec_roundtrip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.encode(&mut buf).unwrap();
        let t2 = Trace::decode(&mut buf.as_slice()).unwrap();
        assert_eq!(t2.meta, t.meta);
        assert_eq!(t2.ops, t.ops);
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let mut buf = Vec::new();
        sample_trace().encode(&mut buf).unwrap();
        buf[0] = b'X';
        assert!(Trace::decode(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut buf = Vec::new();
        sample_trace().encode(&mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(Trace::decode(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn decode_accepts_seed_format_records() {
        // A record laid out byte-for-byte as the seed encoder wrote it
        // (host u16, thread u16, flags u8, 3 pad bytes, file u32,
        // start u32, nblocks u32) must decode into the packed op.
        let mut buf = Vec::new();
        Trace::new(TraceMeta {
            hosts: 1,
            threads_per_host: 1,
            ..TraceMeta::default()
        })
        .encode(&mut buf)
        .unwrap();
        // Patch the op count to 1 and append a hand-built record.
        let count_at = buf.len() - 8;
        buf[count_at..].copy_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&7u16.to_le_bytes()); // host
        buf.extend_from_slice(&300u16.to_le_bytes()); // thread (> u8 range)
        buf.extend_from_slice(&[0b11, 0, 0, 0]); // write + warmup, padding
        buf.extend_from_slice(&9u32.to_le_bytes()); // file
        buf.extend_from_slice(&123u32.to_le_bytes()); // start
        buf.extend_from_slice(&4u32.to_le_bytes()); // nblocks
        let t = Trace::decode(&mut buf.as_slice()).unwrap();
        assert_eq!(t.ops.len(), 1);
        let op = &t.ops[0];
        assert_eq!(op.host(), HostId(7));
        assert_eq!(op.thread(), ThreadId(300));
        assert_eq!(op.kind(), OpKind::Write);
        assert!(op.warmup());
        assert_eq!(op.file(), FileId(9));
        assert_eq!(op.start_block(), 123);
        assert_eq!(op.nblocks(), 4);
    }

    #[test]
    fn streamed_reader_matches_bulk_decode() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.encode(&mut buf).unwrap();

        let mut reader = TraceReader::new(buf.as_slice()).unwrap();
        assert_eq!(reader.meta(), &t.meta);
        assert_eq!(reader.remaining(), t.len() as u64);
        let mut streamed = Vec::new();
        let mut chunk = Vec::new();
        loop {
            chunk.clear();
            // A deliberately tiny chunk exercises many refills.
            if reader.next_chunk(&mut chunk, 7).unwrap() == 0 {
                break;
            }
            streamed.extend_from_slice(&chunk);
        }
        assert_eq!(streamed, t.ops);
    }

    #[test]
    fn stream_stats_matches_materialized_stats() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.encode(&mut buf).unwrap();
        let (meta, stats, peak) = stream_stats(buf.as_slice()).unwrap();
        assert_eq!(meta, t.meta);
        assert_eq!(stats, t.stats());
        assert!(peak <= TRACE_CHUNK_OPS * std::mem::size_of::<TraceOp>());
    }

    #[test]
    fn slice_source_yields_trace_in_order() {
        let t = sample_trace();
        let mut src = SliceSource::new(&t);
        assert_eq!(src.meta(), &t.meta);
        let mut got = Vec::new();
        while src.next_chunk(&mut got, 13).unwrap() > 0 {}
        assert_eq!(got, t.ops);
    }

    // Byte offset of record `i` in an encoded archive: 8-byte magic,
    // 2+2+8+1+1+8 meta, 8-byte count.
    const HEADER_BYTES: usize = 38;

    fn record_offset(i: usize) -> usize {
        HEADER_BYTES + i * RECORD_BYTES
    }

    #[test]
    fn byte_reader_matches_streamed_reader() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.encode(&mut buf).unwrap();

        let mut reader = ByteReader::new(&buf).unwrap();
        assert_eq!(reader.meta(), &t.meta);
        assert_eq!(reader.remaining(), t.len() as u64);
        let mut got = Vec::new();
        let mut chunk = Vec::new();
        loop {
            chunk.clear();
            if reader.next_chunk(&mut chunk, 7).unwrap() == 0 {
                break;
            }
            got.extend_from_slice(&chunk);
        }
        assert_eq!(got, t.ops);
    }

    #[test]
    fn byte_reader_rejects_bad_magic_and_truncation() {
        let mut buf = Vec::new();
        sample_trace().encode(&mut buf).unwrap();
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(ByteReader::new(&bad).is_err());

        buf.truncate(buf.len() - 3);
        let mut reader = ByteReader::new(&buf).unwrap();
        let mut out = Vec::new();
        let err = loop {
            match reader.next_chunk(&mut out, 16) {
                Ok(0) => panic!("truncated archive must error"),
                Ok(_) => {}
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    // Every (host, thread) cursor of `src` must yield exactly the ops of
    // that slot, in program order, and the union must cover the trace.
    fn assert_cursors_partition(src: &dyn TraceSource, t: &Trace) {
        let mut covered = 0usize;
        for host in 0..t.meta.hosts {
            for thread in 0..t.meta.threads_per_host {
                let mut cursor = src.fork_slot(host, thread).expect("forkable");
                let mut got = Vec::new();
                while let Some(op) = cursor.next().unwrap() {
                    got.push(op);
                }
                let want: Vec<TraceOp> = t
                    .ops
                    .iter()
                    .copied()
                    .filter(|op| op.host().0 == host && op.thread().0 == thread)
                    .collect();
                assert_eq!(got, want, "slot ({host}, {thread})");
                covered += got.len();
            }
        }
        assert_eq!(covered, t.len());
    }

    #[test]
    fn slice_source_cursors_partition_the_trace() {
        let t = sample_trace();
        assert_cursors_partition(&SliceSource::new(&t), &t);
    }

    #[test]
    fn byte_reader_cursors_partition_the_trace() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.encode(&mut buf).unwrap();
        assert_cursors_partition(&ByteReader::new(&buf).unwrap(), &t);
    }

    #[test]
    fn byte_cursor_stops_at_a_corrupt_record_even_for_other_slots() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.encode(&mut buf).unwrap();
        // Zero out the nblocks field of record 40 — an op that belongs to
        // host 0, thread 0 (40 % 2 == 0, 40 % 8 == 0).
        let bad = 40;
        buf[record_offset(bad) + 16..record_offset(bad) + 20].fill(0);

        let reader = ByteReader::new(&buf).unwrap();
        // A different slot (host 1, thread 1 owns ops 1, 9, 17, ...) must
        // still stop at the foreign corrupt record: its ops before index
        // 40 arrive, then the decode error — never an op past it.
        let mut cursor = reader.fork_slot(1, 1).unwrap();
        let mut got = Vec::new();
        let err = loop {
            match cursor.next() {
                Ok(Some(op)) => got.push(op),
                Ok(None) => panic!("cursor must surface the corrupt record"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let want: Vec<TraceOp> = t.ops[..bad]
            .iter()
            .copied()
            .filter(|op| op.host().0 == 1 && op.thread().0 == 1)
            .collect();
        assert!(!want.is_empty());
        assert_eq!(got, want);
    }

    #[test]
    fn cursors_reject_ops_outside_the_meta_grid() {
        let mut t = sample_trace();
        // The trace's ops carry host 1, but the meta now promises 1 host.
        t.meta.hosts = 1;
        let src = SliceSource::new(&t);
        let mut cursor = src.fork_slot(0, 0).unwrap();
        let err = loop {
            match cursor.next() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("cursor must surface the out-of-grid op"),
                Err(e) => break e,
            }
        };
        assert!(
            err.to_string().contains("outside the 1-host/8-thread grid"),
            "got: {err}"
        );
    }

    #[test]
    fn stats_counts() {
        let s = sample_trace().stats();
        assert_eq!(s.ops, 100);
        assert_eq!(s.write_ops, 34);
        assert_eq!(s.warmup_ops, 50);
        assert_eq!(s.max_host, 1);
        assert_eq!(s.max_thread, 7);
        assert!(s.write_fraction() > 0.3 && s.write_fraction() < 0.4);
    }

    #[test]
    fn empty_trace_stats() {
        let t = Trace::new(TraceMeta::default());
        let s = t.stats();
        assert_eq!(s.ops, 0);
        assert_eq!(s.write_fraction(), 0.0);
        assert_eq!(s.warmup_fraction(), 0.0);
        assert!(t.is_empty());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn op_strategy() -> impl Strategy<Value = TraceOp> {
            (
                0u16..4,
                0u16..8,
                any::<bool>(),
                0u32..1000,
                0u32..10_000,
                // Cover the full packed range, including the 24-bit edge.
                prop_oneof![1u32..64, TraceOp::MAX_NBLOCKS - 2..TraceOp::MAX_NBLOCKS + 1],
                any::<bool>(),
            )
                .prop_map(|(h, t, w, file, start, n, warm)| {
                    TraceOp::new(
                        HostId(h),
                        ThreadId(t),
                        if w { OpKind::Write } else { OpKind::Read },
                        FileId(file),
                        start,
                        n,
                        warm,
                    )
                })
        }

        proptest! {
            #[test]
            fn codec_roundtrips_arbitrary_packed_traces(
                ops in proptest::collection::vec(op_strategy(), 0..200),
                hosts in 1u16..8,
                seed in any::<u64>(),
            ) {
                let t = Trace {
                    meta: TraceMeta { hosts, threads_per_host: 8, seed, ..TraceMeta::default() },
                    ops,
                };
                let mut buf = Vec::new();
                t.encode(&mut buf).unwrap();
                let d = Trace::decode(&mut buf.as_slice()).unwrap();
                prop_assert_eq!(d.meta, t.meta);
                prop_assert_eq!(d.ops, t.ops);
                // Chunked streaming sees the same ops as bulk decode.
                let mut reader = TraceReader::new(buf.as_slice()).unwrap();
                let mut streamed = Vec::new();
                while reader.next_chunk(&mut streamed, 17).unwrap() > 0 {}
                prop_assert_eq!(streamed, t.ops);
            }

            #[test]
            fn decode_never_panics_on_corruption(
                mut bytes in proptest::collection::vec(any::<u8>(), 0..256),
            ) {
                // Arbitrary bytes: decode must return Ok or Err, not panic.
                let _ = Trace::decode(&mut bytes.as_slice());
                // Valid header + garbage body.
                let mut buf = Vec::new();
                Trace::new(TraceMeta::default()).encode(&mut buf).unwrap();
                buf.append(&mut bytes);
                let _ = Trace::decode(&mut buf.as_slice());
            }
        }
    }
}
