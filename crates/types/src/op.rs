//! Trace operations: the unit record of the block-level traces.

use core::fmt;

use crate::{
    block::BlockAddr,
    ids::{FileId, HostId, ThreadId},
};

/// Whether an operation reads or writes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpKind {
    /// Read a range of blocks.
    Read,
    /// Write (overwrite) a range of blocks.
    Write,
}

impl OpKind {
    /// True for [`OpKind::Write`].
    pub const fn is_write(self) -> bool {
        matches!(self, OpKind::Write)
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Read => write!(f, "R"),
            OpKind::Write => write!(f, "W"),
        }
    }
}

/// One block-level trace operation.
///
/// Mirrors §4 of the paper: "Each operation identifies a file and a range of
/// blocks within that file. Each operation also carries a thread ID and host
/// ID." The `warmup` flag marks the first half of the trace volume, for
/// which "statistics are not collected".
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceOp {
    /// Issuing host.
    pub host: HostId,
    /// Issuing thread (host-local).
    pub thread: ThreadId,
    /// Read or write.
    pub kind: OpKind,
    /// File the range lives in.
    pub file: FileId,
    /// First 4 KB block of the range.
    pub start_block: u32,
    /// Number of 4 KB blocks (always ≥ 1).
    pub nblocks: u32,
    /// True while the cache is being warmed; such ops are simulated but
    /// excluded from statistics.
    pub warmup: bool,
}

impl TraceOp {
    /// Address of the first block touched.
    pub const fn first_block(&self) -> BlockAddr {
        BlockAddr::new(self.file, self.start_block)
    }

    /// Iterator over every block address the operation touches.
    pub fn blocks(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        let file = self.file;
        (self.start_block..self.start_block + self.nblocks).map(move |b| BlockAddr::new(file, b))
    }

    /// Total bytes moved by the operation.
    pub const fn bytes(&self) -> u64 {
        (self.nblocks as u64) * crate::block::BLOCK_SIZE
    }
}

impl fmt::Display for TraceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} f{}@{}+{}{}",
            self.host,
            self.thread,
            self.kind,
            self.file.0,
            self.start_block,
            self.nblocks,
            if self.warmup { " (warmup)" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op() -> TraceOp {
        TraceOp {
            host: HostId(0),
            thread: ThreadId(2),
            kind: OpKind::Write,
            file: FileId(9),
            start_block: 5,
            nblocks: 3,
            warmup: false,
        }
    }

    #[test]
    fn blocks_iterates_full_range() {
        let blocks: Vec<_> = op().blocks().collect();
        assert_eq!(
            blocks,
            vec![
                BlockAddr::new(FileId(9), 5),
                BlockAddr::new(FileId(9), 6),
                BlockAddr::new(FileId(9), 7)
            ]
        );
    }

    #[test]
    fn bytes_counts_blocks() {
        assert_eq!(op().bytes(), 3 * 4096);
    }

    #[test]
    fn kind_flags() {
        assert!(OpKind::Write.is_write());
        assert!(!OpKind::Read.is_write());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(op().to_string(), "host0 thr2 W f9@5+3");
    }
}
