//! Trace operations: the unit record of the block-level traces.
//!
//! [`TraceOp`] uses a packed 16-byte layout (down from the 20-byte
//! field-per-flag seed struct): the read/write kind and the warmup flag are
//! folded into the top byte of the `nblocks` word. Four ops fit in a cache
//! line, which matters because replay streams millions of them through the
//! simulator per experiment. Construction goes through [`TraceOp::new`],
//! which enforces the packed ranges; fields are read through accessors.

use core::fmt;

use crate::{
    block::BlockAddr,
    ids::{FileId, HostId, ThreadId},
};

/// Whether an operation reads or writes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpKind {
    /// Read a range of blocks.
    Read,
    /// Write (overwrite) a range of blocks.
    Write,
}

impl OpKind {
    /// True for [`OpKind::Write`].
    pub const fn is_write(self) -> bool {
        matches!(self, OpKind::Write)
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Read => write!(f, "R"),
            OpKind::Write => write!(f, "W"),
        }
    }
}

/// Flag bit for a write op in the packed `nbf` word.
const FLAG_WRITE: u32 = 1 << 24;
/// Flag bit for a warmup op in the packed `nbf` word.
const FLAG_WARMUP: u32 = 1 << 25;
/// Low 24 bits of `nbf`: the block count.
const NBLOCKS_MASK: u32 = (1 << 24) - 1;

/// One block-level trace operation.
///
/// Mirrors §4 of the paper: "Each operation identifies a file and a range of
/// blocks within that file. Each operation also carries a thread ID and host
/// ID." The warmup flag marks the first half of the trace volume, for
/// which "statistics are not collected".
///
/// Layout: `file` (4) + `start_block` (4) + packed `nblocks`/flags (4) +
/// `host` (2) + `thread` (2) = 16 bytes, 4-byte aligned.
#[derive(Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct TraceOp {
    /// File the range lives in.
    file: FileId,
    /// First 4 KB block of the range.
    start_block: u32,
    /// Block count in the low 24 bits; kind/warmup flags in the top byte.
    nbf: u32,
    /// Issuing host.
    host: HostId,
    /// Issuing thread (host-local).
    thread: ThreadId,
}

impl TraceOp {
    /// Largest block count one op can carry (24 bits — 64 GiB of 4 KB
    /// blocks, far beyond any generated I/O).
    pub const MAX_NBLOCKS: u32 = NBLOCKS_MASK;

    /// Builds an op, packing the kind and warmup flag next to the block
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `nblocks` is zero or exceeds [`TraceOp::MAX_NBLOCKS`].
    pub const fn new(
        host: HostId,
        thread: ThreadId,
        kind: OpKind,
        file: FileId,
        start_block: u32,
        nblocks: u32,
        warmup: bool,
    ) -> Self {
        assert!(
            nblocks >= 1 && nblocks <= NBLOCKS_MASK,
            "nblocks out of packed range"
        );
        let mut nbf = nblocks;
        if kind.is_write() {
            nbf |= FLAG_WRITE;
        }
        if warmup {
            nbf |= FLAG_WARMUP;
        }
        Self {
            file,
            start_block,
            nbf,
            host,
            thread,
        }
    }

    /// Issuing host.
    pub const fn host(&self) -> HostId {
        self.host
    }

    /// Issuing thread (host-local).
    pub const fn thread(&self) -> ThreadId {
        self.thread
    }

    /// Read or write.
    pub const fn kind(&self) -> OpKind {
        if self.nbf & FLAG_WRITE != 0 {
            OpKind::Write
        } else {
            OpKind::Read
        }
    }

    /// True for write ops (one branch cheaper than `kind().is_write()`).
    pub const fn is_write(&self) -> bool {
        self.nbf & FLAG_WRITE != 0
    }

    /// File the range lives in.
    pub const fn file(&self) -> FileId {
        self.file
    }

    /// First 4 KB block of the range.
    pub const fn start_block(&self) -> u32 {
        self.start_block
    }

    /// Number of 4 KB blocks (always ≥ 1).
    pub const fn nblocks(&self) -> u32 {
        self.nbf & NBLOCKS_MASK
    }

    /// True while the cache is being warmed; such ops are simulated but
    /// excluded from statistics.
    pub const fn warmup(&self) -> bool {
        self.nbf & FLAG_WARMUP != 0
    }

    /// Sets the warmup flag in place.
    pub fn set_warmup(&mut self, warmup: bool) {
        if warmup {
            self.nbf |= FLAG_WARMUP;
        } else {
            self.nbf &= !FLAG_WARMUP;
        }
    }

    /// Replaces the issuing host in place.
    pub fn set_host(&mut self, host: HostId) {
        self.host = host;
    }

    /// Address of the first block touched.
    pub const fn first_block(&self) -> BlockAddr {
        BlockAddr::new(self.file, self.start_block)
    }

    /// Iterator over every block address the operation touches.
    pub fn blocks(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        let file = self.file;
        (self.start_block..self.start_block + self.nblocks()).map(move |b| BlockAddr::new(file, b))
    }

    /// Total bytes moved by the operation.
    pub const fn bytes(&self) -> u64 {
        (self.nblocks() as u64) * crate::block::BLOCK_SIZE
    }
}

impl fmt::Debug for TraceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceOp")
            .field("host", &self.host)
            .field("thread", &self.thread)
            .field("kind", &self.kind())
            .field("file", &self.file)
            .field("start_block", &self.start_block)
            .field("nblocks", &self.nblocks())
            .field("warmup", &self.warmup())
            .finish()
    }
}

impl fmt::Display for TraceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} f{}@{}+{}{}",
            self.host,
            self.thread,
            self.kind(),
            self.file.0,
            self.start_block,
            self.nblocks(),
            if self.warmup() { " (warmup)" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op() -> TraceOp {
        TraceOp::new(
            HostId(0),
            ThreadId(2),
            OpKind::Write,
            FileId(9),
            5,
            3,
            false,
        )
    }

    #[test]
    fn packed_layout_is_16_bytes() {
        assert_eq!(core::mem::size_of::<TraceOp>(), 16);
        assert_eq!(core::mem::align_of::<TraceOp>(), 4);
    }

    #[test]
    fn accessors_roundtrip_all_fields() {
        let o = TraceOp::new(
            HostId(7),
            ThreadId(65_535),
            OpKind::Read,
            FileId(u32::MAX),
            u32::MAX,
            TraceOp::MAX_NBLOCKS,
            true,
        );
        assert_eq!(o.host(), HostId(7));
        assert_eq!(o.thread(), ThreadId(65_535));
        assert_eq!(o.kind(), OpKind::Read);
        assert!(!o.is_write());
        assert_eq!(o.file(), FileId(u32::MAX));
        assert_eq!(o.start_block(), u32::MAX);
        assert_eq!(o.nblocks(), TraceOp::MAX_NBLOCKS);
        assert!(o.warmup());
    }

    #[test]
    fn setters_update_in_place() {
        let mut o = op();
        o.set_warmup(true);
        assert!(o.warmup());
        assert_eq!(o.nblocks(), 3, "warmup flag must not disturb nblocks");
        assert!(o.is_write(), "warmup flag must not disturb kind");
        o.set_warmup(false);
        assert!(!o.warmup());
        o.set_host(HostId(4));
        assert_eq!(o.host(), HostId(4));
    }

    #[test]
    #[should_panic(expected = "nblocks out of packed range")]
    fn zero_nblocks_rejected() {
        let _ = TraceOp::new(HostId(0), ThreadId(0), OpKind::Read, FileId(0), 0, 0, false);
    }

    #[test]
    #[should_panic(expected = "nblocks out of packed range")]
    fn oversized_nblocks_rejected() {
        let _ = TraceOp::new(
            HostId(0),
            ThreadId(0),
            OpKind::Read,
            FileId(0),
            0,
            TraceOp::MAX_NBLOCKS + 1,
            false,
        );
    }

    #[test]
    fn blocks_iterates_full_range() {
        let blocks: Vec<_> = op().blocks().collect();
        assert_eq!(
            blocks,
            vec![
                BlockAddr::new(FileId(9), 5),
                BlockAddr::new(FileId(9), 6),
                BlockAddr::new(FileId(9), 7)
            ]
        );
    }

    #[test]
    fn bytes_counts_blocks() {
        assert_eq!(op().bytes(), 3 * 4096);
    }

    #[test]
    fn kind_flags() {
        assert!(OpKind::Write.is_write());
        assert!(!OpKind::Read.is_write());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(op().to_string(), "host0 thr2 W f9@5+3");
    }
}
