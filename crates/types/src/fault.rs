//! Deterministic fault-injection plans.
//!
//! The simulator models a healthy world by default; this module describes
//! the unhealthy one. A [`FaultPlan`] is a list of [`FaultClause`]s, each
//! naming a *target* (the filer, one network direction, or the local flash
//! device), a *window* of simulated time, and a *kind* of misbehavior:
//! a full outage, a latency inflation, or a transient-error rate.
//!
//! Plans are plain data. They parse from a compact spec string
//! (`filer:outage@40s-60s`), print back to the same canonical form via
//! [`FaultPlan::describe`], and round-trip exactly through the [`Json`]
//! codec so result rows carry the injected faults alongside the config.
//!
//! Nothing here consumes wall-clock time or global randomness:
//! stochastic *episode* windows are expanded by [`FaultPlan::resolve`]
//! from a caller-provided seed with a splitmix/mix64 stream, so two runs
//! with the same seed see bit-identical fault timelines.
//!
//! # Overlap semantics
//!
//! Multiple clauses on the same target are legal and **merge** by a fixed
//! precedence while their windows overlap: an open `outage` wins outright,
//! otherwise each open `err<p>` window gets one independent draw, otherwise
//! open `slowx<f>` factors multiply (see [`FaultSchedule::effect_at`]).
//! Because merging makes clause order irrelevant, an *exact* duplicate
//! clause (same target, kind, and window) can only be a spec typo — it
//! would silently double a slowdown or waste an error draw — so
//! [`FaultPlan::parse`] rejects it.

use std::fmt;

use crate::fxhash::mix64;
use crate::json::Json;

/// Which component a clause degrades.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTarget {
    /// The shared file server: read/write service. With a sharded remote
    /// tier this means *every* shard at once (the whole backend fleet).
    Filer,
    /// One direction of the host's network segment.
    Net(FaultDirection),
    /// The host's local flash device.
    Device,
    /// One backend shard of the remote tier (`shard<k>`), or every shard
    /// (`shard*`, `Shard(None)`). Only meaningful when the run configures
    /// a sharded remote tier; [`FaultPlan::resolve_sharded`] validates the
    /// index against the topology.
    Shard(Option<u16>),
}

/// Direction of network traffic a clause applies to.
///
/// Mirrors `fcache_net::Direction`; duplicated here so the vocabulary
/// crate stays dependency-free.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultDirection {
    /// Client → filer.
    ToServer,
    /// Filer → client.
    FromServer,
}

/// What the fault does while its window is open.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// The target is completely unavailable.
    Outage,
    /// Service times are multiplied by this factor (> 0, finite).
    SlowBy(f64),
    /// Each operation independently fails with this probability (in
    /// `[0, 1]`), drawn from a seeded per-host stream.
    ErrorRate(f64),
}

/// When the fault is active, in *paper-scale* nanoseconds of simulated
/// time. [`FaultPlan::resolve`] divides by the run's time scale, so a
/// window written for the full-size workload lands proportionally in a
/// scaled-down one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultWindow {
    /// A fixed interval `[start_ns, end_ns)`.
    Interval {
        /// Window opens at this simulated time.
        start_ns: u64,
        /// Window closes at this simulated time (exclusive).
        end_ns: u64,
    },
    /// `count` seeded stochastic episodes: gaps and lengths are
    /// exponentially distributed around the given means, drawn from the
    /// resolve seed so the expansion is bit-reproducible.
    Episodes {
        /// Mean gap between episodes.
        mean_gap_ns: u64,
        /// Mean episode length.
        mean_len_ns: u64,
        /// Number of episodes.
        count: u32,
    },
}

/// One injected fault: a target, a kind, and a window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultClause {
    /// Component degraded.
    pub target: FaultTarget,
    /// Misbehavior while open.
    pub kind: FaultKind,
    /// When the clause is active.
    pub window: FaultWindow,
}

/// An ordered list of fault clauses; empty means a healthy run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// The clauses, in declaration order.
    pub clauses: Vec<FaultClause>,
}

/// A transient failure surfaced by an injection seam. Carries the
/// human-readable description of the originating clause so errors that
/// escalate (e.g. under a strict degraded policy) name their cause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultError {
    /// `describe()`-form of the clause that fired.
    pub clause: String,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transient fault ({})", self.clause)
    }
}

impl std::error::Error for FaultError {}

// ---------------------------------------------------------------------------
// Spec strings

fn fmt_time_ns(ns: u64) -> String {
    if ns == 0 {
        return "0s".to_string();
    }
    if ns.is_multiple_of(1_000_000_000) {
        format!("{}s", ns / 1_000_000_000)
    } else if ns.is_multiple_of(1_000_000) {
        format!("{}ms", ns / 1_000_000)
    } else if ns.is_multiple_of(1_000) {
        format!("{}us", ns / 1_000)
    } else {
        format!("{ns}ns")
    }
}

/// Parses a human duration (`"200us"`, `"1.5s"`, `"40ms"`, `"80ns"`) into
/// nanoseconds. The unit suffix is mandatory; values round to the nearest
/// nanosecond. Shared by fault-clause windows and the CLI's duration flags
/// (`--windows`).
pub fn parse_time_ns(s: &str) -> Result<u64, String> {
    let s = s.trim();
    let (num, mult) = if let Some(n) = s.strip_suffix("ns") {
        (n, 1.0)
    } else if let Some(n) = s.strip_suffix("us") {
        (n, 1e3)
    } else if let Some(n) = s.strip_suffix("ms") {
        (n, 1e6)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1e9)
    } else {
        return Err(format!("time \"{s}\" needs a unit (ns/us/ms/s)"));
    };
    let v: f64 = num
        .trim()
        .parse()
        .map_err(|_| format!("invalid time value \"{s}\""))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!("time \"{s}\" must be finite and non-negative"));
    }
    Ok((v * mult).round() as u64)
}

impl FaultTarget {
    fn label(&self) -> String {
        match self {
            FaultTarget::Filer => "filer".to_string(),
            FaultTarget::Net(FaultDirection::ToServer) => "net-up".to_string(),
            FaultTarget::Net(FaultDirection::FromServer) => "net-down".to_string(),
            FaultTarget::Device => "device".to_string(),
            FaultTarget::Shard(None) => "shard*".to_string(),
            FaultTarget::Shard(Some(k)) => format!("shard{k}"),
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Outage => write!(f, "outage"),
            FaultKind::SlowBy(x) => write!(f, "slowx{x}"),
            FaultKind::ErrorRate(p) => write!(f, "err{p}"),
        }
    }
}

impl fmt::Display for FaultWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultWindow::Interval { start_ns, end_ns } => {
                write!(f, "{}-{}", fmt_time_ns(start_ns), fmt_time_ns(end_ns))
            }
            FaultWindow::Episodes {
                mean_gap_ns,
                mean_len_ns,
                count,
            } => write!(
                f,
                "~{count}x{}/{}",
                fmt_time_ns(mean_len_ns),
                fmt_time_ns(mean_gap_ns)
            ),
        }
    }
}

impl FaultClause {
    /// Canonical spec form, e.g. `filer:outage@40s-60s`.
    pub fn describe(&self) -> String {
        format!("{}:{}@{}", self.target.label(), self.kind, self.window)
    }
}

impl FaultPlan {
    /// A healthy plan (no clauses).
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Whether any clause names a remote-tier shard (`shard<k>`/`shard*`).
    /// Such plans need [`FaultPlan::resolve_sharded`] and a run configured
    /// with a sharded remote tier.
    pub fn has_shard_clauses(&self) -> bool {
        self.clauses
            .iter()
            .any(|c| matches!(c.target, FaultTarget::Shard(_)))
    }

    /// Appends a clause (builder style).
    pub fn with(mut self, target: FaultTarget, kind: FaultKind, window: FaultWindow) -> Self {
        self.clauses.push(FaultClause {
            target,
            kind,
            window,
        });
        self
    }

    /// Canonical spec string: clauses joined by `;`. `parse` of the
    /// result reproduces the plan (`net` sugar is expanded, so the
    /// round-trip is exact on the expanded form).
    pub fn describe(&self) -> String {
        self.clauses
            .iter()
            .map(FaultClause::describe)
            .collect::<Vec<_>>()
            .join(";")
    }

    /// Parses a spec string: clauses joined by `;`, each
    /// `target:kind@window`.
    ///
    /// - target — `filer`, `net` (both directions), `net-up`, `net-down`,
    ///   `device`, `shard<k>` (one remote shard), `shard*` (every shard)
    /// - kind — `outage`, `slowx<factor>`, `err<probability>`
    /// - window — `<start>-<end>` with units `ns`/`us`/`ms`/`s`
    ///   (e.g. `40s-60s`), or `~<count>x<mean_len>/<mean_gap>` for seeded
    ///   stochastic episodes (e.g. `~3x2s/10s`)
    ///
    /// Overlapping clauses on the same target are legal and merge by the
    /// precedence documented on [`FaultSchedule::effect_at`]; an *exact*
    /// duplicate clause (same target, kind, and window — including one
    /// produced by expanding `net` next to an identical `net-up`/`net-down`
    /// clause) is rejected as a spec error.
    ///
    /// # Examples
    ///
    /// ```
    /// use fcache_types::FaultPlan;
    /// let plan = FaultPlan::parse("filer:outage@40s-60s;net:slowx4@10s-20s").unwrap();
    /// assert_eq!(plan.clauses.len(), 3); // `net` expands to both directions
    /// assert_eq!(FaultPlan::parse(&plan.describe()).unwrap(), plan);
    /// ```
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (target_s, rest) = part
                .split_once(':')
                .ok_or_else(|| format!("clause \"{part}\" missing \":\" (target:kind@window)"))?;
            let (kind_s, window_s) = rest
                .split_once('@')
                .ok_or_else(|| format!("clause \"{part}\" missing \"@\" (target:kind@window)"))?;
            let kind = Self::parse_kind(kind_s.trim())?;
            let window = Self::parse_window(window_s.trim())?;
            let targets: Vec<FaultTarget> = match target_s.trim() {
                "filer" => vec![FaultTarget::Filer],
                "net" => vec![
                    FaultTarget::Net(FaultDirection::ToServer),
                    FaultTarget::Net(FaultDirection::FromServer),
                ],
                "net-up" => vec![FaultTarget::Net(FaultDirection::ToServer)],
                "net-down" => vec![FaultTarget::Net(FaultDirection::FromServer)],
                "device" => vec![FaultTarget::Device],
                "shard*" => vec![FaultTarget::Shard(None)],
                other => {
                    let shard = other
                        .strip_prefix("shard")
                        .and_then(|k| k.parse::<u16>().ok());
                    match shard {
                        Some(k) => vec![FaultTarget::Shard(Some(k))],
                        None => {
                            return Err(format!(
                                "unknown fault target \"{other}\" \
                                 (filer|net|net-up|net-down|device|shard<k>|shard*)"
                            ))
                        }
                    }
                }
            };
            for target in targets {
                let clause = FaultClause {
                    target,
                    kind,
                    window,
                };
                if plan.clauses.contains(&clause) {
                    return Err(format!(
                        "duplicate fault clause \"{}\" (overlapping clauses merge; \
                         an exact repeat is a spec error)",
                        clause.describe()
                    ));
                }
                plan.clauses.push(clause);
            }
        }
        Ok(plan)
    }

    fn parse_kind(s: &str) -> Result<FaultKind, String> {
        if s == "outage" {
            return Ok(FaultKind::Outage);
        }
        if let Some(x) = s.strip_prefix("slowx") {
            let f: f64 = x
                .parse()
                .map_err(|_| format!("invalid slowdown factor \"{x}\""))?;
            if !f.is_finite() || f <= 0.0 {
                return Err(format!("slowdown factor {f} must be finite and > 0"));
            }
            return Ok(FaultKind::SlowBy(f));
        }
        if let Some(p) = s.strip_prefix("err") {
            let p: f64 = p
                .parse()
                .map_err(|_| format!("invalid error rate \"{p}\""))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("error rate {p} must be in [0,1]"));
            }
            return Ok(FaultKind::ErrorRate(p));
        }
        Err(format!(
            "unknown fault kind \"{s}\" (outage|slowx<f>|err<p>)"
        ))
    }

    fn parse_window(s: &str) -> Result<FaultWindow, String> {
        if let Some(rest) = s.strip_prefix('~') {
            let (count_s, times) = rest
                .split_once('x')
                .ok_or_else(|| format!("episode window \"{s}\" must be ~<count>x<len>/<gap>"))?;
            let (len_s, gap_s) = times
                .split_once('/')
                .ok_or_else(|| format!("episode window \"{s}\" must be ~<count>x<len>/<gap>"))?;
            let count: u32 = count_s
                .trim()
                .parse()
                .map_err(|_| format!("invalid episode count \"{count_s}\""))?;
            return Ok(FaultWindow::Episodes {
                mean_len_ns: parse_time_ns(len_s)?,
                mean_gap_ns: parse_time_ns(gap_s)?,
                count,
            });
        }
        let (a, b) = s.split_once('-').ok_or_else(|| {
            format!("window \"{s}\" must be <start>-<end> or ~<count>x<len>/<gap>")
        })?;
        let start_ns = parse_time_ns(a)?;
        let end_ns = parse_time_ns(b)?;
        if end_ns <= start_ns {
            return Err(format!("window \"{s}\" must end after it starts"));
        }
        Ok(FaultWindow::Interval { start_ns, end_ns })
    }
}

// ---------------------------------------------------------------------------
// JSON

impl FaultTarget {
    fn json_label(&self) -> String {
        match self {
            FaultTarget::Filer => "filer".to_string(),
            FaultTarget::Net(FaultDirection::ToServer) => "net_to_server".to_string(),
            FaultTarget::Net(FaultDirection::FromServer) => "net_from_server".to_string(),
            FaultTarget::Device => "device".to_string(),
            FaultTarget::Shard(None) => "shard_any".to_string(),
            FaultTarget::Shard(Some(k)) => format!("shard_{k}"),
        }
    }

    fn from_json_label(s: &str) -> Result<Self, String> {
        match s {
            "filer" => Ok(FaultTarget::Filer),
            "net_to_server" => Ok(FaultTarget::Net(FaultDirection::ToServer)),
            "net_from_server" => Ok(FaultTarget::Net(FaultDirection::FromServer)),
            "device" => Ok(FaultTarget::Device),
            "shard_any" => Ok(FaultTarget::Shard(None)),
            other => match other.strip_prefix("shard_").map(str::parse::<u16>) {
                Some(Ok(k)) => Ok(FaultTarget::Shard(Some(k))),
                _ => Err(format!("unknown fault target {other:?}")),
            },
        }
    }
}

impl FaultPlan {
    /// Serializes the plan; exact inverse of [`FaultPlan::from_json`]
    /// (pinned by a proptest in `tests/fault_roundtrip.rs`).
    pub fn to_json(&self) -> Json {
        Json::obj().field(
            "clauses",
            Json::Arr(
                self.clauses
                    .iter()
                    .map(|c| {
                        Json::obj()
                            .field("target", Json::Str(c.target.json_label()))
                            .field(
                                "kind",
                                match c.kind {
                                    FaultKind::Outage => Json::Str("outage".to_string()),
                                    FaultKind::SlowBy(f) => {
                                        Json::obj().field("slow_by", Json::F64(f))
                                    }
                                    FaultKind::ErrorRate(p) => {
                                        Json::obj().field("error_rate", Json::F64(p))
                                    }
                                },
                            )
                            .field(
                                "window",
                                match c.window {
                                    FaultWindow::Interval { start_ns, end_ns } => Json::obj()
                                        .field("start_ns", Json::U64(start_ns))
                                        .field("end_ns", Json::U64(end_ns)),
                                    FaultWindow::Episodes {
                                        mean_gap_ns,
                                        mean_len_ns,
                                        count,
                                    } => Json::obj().field(
                                        "episodes",
                                        Json::obj()
                                            .field("mean_gap_ns", Json::U64(mean_gap_ns))
                                            .field("mean_len_ns", Json::U64(mean_len_ns))
                                            .field("count", Json::U64(u64::from(count))),
                                    ),
                                },
                            )
                    })
                    .collect(),
            ),
        )
    }

    /// Decodes a serialized plan (strict: unknown shapes are errors).
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let clauses = match v.get("clauses") {
            Some(Json::Arr(items)) => items,
            _ => return Err("fault plan missing \"clauses\" array".to_string()),
        };
        let mut plan = FaultPlan::default();
        for c in clauses {
            let target = FaultTarget::from_json_label(
                c.get("target")
                    .and_then(Json::as_str)
                    .ok_or("fault clause missing \"target\"")?,
            )?;
            let kind = match c.get("kind") {
                Some(Json::Str(s)) if s == "outage" => FaultKind::Outage,
                Some(k) => {
                    if let Some(f) = k.get("slow_by").and_then(Json::as_f64) {
                        FaultKind::SlowBy(f)
                    } else if let Some(p) = k.get("error_rate").and_then(Json::as_f64) {
                        FaultKind::ErrorRate(p)
                    } else {
                        return Err(format!("invalid fault kind {k:?}"));
                    }
                }
                None => return Err("fault clause missing \"kind\"".to_string()),
            };
            let w = c.get("window").ok_or("fault clause missing \"window\"")?;
            let window = if let Some(e) = w.get("episodes") {
                FaultWindow::Episodes {
                    mean_gap_ns: e
                        .get("mean_gap_ns")
                        .and_then(Json::as_u64)
                        .ok_or("episodes missing mean_gap_ns")?,
                    mean_len_ns: e
                        .get("mean_len_ns")
                        .and_then(Json::as_u64)
                        .ok_or("episodes missing mean_len_ns")?,
                    count: e
                        .get("count")
                        .and_then(Json::as_u64)
                        .ok_or("episodes missing count")? as u32,
                }
            } else {
                FaultWindow::Interval {
                    start_ns: w
                        .get("start_ns")
                        .and_then(Json::as_u64)
                        .ok_or("window missing start_ns")?,
                    end_ns: w
                        .get("end_ns")
                        .and_then(Json::as_u64)
                        .ok_or("window missing end_ns")?,
                }
            };
            plan.clauses.push(FaultClause {
                target,
                kind,
                window,
            });
        }
        Ok(plan)
    }
}

// ---------------------------------------------------------------------------
// Resolution

/// One concrete active window on a resolved schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct ResolvedWindow {
    /// Opens at this simulated nanosecond (inclusive).
    pub start_ns: u64,
    /// Closes at this simulated nanosecond (exclusive).
    pub end_ns: u64,
    /// Misbehavior while open.
    pub kind: FaultKind,
    /// `describe()`-form of the originating clause.
    pub clause: String,
}

/// The concrete windows a plan injects on one target, sorted by start.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSchedule {
    windows: Vec<ResolvedWindow>,
}

/// What the injection seam should do right now.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultEffect {
    /// Healthy: proceed normally.
    None,
    /// Inflate the drawn service time by this factor.
    SlowBy(f64),
    /// Fail the operation.
    Fail {
        /// `describe()`-form of the clause that fired.
        clause: String,
        /// For outages, when the window closes (retrying before this is
        /// futile); `None` for probabilistic errors.
        until_ns: Option<u64>,
    },
}

impl FaultSchedule {
    /// Whether this target has any windows at all.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The resolved windows, sorted by start time.
    pub fn windows(&self) -> &[ResolvedWindow] {
        &self.windows
    }

    /// The effect in force at `now_ns`. `draw` supplies uniform `[0,1)`
    /// variates and is invoked exactly once per `ErrorRate` window
    /// containing `now_ns` (and never otherwise), so the caller's RNG
    /// stream advances deterministically with simulated time.
    ///
    /// Precedence: an open `Outage` fails immediately; otherwise each
    /// open `ErrorRate` gets an independent draw; otherwise open
    /// `SlowBy` factors multiply.
    pub fn effect_at(&self, now_ns: u64, draw: &mut dyn FnMut() -> f64) -> FaultEffect {
        if let Some(w) = self.open_outage(now_ns) {
            return FaultEffect::Fail {
                clause: w.clause.clone(),
                until_ns: Some(w.end_ns),
            };
        }
        for w in self.open(now_ns) {
            if let FaultKind::ErrorRate(p) = w.kind {
                if draw() < p {
                    return FaultEffect::Fail {
                        clause: w.clause.clone(),
                        until_ns: None,
                    };
                }
            }
        }
        let mut factor = 1.0;
        for w in self.open(now_ns) {
            if let FaultKind::SlowBy(f) = w.kind {
                factor *= f;
            }
        }
        if factor != 1.0 {
            FaultEffect::SlowBy(factor)
        } else {
            FaultEffect::None
        }
    }

    fn open(&self, now_ns: u64) -> impl Iterator<Item = &ResolvedWindow> {
        self.windows
            .iter()
            .filter(move |w| w.start_ns <= now_ns && now_ns < w.end_ns)
    }

    fn open_outage(&self, now_ns: u64) -> Option<&ResolvedWindow> {
        self.open(now_ns)
            .filter(|w| w.kind == FaultKind::Outage)
            .max_by_key(|w| w.end_ns)
    }

    /// If an outage is open at `now_ns`, when it clears.
    pub fn outage_until(&self, now_ns: u64) -> Option<u64> {
        self.open_outage(now_ns).map(|w| w.end_ns)
    }

    /// Merged outage intervals, sorted, non-overlapping.
    pub fn outage_spans(&self) -> Vec<(u64, u64)> {
        let mut spans: Vec<(u64, u64)> = self
            .windows
            .iter()
            .filter(|w| w.kind == FaultKind::Outage)
            .map(|w| (w.start_ns, w.end_ns))
            .collect();
        spans.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::new();
        for (s, e) in spans {
            match merged.last_mut() {
                Some((_, le)) if s <= *le => *le = (*le).max(e),
                _ => merged.push((s, e)),
            }
        }
        merged
    }

    /// Total outage time overlapping `[0, end_ns)`.
    pub fn outage_overlap(&self, end_ns: u64) -> u64 {
        self.outage_spans()
            .iter()
            .map(|&(s, e)| e.min(end_ns).saturating_sub(s))
            .sum()
    }

    /// Index (into [`FaultSchedule::windows`]) of the first window open
    /// at `now_ns`, for per-window availability accounting.
    pub fn window_index_at(&self, now_ns: u64) -> Option<usize> {
        self.windows
            .iter()
            .position(|w| w.start_ns <= now_ns && now_ns < w.end_ns)
    }
}

/// A [`FaultPlan`] resolved against a seed and time scale: one concrete
/// schedule per injectable target.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResolvedFaultSet {
    /// Filer service faults. With a sharded remote tier these windows are
    /// *also* copied into every entry of [`ResolvedFaultSet::shards`]
    /// (a filer fault hits the whole fleet); this schedule is kept for
    /// whole-backend accounting (availability windows, degraded time).
    pub filer: FaultSchedule,
    /// Client → filer network faults.
    pub net_to_server: FaultSchedule,
    /// Filer → client network faults.
    pub net_from_server: FaultSchedule,
    /// Local device faults.
    pub device: FaultSchedule,
    /// Per-shard faults of the remote tier, indexed by shard. Empty unless
    /// the plan was resolved with [`FaultPlan::resolve_sharded`].
    pub shards: Vec<FaultSchedule>,
}

impl ResolvedFaultSet {
    /// Whether any target has windows.
    pub fn is_empty(&self) -> bool {
        self.filer.is_empty()
            && self.net_to_server.is_empty()
            && self.net_from_server.is_empty()
            && self.device.is_empty()
            && self.shards.iter().all(FaultSchedule::is_empty)
    }

    /// The union of all backend-side windows (filer and per-shard), for
    /// per-window availability accounting: one entry per *distinct* window
    /// a clause produced. Filer clauses are mirrored into every shard and
    /// `shard*` clauses into each — the mirrors are exact duplicates, so
    /// they collapse back to the single window the operator wrote.
    pub fn backend_accounting(&self) -> FaultSchedule {
        let mut windows: Vec<ResolvedWindow> = self.filer.windows.clone();
        for sched in &self.shards {
            windows.extend(sched.windows.iter().cloned());
        }
        windows.sort_by(|a, b| {
            (a.start_ns, a.end_ns, &a.clause).cmp(&(b.start_ns, b.end_ns, &b.clause))
        });
        windows.dedup();
        FaultSchedule { windows }
    }
}

/// Uniform `[0,1)` from a splitmix-style counter stream.
fn u01(seed: u64, ctr: &mut u64) -> f64 {
    *ctr += 1;
    (mix64(seed.wrapping_add(*ctr)) >> 11) as f64 / (1u64 << 53) as f64
}

/// Exponential variate with the given mean (in ns), truncated to u64.
fn exp_ns(mean_ns: u64, seed: u64, ctr: &mut u64) -> u64 {
    let u = u01(seed, ctr);
    (-(1.0 - u).ln() * mean_ns as f64).round() as u64
}

impl FaultPlan {
    /// Resolves the plan into concrete per-target schedules.
    ///
    /// `seed` drives the episode expansion (clause-indexed, so adding a
    /// clause does not perturb the others); `time_div` is the run's time
    /// scale — paper-scale windows divide down so a spec written for the
    /// full 60 GB workload lands proportionally in a scaled-down run.
    ///
    /// Shard clauses (`shard<k>`/`shard*`) are skipped here — they only
    /// make sense against a concrete topology, so runs with shard clauses
    /// go through [`FaultPlan::resolve_sharded`] instead (the engine
    /// engages its remote tier whenever
    /// [`FaultPlan::has_shard_clauses`] is true).
    pub fn resolve(&self, seed: u64, time_div: u64) -> ResolvedFaultSet {
        self.resolve_inner(seed, time_div, 0)
    }

    /// [`FaultPlan::resolve`] against a sharded remote tier with
    /// `shard_count` shards: shard clauses land on their shard's schedule
    /// (`shard*` on every shard), filer clauses land on the whole-backend
    /// `filer` schedule *and* every shard (the fleet shares the filer's
    /// fate), and a clause naming a shard outside the topology is an
    /// error.
    pub fn resolve_sharded(
        &self,
        seed: u64,
        time_div: u64,
        shard_count: u16,
    ) -> Result<ResolvedFaultSet, String> {
        for c in &self.clauses {
            if let FaultTarget::Shard(Some(k)) = c.target {
                if k >= shard_count {
                    return Err(format!(
                        "fault clause \"{}\" names shard {k}, but the topology has {} shard(s) \
                         (shard0..shard{})",
                        c.describe(),
                        shard_count,
                        shard_count.saturating_sub(1),
                    ));
                }
            }
        }
        Ok(self.resolve_inner(seed, time_div, shard_count))
    }

    fn resolve_inner(&self, seed: u64, time_div: u64, shard_count: u16) -> ResolvedFaultSet {
        let div = time_div.max(1);
        let mut set = ResolvedFaultSet::default();
        set.shards
            .resize_with(usize::from(shard_count), FaultSchedule::default);
        for (i, c) in self.clauses.iter().enumerate() {
            let clause = c.describe();
            let mut windows: Vec<ResolvedWindow> = Vec::new();
            match c.window {
                FaultWindow::Interval { start_ns, end_ns } => windows.push(ResolvedWindow {
                    start_ns: start_ns / div,
                    end_ns: (end_ns / div).max(start_ns / div + 1),
                    kind: c.kind,
                    clause: clause.clone(),
                }),
                FaultWindow::Episodes {
                    mean_gap_ns,
                    mean_len_ns,
                    count,
                } => {
                    let eseed = mix64(seed ^ (i as u64).rotate_left(23) ^ 0xfa17_u64);
                    let mut ctr = 0u64;
                    let mut t = 0u64;
                    for _ in 0..count {
                        let gap = exp_ns(mean_gap_ns, eseed, &mut ctr);
                        let len = exp_ns(mean_len_ns, eseed, &mut ctr).max(1);
                        let start = t + gap;
                        let end = start + len;
                        t = end;
                        windows.push(ResolvedWindow {
                            start_ns: start / div,
                            end_ns: (end / div).max(start / div + 1),
                            kind: c.kind,
                            clause: clause.clone(),
                        });
                    }
                }
            }
            match c.target {
                FaultTarget::Filer => {
                    // A filer fault takes the whole backend down: it lands
                    // on every shard too, so the sharded read/write paths
                    // see it without consulting a second schedule.
                    for sched in &mut set.shards {
                        sched.windows.extend(windows.iter().cloned());
                    }
                    set.filer.windows.extend(windows);
                }
                FaultTarget::Net(FaultDirection::ToServer) => {
                    set.net_to_server.windows.extend(windows)
                }
                FaultTarget::Net(FaultDirection::FromServer) => {
                    set.net_from_server.windows.extend(windows)
                }
                FaultTarget::Device => set.device.windows.extend(windows),
                FaultTarget::Shard(None) => {
                    for sched in &mut set.shards {
                        sched.windows.extend(windows.iter().cloned());
                    }
                }
                FaultTarget::Shard(Some(k)) => {
                    // Out-of-range indices were rejected by resolve_sharded;
                    // plain resolve has no shards to land on.
                    if let Some(sched) = set.shards.get_mut(usize::from(k)) {
                        sched.windows.extend(windows);
                    }
                }
            }
        }
        let ResolvedFaultSet {
            filer,
            net_to_server,
            net_from_server,
            device,
            shards,
        } = &mut set;
        for sched in [filer, net_to_server, net_from_server, device]
            .into_iter()
            .chain(shards.iter_mut())
        {
            sched.windows.sort_by_key(|w| (w.start_ns, w.end_ns));
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_and_describes_canonically() {
        let plan = FaultPlan::parse("filer:outage@40s-60s").unwrap();
        assert_eq!(plan.clauses.len(), 1);
        assert_eq!(
            plan.clauses[0],
            FaultClause {
                target: FaultTarget::Filer,
                kind: FaultKind::Outage,
                window: FaultWindow::Interval {
                    start_ns: 40_000_000_000,
                    end_ns: 60_000_000_000,
                },
            }
        );
        assert_eq!(plan.describe(), "filer:outage@40s-60s");
    }

    #[test]
    fn spec_units_kinds_and_net_sugar() {
        let plan =
            FaultPlan::parse("net:slowx2.5@100ms-250ms; device:err0.01@500us-900us").unwrap();
        assert_eq!(plan.clauses.len(), 3);
        assert_eq!(
            plan.clauses[0].target,
            FaultTarget::Net(FaultDirection::ToServer)
        );
        assert_eq!(
            plan.clauses[1].target,
            FaultTarget::Net(FaultDirection::FromServer)
        );
        assert_eq!(plan.clauses[0].kind, FaultKind::SlowBy(2.5));
        assert_eq!(plan.clauses[2].kind, FaultKind::ErrorRate(0.01));
        assert_eq!(
            plan.clauses[2].window,
            FaultWindow::Interval {
                start_ns: 500_000,
                end_ns: 900_000,
            }
        );
        // describe → parse is exact on the expanded form.
        assert_eq!(FaultPlan::parse(&plan.describe()).unwrap(), plan);
    }

    #[test]
    fn episode_specs_round_trip() {
        let plan = FaultPlan::parse("filer:outage@~3x2s/10s").unwrap();
        assert_eq!(
            plan.clauses[0].window,
            FaultWindow::Episodes {
                mean_gap_ns: 10_000_000_000,
                mean_len_ns: 2_000_000_000,
                count: 3,
            }
        );
        assert_eq!(plan.describe(), "filer:outage@~3x2s/10s");
        assert_eq!(FaultPlan::parse(&plan.describe()).unwrap(), plan);
    }

    #[test]
    fn bad_specs_are_rejected() {
        for bad in [
            "filer outage",
            "filer:outage",
            "gpu:outage@1s-2s",
            "filer:melt@1s-2s",
            "filer:outage@2s-1s",
            "filer:outage@1s-2parsecs",
            "filer:slowx0@1s-2s",
            "filer:err1.5@1s-2s",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let plan = FaultPlan::parse(
            "filer:outage@40s-60s;net-up:slowx3.25@1ms-2ms;device:err0.125@~2x5ms/20ms",
        )
        .unwrap();
        let j = plan.to_json();
        let back = FaultPlan::from_json(&Json::parse(&j.to_string()).unwrap()).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn resolve_scales_intervals_by_time_div() {
        let plan = FaultPlan::parse("filer:outage@40s-60s").unwrap();
        let set = plan.resolve(42, 16_384);
        assert_eq!(set.filer.windows().len(), 1);
        let w = &set.filer.windows()[0];
        assert_eq!(w.start_ns, 40_000_000_000 / 16_384);
        assert_eq!(w.end_ns, 60_000_000_000 / 16_384);
        assert!(set.net_to_server.is_empty() && set.device.is_empty());
    }

    #[test]
    fn effect_precedence_and_draw_discipline() {
        let plan = FaultPlan::parse("filer:outage@10s-20s;filer:slowx4@5s-30s").unwrap();
        let set = plan.resolve(1, 1);
        let mut draws = 0u32;
        let mut draw = || {
            draws += 1;
            0.5
        };
        // Inside the outage: Fail with the window end, no draws.
        match set.filer.effect_at(15_000_000_000, &mut draw) {
            FaultEffect::Fail { until_ns, .. } => assert_eq!(until_ns, Some(20_000_000_000)),
            other => panic!("expected outage, got {other:?}"),
        }
        // Outside the outage but inside the slowdown.
        assert_eq!(
            set.filer.effect_at(25_000_000_000, &mut draw),
            FaultEffect::SlowBy(4.0)
        );
        // Fully healthy.
        assert_eq!(
            set.filer.effect_at(35_000_000_000, &mut draw),
            FaultEffect::None
        );
        assert_eq!(draws, 0, "no ErrorRate windows, no draws");
    }

    #[test]
    fn error_rate_draws_once_per_open_window() {
        let plan = FaultPlan::parse("filer:err0.5@0s-10s").unwrap();
        let set = plan.resolve(1, 1);
        let mut seq = [0.4, 0.6].into_iter();
        let mut draw = || seq.next().unwrap();
        assert!(matches!(
            set.filer.effect_at(1, &mut draw),
            FaultEffect::Fail { until_ns: None, .. }
        ));
        assert_eq!(set.filer.effect_at(2, &mut draw), FaultEffect::None);
    }

    #[test]
    fn outage_spans_merge_and_overlap() {
        let plan =
            FaultPlan::parse("filer:outage@1s-3s;filer:outage@2s-4s;filer:outage@10s-11s").unwrap();
        let set = plan.resolve(0, 1);
        assert_eq!(
            set.filer.outage_spans(),
            vec![
                (1_000_000_000, 4_000_000_000),
                (10_000_000_000, 11_000_000_000)
            ]
        );
        assert_eq!(set.filer.outage_overlap(10_500_000_000), 3_500_000_000);
        assert_eq!(set.filer.outage_until(2_500_000_000), Some(4_000_000_000));
        assert_eq!(set.filer.outage_until(5_000_000_000), None);
    }

    #[test]
    fn shard_targets_parse_and_describe_canonically() {
        let plan = FaultPlan::parse("shard2:outage@40s-60s;shard*:slowx2@10s-20s").unwrap();
        assert_eq!(plan.clauses.len(), 2);
        assert_eq!(plan.clauses[0].target, FaultTarget::Shard(Some(2)));
        assert_eq!(plan.clauses[1].target, FaultTarget::Shard(None));
        assert!(plan.has_shard_clauses());
        assert_eq!(
            plan.describe(),
            "shard2:outage@40s-60s;shard*:slowx2@10s-20s"
        );
        assert_eq!(FaultPlan::parse(&plan.describe()).unwrap(), plan);
        assert!(!FaultPlan::parse("filer:outage@1s-2s")
            .unwrap()
            .has_shard_clauses());
        for bad in [
            "shard:outage@1s-2s",
            "shard-1:outage@1s-2s",
            "shardx:outage@1s-2s",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn shard_targets_round_trip_through_json() {
        let plan = FaultPlan::parse("shard0:outage@1s-2s;shard*:err0.5@3s-4s").unwrap();
        let j = plan.to_json();
        let back = FaultPlan::from_json(&Json::parse(&j.to_string()).unwrap()).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn exact_duplicate_clauses_are_rejected_at_parse() {
        // Same clause twice, directly.
        let err = FaultPlan::parse("filer:outage@1s-2s;filer:outage@1s-2s").unwrap_err();
        assert!(err.contains("duplicate fault clause"), "{err}");
        // `net` sugar colliding with an identical explicit direction.
        assert!(FaultPlan::parse("net:slowx2@1s-2s;net-up:slowx2@1s-2s").is_err());
        // Overlapping-but-distinct clauses stay legal (they merge).
        assert!(FaultPlan::parse("filer:outage@1s-2s;filer:outage@1s-3s").is_ok());
        assert!(FaultPlan::parse("filer:outage@10s-20s;filer:slowx4@5s-30s").is_ok());
        // from_json stays lenient: old rows decode even if a dup sneaks in.
        let dup = FaultPlan {
            clauses: vec![
                FaultClause {
                    target: FaultTarget::Filer,
                    kind: FaultKind::Outage,
                    window: FaultWindow::Interval {
                        start_ns: 1,
                        end_ns: 2,
                    },
                };
                2
            ],
        };
        assert_eq!(FaultPlan::from_json(&dup.to_json()).unwrap(), dup);
    }

    #[test]
    fn resolve_sharded_lands_clauses_per_shard() {
        let plan =
            FaultPlan::parse("shard1:outage@10s-20s;shard*:slowx2@30s-40s;filer:outage@50s-60s")
                .unwrap();
        let set = plan.resolve_sharded(42, 1, 3).unwrap();
        assert_eq!(set.shards.len(), 3);
        // shard1 gets its own outage plus the shard* and filer windows.
        assert_eq!(set.shards[1].windows().len(), 3);
        // shard0/shard2 get the shard* slowdown and the filer outage.
        assert_eq!(set.shards[0].windows().len(), 2);
        assert_eq!(set.shards[2].windows().len(), 2);
        // The whole-backend schedule keeps only the filer clause.
        assert_eq!(set.filer.windows().len(), 1);
        assert_eq!(
            set.shards[0].outage_until(55_000_000_000),
            Some(60_000_000_000)
        );
        assert_eq!(
            set.shards[1].outage_until(15_000_000_000),
            Some(20_000_000_000)
        );
        assert_eq!(set.shards[0].outage_until(15_000_000_000), None);
        // Legacy resolve skips shard clauses entirely.
        let legacy = plan.resolve(42, 1);
        assert!(legacy.shards.is_empty());
        assert_eq!(legacy.filer.windows().len(), 1);
    }

    #[test]
    fn resolve_sharded_rejects_out_of_range_shards() {
        let plan = FaultPlan::parse("shard4:outage@1s-2s").unwrap();
        let err = plan.resolve_sharded(0, 1, 4).unwrap_err();
        assert!(
            err.contains("shard 4") && err.contains("4 shard(s)"),
            "{err}"
        );
        assert!(plan.resolve_sharded(0, 1, 5).is_ok());
    }

    #[test]
    fn episode_resolution_is_seed_deterministic() {
        let plan = FaultPlan::parse("device:outage@~4x1ms/5ms").unwrap();
        let a = plan.resolve(7, 1);
        let b = plan.resolve(7, 1);
        let c = plan.resolve(8, 1);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.device.windows().len(), 4);
        // Episodes are ordered and non-degenerate.
        for w in a.device.windows() {
            assert!(w.end_ns > w.start_ns);
        }
    }
}
