//! Identifier newtypes for hosts, threads, and files.
//!
//! The paper's environment is "one or more compute servers ('hosts') and a
//! file server ('filer')" where "each host runs one or more applications,
//! involving one or more threads of execution" (§3). Trace records carry a
//! host id and a thread id; I/O requests name a file.

use core::fmt;

/// Identifies a file in the file-server model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct FileId(pub u32);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file{}", self.0)
    }
}

/// Identifies a compute server (client host).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct HostId(pub u16);

impl HostId {
    /// Index form for vector lookups.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}", self.0)
    }
}

/// Identifies an application thread *within* a host.
///
/// Thread ids are local: thread 0 on host 0 and thread 0 on host 1 are
/// distinct threads. The paper's baseline traces "use eight threads per
/// host" (§4).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct ThreadId(pub u16);

impl ThreadId {
    /// Index form for vector lookups.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thr{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(FileId(3).to_string(), "file3");
        assert_eq!(HostId(1).to_string(), "host1");
        assert_eq!(ThreadId(7).to_string(), "thr7");
    }

    #[test]
    fn index_conversions() {
        assert_eq!(HostId(9).index(), 9);
        assert_eq!(ThreadId(11).index(), 11);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(FileId(1) < FileId(2));
        assert!(HostId(0) < HostId(1));
    }
}
