//! Fleet topology: where one simulation cell sits inside a larger fleet.
//!
//! A *fleet* is a large population of client hosts partitioned into
//! *cells*: independent simulation jobs that each run a contiguous slice
//! of the host population against their own shared backend. The topology
//! record travels inside each cell's configuration so that results rows
//! carry full fleet identity (which cell, how many cells, which global
//! host ids) — the multi-process coordinator merges per-worker row files
//! purely on this identity, and a resumed run can check that a row file
//! really belongs to the fleet being resumed.
//!
//! The one knob that changes *behavior* (rather than identity) is
//! [`FleetTopology::hosts_per_segment`]: hosts within a cell share
//! network segments in groups of that size, so cross-host contention for
//! the wire is simulated instead of assumed away. `hosts_per_segment: 1`
//! is the classic private-segment wiring.

use core::fmt;

/// Placement of one simulation cell within a fleet, plus the cell's
/// network-sharing factor. Carried as `SimConfig::fleet`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FleetTopology {
    /// This cell's index within the fleet (0-based).
    pub cell: u32,
    /// Total number of cells in the fleet.
    pub cells: u32,
    /// Global id of this cell's first host; the cell's hosts are
    /// `host_base .. host_base + hosts` where `hosts` is the per-cell
    /// host count of the job itself.
    pub host_base: u32,
    /// Total host population across the whole fleet.
    pub fleet_hosts: u32,
    /// Hosts sharing one network segment within the cell (the fan-in).
    /// 1 = a private segment per host (the pre-fleet wiring).
    pub hosts_per_segment: u16,
}

impl FleetTopology {
    /// The network fan-in, floored at 1 so arithmetic never divides by
    /// zero even for a zero-filled record.
    pub fn fanin(&self) -> u16 {
        self.hosts_per_segment.max(1)
    }
}

impl fmt::Display for FleetTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cell {}/{} (hosts {}.. of {}, {} per segment)",
            self.cell,
            self.cells,
            self.host_base,
            self.fleet_hosts,
            self.fanin()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanin_floors_at_one() {
        let mut t = FleetTopology {
            cell: 0,
            cells: 1,
            host_base: 0,
            fleet_hosts: 4,
            hosts_per_segment: 0,
        };
        assert_eq!(t.fanin(), 1);
        t.hosts_per_segment = 8;
        assert_eq!(t.fanin(), 8);
    }

    #[test]
    fn display_names_the_cell() {
        let t = FleetTopology {
            cell: 2,
            cells: 4,
            host_base: 512,
            fleet_hosts: 1024,
            hosts_per_segment: 16,
        };
        let s = t.to_string();
        assert!(s.contains("cell 2/4"), "{s}");
        assert!(s.contains("512"), "{s}");
        assert!(s.contains("16 per segment"), "{s}");
    }
}
