//! Block addressing.
//!
//! The paper simulates 4 KB blocks throughout ("They use 4K blocks", §4);
//! every cache is "a single LRU chain of blocks" (§5). A block is identified
//! by the file it belongs to plus its index within that file.

use core::fmt;

use crate::ids::FileId;

/// Size of one cache/storage block in bytes (the paper uses 4 KB blocks).
pub const BLOCK_SIZE: u64 = 4096;

/// `log2(BLOCK_SIZE)`, for shift-based conversions.
pub const BLOCK_SHIFT: u32 = 12;

/// Address of a single 4 KB block: a file and a block index within it.
///
/// Packs into a `u64` (`file` in the high 32 bits) so it can serve directly
/// as a cheap hash-map key in the caches and the consistency directory.
///
/// # Examples
///
/// ```
/// use fcache_types::{BlockAddr, FileId};
///
/// let a = BlockAddr::new(FileId(7), 42);
/// assert_eq!(a.file, FileId(7));
/// assert_eq!(a.block, 42);
/// assert_eq!(BlockAddr::from_u64(a.to_u64()), a);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockAddr {
    /// File containing the block.
    pub file: FileId,
    /// Zero-based 4 KB block index within the file.
    pub block: u32,
}

impl BlockAddr {
    /// Creates a block address.
    pub const fn new(file: FileId, block: u32) -> Self {
        Self { file, block }
    }

    /// Packs the address into a `u64` (file id in the high 32 bits).
    pub const fn to_u64(self) -> u64 {
        ((self.file.0 as u64) << 32) | self.block as u64
    }

    /// Unpacks an address produced by [`BlockAddr::to_u64`].
    pub const fn from_u64(v: u64) -> Self {
        Self {
            file: FileId((v >> 32) as u32),
            block: v as u32,
        }
    }

    /// Returns the address of the next block in the same file.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the block index overflows `u32`.
    pub const fn next(self) -> Self {
        Self {
            file: self.file,
            block: self.block + 1,
        }
    }

    /// Byte offset of this block within its file.
    pub const fn byte_offset(self) -> u64 {
        (self.block as u64) << BLOCK_SHIFT
    }
}

impl fmt::Debug for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}+{}", self.file.0, self.block)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Converts a byte count to the number of whole blocks it occupies,
/// rounding up.
///
/// # Examples
///
/// ```
/// use fcache_types::block::{blocks_for_bytes, BLOCK_SIZE};
///
/// assert_eq!(blocks_for_bytes(0), 0);
/// assert_eq!(blocks_for_bytes(1), 1);
/// assert_eq!(blocks_for_bytes(BLOCK_SIZE), 1);
/// assert_eq!(blocks_for_bytes(BLOCK_SIZE + 1), 2);
/// ```
pub const fn blocks_for_bytes(bytes: u64) -> u64 {
    bytes.div_ceil(BLOCK_SIZE)
}

/// Converts a block count to bytes.
pub const fn bytes_for_blocks(blocks: u64) -> u64 {
    blocks * BLOCK_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        let cases = [
            BlockAddr::new(FileId(0), 0),
            BlockAddr::new(FileId(1), 2),
            BlockAddr::new(FileId(u32::MAX), u32::MAX),
            BlockAddr::new(FileId(0xdead_beef), 0x0bad_cafe),
        ];
        for a in cases {
            assert_eq!(BlockAddr::from_u64(a.to_u64()), a);
        }
    }

    #[test]
    fn ordering_groups_by_file_then_block() {
        let a = BlockAddr::new(FileId(1), 100);
        let b = BlockAddr::new(FileId(2), 0);
        let c = BlockAddr::new(FileId(2), 1);
        assert!(a < b);
        assert!(b < c);
        assert_eq!(a.to_u64() < b.to_u64(), a < b);
    }

    #[test]
    fn next_advances_block_only() {
        let a = BlockAddr::new(FileId(3), 9);
        let n = a.next();
        assert_eq!(n.file, FileId(3));
        assert_eq!(n.block, 10);
    }

    #[test]
    fn byte_offset_is_block_times_4k() {
        assert_eq!(BlockAddr::new(FileId(0), 3).byte_offset(), 3 * 4096);
    }

    #[test]
    fn block_size_constants_agree() {
        assert_eq!(1u64 << BLOCK_SHIFT, BLOCK_SIZE);
    }

    #[test]
    fn blocks_for_bytes_rounds_up() {
        assert_eq!(blocks_for_bytes(4095), 1);
        assert_eq!(blocks_for_bytes(4097), 2);
        assert_eq!(blocks_for_bytes(10 * 4096), 10);
        assert_eq!(bytes_for_blocks(10), 40960);
    }

    #[test]
    fn debug_format_is_compact() {
        assert_eq!(format!("{:?}", BlockAddr::new(FileId(5), 77)), "f5+77");
    }
}
