//! A fast, non-cryptographic hasher for the simulator's hot paths.
//!
//! The caches key their maps by the packed `u64` of a [`crate::BlockAddr`]
//! and perform one probe per simulated block operation, so hashing cost is
//! pure per-op overhead. `std`'s default SipHash-1-3 is DoS-resistant but
//! several times slower than necessary for trusted keys. [`FxHasher`] is
//! the word-at-a-time multiply-xor hash used by rustc (Firefox's "Fx"
//! hash): one wrapping multiply and a rotate per word, which optimizing
//! builds compile to a handful of instructions.
//!
//! Determinism: unlike `RandomState`, [`FxBuildHasher`] has no per-instance
//! entropy, so map iteration order is stable across runs *and* across
//! processes — one less source of accidental nondeterminism in parallel
//! sweeps (snapshots are still sorted before use; see `PERF.md`).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the golden ratio (same as rustc-hash).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time multiply-xor hasher.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(b));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut b = [0u8; 8];
            b[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(b) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so the high bits (used by hashbrown for control
        // bytes) depend on every input bit.
        let h = self.hash;
        h ^ (h >> 32)
    }
}

/// `BuildHasher` producing [`FxHasher`]s; no per-instance randomness.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` hashed through [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

/// Stateless 64-bit mixer (SplitMix64 finalizer) for key-derived decisions
/// such as the filer's per-block fast/slow draw — one value in, one
/// avalanche-quality value out, no state.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn deterministic_across_instances() {
        let a = FxBuildHasher::default().hash_one(0xdead_beefu64);
        let b = FxBuildHasher::default().hash_one(0xdead_beefu64);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_keys_disperse() {
        // Sequential block addresses must not collide in the low bits the
        // table actually indexes with.
        let bh = FxBuildHasher::default();
        let mut low_bits = std::collections::HashSet::new();
        for k in 0u64..1024 {
            low_bits.insert(bh.hash_one(k) & 0x3ff);
        }
        assert!(
            low_bits.len() > 600,
            "only {} distinct buckets",
            low_bits.len()
        );
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        m.insert(1, 10);
        m.insert(2, 20);
        assert_eq!(m.get(&1), Some(&10));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn bytes_and_words_hash_consistently() {
        let mut h1 = FxHasher::default();
        h1.write(b"0123456789abcdef");
        let mut h2 = FxHasher::default();
        h2.write(b"0123456789abcdeX");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn mix64_avalanches() {
        // Flipping one input bit flips roughly half the output bits.
        for (a, b) in [(1u64, 2u64), (3, 7), (1 << 40, 3 << 40)] {
            let flips = (mix64(a) ^ mix64(b)).count_ones();
            assert!((16..=48).contains(&flips), "flips {flips} for {a}/{b}");
        }
    }
}
