//! Hand-rolled, dependency-free JSON encode/decode.
//!
//! The build environment has no crates.io access, so the structured
//! results pipeline (see `fcache::results`) cannot lean on `serde`. This
//! module is the minimal replacement: a [`Json`] value tree, a compact
//! encoder, and a strict recursive-descent parser — enough to write and
//! read schema-versioned JSONL result rows.
//!
//! Exactness is the design constraint (result rows must round-trip
//! bit-for-bit, `fcache`'s `results_pipeline` tests pin it):
//!
//! - integers keep their own variants ([`Json::U64`] / [`Json::I64`]), so
//!   64-bit counters never pass through an `f64` and lose precision;
//! - floats encode via Rust's shortest-round-trip formatting (`{:?}`),
//!   which `str::parse::<f64>` maps back to the identical bits;
//! - object key order is preserved (insertion order, not a sorted map),
//!   so encode(parse(s)) == s for anything this encoder produced.
//!
//! Non-finite floats have no JSON representation; the encoder writes
//! `null` for them (the simulator's metrics are NaN-free by construction,
//! see `SimReport`).

use std::fmt;

/// Maximum nesting depth the parser accepts (arrays/objects combined).
/// Deep enough for any result row, shallow enough that hostile input
/// cannot overflow the stack.
const MAX_DEPTH: usize = 128;

/// One JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits in `u64` (the common case for the
    /// simulator's counters).
    U64(u64),
    /// A negative integer that fits in `i64`.
    I64(i64),
    /// Any other number (fractional or exponent form).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved exactly as built or parsed.
    Obj(Vec<(String, Json)>),
}

/// Parse failure with the byte offset where it happened.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// An empty object, for builder-style construction with
    /// [`Json::field`].
    pub fn obj() -> Self {
        Json::Obj(Vec::new())
    }

    /// Appends a key/value pair (builder style). Keys are not checked for
    /// uniqueness — the caller controls the schema.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn field(mut self, key: &str, value: Json) -> Self {
        match &mut self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value)),
            other => panic!("Json::field on non-object {other:?}"),
        }
        self
    }

    /// Member lookup on an object (first match wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an `f64` (any numeric variant converts).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(n) => Some(*n as f64),
            Json::I64(n) => Some(*n as f64),
            Json::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Encodes compactly (no whitespace) into `out`.
    pub fn encode(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::U64(n) => push_u64(out, *n),
            Json::I64(n) => {
                if *n < 0 {
                    out.push('-');
                }
                push_u64(out, n.unsigned_abs());
            }
            Json::F64(x) => {
                if x.is_finite() {
                    // `{:?}` is Rust's shortest representation that parses
                    // back to the identical bits.
                    out.push_str(&format!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => encode_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_str(k, out);
                    out.push(':');
                    v.encode(out);
                }
                out.push('}');
            }
        }
    }

    /// Encodes compactly to a fresh string.
    #[allow(clippy::inherent_to_string)]
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.encode(&mut out);
        out
    }

    /// Parses one JSON value; the whole input must be consumed (trailing
    /// whitespace allowed).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }
}

/// Appends a `u64`'s digits without `fmt` machinery or allocation (hot in
/// JSONL encoding: every counter in a result row is one of these).
fn push_u64(out: &mut String, mut n: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    // Digits are ASCII by construction.
    out.push_str(std::str::from_utf8(&buf[i..]).expect("ascii digits"));
}

fn encode_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(&format!("unexpected character {:?}", other as char))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: the low half must follow.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(code).ok_or_else(|| self.err("invalid codepoint"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                            // hex4 leaves pos past the digits; skip the
                            // outer increment below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char (input is &str, so the
                    // bytes are valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        // Exactly four hex digits; from_str_radix alone would also accept
        // a leading '+', which JSON does not.
        if !slice.iter().all(u8::is_ascii_hexdigit) {
            return Err(self.err("invalid \\u escape"));
        }
        let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    /// Consumes `1..` digits; errors with `what` if there are none.
    fn digits(&mut self, what: &str) -> Result<usize, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err(what));
        }
        Ok(self.pos - start)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        // The full JSON number grammar, enforced shape-first:
        // `-? (0 | [1-9][0-9]*) (\.[0-9]+)? ([eE][+-]?[0-9]+)?`.
        // Deferring to str::parse alone would accept non-JSON forms like
        // leading-zero integers ("0123").
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        let int_digits = self.digits("expected digits in number")?;
        if int_digits > 1 && self.bytes[int_start] == b'0' {
            self.pos = int_start;
            return Err(self.err("leading zeros are not valid JSON"));
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            self.digits("expected digits after decimal point")?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits("expected digits in exponent")?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if integral {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(n) = digits.parse::<u64>() {
                    // i64::MIN's magnitude is i64::MAX + 1; wrapping_neg
                    // maps it back exactly.
                    if n <= i64::MAX as u64 + 1 {
                        return Ok(Json::I64((n as i64).wrapping_neg()));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
            // Out-of-range integer: fall through to f64 (lossy but legal
            // JSON; nothing in the result schema produces these).
        }
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Json::F64(x)),
            _ => {
                self.pos = start;
                Err(self.err(&format!("invalid number {text:?}")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) -> Json {
        Json::parse(&v.to_string()).expect("reparse")
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::U64(0),
            Json::U64(u64::MAX),
            Json::I64(-1),
            Json::I64(i64::MIN),
            Json::F64(0.1),
            Json::F64(-1.5e300),
            Json::Str(String::new()),
            Json::Str("hello \"world\"\n\t\\ ∞ 𝄞".into()),
        ] {
            assert_eq!(roundtrip(&v), v, "{v:?}");
        }
    }

    #[test]
    fn u64_precision_is_exact() {
        // 2^53 + 1 is the first integer an f64 path would corrupt.
        let v = Json::U64((1 << 53) + 1);
        assert_eq!(v.to_string(), "9007199254740993");
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn containers_roundtrip_preserving_order() {
        let v = Json::obj()
            .field("z", Json::U64(1))
            .field("a", Json::Arr(vec![Json::Null, Json::Bool(true)]))
            .field("nested", Json::obj().field("k", Json::Str("v".into())));
        let s = v.to_string();
        assert_eq!(s, r#"{"z":1,"a":[null,true],"nested":{"k":"v"}}"#);
        assert_eq!(roundtrip(&v), v);
        // Encoding is a fixed point: encode(parse(s)) == s.
        assert_eq!(Json::parse(&s).unwrap().to_string(), s);
    }

    #[test]
    fn accessors() {
        let v = Json::obj()
            .field("n", Json::U64(7))
            .field("s", Json::Str("x".into()))
            .field("b", Json::Bool(true))
            .field("arr", Json::Arr(vec![Json::F64(1.5)]))
            .field("nil", Json::Null);
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(7.0));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("arr").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert!(v.get("nil").is_some_and(Json::is_null));
        assert!(v.get("missing").is_none());
        assert!(Json::Null.get("n").is_none());
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"k\" : [ 1 , \"a\\u0041\\n\" , -2.5e1 ] } ").unwrap();
        assert_eq!(
            v,
            Json::obj().field(
                "k",
                Json::Arr(vec![
                    Json::U64(1),
                    Json::Str("aA\n".into()),
                    Json::F64(-25.0)
                ])
            )
        );
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse(r#""\ud834\udd1e""#).unwrap();
        assert_eq!(v, Json::Str("𝄞".into()));
        assert!(Json::parse(r#""\ud834""#).is_err());
        assert!(Json::parse(r#""\ud834\u0041""#).is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "nul",
            "1x",
            "--1",
            "1.2.3",
            "\"\\q\"",
            "\"unterminated",
            "[1]]",
            "{}{}",
            "\u{1}",
            "\"\u{1}\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn number_grammar_is_strict_json() {
        // Forms a conforming JSON parser rejects must be rejected here
        // too, or hand-edited/corrupt rows decode differently per tool.
        for bad in [
            "0123",
            "01",
            "-01",
            "1.",
            ".5",
            "-",
            "1e",
            "1e+",
            "1.e5",
            "+1",
            r#""\u+abc""#,
            r#""\u12g4""#,
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        for (ok, want) in [
            ("0", Json::U64(0)),
            ("-0", Json::I64(0)),
            ("10", Json::U64(10)),
            ("0.5", Json::F64(0.5)),
            ("1e5", Json::F64(1e5)),
            ("1E+5", Json::F64(1e5)),
            ("2e-3", Json::F64(2e-3)),
        ] {
            assert_eq!(Json::parse(ok).unwrap(), want, "{ok}");
        }
    }

    #[test]
    fn depth_limit_stops_hostile_nesting() {
        let deep = "[".repeat(100_000);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.msg.contains("deep"), "{err}");
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn field_on_non_object_panics() {
        let _ = Json::U64(1).field("k", Json::Null);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn arbitrary_counters_roundtrip(ns in proptest::collection::vec(0u64..u64::MAX, 1..50)) {
                let v = Json::Arr(ns.iter().map(|&n| Json::U64(n)).collect());
                prop_assert_eq!(roundtrip(&v), v);
            }

            #[test]
            fn arbitrary_floats_roundtrip(bits in proptest::collection::vec(0u64..u64::MAX, 1..50)) {
                // Drive through the full f64 bit space; skip non-finite.
                let v = Json::Arr(
                    bits.iter()
                        .map(|&b| f64::from_bits(b))
                        .filter(|x| x.is_finite())
                        .map(Json::F64)
                        .collect(),
                );
                prop_assert_eq!(roundtrip(&v), v);
            }

            #[test]
            fn arbitrary_strings_roundtrip(points in proptest::collection::vec(0u32..0x11_0000u32, 0..60)) {
                // Any scalar value survives; unpaired-surrogate codepoints
                // are not `char`s, so from_u32 filters them.
                let s: String = points.iter().filter_map(|&p| char::from_u32(p)).collect();
                let v = Json::Str(s);
                prop_assert_eq!(roundtrip(&v), v);
            }
        }
    }
}
