//! Property tests for the fault-plan codecs: JSON encode/decode and the
//! spec-string `parse`/`describe` pair are exact inverses over arbitrary
//! plans, so a plan recorded in a results row reproduces the run.

use fcache_types::{
    FaultClause, FaultDirection, FaultKind, FaultPlan, FaultTarget, FaultWindow, Json,
};
use proptest::prelude::*;

fn target_strategy() -> impl Strategy<Value = FaultTarget> {
    prop_oneof![
        Just(FaultTarget::Filer),
        Just(FaultTarget::Net(FaultDirection::ToServer)),
        Just(FaultTarget::Net(FaultDirection::FromServer)),
        Just(FaultTarget::Device),
        Just(FaultTarget::Shard(None)),
        (0u16..8).prop_map(|k| FaultTarget::Shard(Some(k))),
    ]
}

fn kind_strategy() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        Just(FaultKind::Outage),
        // Positive finite factors/probabilities, the same domain `parse`
        // accepts. Arbitrary f64 bit patterns round-trip through Rust's
        // shortest float formatting, so no quantization is needed.
        (0.001f64..1e6).prop_map(FaultKind::SlowBy),
        (0.0f64..1.0).prop_map(FaultKind::ErrorRate),
    ]
}

fn window_strategy() -> impl Strategy<Value = FaultWindow> {
    prop_oneof![
        (0u64..u64::MAX / 2, 1u64..u64::MAX / 2).prop_map(|(start, len)| {
            FaultWindow::Interval {
                start_ns: start,
                end_ns: start + len,
            }
        }),
        (1u64..1u64 << 40, 1u64..1u64 << 40, 1u32..64).prop_map(|(len, gap, count)| {
            FaultWindow::Episodes {
                mean_len_ns: len,
                mean_gap_ns: gap,
                count,
            }
        }),
    ]
}

fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
    proptest::collection::vec(
        (target_strategy(), kind_strategy(), window_strategy()).prop_map(
            |(target, kind, window)| FaultClause {
                target,
                kind,
                window,
            },
        ),
        0..8,
    )
    .prop_map(|clauses| FaultPlan { clauses })
}

/// Plans whose canonical spec string survives `parse` exactly: time
/// values stay within f64-exact range (the spec grammar parses times as
/// floats), and clauses are deduplicated (parse rejects exact repeats).
fn spec_plan_strategy() -> impl Strategy<Value = FaultPlan> {
    let window = prop_oneof![
        (0u64..1u64 << 48, 1u64..1u64 << 48).prop_map(|(start, len)| FaultWindow::Interval {
            start_ns: start,
            end_ns: start + len,
        }),
        (1u64..1u64 << 40, 1u64..1u64 << 40, 1u32..64).prop_map(|(len, gap, count)| {
            FaultWindow::Episodes {
                mean_len_ns: len,
                mean_gap_ns: gap,
                count,
            }
        }),
    ];
    proptest::collection::vec(
        (target_strategy(), kind_strategy(), window).prop_map(|(target, kind, window)| {
            FaultClause {
                target,
                kind,
                window,
            }
        }),
        1..6,
    )
    .prop_map(|clauses| {
        let mut deduped: Vec<FaultClause> = Vec::new();
        for c in clauses {
            if !deduped.contains(&c) {
                deduped.push(c);
            }
        }
        FaultPlan { clauses: deduped }
    })
}

proptest! {
    #[test]
    fn fault_plan_json_roundtrip_is_exact(plan in plan_strategy()) {
        let encoded = plan.to_json().to_string();
        let parsed = Json::parse(&encoded).expect("reparse");
        let back = FaultPlan::from_json(&parsed).expect("decode");
        prop_assert_eq!(back, plan);
    }

    #[test]
    fn resolution_is_deterministic(plan in plan_strategy(), seed in any::<u64>()) {
        // Same plan, same seed, same schedule — and the decoded plan
        // resolves identically to the original, so a results row's
        // embedded plan reproduces the run's fault timeline.
        let parsed = Json::parse(&plan.to_json().to_string()).expect("reparse");
        let back = FaultPlan::from_json(&parsed).expect("decode");
        prop_assert_eq!(plan.resolve(seed, 64), back.resolve(seed, 64));
    }

    #[test]
    fn distinct_clause_specs_round_trip_through_describe(plan in spec_plan_strategy()) {
        // Duplicate-free plans are exactly the ones the spec grammar can
        // express: describe → parse is the identity on them.
        let canon = plan.describe();
        let back = FaultPlan::parse(&canon);
        prop_assert_eq!(back, Ok(plan));
    }

    #[test]
    fn injected_duplicate_clause_is_rejected(plan in spec_plan_strategy(), pick in any::<u64>()) {
        // Repeating any one clause of a valid plan makes the spec invalid,
        // regardless of where the duplicate's original sits.
        let dup = plan.clauses[(pick as usize) % plan.clauses.len()];
        let spec = format!("{};{}", plan.describe(), dup.describe());
        let err = FaultPlan::parse(&spec);
        prop_assert!(err.is_err(), "accepted duplicated spec {:?}", spec);
        prop_assert!(err.unwrap_err().contains("duplicate fault clause"));
    }
}

#[test]
fn spec_strings_round_trip_through_describe() {
    // The CLI-facing grammar: parse → describe → parse is a fixed point
    // (net sugar expands on the first parse).
    for spec in [
        "filer:outage@40s-60s",
        "net:slowx4@10s-20s",
        "net-up:err0.25@1s-2s;device:slowx2.5@3s-4s",
        "filer:err0.1@~3x2s/10s",
    ] {
        let plan = FaultPlan::parse(spec).expect("valid spec");
        let canon = plan.describe();
        assert_eq!(FaultPlan::parse(&canon).expect("canonical"), plan, "{spec}");
    }
}
