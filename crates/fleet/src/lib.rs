//! Fleet-scale simulation: thousands of client hosts against shared
//! backends, fanned out across threads *and* OS processes, folded back
//! into fleet-level percentiles.
//!
//! The paper evaluates one client at a time; a deployment is thousands of
//! them. This crate runs that population. A fleet is partitioned by
//! [`FleetPlan`] (re-exported from `fcache::fleet`) into **cells** —
//! contiguous host slices, each cell one deterministic single-threaded
//! simulation of its hosts contending for a shared backend and shared
//! network segments
//! ([`hosts_per_segment`](fcache_types::FleetTopology::hosts_per_segment)
//! hosts per wire). Cells are embarrassingly parallel, so a [`Fleet`]
//! runs them:
//!
//! - **in-process** across worker threads ([`Fleet::run`]), or
//! - **across worker processes** ([`Fleet::run_worker`] +
//!   [`Fleet::merge_parts`], driven by `fcsim fleet --procs P`): worker
//!   `k` of `P` owns cells `cell % P == k` and streams finished rows to
//!   its own JSONL part file, flushing per row; a killed worker loses at
//!   most its unflushed final line, and a `--resume` rerun picks up the
//!   remaining cells ([`JsonlSink::resume`] semantics, with fleet
//!   identity checks so a part file from a different fleet is refused).
//!
//! Every per-cell input — config, trace seed, label — is a pure function
//! of the base config and the cell index, and the merge step orders rows
//! by cell. A fleet run across `P` processes therefore produces a results
//! file **byte-identical** to the same fleet in one process (pinned by
//! this crate's tests and the CI fleet smoke), and `hosts_per_segment: 1`
//! cells are bit-identical to the pre-fleet engine (PERF.md invariant
//! 13).
//!
//! [`FleetSummary`] folds merged rows into fleet-level numbers: exact
//! fleet-wide op-latency percentiles via [`HistogramSnapshot::merged`](fcache::HistogramSnapshot::merged),
//! and p50/p95/p99 of per-host mean latency *across hosts* — the "how bad
//! is the unluckiest host" view a single-cell report cannot give.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};

use fcache::results::config_to_json;
use fcache::{
    DecodedRow, FleetPlan, FleetStats, JsonlSink, MemorySink, MetricsSnapshot, ResultRow,
    ResultSink, SimConfig, SimReport, Sweep, Workbench, WorkloadSpec,
};
use fcache_types::Json;

/// What to simulate: the fleet's shape plus the per-cell workload
/// template, in paper-scale units.
#[derive(Clone, Debug)]
pub struct FleetSpec {
    /// Total host population.
    pub hosts: u32,
    /// Hosts per cell (one cell = one simulation job = one result row).
    pub cell_hosts: u16,
    /// Hosts sharing each network segment within a cell; 1 gives every
    /// host a private wire (no queuing), larger values make hosts contend.
    pub hosts_per_segment: u16,
    /// Workload template. `hosts` is overridden per cell; `seed` is the
    /// fleet's base trace seed (each cell derives its own) and also seeds
    /// the shared file-server model.
    pub workload: WorkloadSpec,
    /// Linear scale factor for the [`Workbench`] (1 = paper scale).
    pub scale: u64,
}

impl Default for FleetSpec {
    fn default() -> Self {
        Self {
            hosts: 1000,
            cell_hosts: 100,
            hosts_per_segment: 4,
            workload: WorkloadSpec::default(),
            scale: 4096,
        }
    }
}

impl FleetSpec {
    /// The partitioning plan this spec describes.
    pub fn plan(&self) -> FleetPlan {
        FleetPlan::new(self.hosts, self.cell_hosts, self.hosts_per_segment)
    }
}

/// Outcome of one worker's (or one in-process) cell pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Cells this worker owns.
    pub cells: usize,
    /// Cells simulated in this pass.
    pub completed: usize,
    /// Cells skipped because a resumed part file already held their rows.
    pub resumed: usize,
}

/// A fleet scenario: one base configuration, one [`FleetSpec`].
///
/// The base configuration is paper-scale (scaled by the spec's workbench
/// factor, like every `Workbench` experiment); each cell runs a derived
/// copy carrying its [`FleetTopology`](fcache_types::FleetTopology) and
/// a per-cell seed.
#[derive(Clone, Debug)]
pub struct Fleet {
    base: SimConfig,
    spec: FleetSpec,
    threads: usize,
}

impl Fleet {
    /// Pairs a base configuration with a fleet spec.
    pub fn new(base: SimConfig, spec: FleetSpec) -> Self {
        Self {
            base,
            spec,
            threads: 0,
        }
    }

    /// Bounds the in-process worker-thread count (`0` = all cores).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// The partitioning plan in force.
    pub fn plan(&self) -> FleetPlan {
        self.spec.plan()
    }

    /// The fleet spec.
    pub fn spec(&self) -> &FleetSpec {
        &self.spec
    }

    /// The serialized configuration cell `cell`'s result row carries
    /// (scaled, topology attached) — the fleet identity a resumed part
    /// file is checked against.
    fn cell_config_json(&self, plan: &FleetPlan, cell: u32) -> Json {
        let cfg = plan
            .cell_config(&self.base, cell)
            .scaled_down(self.spec.scale);
        config_to_json(&cfg)
    }

    /// Runs `cells` in-process, streaming each finished row — reindexed
    /// from sweep push order to its global cell index — into `sink`.
    fn run_cells(
        &self,
        cells: &[u32],
        skip: Vec<String>,
        sink: &mut dyn ResultSink,
    ) -> io::Result<WorkerReport> {
        let plan = self.plan();
        let wb = Workbench::new(self.spec.scale, self.spec.workload.seed);
        let mut sweep = Sweep::new().threads(self.threads);
        for &cell in cells {
            let cfg = plan.cell_config(&self.base, cell);
            let spec = plan.cell_spec(&self.spec.workload, cell);
            sweep = sweep.scenario(plan.cell_label(cell), wb.scenario(&cfg, &spec));
        }
        let mut reindex = ReindexSink {
            map: cells.iter().map(|&c| c as usize).collect(),
            inner: sink,
        };
        let results = sweep.skip_labels(skip).sink(&mut reindex).run();
        if let Some(e) = results.sink_error() {
            return Err(io::Error::new(e.kind(), e.to_string()));
        }
        if let Some(e) = results.first_error() {
            return Err(io::Error::other(e.to_string()));
        }
        let resumed = results.skipped();
        Ok(WorkerReport {
            cells: cells.len(),
            completed: results.len() - resumed,
            resumed,
        })
    }

    /// Runs the whole fleet in-process and returns its rows in cell
    /// order. Memory is O(rows); for fleets too large for that, use the
    /// worker-file path.
    pub fn run(&self) -> io::Result<FleetRun> {
        let cells = self.plan().worker_cells(1, 0);
        let mut sink = MemorySink::new();
        self.run_cells(&cells, Vec::new(), &mut sink)?;
        Ok(FleetRun {
            rows: sink.into_rows(),
        })
    }

    /// Runs worker `worker` of `procs`: simulates the cells it owns
    /// (`cell % procs == worker`) and streams their rows to the worker's
    /// part file ([`worker_part_path`]), one flushed JSONL line per cell.
    ///
    /// With `resume`, rows already in the part file are verified against
    /// this fleet's identity (label, cell index, serialized config —
    /// mismatches are refused, not overwritten) and their cells skipped,
    /// so a rerun after a kill completes only the missing cells.
    pub fn run_worker(
        &self,
        out: &Path,
        procs: u32,
        worker: u32,
        resume: bool,
    ) -> io::Result<WorkerReport> {
        let plan = self.plan();
        let cells = plan.worker_cells(procs, worker);
        let part = worker_part_path(out, worker);
        let (mut sink, skip) = if resume {
            let (sink, rows) = JsonlSink::resume(&part)?;
            let skip = self.check_resumed(&plan, &cells, &rows, &part)?;
            (sink, skip)
        } else {
            (JsonlSink::create(&part)?, Vec::new())
        };
        self.run_cells(&cells, skip, &mut sink)
    }

    /// Verifies that resumed part-file rows belong to this worker's slice
    /// of this fleet; returns their labels (the cells to skip).
    fn check_resumed(
        &self,
        plan: &FleetPlan,
        cells: &[u32],
        rows: &[DecodedRow],
        part: &Path,
    ) -> io::Result<Vec<String>> {
        let expected: HashMap<String, u32> =
            cells.iter().map(|&c| (plan.cell_label(c), c)).collect();
        let refuse = |why: String| io::Error::new(io::ErrorKind::InvalidData, why);
        let mut skip = Vec::with_capacity(rows.len());
        for row in rows {
            let Some(&cell) = expected.get(&row.label) else {
                return Err(refuse(format!(
                    "{}: row {:?} is not one of this worker's cells; refusing to resume",
                    part.display(),
                    row.label
                )));
            };
            if row.index != cell as usize {
                return Err(refuse(format!(
                    "{}: row {:?} has index {} but cell {}; refusing to resume",
                    part.display(),
                    row.label,
                    row.index,
                    cell
                )));
            }
            if row.config != self.cell_config_json(plan, cell) {
                return Err(refuse(format!(
                    "{}: row {:?} ran a different configuration; refusing to resume",
                    part.display(),
                    row.label
                )));
            }
            skip.push(row.label.clone());
        }
        Ok(skip)
    }

    /// Merges the `procs` worker part files into `out`, ordered by cell
    /// index, verifying every cell appears exactly once. Lines are copied
    /// verbatim (after strict decoding), so the merged file is
    /// byte-identical to a single-process run of the same fleet.
    pub fn merge_parts(&self, out: &Path, procs: u32) -> io::Result<Vec<DecodedRow>> {
        let cells = self.plan().cells() as usize;
        let mut slots: Vec<Option<(String, DecodedRow)>> = vec![None; cells];
        for w in 0..procs {
            let part = worker_part_path(out, w);
            let text = std::fs::read_to_string(&part)?;
            for (ln, line) in text.lines().enumerate() {
                if line.is_empty() {
                    continue;
                }
                let bad = |why: String| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{}:{}: {why}", part.display(), ln + 1),
                    )
                };
                let v = Json::parse(line).map_err(|e| bad(e.to_string()))?;
                let row = fcache::row_from_json(&v).map_err(bad)?;
                if row.index >= cells {
                    return Err(bad(format!("cell index {} out of range", row.index)));
                }
                if slots[row.index].is_some() {
                    return Err(bad(format!("cell {} appears twice", row.index)));
                }
                let i = row.index;
                slots[i] = Some((line.to_string(), row));
            }
        }
        let missing: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_none().then_some(i))
            .collect();
        if !missing.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "fleet incomplete: {} of {cells} cells missing (first: cell {}) — \
                     rerun with --resume to finish them",
                    missing.len(),
                    missing[0]
                ),
            ));
        }
        let mut text = String::new();
        let mut rows = Vec::with_capacity(cells);
        for slot in slots {
            let (line, row) = slot.expect("missing cells were rejected above");
            text.push_str(&line);
            text.push('\n');
            rows.push(row);
        }
        std::fs::write(out, text)?;
        Ok(rows)
    }
}

/// The part file worker `worker` streams its rows to: `<out>.<worker>`.
pub fn worker_part_path(out: &Path, worker: u32) -> PathBuf {
    let mut s = out.as_os_str().to_os_string();
    s.push(format!(".{worker}"));
    PathBuf::from(s)
}

/// Rewrites each row's sweep push index to its global cell index before
/// forwarding, so part files (and in-process rows) carry fleet-wide
/// identity no matter which worker — or which subset of cells — produced
/// them.
struct ReindexSink<'s> {
    map: Vec<usize>,
    inner: &'s mut dyn ResultSink,
}

impl ResultSink for ReindexSink<'_> {
    fn on_row(&mut self, mut row: ResultRow) -> io::Result<()> {
        row.index = self.map[row.index];
        self.inner.on_row(row)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// An in-process fleet run: one row per cell, in cell order.
#[derive(Debug)]
pub struct FleetRun {
    /// Result rows, `rows[i]` being cell `i`.
    pub rows: Vec<ResultRow>,
}

impl FleetRun {
    /// Folds the rows into fleet-level numbers.
    pub fn summary(&self) -> FleetSummary {
        FleetSummary::from_reports(self.rows.iter().map(|r| &r.report))
    }
}

/// Fleet-level aggregates folded from per-cell reports.
///
/// Two distinct latency views:
///
/// - **op percentiles** come from the exact bucket-wise merge of every
///   cell's operation-latency histogram ([`HistogramSnapshot::merged`](fcache::HistogramSnapshot::merged)) —
///   the distribution over all operations fleet-wide;
/// - **per-host percentiles** rank hosts by their mean read latency — the
///   spread *across hosts*, which is what shared-wire contention skews.
#[derive(Clone, Debug, Default)]
pub struct FleetSummary {
    /// Cells folded in.
    pub cells: usize,
    /// Hosts folded in (sum of per-cell host rows).
    pub hosts: usize,
    /// Exact fleet-wide metrics fold (counters summed, histograms merged).
    pub metrics: MetricsSnapshot,
    /// p50/p95/p99 of per-host mean read latency, µs, across all hosts.
    pub host_read_us: (f64, f64, f64),
    /// Packets that queued for a shared wire, fleet-wide.
    pub queue_waits: u64,
    /// Total simulated time packets spent queued, ns, fleet-wide.
    pub queue_wait_ns: u64,
}

impl FleetSummary {
    /// Folds per-cell reports (any order; the fold is exact and
    /// order-insensitive).
    pub fn from_reports<'a>(reports: impl IntoIterator<Item = &'a SimReport>) -> Self {
        let mut s = Self::default();
        let mut per_host = Vec::new();
        for r in reports {
            s.cells += 1;
            s.metrics = s.metrics.merged(&r.metrics);
            s.queue_waits += r.net.queue_waits;
            s.queue_wait_ns += r.net.queue_wait.as_nanos();
            per_host.extend(r.fleet.per_host.iter().cloned());
        }
        s.hosts = per_host.len();
        let combined = FleetStats {
            topology: None,
            per_host,
        };
        s.host_read_us = combined.host_read_p50_p95_p99_us();
        s
    }

    /// Folds decoded result rows (the merged-file path).
    pub fn from_rows(rows: &[DecodedRow]) -> Self {
        Self::from_reports(rows.iter().map(|r| &r.report))
    }

    /// A fleet-wide operation-latency percentile in µs (`None` while no
    /// ops were recorded), from the merged read histogram.
    pub fn read_op_percentile_us(&self, p: f64) -> Option<f64> {
        self.metrics
            .read_hist
            .percentile(p)
            .map(|t| t.as_nanos() as f64 / 1000.0)
    }
}

impl std::fmt::Display for FleetSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fleet              {} hosts in {} cells",
            self.hosts, self.cells
        )?;
        writeln!(
            f,
            "ops                {} reads, {} writes",
            self.metrics.read_ops, self.metrics.write_ops
        )?;
        let p = |p: f64| self.read_op_percentile_us(p).unwrap_or(0.0);
        writeln!(
            f,
            "read latency       p50/p95/p99 {:.1}/{:.1}/{:.1} µs per op (fleet-wide)",
            p(50.0),
            p(95.0),
            p(99.0)
        )?;
        let (h50, h95, h99) = self.host_read_us;
        writeln!(
            f,
            "host mean read     p50/p95/p99 {h50:.1}/{h95:.1}/{h99:.1} µs (across hosts)"
        )?;
        if self.queue_waits > 0 {
            writeln!(
                f,
                "net queueing       {} packets waited, {} ns total queue time",
                self.queue_waits, self.queue_wait_ns
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcache_types::ByteSize;

    /// A small, fast fleet: 24 hosts in 8-host cells, 2 hosts per wire.
    fn tiny_fleet() -> Fleet {
        let base = SimConfig {
            ram_size: ByteSize::gib(8),
            flash_size: ByteSize::gib(32),
            ..SimConfig::baseline()
        };
        let spec = FleetSpec {
            hosts: 24,
            cell_hosts: 8,
            hosts_per_segment: 2,
            workload: WorkloadSpec {
                working_set: ByteSize::gib(8),
                seed: 11,
                ..WorkloadSpec::default()
            },
            scale: 16384,
        };
        Fleet::new(base, spec).threads(2)
    }

    fn encode_rows(rows: &[ResultRow]) -> Vec<String> {
        rows.iter()
            .map(|r| fcache::row_to_json(r).to_string())
            .collect()
    }

    #[test]
    fn run_yields_one_row_per_cell_with_fleet_sections() {
        let fleet = tiny_fleet();
        let run = fleet.run().expect("fleet run");
        assert_eq!(run.rows.len(), 3);
        for (i, row) in run.rows.iter().enumerate() {
            assert_eq!(row.index, i);
            let topo = row.report.fleet.topology.expect("fleet engaged");
            assert_eq!(topo.cell, i as u32);
            assert_eq!(topo.fleet_hosts, 24);
            assert_eq!(row.report.fleet.per_host.len(), 8);
            // Global host ids are contiguous across cells.
            assert_eq!(row.report.fleet.per_host[0].host, (i as u32) * 8);
        }
        let summary = run.summary();
        assert_eq!(summary.cells, 3);
        assert_eq!(summary.hosts, 24);
        assert!(summary.metrics.read_ops > 0);
        let (h50, h95, h99) = summary.host_read_us;
        assert!(
            h50 > 0.0 && h50 <= h95 && h95 <= h99,
            "{:?}",
            summary.host_read_us
        );
        // 2 hosts share each wire: someone must have queued.
        assert!(summary.queue_waits > 0);
        assert!(!summary.to_string().is_empty());
    }

    #[test]
    fn multi_process_partition_merges_to_the_single_process_rows() {
        let fleet = tiny_fleet();
        let single = encode_rows(&fleet.run().expect("in-process").rows);

        let dir = std::env::temp_dir().join("fcache_fleet_unit_merge");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("fleet.jsonl");
        for procs in [1u32, 2, 3] {
            for w in 0..procs {
                let rep = fleet.run_worker(&out, procs, w, false).expect("worker");
                assert_eq!(rep.completed, rep.cells);
            }
            let rows = fleet.merge_parts(&out, procs).expect("merge");
            assert_eq!(rows.len(), 3);
            let text = std::fs::read_to_string(&out).unwrap();
            let merged: Vec<&str> = text.lines().collect();
            assert_eq!(merged, single, "procs={procs} diverged from in-process run");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn killed_worker_resumes_to_an_identical_file() {
        let fleet = tiny_fleet();
        let dir = std::env::temp_dir().join("fcache_fleet_unit_resume");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("fleet.jsonl");

        // Uninterrupted reference (part files hold rows in completion
        // order; the merged file is the canonical, cell-ordered artifact).
        fleet.run_worker(&out, 1, 0, false).expect("reference");
        fleet.merge_parts(&out, 1).expect("reference merge");
        let reference = std::fs::read_to_string(&out).unwrap();

        // Simulate a kill: keep the part file's first row plus a torn
        // second line.
        let part = std::fs::read_to_string(worker_part_path(&out, 0)).unwrap();
        let first_line_end = part.find('\n').unwrap() + 1;
        std::fs::write(worker_part_path(&out, 0), &part[..first_line_end + 40]).unwrap();
        let rep = fleet.run_worker(&out, 1, 0, true).expect("resume");
        assert_eq!(rep.resumed, 1);
        assert_eq!(rep.completed, 2);
        fleet.merge_parts(&out, 1).expect("resumed merge");
        assert_eq!(
            std::fs::read_to_string(&out).unwrap(),
            reference,
            "resumed fleet file must match the uninterrupted one"
        );

        // A part file from a different fleet is refused, not absorbed.
        let mut other = tiny_fleet();
        other.base.seed = 999;
        let err = other.run_worker(&out, 1, 0, true).unwrap_err();
        assert!(err.to_string().contains("different configuration"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_rejects_incomplete_fleets() {
        let fleet = tiny_fleet();
        let dir = std::env::temp_dir().join("fcache_fleet_unit_incomplete");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("fleet.jsonl");
        // Worker 0 of 2 ran; worker 1 never did.
        fleet.run_worker(&out, 2, 0, false).expect("worker 0");
        std::fs::write(worker_part_path(&out, 1), "").unwrap();
        let err = fleet.merge_parts(&out, 2).unwrap_err();
        assert!(err.to_string().contains("cells missing"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
