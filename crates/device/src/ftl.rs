//! Page-mapped flash translation layer (FTL) model.
//!
//! The paper's §8 names this as future work: "flash caching is a good
//! candidate for a custom flash translation layer \[FlashTier\] — exploring
//! approaches and algorithms as well as establishing satisfactory lifetime
//! for this application remains as future work." This module provides the
//! substrate for that exploration: a page-mapped FTL with erase-block
//! bookkeeping, greedy garbage collection, and write-amplification /
//! erase-count (lifetime) accounting.
//!
//! The simulator proper deliberately does **not** route I/O through this
//! model — §5: "We assume a flash translation layer but do not model it
//! directly." Instead, captured [`crate::IoLog`]s can be replayed through
//! an [`Ftl`] to measure what the paper's caching workloads would do to a
//! real device's write amplification and lifetime (see the `ftl_lifetime`
//! bench target).

use std::collections::HashMap;

/// Configuration of the modeled device geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FtlConfig {
    /// Logical device capacity in 4 KB pages.
    pub logical_pages: u64,
    /// Physical overprovisioning: physical = logical × (1 + op) / 1.
    /// Expressed in percent (consumer drives: ~7 %; enterprise: 28 %+).
    pub overprovision_pct: u32,
    /// Pages per erase block (typical: 64–256).
    pub pages_per_block: u32,
}

impl Default for FtlConfig {
    fn default() -> Self {
        Self {
            logical_pages: 1 << 20,
            overprovision_pct: 7,
            pages_per_block: 128,
        }
    }
}

impl FtlConfig {
    /// Number of physical erase blocks implied by the geometry.
    pub fn physical_blocks(&self) -> u64 {
        let physical_pages = self.logical_pages * (100 + u64::from(self.overprovision_pct)) / 100;
        physical_pages
            .div_ceil(u64::from(self.pages_per_block))
            .max(2)
    }
}

/// Lifetime / amplification counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FtlStats {
    /// Host (logical) page writes.
    pub host_writes: u64,
    /// Physical page programs (host + GC relocations).
    pub flash_programs: u64,
    /// Pages relocated by garbage collection.
    pub gc_relocations: u64,
    /// Erase operations performed.
    pub erases: u64,
}

impl FtlStats {
    /// Write amplification factor: physical programs per host write.
    pub fn write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            1.0
        } else {
            self.flash_programs as f64 / self.host_writes as f64
        }
    }

    /// Mean erase count per physical block (lifetime proxy).
    pub fn mean_erases_per_block(&self, physical_blocks: u64) -> f64 {
        self.erases as f64 / physical_blocks.max(1) as f64
    }
}

/// State of one erase block.
#[derive(Clone, Debug)]
struct EraseBlock {
    /// Physical page states: logical page mapped here, or `None` if the
    /// slot is invalid/free past the write pointer.
    slots: Vec<Option<u64>>,
    /// Next free slot index (block fills sequentially).
    write_ptr: u32,
    /// Live (valid) page count.
    live: u32,
    /// Erase count (wear).
    erases: u32,
}

impl EraseBlock {
    fn new(pages: u32) -> Self {
        Self {
            slots: vec![None; pages as usize],
            write_ptr: 0,
            live: 0,
            erases: 0,
        }
    }

    fn is_full(&self, pages: u32) -> bool {
        self.write_ptr >= pages
    }
}

/// Page-mapped FTL with greedy garbage collection.
///
/// # Examples
///
/// ```
/// use fcache_device::ftl::{Ftl, FtlConfig};
///
/// let mut ftl = Ftl::new(FtlConfig { logical_pages: 1024, ..FtlConfig::default() });
/// for lpn in 0..1024 {
///     ftl.write(lpn);
/// }
/// // Sequential fill: no GC needed yet, WA = 1.
/// assert!((ftl.stats().write_amplification() - 1.0).abs() < 1e-9);
/// ```
pub struct Ftl {
    cfg: FtlConfig,
    blocks: Vec<EraseBlock>,
    /// Logical page → (block index, slot index).
    map: HashMap<u64, (u32, u32)>,
    /// Block currently accepting host writes.
    active: u32,
    /// Block reserved for GC writes (separate frontier, as real FTLs do).
    gc_active: u32,
    free_blocks: Vec<u32>,
    stats: FtlStats,
}

impl Ftl {
    /// Creates a fresh (fully erased) device.
    ///
    /// # Panics
    ///
    /// Panics if the geometry yields fewer than four erase blocks.
    pub fn new(cfg: FtlConfig) -> Self {
        let n = cfg.physical_blocks();
        assert!(n >= 4, "FTL needs at least 4 erase blocks, got {n}");
        let blocks = (0..n)
            .map(|_| EraseBlock::new(cfg.pages_per_block))
            .collect();
        let mut free_blocks: Vec<u32> = (2..n as u32).rev().collect();
        let _ = &mut free_blocks;
        Self {
            cfg,
            blocks,
            map: HashMap::new(),
            active: 0,
            gc_active: 1,
            free_blocks,
            stats: FtlStats::default(),
        }
    }

    /// Device geometry.
    pub fn config(&self) -> FtlConfig {
        self.cfg
    }

    /// Counters so far.
    pub fn stats(&self) -> FtlStats {
        self.stats
    }

    /// Fraction of logical pages currently mapped.
    pub fn utilization(&self) -> f64 {
        self.map.len() as f64 / self.cfg.logical_pages as f64
    }

    /// Highest erase count across blocks (worst-case wear).
    pub fn max_erases(&self) -> u32 {
        self.blocks.iter().map(|b| b.erases).max().unwrap_or(0)
    }

    /// Services a host write of logical page `lpn` (wraps modulo capacity).
    pub fn write(&mut self, lpn: u64) {
        let lpn = lpn % self.cfg.logical_pages;
        self.stats.host_writes += 1;
        self.invalidate(lpn);
        self.program(lpn, false);
    }

    /// Services a host trim/discard of a logical page.
    pub fn trim(&mut self, lpn: u64) {
        let lpn = lpn % self.cfg.logical_pages;
        self.invalidate(lpn);
    }

    fn invalidate(&mut self, lpn: u64) {
        if let Some((b, s)) = self.map.remove(&lpn) {
            let blk = &mut self.blocks[b as usize];
            debug_assert_eq!(blk.slots[s as usize], Some(lpn));
            blk.slots[s as usize] = None;
            blk.live -= 1;
        }
    }

    /// Programs `lpn` into the appropriate frontier block.
    fn program(&mut self, lpn: u64, gc: bool) {
        let pages = self.cfg.pages_per_block;
        // Ensure the frontier has room, switching to a free block if not.
        let frontier = if gc { self.gc_active } else { self.active };
        let frontier = if self.blocks[frontier as usize].is_full(pages) {
            let fresh = self.take_free_block();
            if gc {
                self.gc_active = fresh;
            } else {
                self.active = fresh;
            }
            fresh
        } else {
            frontier
        };
        let blk = &mut self.blocks[frontier as usize];
        let slot = blk.write_ptr;
        blk.slots[slot as usize] = Some(lpn);
        blk.write_ptr += 1;
        blk.live += 1;
        self.map.insert(lpn, (frontier, slot));
        self.stats.flash_programs += 1;
    }

    /// Pops a free block, running garbage collection until one is
    /// available. Each collection nets `pages - live(victim)` free slots,
    /// so this terminates whenever utilization is below 100 % (enforced by
    /// the reclaimable-space assertion in [`Ftl::garbage_collect`]).
    fn take_free_block(&mut self) -> u32 {
        loop {
            if let Some(b) = self.free_blocks.pop() {
                return b;
            }
            self.garbage_collect();
        }
    }

    /// Greedy GC: pick the full block with the fewest live pages, buffer
    /// its live pages (the device reads them into controller RAM), erase
    /// it, then re-program the buffered pages via the GC frontier.
    ///
    /// Detaching the victim completely *before* any re-programming keeps
    /// the operation re-entrant: re-programming may fill the GC frontier
    /// and trigger a nested collection, which then sees only consistent
    /// blocks (the victim is already erased and back in the free pool).
    fn garbage_collect(&mut self) {
        let pages = self.cfg.pages_per_block;
        let victim = self
            .blocks
            .iter()
            .enumerate()
            .filter(|(i, b)| {
                let i = *i as u32;
                i != self.active && i != self.gc_active && b.is_full(pages)
            })
            .min_by_key(|(_, b)| b.live)
            .map(|(i, _)| i as u32)
            .expect("a full victim block must exist");
        assert!(
            self.blocks[victim as usize].live < pages,
            "GC victim has no reclaimable space; device over-utilized \
             (raise overprovisioning)"
        );

        // Buffer and detach all live pages.
        let buffered: Vec<u64> = self.blocks[victim as usize]
            .slots
            .iter()
            .flatten()
            .copied()
            .collect();
        for lpn in &buffered {
            let removed = self.map.remove(lpn);
            debug_assert!(matches!(removed, Some((b, _)) if b == victim));
        }
        {
            let blk = &mut self.blocks[victim as usize];
            for s in blk.slots.iter_mut() {
                *s = None;
            }
            blk.live = 0;
            blk.write_ptr = 0;
            blk.erases += 1;
        }
        self.stats.erases += 1;
        self.free_blocks.push(victim);

        // Re-program the survivors through the GC frontier.
        for lpn in buffered {
            self.stats.gc_relocations += 1;
            self.program(lpn, true);
        }
    }

    /// Verifies internal invariants; test support.
    ///
    /// # Panics
    ///
    /// Panics if mapping or live accounting is inconsistent.
    pub fn check_invariants(&self) {
        let mut live_total = 0u64;
        for (bi, b) in self.blocks.iter().enumerate() {
            let live = b.slots.iter().flatten().count() as u32;
            assert_eq!(live, b.live, "block {bi} live count mismatch");
            live_total += u64::from(live);
            for (si, slot) in b.slots.iter().enumerate() {
                if let Some(lpn) = slot {
                    assert_eq!(
                        self.map.get(lpn),
                        Some(&(bi as u32, si as u32)),
                        "map does not point back at block {bi} slot {si}"
                    );
                }
            }
        }
        assert_eq!(live_total as usize, self.map.len(), "live total mismatch");
        assert!(
            self.map.len() as u64 <= self.cfg.logical_pages,
            "over-mapped"
        );
    }
}

impl std::fmt::Debug for Ftl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ftl")
            .field("logical_pages", &self.cfg.logical_pages)
            .field("mapped", &self.map.len())
            .field("wa", &self.stats.write_amplification())
            .field("erases", &self.stats.erases)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn small(logical_pages: u64, op_pct: u32) -> Ftl {
        Ftl::new(FtlConfig {
            logical_pages,
            overprovision_pct: op_pct,
            pages_per_block: 32,
        })
    }

    #[test]
    fn sequential_fill_has_unit_wa() {
        let mut ftl = small(4096, 25);
        for lpn in 0..4096 {
            ftl.write(lpn);
        }
        assert_eq!(ftl.stats().host_writes, 4096);
        assert!((ftl.stats().write_amplification() - 1.0).abs() < 1e-9);
        assert_eq!(ftl.utilization(), 1.0);
        ftl.check_invariants();
    }

    #[test]
    fn overwrites_trigger_gc_and_wa_above_one() {
        let mut ftl = small(4096, 12);
        let mut rng = SmallRng::seed_from_u64(1);
        // Fill, then random-overwrite 4x the device.
        for lpn in 0..4096 {
            ftl.write(lpn);
        }
        for _ in 0..4 * 4096 {
            ftl.write(rng.gen_range(0..4096));
        }
        let wa = ftl.stats().write_amplification();
        assert!(wa > 1.2, "random overwrite must amplify, wa={wa}");
        assert!(ftl.stats().erases > 0);
        ftl.check_invariants();
    }

    #[test]
    fn more_overprovisioning_means_less_amplification() {
        let run = |op_pct| {
            let mut ftl = small(4096, op_pct);
            let mut rng = SmallRng::seed_from_u64(2);
            for lpn in 0..4096 {
                ftl.write(lpn);
            }
            for _ in 0..6 * 4096 {
                ftl.write(rng.gen_range(0..4096));
            }
            ftl.check_invariants();
            ftl.stats().write_amplification()
        };
        let tight = run(7);
        let roomy = run(50);
        assert!(
            roomy < tight,
            "more spare area must reduce WA: 7% → {tight:.2}, 50% → {roomy:.2}"
        );
    }

    #[test]
    fn skewed_writes_amplify_less_than_uniform() {
        // Cache-shaped (hot/cold) write traffic separates hot blocks into
        // frequently-rewritten erase blocks that GC finds nearly empty.
        let run = |hot_frac: f64| {
            let mut ftl = small(8192, 10);
            let mut rng = SmallRng::seed_from_u64(3);
            for lpn in 0..8192 {
                ftl.write(lpn);
            }
            for _ in 0..6 * 8192 {
                let lpn = if rng.gen_bool(hot_frac) {
                    rng.gen_range(0..8192 / 16) // hot 1/16
                } else {
                    rng.gen_range(0..8192)
                };
                ftl.write(lpn);
            }
            ftl.check_invariants();
            ftl.stats().write_amplification()
        };
        let skewed = run(0.9);
        let uniform = run(0.0);
        assert!(
            skewed < uniform,
            "skewed {skewed:.2} should beat uniform {uniform:.2}"
        );
    }

    #[test]
    fn trim_reduces_amplification() {
        // A cache that trims evicted blocks gives GC free space back —
        // FlashTier's central observation.
        let run = |trim: bool| {
            let mut ftl = small(4096, 10);
            let mut rng = SmallRng::seed_from_u64(4);
            for lpn in 0..4096 {
                ftl.write(lpn);
            }
            for i in 0..6 * 4096u64 {
                let lpn = rng.gen_range(0..4096);
                if trim && i % 4 == 0 {
                    ftl.trim(rng.gen_range(0..4096));
                }
                ftl.write(lpn);
            }
            ftl.check_invariants();
            ftl.stats().write_amplification()
        };
        let with_trim = run(true);
        let without = run(false);
        assert!(
            with_trim < without,
            "trim {with_trim:.2} should beat no-trim {without:.2}"
        );
    }

    #[test]
    fn lpn_wraps_modulo_capacity() {
        let mut ftl = small(128, 50);
        ftl.write(128); // wraps to 0
        ftl.write(0);
        assert_eq!(ftl.stats().host_writes, 2);
        assert_eq!(ftl.utilization(), 1.0 / 128.0);
        ftl.check_invariants();
    }

    #[test]
    #[should_panic(expected = "at least 4 erase blocks")]
    fn tiny_geometry_rejected() {
        let _ = Ftl::new(FtlConfig {
            logical_pages: 16,
            overprovision_pct: 0,
            pages_per_block: 32,
        });
    }

    mod properties {
        use super::small;
        use proptest::prelude::*;
        use rand::rngs::SmallRng;
        use rand::{Rng as _, SeedableRng as _};

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            #[test]
            fn invariants_hold_under_random_traffic(
                seed in any::<u64>(),
                ops in 100usize..800,
            ) {
                let mut ftl = small(1024, 15);
                let mut rng = SmallRng::seed_from_u64(seed);
                for _ in 0..ops {
                    if rng.gen_bool(0.9) {
                        ftl.write(rng.gen_range(0..2048));
                    } else {
                        ftl.trim(rng.gen_range(0..2048));
                    }
                }
                ftl.check_invariants();
                prop_assert!(ftl.stats().write_amplification() >= 1.0);
            }
        }
    }
}
