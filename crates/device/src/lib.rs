//! Device timing models.
//!
//! The simulator treats "the flash itself as a block device; that is, we
//! write blocks to it and read them back. We assume a flash translation
//! layer but do not model it directly. We use average per-block access
//! times derived from testing real flash devices." (§5). This crate holds:
//!
//! - [`RamModel`] — per-block RAM access times (400 ns per 4 KB block,
//!   ≈10 GB/s DDR3, §7).
//! - [`FlashModel`] — average per-block flash access times (88 µs read,
//!   21 µs write, Table 1), with the persistence option that doubles the
//!   write latency "to model performing two flash writes per block, one of
//!   the data and one for the meta-data" (§7.8).
//! - [`SsdModel`] — a *behavioral* SSD latency generator reproducing the
//!   three qualitative findings of the paper's flash-modeling validation
//!   (§6.2); it regenerates Figure 1.
//! - [`IoLog`] — a log of per-block flash I/Os captured during simulation,
//!   replayable against an [`SsdModel`] exactly as the authors replayed
//!   their simulator logs against real SSDs.

pub mod flash;
pub mod ftl;
pub mod iolog;
pub mod ram;
pub mod ssd;

pub use flash::FlashModel;
pub use ftl::{Ftl, FtlConfig, FtlStats};
pub use iolog::{IoDirection, IoLog, IoLogEntry};
pub use ram::RamModel;
pub use ssd::{SsdConfig, SsdModel, WindowStat};

/// Re-export: simulated time type used by every latency function.
pub use fcache_des::SimTime;
