//! Behavioral SSD latency model.
//!
//! The paper validated its constant-average flash timing against two
//! consumer SSDs (§6.2) and reported three findings, all reproduced by this
//! model:
//!
//! 1. "both devices exhibited high variance in their access latency, \[but\]
//!    this variance is short-term; across a group of 10,000 to 100,000
//!    block accesses … the average behavior is quite reasonable" —
//!    multiplicative noise with occasional large spikes whose window
//!    averages are stable.
//! 2. "both devices maintained a single average write latency from
//!    beginning to end across essentially all the workloads" — write
//!    latency is fill- and wear-independent (drive RAM buffers writes);
//!    "only the read latency fluctuated significantly over time as the
//!    device filled", with "a weak relationship between higher write
//!    volumes and worse read performance".
//! 3. "the read performance replaying the simulator logs is much better
//!    than the read performance doing purely random I/Os. Caching
//!    workloads are not random." — a small direct-mapped FTL map cache
//!    makes reads with spatial/temporal locality cheaper than uniformly
//!    random reads.
//!
//! Replaying a simulator [`crate::IoLog`] through [`SsdModel::replay_windows`]
//! regenerates Figure 1 (10,000-I/O window averages of read and write
//! latency over cumulative I/O count).

use fcache_des::SimTime;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::iolog::{IoDirection, IoLogEntry};

/// Tunable parameters of the behavioral SSD model.
#[derive(Clone, Debug, PartialEq)]
pub struct SsdConfig {
    /// Device capacity in 4 KB blocks (the paper's Figure 1 device is
    /// 58 GB). LBAs wrap modulo this capacity. Zero is the *auto* sentinel
    /// ([`SsdConfig::auto`]): the consumer fits the device to whatever it
    /// backs (the simulator sizes it to the flash cache tier) via
    /// [`SsdConfig::fit_capacity`] before building a model.
    pub capacity_blocks: u64,
    /// Read service time when the FTL map cache hits and the device is
    /// empty. Tuned so that a cache-shaped workload on a mostly-full
    /// device averages near the Table 1 value of 88 µs.
    pub read_base: SimTime,
    /// Mean write service time (Table 1: 21 µs).
    pub write_base: SimTime,
    /// log2 of blocks per FTL mapping region.
    pub region_shift: u32,
    /// Direct-mapped FTL map cache slots.
    pub map_cache_slots: usize,
    /// Multiplier applied to reads that miss the map cache.
    pub read_miss_factor: f64,
    /// Extra read latency fraction at 100 % device fill.
    pub fill_read_penalty: f64,
    /// Extra read latency fraction after one full device overwrite of
    /// cumulative writes (the "weak relationship" with write volume).
    pub wear_read_penalty: f64,
    /// NCQ-style service-queue depth: how many commands the device accepts
    /// (and services) concurrently before submitters back up.
    pub queue_depth: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SsdConfig {
    fn default() -> Self {
        Self {
            capacity_blocks: (58u64 << 30) / 4096,
            read_base: SimTime::from_micros(52),
            write_base: SimTime::from_micros(21),
            region_shift: 10, // 4 MB regions
            map_cache_slots: 4096,
            read_miss_factor: 2.4,
            fill_read_penalty: 0.35,
            wear_read_penalty: 0.15,
            queue_depth: 32,
            seed: 0x55d_f1a5,
        }
    }
}

impl SsdConfig {
    /// Convenience: a small device for tests (capacity in blocks).
    pub fn small(capacity_blocks: u64, seed: u64) -> Self {
        Self {
            capacity_blocks,
            seed,
            map_cache_slots: 256,
            ..Self::default()
        }
    }

    /// A device whose FTL mapping-region size and map cache scale with its
    /// capacity (≥1024 regions, cache covering ~1/16 of them), so that
    /// scaled-down devices keep the paper's locality behavior: purely
    /// random reads thrash the map cache while cache-shaped access does
    /// not.
    pub fn sized(capacity_blocks: u64, seed: u64) -> Self {
        let base = Self::default();
        // Shrink regions until the device holds at least 1024 of them.
        let mut region_shift = base.region_shift;
        while region_shift > 0 && (capacity_blocks >> region_shift) < 1024 {
            region_shift -= 1;
        }
        let regions = (capacity_blocks >> region_shift).max(1);
        Self {
            capacity_blocks,
            seed,
            region_shift,
            map_cache_slots: (regions / 16).clamp(16, 1 << 20) as usize,
            ..base
        }
    }

    /// The auto-sizing configuration: capacity 0 means "fit the device to
    /// whatever it backs". Consumers must call [`SsdConfig::fit_capacity`]
    /// before constructing a model.
    pub fn auto() -> Self {
        Self {
            capacity_blocks: 0,
            ..Self::default()
        }
    }

    /// Fits the device to `blocks` of capacity, re-deriving the
    /// locality parameters ([`SsdConfig::sized`]'s region/map-cache
    /// scaling) while preserving every tuned latency field of `self`.
    /// Capacity is clamped to at least one block so a model can always be
    /// built. No-op on the capacity if it is already nonzero *and* matches.
    pub fn fit_capacity(self, blocks: u64) -> Self {
        let capacity_blocks = blocks.max(1);
        let locality = Self::sized(capacity_blocks, self.seed);
        Self {
            capacity_blocks,
            region_shift: locality.region_shift,
            map_cache_slots: locality.map_cache_slots,
            ..self
        }
    }

    /// Derives the per-host instance of this configuration: each simulated
    /// host owns a physically distinct device, so its RNG stream mixes the
    /// run seed and the host index into the device seed. Deterministic —
    /// the same `(config, run_seed, host)` triple always yields the same
    /// device.
    pub fn for_host(self, run_seed: u64, host: u16) -> Self {
        let seed = self
            .seed
            .wrapping_add(run_seed.rotate_left(29))
            .wrapping_add((u64::from(host) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        Self { seed, ..self }
    }
}

/// Average latencies over one window of replayed I/Os (one Figure 1 point).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowStat {
    /// Index of the first I/O in the window.
    pub start_io: u64,
    /// Mean read latency in the window (µs); NaN-free: 0 when no reads.
    pub read_avg_us: f64,
    /// Mean write latency in the window (µs); 0 when no writes.
    pub write_avg_us: f64,
    /// Reads in the window.
    pub reads: u64,
    /// Writes in the window.
    pub writes: u64,
}

/// Stateful SSD latency generator.
pub struct SsdModel {
    cfg: SsdConfig,
    rng: SmallRng,
    /// Direct-mapped cache of recently touched mapping regions.
    map_cache: Vec<u64>,
    /// Which blocks have ever been written (device fill state).
    written: Vec<u64>, // bitset
    fill_count: u64,
    cumulative_writes: u64,
}

const EMPTY_SLOT: u64 = u64::MAX;

impl SsdModel {
    /// Creates a model from a configuration.
    pub fn new(cfg: SsdConfig) -> Self {
        let words = (cfg.capacity_blocks as usize).div_ceil(64);
        Self {
            rng: SmallRng::seed_from_u64(cfg.seed),
            map_cache: vec![EMPTY_SLOT; cfg.map_cache_slots.max(1)],
            written: vec![0u64; words],
            fill_count: 0,
            cumulative_writes: 0,
            cfg,
        }
    }

    /// Fraction of device blocks ever written (0.0–1.0).
    pub fn fill_fraction(&self) -> f64 {
        self.fill_count as f64 / self.cfg.capacity_blocks as f64
    }

    /// Total write count so far.
    pub fn cumulative_writes(&self) -> u64 {
        self.cumulative_writes
    }

    fn lba(&self, lba: u64) -> u64 {
        lba % self.cfg.capacity_blocks
    }

    fn touch_region(&mut self, lba: u64) -> bool {
        let region = lba >> self.cfg.region_shift;
        // Fibonacci hashing spreads sequential regions over the table.
        let slot =
            ((region.wrapping_mul(0x9e37_79b9_7f4a_7c15)) >> 32) as usize % self.map_cache.len();
        let hit = self.map_cache[slot] == region;
        self.map_cache[slot] = region;
        hit
    }

    fn mark_written(&mut self, lba: u64) {
        let (word, bit) = ((lba / 64) as usize, lba % 64);
        if self.written[word] & (1 << bit) == 0 {
            self.written[word] |= 1 << bit;
            self.fill_count += 1;
        }
    }

    /// Multiplicative noise with mean ≈ 1 and rare large spikes: high
    /// variance per access, stable 10k-window averages.
    fn noise(&mut self, spike_prob: f64, spike_max: f64) -> f64 {
        if self.rng.gen_bool(spike_prob) {
            self.rng.gen_range(2.0..spike_max)
        } else {
            // Mean chosen so that the mixture mean is ~1.0.
            let spike_mean = (2.0 + spike_max) / 2.0;
            let body_mean = (1.0 - spike_prob * spike_mean) / (1.0 - spike_prob);
            self.rng.gen_range(0.5 * body_mean..1.5 * body_mean)
        }
    }

    /// Services one block read, returning its latency.
    pub fn read(&mut self, lba: u64) -> SimTime {
        let lba = self.lba(lba);
        let hit = self.touch_region(lba);
        let mut factor = if hit { 1.0 } else { self.cfg.read_miss_factor };
        factor *= 1.0 + self.cfg.fill_read_penalty * self.fill_fraction();
        let wear = (self.cumulative_writes as f64 / self.cfg.capacity_blocks as f64).min(1.0);
        factor *= 1.0 + self.cfg.wear_read_penalty * wear;
        let n = self.noise(0.02, 8.0);
        self.cfg.read_base.scale(factor * n)
    }

    /// Services one block write, returning its latency.
    ///
    /// Writes are buffered by drive RAM: no fill or wear dependence.
    pub fn write(&mut self, lba: u64) -> SimTime {
        let lba = self.lba(lba);
        self.touch_region(lba);
        self.mark_written(lba);
        self.cumulative_writes += 1;
        let n = self.noise(0.01, 5.0);
        self.cfg.write_base.scale(n)
    }

    /// Services one logged I/O.
    pub fn service(&mut self, entry: IoLogEntry) -> SimTime {
        match entry.dir {
            IoDirection::Read => self.read(entry.lba),
            IoDirection::Write => self.write(entry.lba),
        }
    }

    /// Replays a log, producing one [`WindowStat`] per `window` I/Os —
    /// exactly the data behind Figure 1 ("Each point is the average of
    /// 10,000 block I/Os").
    pub fn replay_windows(&mut self, log: &[IoLogEntry], window: usize) -> Vec<WindowStat> {
        assert!(window > 0, "window must be nonzero");
        let mut out = Vec::with_capacity(log.len() / window + 1);
        let mut i = 0u64;
        let (mut rs, mut rn, mut ws, mut wn) = (0u64, 0u64, 0u64, 0u64);
        let mut start = 0u64;
        for e in log {
            let t = self.service(*e);
            match e.dir {
                IoDirection::Read => {
                    rs += t.as_nanos();
                    rn += 1;
                }
                IoDirection::Write => {
                    ws += t.as_nanos();
                    wn += 1;
                }
            }
            i += 1;
            if i.is_multiple_of(window as u64) {
                out.push(WindowStat {
                    start_io: start,
                    read_avg_us: if rn > 0 {
                        rs as f64 / rn as f64 / 1000.0
                    } else {
                        0.0
                    },
                    write_avg_us: if wn > 0 {
                        ws as f64 / wn as f64 / 1000.0
                    } else {
                        0.0
                    },
                    reads: rn,
                    writes: wn,
                });
                start = i;
                (rs, rn, ws, wn) = (0, 0, 0, 0);
            }
        }
        if rn + wn > 0 {
            out.push(WindowStat {
                start_io: start,
                read_avg_us: if rn > 0 {
                    rs as f64 / rn as f64 / 1000.0
                } else {
                    0.0
                },
                write_avg_us: if wn > 0 {
                    ws as f64 / wn as f64 / 1000.0
                } else {
                    0.0
                },
                reads: rn,
                writes: wn,
            });
        }
        out
    }
}

impl std::fmt::Debug for SsdModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SsdModel")
            .field("capacity_blocks", &self.cfg.capacity_blocks)
            .field("fill", &format!("{:.1}%", 100.0 * self.fill_fraction()))
            .field("cumulative_writes", &self.cumulative_writes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn model(cap: u64, seed: u64) -> SsdModel {
        SsdModel::new(SsdConfig::small(cap, seed))
    }

    /// Zipf-ish skewed LBA stream: most accesses to a small hot set.
    fn cache_shaped(n: usize, cap: u64, seed: u64) -> Vec<IoLogEntry> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let hot = rng.gen_bool(0.85);
                let lba = if hot {
                    rng.gen_range(0..cap / 50)
                } else {
                    rng.gen_range(0..cap)
                };
                let dir = if rng.gen_bool(0.3) {
                    IoDirection::Write
                } else {
                    IoDirection::Read
                };
                IoLogEntry { dir, lba }
            })
            .collect()
    }

    fn random_reads(n: usize, cap: u64, seed: u64) -> Vec<IoLogEntry> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| IoLogEntry {
                dir: IoDirection::Read,
                lba: rng.gen_range(0..cap),
            })
            .collect()
    }

    #[test]
    fn write_mean_is_stable_over_device_life() {
        // §6.2 finding 2: single average write latency from beginning to
        // end, even under heavy write volume.
        let cap = 1 << 20; // 4 GB device
        let mut m = model(cap, 1);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut window_means = Vec::new();
        for _ in 0..20 {
            let mut sum = 0u64;
            let n = 20_000;
            for _ in 0..n {
                sum += m.write(rng.gen_range(0..cap)).as_nanos();
            }
            window_means.push(sum as f64 / n as f64);
        }
        let first = window_means[0];
        let last = *window_means.last().unwrap();
        assert!(
            (last - first).abs() / first < 0.05,
            "write mean drifted: first {first} last {last}"
        );
        // And the mean is near the Table 1 value of 21 µs.
        let overall = window_means.iter().sum::<f64>() / window_means.len() as f64;
        assert!(
            (overall / 1000.0 - 21.0).abs() < 2.0,
            "write mean {overall} ns"
        );
    }

    #[test]
    fn read_latency_degrades_as_device_fills() {
        // §6.2 finding 2 (reads): "Only the read latency fluctuated
        // significantly over time as the device filled."
        let cap = 1 << 18;
        let mut m = model(cap, 3);
        let mut rng = SmallRng::seed_from_u64(4);
        let read_mean = |m: &mut SsdModel, rng: &mut SmallRng| {
            let n = 10_000;
            let mut sum = 0u64;
            for _ in 0..n {
                sum += m.read(rng.gen_range(0..cap)).as_nanos();
            }
            sum as f64 / n as f64
        };
        let empty = read_mean(&mut m, &mut rng);
        // Fill the device completely.
        for lba in 0..cap {
            m.write(lba);
        }
        let full = read_mean(&mut m, &mut rng);
        assert!(
            full > empty * 1.2,
            "full-device reads ({full}) should be notably slower than empty ({empty})"
        );
    }

    #[test]
    fn cache_shaped_reads_beat_random_reads() {
        // §6.2 finding 3: "Caching workloads are not random."
        let cap = 1 << 20;
        let shaped = cache_shaped(60_000, cap, 5);
        let random = random_reads(60_000, cap, 6);
        let mut m1 = model(cap, 7);
        let mut m2 = model(cap, 7);
        let s1 = m1.replay_windows(&shaped, 10_000);
        let s2 = m2.replay_windows(&random, 10_000);
        let avg = |s: &[WindowStat]| {
            s.iter()
                .map(|w| w.read_avg_us * w.reads as f64)
                .sum::<f64>()
                / s.iter().map(|w| w.reads as f64).sum::<f64>()
        };
        let shaped_avg = avg(&s1);
        let random_avg = avg(&s2);
        assert!(
            shaped_avg * 1.3 < random_avg,
            "cache-shaped {shaped_avg} µs should be well below random {random_avg} µs"
        );
    }

    #[test]
    fn short_term_variance_high_but_window_averages_stable() {
        // §6.2 finding 1.
        let cap = 1 << 18;
        let mut m = model(cap, 8);
        let mut rng = SmallRng::seed_from_u64(9);
        // Pre-fill so fill drift does not dominate.
        for lba in 0..cap {
            m.write(lba);
        }
        let lat: Vec<f64> = (0..50_000)
            .map(|_| m.read(rng.gen_range(0..cap / 64)).as_nanos() as f64)
            .collect();
        let mean = lat.iter().sum::<f64>() / lat.len() as f64;
        let var = lat.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / lat.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv > 0.3, "per-access variability should be high (cv={cv})");
        // Window averages: stable within ±15 %.
        for w in lat.chunks(10_000) {
            let wm = w.iter().sum::<f64>() / w.len() as f64;
            assert!(
                (wm - mean).abs() / mean < 0.15,
                "window mean {wm} vs {mean}"
            );
        }
    }

    #[test]
    fn replay_windows_partitions_correctly() {
        let cap = 1024;
        let mut m = model(cap, 10);
        let log = cache_shaped(2_500, cap, 11);
        let w = m.replay_windows(&log, 1000);
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].start_io, 0);
        assert_eq!(w[1].start_io, 1000);
        assert_eq!(w[2].start_io, 2000);
        assert_eq!(w.iter().map(|x| x.reads + x.writes).sum::<u64>(), 2500);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cap = 4096;
        let log = cache_shaped(5_000, cap, 12);
        let mut a = model(cap, 13);
        let mut b = model(cap, 13);
        assert_eq!(a.replay_windows(&log, 500), b.replay_windows(&log, 500));
    }

    #[test]
    fn lba_wraps_at_capacity() {
        let mut m = model(100, 14);
        // Out-of-range LBA must not panic and must count fill once.
        m.write(250); // wraps to 50
        m.write(50);
        assert_eq!(m.fill_fraction(), 0.01);
    }

    #[test]
    #[should_panic(expected = "window must be nonzero")]
    fn zero_window_panics() {
        let mut m = model(100, 15);
        let _ = m.replay_windows(&[], 0);
    }

    #[test]
    fn auto_config_fits_to_backing_capacity() {
        let auto = SsdConfig::auto();
        assert_eq!(auto.capacity_blocks, 0);
        let fitted = auto.clone().fit_capacity(1 << 18);
        assert_eq!(fitted.capacity_blocks, 1 << 18);
        // Locality parameters follow `sized`, latency fields are preserved.
        let sized = SsdConfig::sized(1 << 18, auto.seed);
        assert_eq!(fitted.region_shift, sized.region_shift);
        assert_eq!(fitted.map_cache_slots, sized.map_cache_slots);
        assert_eq!(fitted.read_base, auto.read_base);
        assert_eq!(fitted.write_base, auto.write_base);
        // Fitting to zero still yields a buildable device.
        assert_eq!(SsdConfig::auto().fit_capacity(0).capacity_blocks, 1);
    }

    #[test]
    fn fit_capacity_preserves_tuned_latencies() {
        let tuned = SsdConfig {
            read_base: SimTime::from_micros(33),
            write_base: SimTime::from_micros(9),
            ..SsdConfig::auto()
        };
        let fitted = tuned.fit_capacity(4096);
        assert_eq!(fitted.read_base, SimTime::from_micros(33));
        assert_eq!(fitted.write_base, SimTime::from_micros(9));
        assert_eq!(fitted.capacity_blocks, 4096);
    }

    #[test]
    fn per_host_derivation_is_deterministic_and_distinct() {
        let base = SsdConfig::small(4096, 99);
        let a0 = base.clone().for_host(7, 0);
        let a0_again = base.clone().for_host(7, 0);
        let a1 = base.clone().for_host(7, 1);
        let b0 = base.clone().for_host(8, 0);
        assert_eq!(a0, a0_again, "same (seed, host) must derive identically");
        assert_ne!(a0.seed, a1.seed, "hosts must own distinct devices");
        assert_ne!(a0.seed, b0.seed, "runs must decorrelate");
        // Only the seed differs.
        assert_eq!(a0.capacity_blocks, base.capacity_blocks);
        assert_eq!(a0.queue_depth, base.queue_depth);
    }
}
