//! Flash I/O logging.
//!
//! §6.2: "We modified the simulator to log I/Os to the flash as it ran and
//! captured the results for a variety of workloads. Then we replayed these
//! I/Os to the SSDs and recorded the actual read and write latencies."
//! [`IoLog`] is that log; replaying it against an [`crate::SsdModel`]
//! regenerates Figure 1.

use std::cell::RefCell;
use std::rc::Rc;

/// Direction of a logged flash I/O.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IoDirection {
    /// Block read from flash.
    Read,
    /// Block written to flash.
    Write,
}

/// One logged per-block flash access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IoLogEntry {
    /// Read or write.
    pub dir: IoDirection,
    /// Logical block address on the flash device.
    pub lba: u64,
}

/// A shared, append-only log of flash I/Os.
///
/// Cloning shares the log; the simulator appends while it runs and the
/// Figure 1 harness drains afterwards.
#[derive(Clone, Default)]
pub struct IoLog {
    entries: Rc<RefCell<Vec<IoLogEntry>>>,
    enabled: Rc<RefCell<bool>>,
}

impl IoLog {
    /// Creates an enabled log.
    pub fn new() -> Self {
        Self {
            entries: Rc::new(RefCell::new(Vec::new())),
            enabled: Rc::new(RefCell::new(true)),
        }
    }

    /// Creates a disabled log (appends are no-ops; zero overhead mode).
    pub fn disabled() -> Self {
        Self {
            entries: Rc::new(RefCell::new(Vec::new())),
            enabled: Rc::new(RefCell::new(false)),
        }
    }

    /// Enables or disables recording.
    pub fn set_enabled(&self, on: bool) {
        *self.enabled.borrow_mut() = on;
    }

    /// True if appends are being recorded.
    pub fn is_enabled(&self) -> bool {
        *self.enabled.borrow()
    }

    /// Records one read access.
    pub fn log_read(&self, lba: u64) {
        if self.is_enabled() {
            self.entries.borrow_mut().push(IoLogEntry {
                dir: IoDirection::Read,
                lba,
            });
        }
    }

    /// Records one write access.
    pub fn log_write(&self, lba: u64) {
        if self.is_enabled() {
            self.entries.borrow_mut().push(IoLogEntry {
                dir: IoDirection::Write,
                lba,
            });
        }
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.borrow().len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.borrow().is_empty()
    }

    /// Takes the recorded entries, leaving the log empty.
    pub fn take(&self) -> Vec<IoLogEntry> {
        std::mem::take(&mut *self.entries.borrow_mut())
    }

    /// Copies the recorded entries.
    pub fn snapshot(&self) -> Vec<IoLogEntry> {
        self.entries.borrow().clone()
    }
}

impl std::fmt::Debug for IoLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoLog")
            .field("entries", &self.len())
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_reads_and_writes_in_order() {
        let log = IoLog::new();
        log.log_read(5);
        log.log_write(6);
        log.log_read(7);
        let e = log.snapshot();
        assert_eq!(e.len(), 3);
        assert_eq!(
            e[0],
            IoLogEntry {
                dir: IoDirection::Read,
                lba: 5
            }
        );
        assert_eq!(
            e[1],
            IoLogEntry {
                dir: IoDirection::Write,
                lba: 6
            }
        );
        assert_eq!(
            e[2],
            IoLogEntry {
                dir: IoDirection::Read,
                lba: 7
            }
        );
    }

    #[test]
    fn disabled_log_records_nothing() {
        let log = IoLog::disabled();
        log.log_read(1);
        log.log_write(2);
        assert!(log.is_empty());
        log.set_enabled(true);
        log.log_read(3);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn clones_share_state() {
        let a = IoLog::new();
        let b = a.clone();
        b.log_write(9);
        assert_eq!(a.len(), 1);
        let taken = a.take();
        assert_eq!(taken.len(), 1);
        assert!(b.is_empty());
    }
}
