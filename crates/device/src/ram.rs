//! RAM (buffer cache) timing model.

use fcache_des::SimTime;

/// Per-block RAM access times.
///
/// The paper "chose a per-block RAM access time of 400 ns, corresponding to
/// roughly 10 GB/sec memory bandwidth" (§7); reads and writes cost the
/// same (Table 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RamModel {
    /// Latency to read one 4 KB block.
    pub read: SimTime,
    /// Latency to write one 4 KB block.
    pub write: SimTime,
}

impl Default for RamModel {
    fn default() -> Self {
        Self {
            read: SimTime::from_nanos(400),
            write: SimTime::from_nanos(400),
        }
    }
}

impl RamModel {
    /// Table 1 values.
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// A RAM model with both latencies set to `t` (used by Figure 3's
    /// "pretend the flash has RAM latency" configurations).
    pub fn uniform(t: SimTime) -> Self {
        Self { read: t, write: t }
    }

    /// Implied bandwidth in GB/s for one 4 KB block per `read`.
    pub fn implied_read_bandwidth_gbps(&self) -> f64 {
        let ns = self.read.as_nanos().max(1) as f64;
        4096.0 / ns // bytes per ns == GB/s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let m = RamModel::default();
        assert_eq!(m.read, SimTime::from_nanos(400));
        assert_eq!(m.write, SimTime::from_nanos(400));
    }

    #[test]
    fn default_implies_roughly_10gbps() {
        let bw = RamModel::default().implied_read_bandwidth_gbps();
        assert!((bw - 10.24).abs() < 0.1, "got {bw}");
    }

    #[test]
    fn uniform_sets_both() {
        let m = RamModel::uniform(SimTime::from_nanos(100));
        assert_eq!(m.read, m.write);
        assert_eq!(m.read, SimTime::from_nanos(100));
    }
}
