//! Flash cache device timing model.

use fcache_des::SimTime;

/// Average per-block flash access times (Table 1: 88 µs read, 21 µs write).
///
/// §6.2 of the paper justifies using a single average: "a single average
/// access latency is fine for modeling writes, and viable, though not
/// ideal, for reads". The asymmetry (reads *slower* than writes) matches
/// the consumer SSDs the authors measured — Figure 1 shows the read band
/// above the write band, because drive RAM buffers writes.
///
/// Persistence support (§7.8): enabling `persistent` doubles the effective
/// write latency "to model performing two flash writes per block, one of
/// the data and one for the meta-data describing the block".
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FlashModel {
    /// Latency to read one 4 KB block.
    pub read: SimTime,
    /// Latency to write one 4 KB block (before any persistence doubling).
    pub write: SimTime,
    /// True if the cache maintains recoverable on-flash metadata.
    pub persistent: bool,
}

impl Default for FlashModel {
    fn default() -> Self {
        Self {
            read: SimTime::from_micros(88),
            write: SimTime::from_micros(21),
            persistent: false,
        }
    }
}

impl FlashModel {
    /// Table 1 values, non-persistent.
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// Effective read latency.
    pub fn read_latency(&self) -> SimTime {
        self.read
    }

    /// Effective write latency (doubled when persistent).
    pub fn write_latency(&self) -> SimTime {
        if self.persistent {
            self.write.times(2)
        } else {
            self.write
        }
    }

    /// Returns a copy with persistence enabled/disabled.
    pub fn with_persistence(mut self, persistent: bool) -> Self {
        self.persistent = persistent;
        self
    }

    /// Scales both latencies for the Figure 9 sweep: the paper varies the
    /// flash read time and keeps the write time "proportional". `read_us`
    /// of zero models phase-change-memory-like instant access ("the
    /// leftmost point represents the potential performance of phase-change
    /// memory", §7.7).
    pub fn with_read_time_proportional(read: SimTime) -> Self {
        let base = Self::default();
        let ratio = base.write.as_nanos() as f64 / base.read.as_nanos() as f64;
        Self {
            read,
            write: SimTime::from_nanos((read.as_nanos() as f64 * ratio).round() as u64),
            persistent: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let m = FlashModel::default();
        assert_eq!(m.read_latency(), SimTime::from_micros(88));
        assert_eq!(m.write_latency(), SimTime::from_micros(21));
        assert!(!m.persistent);
    }

    #[test]
    fn reads_slower_than_writes_as_measured() {
        // §6.2 / Figure 1: the read band sits above the write band.
        let m = FlashModel::default();
        assert!(m.read_latency() > m.write_latency());
    }

    #[test]
    fn persistence_doubles_writes_only() {
        let m = FlashModel::default().with_persistence(true);
        assert_eq!(m.write_latency(), SimTime::from_micros(42));
        assert_eq!(m.read_latency(), SimTime::from_micros(88));
    }

    #[test]
    fn proportional_scaling_keeps_ratio() {
        let m = FlashModel::with_read_time_proportional(SimTime::from_micros(44));
        assert_eq!(m.read_latency(), SimTime::from_micros(44));
        // 44 × 21/88 = 10.5 µs.
        assert_eq!(m.write_latency(), SimTime::from_nanos(10_500));
    }

    #[test]
    fn zero_read_time_models_pcm() {
        let m = FlashModel::with_read_time_proportional(SimTime::ZERO);
        assert_eq!(m.read_latency(), SimTime::ZERO);
        assert_eq!(m.write_latency(), SimTime::ZERO);
    }
}
