//! Network segment model.
//!
//! §5 of the paper: "The network is modeled less exactly: each segment can
//! carry one packet at a time, and each I/O request uses one packet in each
//! direction. Each packet is assumed to incur a fixed latency (for headers,
//! block information, and so forth) plus a small amount of additional time
//! per bit of block data transferred."
//!
//! A [`Segment`] is therefore a capacity-1 [`fcache_des::Resource`] plus a
//! timing rule: holding the segment for `base + bits × per_bit` models one
//! packet on the wire. Hosts connect to the filer "by private network
//! segments" (§3), i.e. one `Segment` per host with no cross-host
//! contention — but full contention among the threads, syncers, and
//! evictions of a single host, which is what produces the paper's eviction
//! convoys.
//!
//! **Shared wires.** Cloning a `Segment` shares its channel *and* its
//! traffic counters: handing the same segment to several hosts models a
//! shared uplink where their packets queue FIFO against each other. The
//! fleet subsystem uses exactly this to simulate cross-host network
//! contention (`hosts_per_segment` hosts per wire); the time packets
//! spend waiting behind other packets is tallied separately from wire
//! time as [`SegmentStats::queue_wait`].

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use fcache_des::{Resource, Sim, SimTime};
use fcache_types::{FaultEffect, FaultError, FaultSchedule};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Direction of a packet on a segment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Client → filer (requests, write payloads).
    ToServer,
    /// Filer → client (responses, read payloads).
    FromServer,
}

/// Wire timing parameters (Table 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NetConfig {
    /// Fixed per-packet latency (Table 1: 8.2 µs — "loosely corresponding
    /// to a gigabit network", §7).
    pub base_latency: SimTime,
    /// Per-bit data latency (Table 1: 1 ns / bit).
    pub per_bit: SimTime,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            base_latency: SimTime::from_nanos(8_200),
            per_bit: SimTime::from_nanos(1),
        }
    }
}

impl NetConfig {
    /// Table 1 values.
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// Wire time of one packet carrying `payload_bytes` of block data.
    ///
    /// # Examples
    ///
    /// ```
    /// use fcache_net::NetConfig;
    /// use fcache_des::SimTime;
    ///
    /// let cfg = NetConfig::default();
    /// // Command-only packet: just the base latency.
    /// assert_eq!(cfg.packet_time(0), SimTime::from_nanos(8_200));
    /// // One 4 KB block: 8.2 µs + 32768 bits × 1 ns = 40.968 µs.
    /// assert_eq!(cfg.packet_time(4096), SimTime::from_nanos(40_968));
    /// ```
    pub fn packet_time(&self, payload_bytes: u64) -> SimTime {
        self.base_latency + self.per_bit.times(payload_bytes * 8)
    }
}

/// Traffic counters for a segment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SegmentStats {
    /// Packets carried.
    pub packets: u64,
    /// Payload bytes carried.
    pub payload_bytes: u64,
    /// Total wire-busy time.
    pub busy: SimTime,
    /// Total time packets spent queued for the wire before transmitting
    /// (zero on an uncontended segment).
    pub queue_wait: SimTime,
    /// Packets that had to wait for the wire at all.
    pub queue_waits: u64,
}

/// Fault-injection state for a segment: one resolved schedule per
/// direction plus a dedicated RNG for `ErrorRate` draws.
struct SegmentFaults {
    to_server: FaultSchedule,
    from_server: FaultSchedule,
    rng: RefCell<SmallRng>,
}

/// A network segment between hosts and the filer.
///
/// Half-duplex by default (one packet at a time in either direction, as the
/// paper specifies); [`Segment::new_duplex`] provides a full-duplex variant
/// used by the ablation benches. A clone shares the wire and the counters
/// with its original — private per-host wiring uses one `Segment` per
/// host, shared (fleet) wiring clones one `Segment` across a host group.
#[derive(Clone)]
pub struct Segment {
    sim: Sim,
    cfg: NetConfig,
    to_server: Resource,
    from_server: Resource,
    stats: Rc<Cell<SegmentStats>>,
    faults: Option<Rc<SegmentFaults>>,
}

impl Segment {
    /// Creates a half-duplex segment: both directions share one channel.
    pub fn new(sim: Sim, cfg: NetConfig) -> Self {
        let chan = Resource::new(1);
        Self {
            sim,
            cfg,
            to_server: chan.clone(),
            from_server: chan,
            stats: Rc::new(Cell::new(SegmentStats::default())),
            faults: None,
        }
    }

    /// Creates a full-duplex segment: each direction has its own channel.
    pub fn new_duplex(sim: Sim, cfg: NetConfig) -> Self {
        Self {
            sim,
            cfg,
            to_server: Resource::new(1),
            from_server: Resource::new(1),
            stats: Rc::new(Cell::new(SegmentStats::default())),
            faults: None,
        }
    }

    /// Attaches per-direction fault schedules (seeded error draws).
    /// Without this, [`Segment::try_transfer`] behaves exactly like
    /// [`Segment::transfer`].
    pub fn with_faults(
        mut self,
        to_server: FaultSchedule,
        from_server: FaultSchedule,
        seed: u64,
    ) -> Self {
        self.faults = Some(Rc::new(SegmentFaults {
            to_server,
            from_server,
            rng: RefCell::new(SmallRng::seed_from_u64(seed)),
        }));
        self
    }

    /// Wire configuration.
    pub fn config(&self) -> NetConfig {
        self.cfg
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> SegmentStats {
        self.stats.get()
    }

    /// Resets traffic counters (end of warmup).
    pub fn reset_stats(&self) {
        self.stats.set(SegmentStats::default());
    }

    /// Transfers one packet with `payload_bytes` of block data in the given
    /// direction, waiting FIFO for the wire and holding it for the packet's
    /// wire time.
    pub async fn transfer(&self, dir: Direction, payload_bytes: u64) {
        let chan = match dir {
            Direction::ToServer => &self.to_server,
            Direction::FromServer => &self.from_server,
        };
        let queued_at = self.sim.now();
        let _guard = chan.acquire().await;
        let waited = self.sim.now() - queued_at;
        let t = self.cfg.packet_time(payload_bytes);
        self.sim.sleep(t).await;
        let mut s = self.stats.get();
        s.packets += 1;
        s.payload_bytes += payload_bytes;
        s.busy += t;
        if waited > SimTime::ZERO {
            s.queue_wait += waited;
            s.queue_waits += 1;
        }
        self.stats.set(s);
    }

    /// Fault-aware [`Segment::transfer`]: after winning the wire, consults
    /// the direction's schedule at `sim.now()` and either drops the packet
    /// (no wire time, no stats), carries it with inflated wire time, or
    /// carries it normally.
    pub async fn try_transfer(&self, dir: Direction, payload_bytes: u64) -> Result<(), FaultError> {
        let Some(f) = &self.faults else {
            self.transfer(dir, payload_bytes).await;
            return Ok(());
        };
        let chan = match dir {
            Direction::ToServer => &self.to_server,
            Direction::FromServer => &self.from_server,
        };
        let sched = match dir {
            Direction::ToServer => &f.to_server,
            Direction::FromServer => &f.from_server,
        };
        let queued_at = self.sim.now();
        let _guard = chan.acquire().await;
        let waited = self.sim.now() - queued_at;
        let effect = {
            let mut rng = f.rng.borrow_mut();
            sched.effect_at(self.sim.now().as_nanos(), &mut || {
                rng.gen_range(0.0f64..1.0)
            })
        };
        let t = match effect {
            FaultEffect::Fail { clause, .. } => return Err(FaultError { clause }),
            FaultEffect::SlowBy(factor) => self.cfg.packet_time(payload_bytes).scale(factor),
            FaultEffect::None => self.cfg.packet_time(payload_bytes),
        };
        self.sim.sleep(t).await;
        let mut s = self.stats.get();
        s.packets += 1;
        s.payload_bytes += payload_bytes;
        s.busy += t;
        if waited > SimTime::ZERO {
            s.queue_wait += waited;
            s.queue_waits += 1;
        }
        self.stats.set(s);
        Ok(())
    }
}

impl std::fmt::Debug for Segment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Segment")
            .field("cfg", &self.cfg)
            .field("stats", &self.stats.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_time_matches_table1_math() {
        let cfg = NetConfig::default();
        assert_eq!(cfg.packet_time(0).as_nanos(), 8_200);
        assert_eq!(cfg.packet_time(4096).as_nanos(), 8_200 + 4096 * 8);
        assert_eq!(cfg.packet_time(8 * 4096).as_nanos(), 8_200 + 8 * 4096 * 8);
    }

    #[test]
    fn transfer_takes_wire_time() {
        let sim = Sim::new();
        let seg = Segment::new(sim.clone(), NetConfig::default());
        let s = sim.clone();
        let seg2 = seg.clone();
        let h = sim.spawn(async move {
            seg2.transfer(Direction::ToServer, 4096).await;
            s.now()
        });
        sim.run().unwrap();
        assert_eq!(h.try_result().unwrap(), SimTime::from_nanos(40_968));
        assert_eq!(seg.stats().packets, 1);
        assert_eq!(seg.stats().payload_bytes, 4096);
    }

    #[test]
    fn half_duplex_serializes_both_directions() {
        let sim = Sim::new();
        let seg = Segment::new(sim.clone(), NetConfig::default());
        for dir in [Direction::ToServer, Direction::FromServer] {
            let seg = seg.clone();
            sim.spawn(async move {
                seg.transfer(dir, 0).await;
            });
        }
        let report = sim.run().unwrap();
        // Two command packets share one channel: 2 × 8.2 µs.
        assert_eq!(report.end_time, SimTime::from_nanos(16_400));
    }

    #[test]
    fn full_duplex_overlaps_directions() {
        let sim = Sim::new();
        let seg = Segment::new_duplex(sim.clone(), NetConfig::default());
        for dir in [Direction::ToServer, Direction::FromServer] {
            let seg = seg.clone();
            sim.spawn(async move {
                seg.transfer(dir, 0).await;
            });
        }
        let report = sim.run().unwrap();
        assert_eq!(report.end_time, SimTime::from_nanos(8_200));
    }

    #[test]
    fn contention_convoys_fifo() {
        let sim = Sim::new();
        let seg = Segment::new(sim.clone(), NetConfig::default());
        let n = 5;
        for _ in 0..n {
            let seg = seg.clone();
            sim.spawn(async move {
                seg.transfer(Direction::ToServer, 4096).await;
            });
        }
        let report = sim.run().unwrap();
        assert_eq!(report.end_time, SimTime::from_nanos(40_968 * n));
        assert_eq!(seg.stats().packets, n);
        assert_eq!(seg.stats().busy, SimTime::from_nanos(40_968 * n));
    }

    #[test]
    fn shared_clones_queue_and_tally_waits() {
        // Two "hosts" holding clones of one segment contend for the same
        // wire: transfers serialize FIFO, shared counters see both, and
        // the loser's wait shows up as queue_wait (the winner's does not).
        let sim = Sim::new();
        let seg = Segment::new(sim.clone(), NetConfig::default());
        for _host in 0..2 {
            let seg = seg.clone();
            sim.spawn(async move {
                seg.transfer(Direction::ToServer, 4096).await;
            });
        }
        let report = sim.run().unwrap();
        assert_eq!(report.end_time, SimTime::from_nanos(2 * 40_968));
        let s = seg.stats();
        assert_eq!(s.packets, 2);
        assert_eq!(s.queue_waits, 1, "only the second packet waited");
        assert_eq!(s.queue_wait, SimTime::from_nanos(40_968));
    }

    #[test]
    fn uncontended_transfer_records_no_wait() {
        let sim = Sim::new();
        let seg = Segment::new(sim.clone(), NetConfig::default());
        let seg2 = seg.clone();
        sim.spawn(async move {
            seg2.transfer(Direction::ToServer, 4096).await;
            seg2.transfer(Direction::FromServer, 0).await;
        });
        sim.run().unwrap();
        let s = seg.stats();
        assert_eq!(s.queue_waits, 0);
        assert_eq!(s.queue_wait, SimTime::ZERO);
    }

    #[test]
    fn reset_stats_zeroes_counters() {
        let sim = Sim::new();
        let seg = Segment::new(sim.clone(), NetConfig::default());
        let seg2 = seg.clone();
        sim.spawn(async move {
            seg2.transfer(Direction::ToServer, 4096).await;
        });
        sim.run().unwrap();
        assert_ne!(seg.stats(), SegmentStats::default());
        seg.reset_stats();
        assert_eq!(seg.stats(), SegmentStats::default());
    }
}
