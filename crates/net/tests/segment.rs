//! Segment contention and accounting, including the fault seam: FIFO
//! convoys on the half-duplex wire, direction overlap on `new_duplex`,
//! `SegmentStats` conservation under mixed traffic, and `try_transfer`
//! behavior across outage / slowdown / error-rate windows.

use fcache_des::{Sim, SimTime};
use fcache_net::{Direction, NetConfig, Segment, SegmentStats};
use fcache_types::FaultPlan;

const BLOCK: u64 = 4096;

fn block_time(cfg: &NetConfig) -> SimTime {
    cfg.packet_time(BLOCK)
}

#[test]
fn mixed_direction_traffic_convoys_on_half_duplex_but_overlaps_on_duplex() {
    // Four packets each way. Half-duplex: all eight serialize on the one
    // channel. Full-duplex: the two directions proceed independently, so
    // the makespan halves exactly.
    let run = |duplex: bool| {
        let sim = Sim::new();
        let cfg = NetConfig::default();
        let seg = if duplex {
            Segment::new_duplex(sim.clone(), cfg)
        } else {
            Segment::new(sim.clone(), cfg)
        };
        for dir in [Direction::ToServer, Direction::FromServer] {
            for _ in 0..4 {
                let seg = seg.clone();
                sim.spawn(async move {
                    seg.transfer(dir, BLOCK).await;
                });
            }
        }
        let end = sim.run().unwrap().end_time;
        (end, seg.stats())
    };
    let (half_end, half_stats) = run(false);
    let (full_end, full_stats) = run(true);

    let t = block_time(&NetConfig::default());
    assert_eq!(half_end, t.times(8), "8 packets share one channel");
    assert_eq!(full_end, t.times(4), "4 packets per direction, overlapped");

    // Same traffic, same counters, regardless of channel topology.
    for s in [half_stats, full_stats] {
        assert_eq!(s.packets, 8);
        assert_eq!(s.payload_bytes, 8 * BLOCK);
        assert_eq!(s.busy, t.times(8), "busy sums wire time, not makespan");
    }
}

#[test]
fn stats_conserve_packets_and_bytes_under_contention() {
    let sim = Sim::new();
    let seg = Segment::new(sim.clone(), NetConfig::default());
    // Command packets (0 bytes) interleaved with payload packets of
    // varying size: totals must come out exact.
    let sizes = [0u64, BLOCK, 0, 2 * BLOCK, 8 * BLOCK, 0, BLOCK];
    for &bytes in &sizes {
        let seg = seg.clone();
        sim.spawn(async move {
            seg.transfer(Direction::ToServer, bytes).await;
        });
    }
    sim.run().unwrap();
    let s = seg.stats();
    assert_eq!(s.packets, sizes.len() as u64);
    assert_eq!(s.payload_bytes, sizes.iter().sum::<u64>());
    let want_busy = sizes.iter().fold(SimTime::ZERO, |acc, &b| {
        acc + NetConfig::default().packet_time(b)
    });
    assert_eq!(s.busy, want_busy);

    seg.reset_stats();
    assert_eq!(seg.stats(), SegmentStats::default());
}

/// Resolves a spec's net schedules onto a segment (time scale 1).
fn seg_with_faults(sim: &Sim, spec: &str, seed: u64) -> Segment {
    let set = FaultPlan::parse(spec).expect("valid spec").resolve(seed, 1);
    Segment::new(sim.clone(), NetConfig::default()).with_faults(
        set.net_to_server,
        set.net_from_server,
        seed,
    )
}

#[test]
fn try_transfer_without_faults_matches_transfer() {
    let sim = Sim::new();
    let plain = Segment::new(sim.clone(), NetConfig::default());
    let seamed = seg_with_faults(&sim, "", 7); // empty plan: no windows
    for seg in [plain.clone(), seamed.clone()] {
        sim.spawn(async move {
            seg.try_transfer(Direction::ToServer, BLOCK).await.unwrap();
        });
    }
    sim.run().unwrap();
    assert_eq!(plain.stats(), seamed.stats());
}

#[test]
fn outage_window_drops_packets_without_charging_the_wire() {
    let sim = Sim::new();
    // Outage on the uplink only, covering all of sim time used here.
    let seg = seg_with_faults(&sim, "net-up:outage@0s-10s", 3);
    let s2 = seg.clone();
    let h = sim.spawn(async move {
        let up = s2.try_transfer(Direction::ToServer, BLOCK).await;
        let down = s2.try_transfer(Direction::FromServer, BLOCK).await;
        (up.is_err(), down.is_ok())
    });
    sim.run().unwrap();
    let (up_failed, down_ok) = h.try_result().unwrap();
    assert!(up_failed, "uplink packet inside the outage must fail");
    assert!(down_ok, "downlink is not in the plan");
    // The dropped packet consumed no wire time and left no counters.
    let st = seg.stats();
    assert_eq!(st.packets, 1);
    assert_eq!(st.payload_bytes, BLOCK);
    assert_eq!(st.busy, block_time(&NetConfig::default()));
}

#[test]
fn slow_window_inflates_wire_time_by_the_factor() {
    let sim = Sim::new();
    let seg = seg_with_faults(&sim, "net:slowx4@0s-10s", 3);
    let s2 = seg.clone();
    let sim2 = sim.clone();
    let h = sim.spawn(async move {
        s2.try_transfer(Direction::ToServer, BLOCK).await.unwrap();
        sim2.now()
    });
    sim.run().unwrap();
    let t = block_time(&NetConfig::default());
    assert_eq!(h.try_result().unwrap(), t.scale(4.0));
    assert_eq!(seg.stats().busy, t.scale(4.0), "stats record inflated time");
}

#[test]
fn error_rate_draws_are_seed_deterministic() {
    // p=0.5 over many packets: some fail, some pass, and the exact
    // pass/fail pattern is a pure function of the seed.
    let run = |seed: u64| {
        let sim = Sim::new();
        let seg = seg_with_faults(&sim, "net-up:err0.5@0s-1000s", seed);
        let s2 = seg.clone();
        let h = sim.spawn(async move {
            let mut pattern = Vec::new();
            for _ in 0..64 {
                pattern.push(s2.try_transfer(Direction::ToServer, 0).await.is_ok());
            }
            pattern
        });
        sim.run().unwrap();
        (h.try_result().unwrap(), seg.stats())
    };
    let (a, stats_a) = run(11);
    let (b, stats_b) = run(11);
    let (c, _) = run(12);
    assert_eq!(a, b, "same seed, same pass/fail pattern");
    assert_eq!(stats_a, stats_b);
    assert_ne!(a, c, "different seed must eventually diverge");
    let ok = a.iter().filter(|&&x| x).count();
    assert!(
        ok > 0 && ok < 64,
        "p=0.5 over 64 packets: both outcomes seen"
    );
    assert_eq!(stats_a.packets as usize, ok, "only carried packets count");
}
