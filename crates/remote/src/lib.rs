//! Sharded remote tier: hash-range routing, replication bookkeeping, and
//! per-shard backend stores.
//!
//! The paper's client cache fronts a single filer; a production storage
//! client fronts a *fleet* of them. This crate models that fleet:
//!
//! - a [`Router`] shards block identity by hash range across K backend
//!   shards and assigns each block an R-long replica ring
//!   (`primary, primary+1, …` mod K);
//! - a [`ShardedStore`] holds one [`Filer`] per shard (each with its own
//!   content-hash seed, so two shards disagree about which blocks read
//!   fast) plus each shard's resolved [`FaultSchedule`], and keeps the
//!   replication bookkeeping the engine's read/write paths drive:
//!   hedged-read counters, failover counts, and the under-replicated set
//!   a recovery pass re-replicates when a failed shard returns;
//! - the [`RemoteStore`] trait is the seam those paths compile against,
//!   so alternative backends (a real object store, a different placement
//!   scheme) can slot in without touching the engine.
//!
//! Replication semantics are **read-any / write-all**: a read is served by
//! whichever replica answers (optionally hedged after a configurable
//! delay), a write acknowledges only once every *live* replica has
//! accepted it, and replicas down at write time are recorded here as
//! under-replicated so recovery can restore the replication factor.
//! Everything is deterministic: routing is a pure hash, and all schedule
//! consultations happen at caller-supplied simulated times.

use std::cell::{Cell, RefCell};
use std::collections::HashSet;

use fcache_filer::{Filer, FilerConfig, FilerStats};
use fcache_net::NetConfig;
use fcache_types::{mix64, BlockAddr, FaultSchedule};

/// Hash-range placement: which shards hold a block.
///
/// The primary shard is the block's hash scaled into `[0, shards)` (a
/// fixed-point multiply — no modulo bias), and the replica ring is the
/// primary plus the next `replicas − 1` shards in index order. Placement
/// is pure data: two routers with the same topology agree everywhere.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Router {
    shards: u16,
    replicas: u16,
}

impl Router {
    /// A topology of `shards` backends holding `replicas` copies of every
    /// block.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ replicas ≤ shards`.
    pub fn new(shards: u16, replicas: u16) -> Self {
        assert!(shards >= 1, "topology needs at least one shard");
        assert!(
            (1..=shards).contains(&replicas),
            "replicas ({replicas}) must be in 1..={shards} (the shard count)"
        );
        Self { shards, replicas }
    }

    /// Number of backend shards.
    pub fn shards(&self) -> u16 {
        self.shards
    }

    /// Replication factor.
    pub fn replicas(&self) -> u16 {
        self.replicas
    }

    /// The shard owning a block's primary copy.
    pub fn primary(&self, addr: BlockAddr) -> u16 {
        ((u128::from(mix64(addr.to_u64())) * u128::from(self.shards)) >> 64) as u16
    }

    /// The block's replica ring, primary first.
    pub fn replica_set(&self, addr: BlockAddr) -> ReplicaSet {
        ReplicaSet {
            start: self.primary(addr),
            shards: self.shards,
            len: self.replicas,
            next: 0,
        }
    }
}

/// Iterator over a block's replica shards, primary first (see
/// [`Router::replica_set`]).
#[derive(Clone, Copy, Debug)]
pub struct ReplicaSet {
    start: u16,
    shards: u16,
    len: u16,
    next: u16,
}

impl Iterator for ReplicaSet {
    type Item = u16;

    fn next(&mut self) -> Option<u16> {
        if self.next >= self.len {
            return None;
        }
        let shard = (self.start + self.next) % self.shards;
        self.next += 1;
        Some(shard)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = usize::from(self.len - self.next);
        (n, Some(n))
    }
}

impl ExactSizeIterator for ReplicaSet {}

/// Per-shard filer configuration: the base timing with a shard-specific
/// content-hash seed, so each shard has its own fast/slow luck (two
/// replicas of one block can disagree — reading from a failover replica
/// really does change the draw, like a different server's cache would).
pub fn shard_filer_config(base: FilerConfig, shard: u16, run_seed: u64) -> FilerConfig {
    FilerConfig {
        seed: mix64(
            base.seed ^ run_seed.rotate_left(17) ^ (u64::from(shard) << 16) ^ 0x51a2_fa17_0000_0011,
        ),
        ..base
    }
}

/// Per-shard wire configuration: shard `k`'s per-packet base latency is
/// `(1 + k/16)×` the configured base — a small deterministic skew standing
/// in for per-shard latency distributions (farther rack, busier switch).
/// Shard 0 keeps the exact base timing.
pub fn shard_net_config(base: NetConfig, shard: u16) -> NetConfig {
    NetConfig {
        base_latency: base.base_latency.scale(1.0 + f64::from(shard) / 16.0),
        ..base
    }
}

/// Replication-layer counters (everything above single-shard service).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RemoteStats {
    /// Hedge requests actually launched (primary outlived the hedge delay
    /// with a live second replica available).
    pub hedges_launched: u64,
    /// Hedges that finished first and supplied the result.
    pub hedges_won: u64,
    /// Hedges whose result arrived after the primary had already won.
    pub hedges_cancelled: u64,
    /// Reads served by a non-primary replica because the primary was down
    /// or kept failing.
    pub failovers: u64,
    /// Blocks copied back onto a recovered shard.
    pub re_replicated_blocks: u64,
    /// Bytes of re-replication traffic.
    pub re_replication_bytes: u64,
    /// Number of distinct intervals during which some block was
    /// under-replicated.
    pub under_intervals: u64,
    /// Peak number of simultaneously under-replicated (block, shard)
    /// copies.
    pub under_peak: u64,
    /// Under-replicated copies right now (0 after recovery caught up —
    /// the "no acknowledged write stays single-copy" check).
    pub under_now: u64,
    /// Total simulated time some block was under-replicated.
    pub under_time_ns: u64,
}

/// The seam the engine's sharded read/write paths compile against:
/// topology, per-shard service handles, per-shard fault schedules, and the
/// replication bookkeeping. One instance is shared by every host in a run.
pub trait RemoteStore {
    /// The placement topology.
    fn router(&self) -> Router;
    /// Shard `k`'s service model.
    fn filer(&self, shard: u16) -> &Filer;
    /// Shard `k`'s resolved fault schedule (empty when the run injects
    /// nothing there).
    fn faults(&self, shard: u16) -> &FaultSchedule;
    /// Shard `k`'s service counters.
    fn shard_stats(&self, shard: u16) -> FilerStats;
    /// Replication-layer counters; an under-replicated interval still open
    /// at `now_ns` is counted up to `now_ns`.
    fn stats(&self, now_ns: u64) -> RemoteStats;
}

#[derive(Default)]
struct Counters {
    hedges_launched: Cell<u64>,
    hedges_won: Cell<u64>,
    hedges_cancelled: Cell<u64>,
    failovers: Cell<u64>,
    re_replicated_blocks: Cell<u64>,
    re_replication_bytes: Cell<u64>,
    under_intervals: Cell<u64>,
    under_peak: Cell<u64>,
    under_time_ns: Cell<u64>,
}

/// The concrete sharded backend: K filers behind a [`Router`].
///
/// Single-threaded like the rest of the simulator; shared via `Rc`.
pub struct ShardedStore {
    router: Router,
    filers: Vec<Filer>,
    faults: Vec<FaultSchedule>,
    counters: Counters,
    /// Per shard: block addresses whose copy on that shard is missing
    /// (the shard was down when the write acknowledged).
    under: RefCell<Vec<HashSet<u64>>>,
    under_total: Cell<u64>,
    /// When the currently-open under-replicated interval began.
    open_since: Cell<Option<u64>>,
}

impl ShardedStore {
    /// Builds the store from per-shard service models and fault schedules
    /// (one of each per shard; pass empty schedules for a fault-free run).
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths disagree with the router's topology.
    pub fn new(router: Router, filers: Vec<Filer>, faults: Vec<FaultSchedule>) -> Self {
        assert_eq!(filers.len(), usize::from(router.shards()));
        assert_eq!(faults.len(), usize::from(router.shards()));
        let under = RefCell::new(vec![HashSet::new(); filers.len()]);
        Self {
            router,
            filers,
            faults,
            counters: Counters::default(),
            under,
            under_total: Cell::new(0),
            open_since: Cell::new(None),
        }
    }

    /// Whether shard `k` is up (no open outage) at `now_ns`.
    pub fn live_at(&self, shard: u16, now_ns: u64) -> bool {
        self.faults[usize::from(shard)]
            .outage_until(now_ns)
            .is_none()
    }

    /// If shard `k` is in an outage at `now_ns`, when it clears.
    pub fn outage_until(&self, shard: u16, now_ns: u64) -> Option<u64> {
        self.faults[usize::from(shard)].outage_until(now_ns)
    }

    /// Records that `addr`'s copy on `shard` was skipped by a write-all
    /// because the shard was down: the block is now under-replicated until
    /// recovery copies it back.
    pub fn mark_under_replicated(&self, shard: u16, addr: BlockAddr, now_ns: u64) {
        if !self.under.borrow_mut()[usize::from(shard)].insert(addr.to_u64()) {
            return;
        }
        let total = self.under_total.get() + 1;
        self.under_total.set(total);
        if self.open_since.get().is_none() {
            self.open_since.set(Some(now_ns));
            self.counters
                .under_intervals
                .set(self.counters.under_intervals.get() + 1);
        }
        if total > self.counters.under_peak.get() {
            self.counters.under_peak.set(total);
        }
    }

    /// Drains shard `k`'s under-replicated set for a recovery pass,
    /// sorted (deterministic re-replication order).
    pub fn take_under_replicated(&self, shard: u16) -> Vec<BlockAddr> {
        let mut addrs: Vec<u64> = self.under.borrow_mut()[usize::from(shard)]
            .drain()
            .collect();
        addrs.sort_unstable();
        addrs.into_iter().map(BlockAddr::from_u64).collect()
    }

    /// Puts a drained copy back into shard `k`'s under-replicated set
    /// without touching the counters (the copy is still counted from its
    /// original [`ShardedStore::mark_under_replicated`]): a recovery pass
    /// found no live source and defers the copy to the next pass.
    pub fn requeue_under_replicated(&self, shard: u16, addr: BlockAddr) {
        self.under.borrow_mut()[usize::from(shard)].insert(addr.to_u64());
    }

    /// Records one re-replicated block of `bytes` payload; closes the
    /// open under-replicated interval when the last copy is restored.
    pub fn note_re_replicated(&self, bytes: u64, now_ns: u64) {
        self.counters
            .re_replicated_blocks
            .set(self.counters.re_replicated_blocks.get() + 1);
        self.counters
            .re_replication_bytes
            .set(self.counters.re_replication_bytes.get() + bytes);
        let total = self.under_total.get() - 1;
        self.under_total.set(total);
        if total == 0 {
            if let Some(since) = self.open_since.take() {
                self.counters
                    .under_time_ns
                    .set(self.counters.under_time_ns.get() + now_ns.saturating_sub(since));
            }
        }
    }

    /// Counts a hedge launch.
    pub fn note_hedge_launched(&self) {
        self.counters
            .hedges_launched
            .set(self.counters.hedges_launched.get() + 1);
    }

    /// Counts a hedge that supplied the result first.
    pub fn note_hedge_won(&self) {
        self.counters
            .hedges_won
            .set(self.counters.hedges_won.get() + 1);
    }

    /// Counts a hedge whose result arrived too late to matter.
    pub fn note_hedge_cancelled(&self) {
        self.counters
            .hedges_cancelled
            .set(self.counters.hedges_cancelled.get() + 1);
    }

    /// Counts a read served by a non-primary replica.
    pub fn note_failover(&self) {
        self.counters
            .failovers
            .set(self.counters.failovers.get() + 1);
    }

    /// Resets per-shard service counters (end of warmup). Replication
    /// bookkeeping (under-replicated set, hedge/failover counters) is
    /// deliberately kept: like the robustness counters, it spans the
    /// warmup boundary.
    pub fn reset_service_stats(&self) {
        for f in &self.filers {
            f.reset_stats();
        }
    }
}

impl RemoteStore for ShardedStore {
    fn router(&self) -> Router {
        self.router
    }

    fn filer(&self, shard: u16) -> &Filer {
        &self.filers[usize::from(shard)]
    }

    fn faults(&self, shard: u16) -> &FaultSchedule {
        &self.faults[usize::from(shard)]
    }

    fn shard_stats(&self, shard: u16) -> FilerStats {
        self.filers[usize::from(shard)].stats()
    }

    fn stats(&self, now_ns: u64) -> RemoteStats {
        let c = &self.counters;
        let mut under_time_ns = c.under_time_ns.get();
        if let Some(since) = self.open_since.get() {
            under_time_ns += now_ns.saturating_sub(since);
        }
        RemoteStats {
            hedges_launched: c.hedges_launched.get(),
            hedges_won: c.hedges_won.get(),
            hedges_cancelled: c.hedges_cancelled.get(),
            failovers: c.failovers.get(),
            re_replicated_blocks: c.re_replicated_blocks.get(),
            re_replication_bytes: c.re_replication_bytes.get(),
            under_intervals: c.under_intervals.get(),
            under_peak: c.under_peak.get(),
            under_now: self.under_total.get(),
            under_time_ns,
        }
    }
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("router", &self.router)
            .field("under_now", &self.under_total.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcache_des::Sim;
    use fcache_types::{FaultPlan, FileId};

    fn addr(i: u32) -> BlockAddr {
        BlockAddr::new(FileId(i >> 10), i & 0x3ff)
    }

    #[test]
    fn primary_placement_is_balanced_and_deterministic() {
        let router = Router::new(4, 2);
        let mut counts = [0u32; 4];
        for i in 0..40_000u32 {
            let p = router.primary(addr(i));
            assert_eq!(p, router.primary(addr(i)));
            counts[usize::from(p)] += 1;
        }
        for (k, &n) in counts.iter().enumerate() {
            assert!(
                (8_000..12_000).contains(&n),
                "shard {k} got {n} of 40000 blocks"
            );
        }
    }

    #[test]
    fn replica_sets_ring_from_the_primary() {
        let router = Router::new(4, 3);
        for i in 0..1_000u32 {
            let a = addr(i);
            let set: Vec<u16> = router.replica_set(a).collect();
            assert_eq!(set.len(), 3);
            assert_eq!(set[0], router.primary(a));
            assert_eq!(set[1], (set[0] + 1) % 4);
            assert_eq!(set[2], (set[0] + 2) % 4);
        }
        let single: Vec<u16> = Router::new(1, 1).replica_set(addr(7)).collect();
        assert_eq!(single, [0]);
    }

    #[test]
    #[should_panic(expected = "must be in 1..=2")]
    fn more_replicas_than_shards_panics() {
        let _ = Router::new(2, 3);
    }

    #[test]
    fn shard_configs_skew_deterministically() {
        let base = FilerConfig::default();
        let a = shard_filer_config(base, 0, 42);
        let b = shard_filer_config(base, 1, 42);
        assert_ne!(a.seed, b.seed);
        assert_eq!(a.seed, shard_filer_config(base, 0, 42).seed);
        assert_eq!(a.fast_read, base.fast_read);

        let net = NetConfig::default();
        assert_eq!(shard_net_config(net, 0), net);
        assert!(shard_net_config(net, 3).base_latency > net.base_latency);
    }

    fn store_with_outage() -> ShardedStore {
        let sim = Sim::new();
        let router = Router::new(2, 2);
        let filers = (0..2)
            .map(|k| {
                Filer::new(
                    sim.clone(),
                    shard_filer_config(FilerConfig::default(), k, 1),
                )
            })
            .collect();
        let set = FaultPlan::parse("shard1:outage@10s-20s")
            .unwrap()
            .resolve_sharded(1, 1, 2)
            .unwrap();
        ShardedStore::new(router, filers, set.shards)
    }

    #[test]
    fn liveness_follows_the_shard_schedule() {
        let store = store_with_outage();
        assert!(store.live_at(0, 15_000_000_000));
        assert!(!store.live_at(1, 15_000_000_000));
        assert_eq!(store.outage_until(1, 15_000_000_000), Some(20_000_000_000));
        assert!(store.live_at(1, 25_000_000_000));
    }

    #[test]
    fn under_replication_accounting_opens_peaks_and_closes() {
        let store = store_with_outage();
        store.mark_under_replicated(1, addr(1), 100);
        store.mark_under_replicated(1, addr(2), 200);
        // Re-marking the same copy is idempotent.
        store.mark_under_replicated(1, addr(2), 250);
        let s = store.stats(300);
        assert_eq!(s.under_intervals, 1);
        assert_eq!(s.under_peak, 2);
        assert_eq!(s.under_now, 2);
        assert_eq!(s.under_time_ns, 200, "open interval counted to now");

        let drained = store.take_under_replicated(1);
        assert_eq!(drained, vec![addr(1), addr(2)]);
        store.note_re_replicated(4096, 500);
        store.note_re_replicated(4096, 600);
        let s = store.stats(1_000);
        assert_eq!(s.under_now, 0);
        assert_eq!(s.re_replicated_blocks, 2);
        assert_eq!(s.re_replication_bytes, 8192);
        assert_eq!(s.under_time_ns, 500, "interval closed at the last copy");
        // A fresh degradation opens a second interval.
        store.mark_under_replicated(0, addr(3), 2_000);
        assert_eq!(store.stats(2_100).under_intervals, 2);
    }
}
