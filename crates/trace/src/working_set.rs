//! Working sets: popularity-weighted collections of file subregions.
//!
//! §4: the generator "samples this file server model to produce working
//! sets, then samples these to produce I/O requests". A working set is a
//! list of *extents* — contiguous block ranges of files — whose subregion
//! lengths are Poisson and starting points uniform, with files chosen
//! weighted by popularity.

use fcache_fsmodel::FsModel;
use fcache_types::{ByteSize, FileId, BLOCK_SIZE};
use rand::Rng;

use crate::poisson::poisson;

/// A contiguous run of blocks within one file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Extent {
    /// Owning file.
    pub file: FileId,
    /// First block of the subregion.
    pub start_block: u32,
    /// Length in blocks (≥ 1).
    pub nblocks: u32,
    /// Popularity weight inherited from the file.
    pub popularity: u32,
}

/// A working set sampled from a file-server model.
#[derive(Clone, Debug)]
pub struct WorkingSet {
    extents: Vec<Extent>,
    total_blocks: u64,
    /// Cumulative extent lengths, for per-block-uniform I/O sampling.
    cum_blocks: Vec<u64>,
    /// Cumulative popularity weights, for the skewed sampling ablation.
    cum_weights: Vec<u64>,
}

impl WorkingSet {
    /// Samples a working set of at least `size` from the model.
    ///
    /// Extent lengths are Poisson with mean `extent_mean_blocks`, clamped
    /// to the file size; starting points are uniform; file selection is
    /// popularity-weighted. Generation stops at the first extent reaching
    /// the size target, so the overshoot is at most one extent.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn sample<R: Rng + ?Sized>(
        model: &FsModel,
        size: ByteSize,
        extent_mean_blocks: f64,
        rng: &mut R,
    ) -> Self {
        let target_blocks = size.bytes().div_ceil(BLOCK_SIZE);
        assert!(target_blocks > 0, "working set size must be nonzero");
        let mut extents = Vec::new();
        let mut total = 0u64;
        while total < target_blocks {
            let f = model.sample_weighted(rng);
            let len = poisson(rng, extent_mean_blocks).clamp(1, f.blocks as u64) as u32;
            let max_start = f.blocks - len;
            let start = if max_start == 0 {
                0
            } else {
                rng.gen_range(0..=max_start)
            };
            extents.push(Extent {
                file: f.id,
                start_block: start,
                nblocks: len,
                popularity: f.popularity,
            });
            total += len as u64;
        }
        let mut cum_blocks = Vec::with_capacity(extents.len());
        let mut cum_weights = Vec::with_capacity(extents.len());
        let (mut acc_b, mut acc_w) = (0u64, 0u64);
        for e in &extents {
            acc_b += e.nblocks as u64;
            cum_blocks.push(acc_b);
            acc_w += e.popularity as u64;
            cum_weights.push(acc_w);
        }
        Self {
            extents,
            total_blocks: total,
            cum_blocks,
            cum_weights,
        }
    }

    /// The extents making up the set.
    pub fn extents(&self) -> &[Extent] {
        &self.extents
    }

    /// Total size in blocks.
    pub fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    /// Total size in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_blocks * BLOCK_SIZE
    }

    /// Draws an extent with probability proportional to its length, making
    /// I/O starting points uniform over the working-set footprint ("The
    /// distribution of I/O starting points … is uniform", §4). Popularity
    /// shapes which subregions *join* the working set, not how often each
    /// resident block is touched — this is what keeps cache hit rates
    /// tracking the size ratios the paper reports (e.g. the small RAM hit
    /// rates of §7.2).
    pub fn sample_extent<R: Rng + ?Sized>(&self, rng: &mut R) -> &Extent {
        let total = *self.cum_blocks.last().expect("working set has extents");
        let x = rng.gen_range(0..total);
        let idx = self.cum_blocks.partition_point(|&c| c <= x);
        &self.extents[idx]
    }

    /// Draws an extent weighted by file popularity instead of length
    /// (skewed-access ablation; not the paper's shape).
    pub fn sample_extent_by_popularity<R: Rng + ?Sized>(&self, rng: &mut R) -> &Extent {
        let total = *self.cum_weights.last().expect("working set has extents");
        let x = rng.gen_range(0..total);
        let idx = self.cum_weights.partition_point(|&c| c <= x);
        &self.extents[idx]
    }

    /// Draws one I/O from the working set: an extent, then a Poisson size
    /// clamped to the extent, then a uniform start keeping the I/O inside
    /// the extent. Returns `(file, start_block, nblocks)`.
    pub fn sample_io<R: Rng + ?Sized>(
        &self,
        io_mean_blocks: f64,
        rng: &mut R,
    ) -> (FileId, u32, u32) {
        let e = self.sample_extent(rng);
        let len = poisson(rng, io_mean_blocks).clamp(1, e.nblocks as u64) as u32;
        let max_off = e.nblocks - len;
        let off = if max_off == 0 {
            0
        } else {
            rng.gen_range(0..=max_off)
        };
        (e.file, e.start_block + off, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcache_fsmodel::FsModelConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn model() -> FsModel {
        FsModel::generate(FsModelConfig {
            total_bytes: ByteSize::mib(512),
            seed: 11,
            ..FsModelConfig::default()
        })
    }

    #[test]
    fn reaches_target_size() {
        let m = model();
        let mut rng = SmallRng::seed_from_u64(1);
        let ws = WorkingSet::sample(&m, ByteSize::mib(64), 256.0, &mut rng);
        let target = (64u64 << 20) / 4096;
        assert!(ws.total_blocks() >= target);
        // Overshoot at most one extent (extents are clamped to file size).
        let largest = ws.extents().iter().map(|e| e.nblocks as u64).max().unwrap();
        assert!(ws.total_blocks() < target + largest + 1);
    }

    #[test]
    fn extents_stay_inside_files() {
        let m = model();
        let mut rng = SmallRng::seed_from_u64(2);
        let ws = WorkingSet::sample(&m, ByteSize::mib(32), 512.0, &mut rng);
        for e in ws.extents() {
            let f = m.file(e.file);
            assert!(e.nblocks >= 1);
            assert!(e.start_block + e.nblocks <= f.blocks, "extent escapes file");
            assert_eq!(e.popularity, f.popularity);
        }
    }

    #[test]
    fn sampled_io_stays_inside_extent() {
        let m = model();
        let mut rng = SmallRng::seed_from_u64(3);
        let ws = WorkingSet::sample(&m, ByteSize::mib(16), 128.0, &mut rng);
        for _ in 0..5_000 {
            let (file, start, len) = ws.sample_io(8.0, &mut rng);
            assert!(len >= 1);
            let containing = ws.extents().iter().any(|e| {
                e.file == file && start >= e.start_block && start + len <= e.start_block + e.nblocks
            });
            assert!(
                containing,
                "I/O f{}@{start}+{len} not inside any extent",
                file.0
            );
        }
    }

    #[test]
    fn io_sizes_follow_requested_mean_when_unclamped() {
        // A model with large files (median ≈ 440 KB) leaves the Poisson
        // I/O sizes essentially unclamped: the mean approaches λ = 8.
        let m = FsModel::generate(FsModelConfig {
            total_bytes: ByteSize::mib(512),
            lognormal_mu: 13.0,
            seed: 11,
            ..FsModelConfig::default()
        });
        let mut rng = SmallRng::seed_from_u64(4);
        let ws = WorkingSet::sample(&m, ByteSize::mib(64), 1024.0, &mut rng);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| ws.sample_io(8.0, &mut rng).2 as u64).sum();
        let mean = total as f64 / n as f64;
        assert!(mean > 7.0 && mean <= 8.5, "mean {mean}");
    }

    #[test]
    fn io_sizes_clamped_by_small_files() {
        // On the default small-file model, clamping "to the filesize" (§4)
        // pulls the observed mean well below λ while staying ≥ 1.
        let m = model();
        let mut rng = SmallRng::seed_from_u64(4);
        let ws = WorkingSet::sample(&m, ByteSize::mib(64), 1024.0, &mut rng);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| ws.sample_io(8.0, &mut rng).2 as u64).sum();
        let mean = total as f64 / n as f64;
        assert!((1.0..8.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn deterministic_in_rng_seed() {
        let m = model();
        let a = WorkingSet::sample(&m, ByteSize::mib(8), 128.0, &mut SmallRng::seed_from_u64(5));
        let b = WorkingSet::sample(&m, ByteSize::mib(8), 128.0, &mut SmallRng::seed_from_u64(5));
        assert_eq!(a.extents(), b.extents());
    }

    #[test]
    #[should_panic(expected = "working set size must be nonzero")]
    fn zero_size_panics() {
        let m = model();
        let mut rng = SmallRng::seed_from_u64(6);
        let _ = WorkingSet::sample(&m, ByteSize::ZERO, 128.0, &mut rng);
    }
}
