//! The trace generator proper.
//!
//! Generation is *streamed*: [`TraceStream`] is a deterministic op source
//! that draws one op at a time, so the simulator can consume a multi-million
//! op workload in bounded chunks without ever materializing it
//! ([`generate`] is now just "collect the stream into a [`Trace`]"). The two
//! paths draw from the same RNG in the same order, so they produce the same
//! ops — asserted by the crate tests and the core determinism suite.

use std::io;

use fcache_fsmodel::FsModel;
use fcache_types::{
    ByteSize, HostId, OpKind, ThreadId, Trace, TraceMeta, TraceOp, TraceSource, BLOCK_SIZE,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::poisson::poisson;
use crate::working_set::WorkingSet;

/// Generation parameters; defaults are the paper's baseline (§4).
#[derive(Clone, Debug)]
pub struct TraceGenConfig {
    /// Number of client hosts (baseline 1; consistency traces use 2).
    pub hosts: u16,
    /// Threads per host ("They also use eight threads per host").
    pub threads_per_host: u16,
    /// Working-set size (baselines: 60 GB and 80 GB).
    pub working_set: ByteSize,
    /// Number of distinct working sets; host *i* uses set `i % ws_count`.
    /// The consistency experiments use `hosts = 2, ws_count = 1` — "as a
    /// worst-case scenario we make the two hosts share one working set"
    /// (§7.9).
    pub ws_count: usize,
    /// Fraction of I/Os drawn from the working set ("80 % of the I/Os
    /// coming from the working set").
    pub ws_fraction: f64,
    /// Fraction of operations that are writes (baseline 30 %).
    pub write_fraction: f64,
    /// Total data volume as a multiple of the working-set size ("a total
    /// volume of data that is, in all cases, four times the working set
    /// size").
    pub volume_multiplier: f64,
    /// Leading fraction of the volume flagged as warmup ("half of it being
    /// devoted to a warmup period for which statistics are not collected").
    pub warmup_fraction: f64,
    /// Mean I/O size in blocks (Poisson).
    pub io_mean_blocks: f64,
    /// Mean working-set extent length in blocks (Poisson).
    pub extent_mean_blocks: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceGenConfig {
    fn default() -> Self {
        Self {
            hosts: 1,
            threads_per_host: 8,
            working_set: ByteSize::gib(60),
            ws_count: 1,
            ws_fraction: 0.8,
            write_fraction: 0.3,
            volume_multiplier: 4.0,
            warmup_fraction: 0.5,
            io_mean_blocks: 8.0,
            extent_mean_blocks: 1024.0,
            seed: 0x7ace_5eed,
        }
    }
}

impl TraceGenConfig {
    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range fractions or zero hosts/threads/ws_count.
    pub fn validate(&self) {
        assert!(self.hosts > 0, "need at least one host");
        assert!(self.threads_per_host > 0, "need at least one thread");
        assert!(self.ws_count > 0, "need at least one working set");
        assert!(
            (0.0..=1.0).contains(&self.ws_fraction),
            "ws_fraction out of range"
        );
        assert!(
            (0.0..=1.0).contains(&self.write_fraction),
            "write_fraction out of range"
        );
        assert!(
            (0.0..=1.0).contains(&self.warmup_fraction),
            "warmup_fraction out of range"
        );
        assert!(
            self.volume_multiplier > 0.0,
            "volume_multiplier must be positive"
        );
        assert!(self.io_mean_blocks > 0.0, "io_mean_blocks must be positive");
        assert!(
            self.extent_mean_blocks > 0.0,
            "extent_mean_blocks must be positive"
        );
        assert!(!self.working_set.is_zero(), "working set must be nonzero");
    }
}

/// Generates a trace from a file-server model.
///
/// Working sets are sampled first (one per `ws_count`), then I/Os are drawn
/// with uniform host/thread assignment until the target volume is reached.
/// The leading `warmup_fraction` of the volume is flagged `warmup`.
///
/// # Examples
///
/// ```
/// use fcache_fsmodel::{FsModel, FsModelConfig};
/// use fcache_trace::{generate, TraceGenConfig};
/// use fcache_types::ByteSize;
///
/// let model = FsModel::generate(FsModelConfig {
///     total_bytes: ByteSize::mib(64),
///     seed: 1,
///     ..FsModelConfig::default()
/// });
/// let trace = generate(&model, TraceGenConfig {
///     working_set: ByteSize::mib(4),
///     seed: 2,
///     ..TraceGenConfig::default()
/// });
/// assert!(!trace.is_empty());
/// let stats = trace.stats();
/// // Volume ≈ 4 × 4 MB in blocks.
/// assert!(stats.blocks >= 4 * ((4 << 20) / 4096));
/// ```
pub fn generate(model: &FsModel, cfg: TraceGenConfig) -> Trace {
    let mut stream = TraceStream::new(model, cfg);
    let mut trace = Trace::new(stream.meta().clone());
    while let Some(op) = stream.next_op() {
        trace.ops.push(op);
    }
    trace
}

/// Deterministic streaming trace generator: a [`TraceSource`] that draws
/// ops on demand instead of materializing the whole workload.
///
/// The draw sequence is exactly the one [`generate`] performs, so streamed
/// and materialized generation yield identical ops for identical
/// configurations.
#[derive(Debug)]
pub struct TraceStream<'m> {
    model: &'m FsModel,
    cfg: TraceGenConfig,
    rng: SmallRng,
    sets: Vec<WorkingSet>,
    meta: TraceMeta,
    target_blocks: u64,
    warmup_blocks: u64,
    volume: u64,
    skip_warmup: bool,
}

impl<'m> TraceStream<'m> {
    /// Validates the configuration and samples the working sets; the first
    /// [`TraceStream::next_op`] call continues the RNG from there.
    pub fn new(model: &'m FsModel, cfg: TraceGenConfig) -> Self {
        cfg.validate();
        let mut rng = SmallRng::seed_from_u64(cfg.seed);

        let sets: Vec<WorkingSet> = (0..cfg.ws_count)
            .map(|_| WorkingSet::sample(model, cfg.working_set, cfg.extent_mean_blocks, &mut rng))
            .collect();

        // Volume is 4× the *total* working-set footprint: with several
        // distinct working sets, every one must be ground through four times
        // so each host's cache fills during warmup just as in the single-set
        // baseline ("a total volume of data that is, in all cases, four times
        // the working set size", §4).
        let target_blocks =
            (cfg.working_set.bytes() as f64 * cfg.volume_multiplier * cfg.ws_count as f64
                / BLOCK_SIZE as f64) as u64;
        let warmup_blocks = (target_blocks as f64 * cfg.warmup_fraction) as u64;

        let meta = TraceMeta {
            hosts: cfg.hosts,
            threads_per_host: cfg.threads_per_host,
            working_set_bytes: cfg.working_set.bytes(),
            working_set_pct: (cfg.ws_fraction * 100.0).round() as u8,
            write_pct: (cfg.write_fraction * 100.0).round() as u8,
            seed: cfg.seed,
        };
        Self {
            model,
            cfg,
            rng,
            sets,
            meta,
            target_blocks,
            warmup_blocks,
            volume: 0,
            skip_warmup: false,
        }
    }

    /// Drops warmup-flagged ops from the stream instead of emitting them —
    /// "equivalent to having a non-persistent flash cache and crashing at
    /// the start of the simulator run" (§7.8). The RNG sequence is
    /// unchanged; the warmup prefix is simply not delivered.
    pub fn skip_warmup(mut self, skip: bool) -> Self {
        self.skip_warmup = skip;
        self
    }

    /// Generation metadata (also the replay engine's host/thread sizing).
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Draws the next op, or `None` once the volume target is reached.
    pub fn next_op(&mut self) -> Option<TraceOp> {
        loop {
            if self.volume >= self.target_blocks {
                return None;
            }
            let cfg = &self.cfg;
            let rng = &mut self.rng;
            let host = HostId(rng.gen_range(0..cfg.hosts));
            let thread = ThreadId(rng.gen_range(0..cfg.threads_per_host));
            let kind = if rng.gen_bool(cfg.write_fraction) {
                OpKind::Write
            } else {
                OpKind::Read
            };

            let (file, start_block, nblocks) = if rng.gen_bool(cfg.ws_fraction) {
                let ws = &self.sets[host.index() % self.sets.len()];
                ws.sample_io(cfg.io_mean_blocks, rng)
            } else {
                // Whole-file-server I/O: popularity-weighted file, Poisson
                // size clamped to the file, uniform start.
                let f = self.model.sample_weighted(rng);
                let len = poisson(rng, cfg.io_mean_blocks).clamp(1, f.blocks as u64) as u32;
                let max_start = f.blocks - len;
                let start = if max_start == 0 {
                    0
                } else {
                    rng.gen_range(0..=max_start)
                };
                (f.id, start, len)
            };

            let warmup = self.volume < self.warmup_blocks;
            self.volume += nblocks as u64;
            if warmup && self.skip_warmup {
                continue;
            }
            return Some(TraceOp::new(
                host,
                thread,
                kind,
                file,
                start_block,
                nblocks,
                warmup,
            ));
        }
    }
}

impl TraceSource for TraceStream<'_> {
    fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    fn next_chunk(&mut self, out: &mut Vec<TraceOp>, max: usize) -> io::Result<usize> {
        let mut n = 0;
        while n < max {
            match self.next_op() {
                Some(op) => {
                    out.push(op);
                    n += 1;
                }
                None => break,
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcache_fsmodel::FsModelConfig;

    fn model() -> FsModel {
        FsModel::generate(FsModelConfig {
            total_bytes: ByteSize::mib(256),
            seed: 21,
            ..FsModelConfig::default()
        })
    }

    fn small_cfg() -> TraceGenConfig {
        TraceGenConfig {
            working_set: ByteSize::mib(8),
            seed: 22,
            ..TraceGenConfig::default()
        }
    }

    #[test]
    fn volume_is_four_times_working_set() {
        let t = generate(&model(), small_cfg());
        let s = t.stats();
        let ws_blocks = (8u64 << 20) / 4096;
        assert!(s.blocks >= 4 * ws_blocks);
        // Overshoot bounded by one I/O.
        assert!(s.blocks < 4 * ws_blocks + 1024);
    }

    #[test]
    fn half_the_volume_is_warmup() {
        let t = generate(&model(), small_cfg());
        let s = t.stats();
        let frac = s.warmup_fraction();
        assert!((frac - 0.5).abs() < 0.02, "warmup byte fraction {frac}");
        // Warmup ops form a prefix.
        let first_measured = t.ops.iter().position(|o| !o.warmup()).unwrap();
        assert!(t.ops[..first_measured].iter().all(|o| o.warmup()));
        assert!(t.ops[first_measured..].iter().all(|o| !o.warmup()));
    }

    #[test]
    fn write_fraction_close_to_config() {
        let t = generate(&model(), small_cfg());
        let f = t.stats().write_fraction();
        assert!((f - 0.3).abs() < 0.03, "write fraction {f}");
    }

    #[test]
    fn streamed_chunks_match_materialized_generation() {
        let m = model();
        let materialized = generate(&m, small_cfg());
        let mut stream = TraceStream::new(&m, small_cfg());
        assert_eq!(stream.meta(), &materialized.meta);
        let mut streamed = Vec::new();
        // Odd chunk size: chunk boundaries must not perturb the sequence.
        while stream.next_chunk(&mut streamed, 37).unwrap() > 0 {}
        assert_eq!(streamed, materialized.ops);
    }

    #[test]
    fn skip_warmup_stream_drops_exactly_the_warmup_prefix() {
        let m = model();
        let full = generate(&m, small_cfg());
        let mut stream = TraceStream::new(&m, small_cfg()).skip_warmup(true);
        let mut streamed = Vec::new();
        while stream.next_chunk(&mut streamed, 64).unwrap() > 0 {}
        let measured: Vec<_> = full.ops.iter().filter(|o| !o.warmup()).copied().collect();
        assert!(!streamed.is_empty());
        assert_eq!(streamed, measured);
    }

    #[test]
    fn hosts_and_threads_uniform() {
        let cfg = TraceGenConfig {
            hosts: 2,
            ..small_cfg()
        };
        let t = generate(&model(), cfg);
        let mut host_counts = [0u64; 2];
        let mut thread_counts = [0u64; 8];
        for op in &t.ops {
            host_counts[op.host().index()] += 1;
            thread_counts[op.thread().index()] += 1;
        }
        let total = t.len() as f64;
        for c in host_counts {
            assert!((c as f64 / total - 0.5).abs() < 0.05);
        }
        for c in thread_counts {
            assert!((c as f64 / total - 0.125).abs() < 0.03);
        }
    }

    #[test]
    fn ops_stay_inside_files() {
        let m = model();
        let t = generate(&m, small_cfg());
        for op in &t.ops {
            let f = m.file(op.file());
            assert!(op.nblocks() >= 1);
            assert!(op.start_block() + op.nblocks() <= f.blocks);
        }
    }

    #[test]
    fn working_set_concentration() {
        // With ws_fraction = 0.8, the measured half should hit a bounded
        // set of blocks far smaller than the whole model.
        let m = model();
        let t = generate(&m, small_cfg());
        use std::collections::HashSet;
        let mut touched = HashSet::new();
        for op in t.ops.iter().filter(|o| !o.warmup()) {
            for b in op.blocks() {
                touched.insert(b.to_u64());
            }
        }
        let model_blocks = m.total_blocks();
        assert!(
            (touched.len() as u64) < model_blocks / 2,
            "trace should concentrate: touched {} of {model_blocks}",
            touched.len()
        );
    }

    #[test]
    fn shared_working_set_overlaps_across_hosts() {
        // Two hosts, one working set: hosts must touch overlapping blocks.
        let m = model();
        let cfg = TraceGenConfig {
            hosts: 2,
            ws_count: 1,
            ..small_cfg()
        };
        let t = generate(&m, cfg);
        use std::collections::HashSet;
        let blocks_of = |h: u16| -> HashSet<u64> {
            t.ops
                .iter()
                .filter(|o| o.host().0 == h)
                .flat_map(|o| o.blocks().map(|b| b.to_u64()))
                .collect()
        };
        let a = blocks_of(0);
        let b = blocks_of(1);
        let inter = a.intersection(&b).count();
        assert!(
            inter as f64 > 0.3 * a.len().min(b.len()) as f64,
            "hosts sharing a WS should overlap heavily ({inter} common)"
        );
    }

    #[test]
    fn separate_working_sets_overlap_less() {
        let m = model();
        let shared = generate(
            &m,
            TraceGenConfig {
                hosts: 2,
                ws_count: 1,
                ..small_cfg()
            },
        );
        let split = generate(
            &m,
            TraceGenConfig {
                hosts: 2,
                ws_count: 2,
                ..small_cfg()
            },
        );
        use std::collections::HashSet;
        let overlap = |t: &Trace| {
            let blocks_of = |h: u16| -> HashSet<u64> {
                t.ops
                    .iter()
                    .filter(|o| o.host().0 == h)
                    .flat_map(|o| o.blocks().map(|b| b.to_u64()))
                    .collect()
            };
            let a = blocks_of(0);
            let b = blocks_of(1);
            a.intersection(&b).count() as f64 / a.len().min(b.len()).max(1) as f64
        };
        // Popular files and the 20 % whole-server traffic keep some overlap
        // even for distinct working sets; shared sets must still overlap
        // distinctly more.
        assert!(
            overlap(&shared) > 1.25 * overlap(&split),
            "shared {} vs split {}",
            overlap(&shared),
            overlap(&split)
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let m = model();
        let a = generate(&m, small_cfg());
        let b = generate(&m, small_cfg());
        assert_eq!(a.ops, b.ops);
        let c = generate(
            &m,
            TraceGenConfig {
                seed: 99,
                ..small_cfg()
            },
        );
        assert_ne!(a.ops, c.ops);
    }

    #[test]
    fn zero_write_fraction_all_reads() {
        let t = generate(
            &model(),
            TraceGenConfig {
                write_fraction: 0.0,
                ..small_cfg()
            },
        );
        assert_eq!(t.stats().write_ops, 0);
        let t2 = generate(
            &model(),
            TraceGenConfig {
                write_fraction: 1.0,
                ..small_cfg()
            },
        );
        assert_eq!(t2.stats().write_ops, t2.stats().ops);
    }

    #[test]
    #[should_panic(expected = "need at least one host")]
    fn invalid_config_panics() {
        let _ = generate(
            &model(),
            TraceGenConfig {
                hosts: 0,
                ..small_cfg()
            },
        );
    }
}
