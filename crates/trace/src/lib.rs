//! Synthetic trace generator.
//!
//! Implements §4 of the paper exactly:
//!
//! > "We wrote a trace generator to produce large traces with
//! > characteristics similar to real traces. The trace generator starts
//! > from a list of files and file sizes from the Impressions file system
//! > generator. It samples this file server model to produce working sets,
//! > then samples these to produce I/O requests. A portion of the I/O
//! > requests are sampled instead from the whole file server. The
//! > distribution of I/Os among hosts and threads is uniform; the
//! > distribution of I/Os among files (and selection of files for working
//! > sets) is weighted by popularity, where small integer popularities are
//! > generated from a Zipfian distribution. The distribution of I/O sizes
//! > (and selection of file subregions for working sets) is Poisson,
//! > modified by clamping to the filesize. The distribution of I/O
//! > starting points (and file subregion starting points) is uniform."
//!
//! Baseline parameters (also from §4): 4 KB blocks, 80 % of I/Os from the
//! working set, eight threads per host, total volume four times the
//! working-set size with the first half used as warmup, 30 % writes.

pub mod generator;
pub mod poisson;
pub mod working_set;

pub use generator::{generate, TraceGenConfig, TraceStream};
pub use poisson::poisson;
pub use working_set::{Extent, WorkingSet};
