//! Poisson sampling.
//!
//! The paper uses Poisson-distributed I/O sizes and working-set subregion
//! lengths (§4). `rand`'s distribution add-ons are unavailable offline, so
//! this is a self-contained sampler: Knuth's product method for small λ and
//! a normal approximation for large λ.

use rand::Rng;

/// Draws a Poisson deviate with mean `lambda`.
///
/// For `lambda < 30` uses Knuth's exact product method; above that, a
/// rounded normal approximation `N(λ, λ)` clamped at zero (error is
/// negligible at the λ values the generator uses).
///
/// # Panics
///
/// Panics if `lambda` is negative or non-finite.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(lambda.is_finite() && lambda >= 0.0, "invalid Poisson mean");
    if lambda == 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen_range(0.0f64..1.0);
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let z = fcache_fsmodel::dist::standard_normal(rng);
        let x = lambda + lambda.sqrt() * z;
        if x < 0.0 {
            0
        } else {
            x.round() as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sample_stats(lambda: f64, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let xs: Vec<f64> = (0..n).map(|_| poisson(&mut rng, lambda) as f64).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        (mean, var)
    }

    #[test]
    fn small_lambda_mean_and_variance() {
        let (mean, var) = sample_stats(4.0, 100_000, 1);
        assert!((mean - 4.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn large_lambda_mean_and_variance() {
        let (mean, var) = sample_stats(512.0, 50_000, 2);
        assert!((mean - 512.0).abs() < 1.0, "mean {mean}");
        assert!((var / 512.0 - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn zero_lambda_is_zero() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn boundary_lambda_regimes_agree() {
        // Means on both sides of the 30 cutover should be close to λ.
        let (m_lo, _) = sample_stats(29.5, 50_000, 4);
        let (m_hi, _) = sample_stats(30.5, 50_000, 5);
        assert!((m_lo - 29.5).abs() < 0.3);
        assert!((m_hi - 30.5).abs() < 0.3);
    }

    #[test]
    #[should_panic(expected = "invalid Poisson mean")]
    fn negative_lambda_panics() {
        let mut rng = SmallRng::seed_from_u64(6);
        let _ = poisson(&mut rng, -1.0);
    }
}
