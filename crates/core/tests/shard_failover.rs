//! Sharded remote tier end to end: the single-shard/replication-1 config
//! must be bit-identical to the plain filer engine (invariant 11); a
//! single-shard outage at replication >= 2 must lose zero acknowledged
//! writes and re-replicate the under-replicated blocks once the shard
//! returns; hedged reads must engage (and stay deterministic) when a
//! hedge delay is configured.

use fcache::{run_trace, DegradedPolicy, SimConfig, Workbench, WorkloadSpec};
use fcache_des::SimTime;
use fcache_types::{FaultPlan, Trace};

const SCALE: u64 = 4096;

fn workbench_trace() -> Trace {
    Workbench::new(SCALE, 42).make_trace(&WorkloadSpec::baseline_60g())
}

/// Baseline config with a shard topology, at test scale.
fn sharded(shards: u16, replicas: u16) -> SimConfig {
    SimConfig {
        shards,
        replicas,
        ..SimConfig::baseline()
    }
    .scaled_down(SCALE)
}

#[test]
fn single_shard_replication_one_is_the_filer_engine() {
    // Invariant 11: shards=1 x replicas=1 with no shard fault clauses does
    // not engage the remote tier at all — the run is the pre-remote filer
    // path, bit for bit, including the DES event count.
    let trace = workbench_trace();
    let plain = run_trace(&SimConfig::baseline().scaled_down(SCALE), &trace).expect("plain");
    let single = run_trace(&sharded(1, 1), &trace).expect("single-shard");
    assert!(
        !single.shard.engaged(),
        "1x1 must not engage the remote tier"
    );
    assert_eq!(plain.events, single.events, "event counts must match");
    assert_eq!(format!("{plain:?}"), format!("{single:?}"));
}

#[test]
fn sharded_runs_are_deterministic_and_report_topology() {
    let trace = workbench_trace();
    let cfg = sharded(4, 2);
    let r = run_trace(&cfg, &trace).expect("sharded run");
    assert!(r.shard.engaged());
    assert_eq!(r.shard.shards, 4);
    assert_eq!(r.shard.replicas, 2);
    assert_eq!(r.shard.per_shard.len(), 4);
    let served: u64 = r
        .shard
        .per_shard
        .iter()
        .map(|s| s.fast_reads + s.slow_reads + s.writes)
        .sum();
    assert!(served > 0, "shards must serve traffic");
    // Fault-free: no failovers, no under-replication, no hedging (no delay).
    assert_eq!(r.shard.remote.failovers, 0);
    assert_eq!(r.shard.remote.under_intervals, 0);
    assert_eq!(r.shard.remote.hedges_launched, 0);

    let again = run_trace(&cfg, &trace).expect("repeat sharded run");
    assert_eq!(format!("{again:?}"), format!("{r:?}"));
}

#[test]
fn shard_outage_at_replication_two_loses_no_acknowledged_write() {
    // The headline acceptance test: 4 shards, replication 2, one shard dies
    // mid-run. Reads fail over to the surviving replica; writes to the dead
    // shard are acknowledged by the live replica and marked
    // under-replicated; the recovery pass re-replicates them when the shard
    // returns. Nothing fails, nothing is lost.
    let trace = workbench_trace();
    let clean = run_trace(&sharded(4, 2), &trace).expect("clean sharded");
    let mut cfg = sharded(4, 2);
    cfg.fault_plan = FaultPlan::parse("shard1:outage@40s-60s").expect("valid spec");
    let r = run_trace(&cfg, &trace).expect("faulted sharded run");

    assert_eq!(r.robustness.failed_ops, 0, "no op may fail at R=2");
    assert!(
        r.shard.remote.failovers > 0,
        "reads with a dead primary must fail over"
    );
    assert!(
        r.shard.remote.under_peak > 0,
        "writes during the outage must go under-replicated"
    );
    assert!(
        r.shard.remote.re_replicated_blocks > 0,
        "recovery must re-replicate once the shard returns"
    );
    assert_eq!(
        r.shard.remote.under_now, 0,
        "every under-replicated block must be healed by run end"
    );
    assert!(r.shard.per_shard[1].outage_ns > 0, "outage is attributed");

    // The shard outage is one availability window, and replication keeps
    // availability at 100%: every remote fetch first attempted inside the
    // window ultimately succeeded via the surviving replica.
    assert_eq!(r.robustness.windows.len(), 1, "one distinct shard window");
    let w = &r.robustness.windows[0];
    assert!(w.ops > 0, "remote fetches landed inside the outage window");
    assert_eq!(w.ok, w.ops, "failover keeps in-window availability at 1.0");

    // Zero rows lost: the op/block tallies are decided by the trace alone.
    assert_eq!(r.metrics.read_ops, clean.metrics.read_ops);
    assert_eq!(r.metrics.write_ops, clean.metrics.write_ops);
    assert_eq!(r.metrics.read_blocks, clean.metrics.read_blocks);
    assert_eq!(r.metrics.write_blocks, clean.metrics.write_blocks);

    // Deterministic, fault handling included.
    let again = run_trace(&cfg, &trace).expect("repeat faulted run");
    assert_eq!(format!("{again:?}"), format!("{r:?}"));
}

#[test]
fn replication_one_fails_where_replication_two_survives() {
    // Same outage, fail-fast policy: with no replica to fall back on,
    // reads whose primary is down must fail; with replication 2 they must
    // not.
    let trace = workbench_trace();
    let outage = |replicas: u16| {
        let mut cfg = sharded(4, replicas);
        cfg.fault_plan = FaultPlan::parse("shard1:outage@40s-60s").unwrap();
        cfg.robustness.degraded = DegradedPolicy::FailFast;
        run_trace(&cfg, &trace).expect("run")
    };
    let r1 = outage(1);
    let r2 = outage(2);
    assert!(
        r1.robustness.failed_ops > 0,
        "R=1 has nowhere to fail over to"
    );
    assert_eq!(r2.robustness.failed_ops, 0, "R=2 survives the same outage");
}

#[test]
fn strict_policy_names_the_offending_shard_clause() {
    let trace = workbench_trace();
    let mut cfg = sharded(2, 1);
    cfg.fault_plan = FaultPlan::parse("shard*:outage@40s-60s").unwrap();
    cfg.robustness.degraded = DegradedPolicy::Strict;
    let err = run_trace(&cfg, &trace).expect_err("strict run must fail");
    assert!(
        err.to_string().contains("shard"),
        "error names the shard clause: {err}"
    );
}

#[test]
fn hedged_reads_engage_and_stay_deterministic() {
    // A hedge delay well below the shard service time forces hedges on
    // most remote reads; the counters must balance and repeat runs must be
    // bit-identical (the race is resolved inside the deterministic DES).
    let trace = workbench_trace();
    let mut cfg = sharded(4, 2);
    cfg.hedge = Some(SimTime::from_micros(50));
    let r = run_trace(&cfg, &trace).expect("hedged run");
    let rem = &r.shard.remote;
    assert!(rem.hedges_launched > 0, "hedges must launch");
    assert!(
        rem.hedges_won + rem.hedges_cancelled <= rem.hedges_launched,
        "hedge outcomes cannot exceed launches"
    );
    assert!(r.shard.hedge_ns > 0, "report records the hedge delay");

    let again = run_trace(&cfg, &trace).expect("repeat hedged run");
    assert_eq!(format!("{again:?}"), format!("{r:?}"));

    // Hedging alone never changes what is read or written.
    let unhedged = run_trace(&sharded(4, 2), &trace).expect("unhedged");
    assert_eq!(r.metrics.read_ops, unhedged.metrics.read_ops);
    assert_eq!(r.metrics.write_ops, unhedged.metrics.write_ops);
}

#[test]
fn retry_jitter_is_bit_identical_across_repeated_runs() {
    // Satellite: the retry/backoff jitter draws come from the seeded fault
    // RNG, so two identical flaky-net runs must agree on every retry and
    // every latency, bit for bit — sharded or not.
    let trace = workbench_trace();
    let mut cfg = sharded(2, 2);
    cfg.fault_plan = FaultPlan::parse("net:err0.5@20s-80s").unwrap();
    let a = run_trace(&cfg, &trace).expect("first flaky run");
    let b = run_trace(&cfg, &trace).expect("second flaky run");
    assert!(a.robustness.retries > 0, "flaky net must force retries");
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}
