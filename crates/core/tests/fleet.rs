//! Fleet-cell engine invariants (PERF.md invariant 13) and the
//! thousand-host acceptance run.
//!
//! Pinned here:
//!
//! 1. **Engaging the fleet changes nothing but the fleet section.** A
//!    `hosts_per_segment: 1` fleet cell runs the literal pre-fleet
//!    engine: every report field — metrics (per-host sinks folded back),
//!    caches, filer, net, device, `end_time`, and the **event count** —
//!    is bit-identical to the same config without `fleet`; only
//!    `report.fleet` differs.
//! 2. **A ≥1000-host cell on a shared backend completes
//!    deterministically**, with one load row per host and global host
//!    ids, and repeated runs serialize to identical bytes.
//! 3. **Shared wires queue harder.** The same cell at fan-in 8 records
//!    strictly more wire queueing than at fan-in 1 (where only a host's
//!    own concurrent ops can ever contend), at the same traffic volume.
//!
//! Cross-process identity (1 proc vs P procs merged) is pinned by the
//! `fcache_fleet` crate tests and the CI fleet smoke; this file covers
//! the engine-level half without a dependency cycle.

use fcache::{FleetPlan, FleetTopology, SimConfig, SimReport, Workbench, WorkloadSpec};
use fcache_types::ByteSize;

fn base_cfg() -> SimConfig {
    SimConfig {
        ram_size: ByteSize::gib(8),
        flash_size: ByteSize::gib(32),
        ..SimConfig::baseline()
    }
}

/// A single-cell topology over `hosts` hosts at the given fan-in.
fn one_cell(hosts: u32, fanin: u16) -> FleetTopology {
    FleetTopology {
        cell: 0,
        cells: 1,
        host_base: 0,
        fleet_hosts: hosts,
        hosts_per_segment: fanin,
    }
}

#[test]
fn fanin_one_fleet_is_the_pre_fleet_engine() {
    let wb = Workbench::new(16384, 5);
    let spec = WorkloadSpec {
        working_set: ByteSize::gib(16),
        hosts: 4,
        seed: 21,
        ..WorkloadSpec::default()
    };
    let plain = base_cfg();
    let fleet = SimConfig {
        fleet: Some(one_cell(4, 1)),
        ..plain.clone()
    };
    let want = wb.scenario(&plain, &spec).run().expect("plain run");
    let got = wb.scenario(&fleet, &spec).run().expect("fleet run");

    // The fleet section is the one permitted difference.
    assert_eq!(got.fleet.topology, Some(one_cell(4, 1)));
    assert_eq!(got.fleet.per_host.len(), 4);
    let mut stripped = got.clone();
    stripped.fleet = Default::default();
    assert_eq!(
        stripped, want,
        "fan-in 1 fleet diverged from the pre-fleet engine"
    );
    // Belt and braces on the strongest claim: identical event schedules.
    assert_eq!(got.events, want.events);
    assert_eq!(got.end_time, want.end_time);
    // The per-host fold is exact: it already equals the shared-sink
    // metrics via the stripped comparison; spot-check the host rows sum.
    let folded_reads: u64 = got.fleet.per_host.iter().map(|h| h.read_ops).sum();
    assert_eq!(folded_reads, want.metrics.read_ops);
}

#[test]
fn thousand_host_cell_is_deterministic_with_global_host_ids() {
    let plan = FleetPlan::new(1000, 1000, 8);
    let wb = Workbench::new(16384, 5);
    let base = base_cfg();
    let spec_template = WorkloadSpec {
        working_set: ByteSize::gib(64),
        seed: 33,
        ..WorkloadSpec::default()
    };
    let cfg = plan.cell_config(&base, 0);
    let spec = plan.cell_spec(&spec_template, 0);
    assert_eq!(spec.hosts, 1000);

    let run = |_: u32| -> SimReport {
        wb.scenario(&cfg, &spec)
            .run()
            .expect("thousand-host cell completes")
    };
    let a = run(0);
    assert_eq!(a.fleet.per_host.len(), 1000);
    assert_eq!(a.fleet.per_host[0].host, 0);
    assert_eq!(a.fleet.per_host[999].host, 999);
    assert!(a.metrics.read_ops > 0);
    // 8 hosts share each wire: the shared backend is contended.
    assert!(a.net.queue_waits > 0, "expected wire queueing at fan-in 8");

    let b = run(1);
    let encode = |r: &SimReport| fcache::report_to_json(r).to_string();
    assert_eq!(encode(&a), encode(&b), "fleet cell must be deterministic");
}

#[test]
fn shared_wires_queue_harder_than_private_wires() {
    let wb = Workbench::new(16384, 5);
    let spec = WorkloadSpec {
        working_set: ByteSize::gib(16),
        hosts: 16,
        seed: 9,
        ..WorkloadSpec::default()
    };
    let at_fanin = |fanin: u16| {
        let cfg = SimConfig {
            fleet: Some(one_cell(16, fanin)),
            ..base_cfg()
        };
        wb.scenario(&cfg, &spec).run().expect("cell run")
    };
    let private = at_fanin(1);
    let shared = at_fanin(8);
    // A fan-in 1 wire only ever queues a host behind itself; sharing it
    // eight ways must make both the wait count and the waited time grow.
    assert!(shared.net.queue_waits > private.net.queue_waits);
    assert!(shared.net.queue_wait > private.net.queue_wait);
    // Same ops either way; only the waiting differs.
    assert_eq!(shared.metrics.read_ops, private.metrics.read_ops);
    assert_eq!(shared.metrics.write_ops, private.metrics.write_ops);
    assert_eq!(shared.net.packets, private.net.packets);
    // Queued packets can only slow operations down.
    assert!(shared.metrics.read_latency >= private.metrics.read_latency);
}
