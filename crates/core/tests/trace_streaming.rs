//! The zero-copy trace pipeline must be *observationally invisible*: the
//! cursor-fed materialized path, the streamed generation path, and the
//! chunked file-replay path all feed the engine the same per-thread op
//! sequences, so their [`fcache::SimReport`]s must be bit-identical (the
//! whole report, compared through `Debug`, including event counts).

use fcache::{
    run_source, run_trace, Architecture, Scenario, SimConfig, SimError, Workbench, Workload,
    WorkloadSpec,
};
use fcache_types::{
    ByteReader, ByteSize, SliceSource, TraceMeta, TraceOp, TraceReader, TraceSource,
};

fn configs() -> Vec<SimConfig> {
    vec![
        SimConfig::baseline(),
        SimConfig {
            arch: Architecture::Lookaside,
            ..SimConfig::baseline()
        },
        SimConfig {
            arch: Architecture::Unified,
            ..SimConfig::baseline()
        },
        SimConfig {
            flash_size: ByteSize::ZERO,
            ..SimConfig::baseline()
        },
    ]
}

#[test]
fn slice_source_reports_are_bit_identical_to_cursor_replay() {
    let wb = Workbench::new(4096, 42);
    let trace = wb.make_trace(&WorkloadSpec::baseline_60g());
    for cfg in configs() {
        let cfg = cfg.scaled_down(4096);
        let want = format!("{:?}", run_trace(&cfg, &trace).expect("cursor replay"));
        let mut src = SliceSource::new(&trace);
        let got = format!("{:?}", run_source(&cfg, &mut src).expect("streamed replay"));
        assert_eq!(got, want, "streamed diverged for {:?}", cfg.arch);
    }
}

#[test]
fn streamed_generation_matches_materialized_generation() {
    let wb = Workbench::new(4096, 7);
    let spec = WorkloadSpec {
        working_set: ByteSize::gib(40),
        seed: 19,
        ..WorkloadSpec::default()
    };
    for cfg in configs() {
        let want = format!("{:?}", wb.run(&cfg, &spec).expect("materialized"));
        let got = format!("{:?}", wb.run_streamed(&cfg, &spec).expect("streamed"));
        assert_eq!(got, want, "generation stream diverged for {:?}", cfg.arch);
    }
}

#[test]
fn streamed_generation_matches_with_skipped_warmup() {
    let wb = Workbench::new(4096, 7);
    let spec = WorkloadSpec {
        working_set: ByteSize::gib(40),
        skip_warmup: true,
        seed: 23,
        ..WorkloadSpec::default()
    };
    let cfg = SimConfig::baseline();
    let want = format!("{:?}", wb.run(&cfg, &spec).expect("materialized"));
    let got = format!("{:?}", wb.run_streamed(&cfg, &spec).expect("streamed"));
    assert_eq!(got, want);
}

#[test]
fn chunked_file_replay_matches_cursor_replay() {
    let wb = Workbench::new(4096, 11);
    let trace = wb.make_trace(&WorkloadSpec {
        working_set: ByteSize::gib(20),
        seed: 20,
        ..WorkloadSpec::default()
    });
    let mut archive = Vec::new();
    trace.encode(&mut archive).expect("encode");

    for cfg in configs() {
        let cfg = cfg.scaled_down(4096);
        let want = format!("{:?}", run_trace(&cfg, &trace).expect("cursor replay"));
        let mut reader = TraceReader::new(archive.as_slice()).expect("header");
        let got = format!("{:?}", run_source(&cfg, &mut reader).expect("file replay"));
        assert_eq!(got, want, "file replay diverged for {:?}", cfg.arch);
    }
}

#[test]
fn mapped_byte_replay_matches_cursor_replay() {
    // The zero-copy fast path: a `ByteReader` over the raw archive image
    // (what `Workload::file` builds over an `Mmap`) forks per-slot
    // cursors instead of feeding chunk queues. Same report, bit for bit.
    let wb = Workbench::new(4096, 17);
    let trace = wb.make_trace(&WorkloadSpec {
        working_set: ByteSize::gib(20),
        seed: 41,
        ..WorkloadSpec::default()
    });
    let mut archive = Vec::new();
    trace.encode(&mut archive).expect("encode");

    for cfg in configs() {
        let cfg = cfg.scaled_down(4096);
        let want = format!("{:?}", run_trace(&cfg, &trace).expect("cursor replay"));
        let mut reader = ByteReader::new(&archive).expect("header");
        let got = format!(
            "{:?}",
            run_source(&cfg, &mut reader).expect("mapped replay")
        );
        assert_eq!(got, want, "byte replay diverged for {:?}", cfg.arch);
    }
}

#[test]
fn slot_skewed_archive_replays_identically_through_the_spill() {
    // A pathologically skewed layout: every one of host 0's ops precedes
    // every one of host 1's. The chunk-fed path must buffer host 0's whole
    // backlog while host 1's early pulls drive refills — far past the
    // resident cap, so the disk spill engages. The report must still be
    // bit-identical to cursor replay (and to the forked byte replay).
    let mut trace = fcache_types::Trace::new(TraceMeta {
        hosts: 2,
        threads_per_host: 1,
        ..TraceMeta::default()
    });
    let mk = |host: u16, i: u32| {
        TraceOp::new(
            fcache_types::HostId(host),
            fcache_types::ThreadId(0),
            if i.is_multiple_of(4) {
                fcache_types::OpKind::Write
            } else {
                fcache_types::OpKind::Read
            },
            fcache_types::FileId(i % 16),
            i.wrapping_mul(31) % 5000,
            1 + i % 3,
            false,
        )
    };
    for i in 0..20_000 {
        trace.ops.push(mk(0, i));
    }
    for i in 0..400 {
        trace.ops.push(mk(1, i));
    }
    let mut archive = Vec::new();
    trace.encode(&mut archive).expect("encode");

    let cfg = SimConfig {
        ram_size: ByteSize::kib(256),
        flash_size: ByteSize::mib(1),
        ..SimConfig::baseline()
    };
    let want = format!("{:?}", run_trace(&cfg, &trace).expect("cursor replay"));
    let mut reader = TraceReader::new(archive.as_slice()).expect("header");
    let got = format!(
        "{:?}",
        run_source(&cfg, &mut reader).expect("chunk-fed replay")
    );
    assert_eq!(got, want, "spill-backed chunk replay diverged");
    let mut bytes = ByteReader::new(&archive).expect("header");
    let forked = format!("{:?}", run_source(&cfg, &mut bytes).expect("forked replay"));
    assert_eq!(forked, want, "forked byte replay diverged");
}

#[test]
fn multi_host_streams_stay_identical() {
    // Two hosts sharing a working set: peer invalidations make replay
    // order across hosts observable, so any feed-order slip would show.
    let wb = Workbench::new(4096, 13);
    let spec = WorkloadSpec {
        working_set: ByteSize::gib(20),
        hosts: 2,
        ws_count: 1,
        seed: 31,
        ..WorkloadSpec::default()
    };
    let trace = wb.make_trace(&spec);
    let scaled = SimConfig::baseline().scaled_down(4096);
    let want = format!("{:?}", run_trace(&scaled, &trace).expect("cursor"));
    let mut src = SliceSource::new(&trace);
    let got = format!("{:?}", run_source(&scaled, &mut src).expect("stream"));
    assert_eq!(got, want);
    // And the generated stream (paper-scale entry point) agrees too.
    let cfg = SimConfig::baseline();
    let materialized = format!("{:?}", wb.run(&cfg, &spec).expect("materialized"));
    let streamed = format!("{:?}", wb.run_streamed(&cfg, &spec).expect("generated"));
    assert_eq!(streamed, materialized);
}

#[test]
fn scenario_workload_kinds_are_bit_identical() {
    // The three `Workload` constructors are one surface over the three
    // replay paths this suite pins pairwise; a `Scenario` must be
    // indifferent to which one it is handed.
    let wb = Workbench::new(4096, 29);
    let spec = WorkloadSpec {
        working_set: ByteSize::gib(20),
        seed: 37,
        ..WorkloadSpec::default()
    };
    let trace = wb.make_trace(&spec);
    let path = std::env::temp_dir().join("fcache_scenario_workloads.bin");
    let mut buf = Vec::new();
    trace.encode(&mut buf).expect("encode");
    std::fs::write(&path, &buf).expect("write archive");

    for cfg in configs() {
        let cfg = cfg.scaled_down(4096);
        let want = format!(
            "{:?}",
            Scenario::new(cfg.clone(), Workload::trace(&trace))
                .run()
                .expect("trace workload")
        );
        let streamed = Scenario::new(cfg.clone(), wb.workload(&spec))
            .run()
            .expect("streamed workload");
        assert_eq!(
            format!("{streamed:?}"),
            want,
            "streamed workload diverged for {:?}",
            cfg.arch
        );
        let filed = Scenario::new(cfg.clone(), Workload::file(&path))
            .run()
            .expect("file workload");
        assert_eq!(
            format!("{filed:?}"),
            want,
            "file workload diverged for {:?}",
            cfg.arch
        );
    }
    let _ = std::fs::remove_file(&path);
}

/// A source whose ops exceed the host grid its metadata promises.
struct LyingSource {
    meta: TraceMeta,
    sent: bool,
}

impl TraceSource for LyingSource {
    fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    fn next_chunk(&mut self, out: &mut Vec<TraceOp>, _max: usize) -> std::io::Result<usize> {
        if self.sent {
            return Ok(0);
        }
        self.sent = true;
        out.push(TraceOp::new(
            fcache_types::HostId(5), // outside the 1-host grid
            fcache_types::ThreadId(0),
            fcache_types::OpKind::Read,
            fcache_types::FileId(0),
            0,
            1,
            false,
        ));
        Ok(1)
    }
}

#[test]
fn op_outside_meta_grid_is_a_source_error() {
    let mut src = LyingSource {
        meta: TraceMeta {
            hosts: 1,
            threads_per_host: 1,
            ..TraceMeta::default()
        },
        sent: false,
    };
    let err = run_source(&SimConfig::baseline(), &mut src).unwrap_err();
    assert!(matches!(err, SimError::Source(_)), "got {err:?}");
}
