//! Analytic path tests: tiny hand-built traces whose latencies can be
//! computed exactly from the Table 1 timing model, verifying every cache
//! path charges precisely the right time.
//!
//! Key Table 1 numbers used below (all per 4 KB block):
//! RAM 0.4 µs, flash read 88 µs, flash write 21 µs, net base 8.2 µs,
//! net payload 4096 B = 32.768 µs, filer fast read/write 92 µs.

use fcache::{run_trace, Architecture, SimConfig, WritebackPolicy};
use fcache_device::FlashModel;
use fcache_filer::FilerConfig;
use fcache_types::{ByteSize, FileId, HostId, OpKind, ThreadId, Trace, TraceMeta, TraceOp};

fn op(host: u16, thread: u16, kind: OpKind, file: u32, start: u32, n: u32) -> TraceOp {
    TraceOp::new(
        HostId(host),
        ThreadId(thread),
        kind,
        FileId(file),
        start,
        n,
        false,
    )
}

fn trace_of(ops: Vec<TraceOp>) -> Trace {
    let hosts = ops.iter().map(|o| o.host().0).max().unwrap_or(0) + 1;
    let threads = ops.iter().map(|o| o.thread().0).max().unwrap_or(0) + 1;
    Trace {
        meta: TraceMeta {
            hosts,
            threads_per_host: threads,
            ..TraceMeta::default()
        },
        ops,
    }
}

/// Baseline test configuration: deterministic filer (always fast), naive
/// architecture, small caches, periodic policies that never fire within
/// the test window.
fn cfg() -> SimConfig {
    SimConfig {
        ram_size: ByteSize::bytes_exact(16 * 4096),
        flash_size: ByteSize::bytes_exact(64 * 4096),
        ram_policy: WritebackPolicy::Periodic(3600),
        flash_policy: WritebackPolicy::Periodic(3600),
        filer: FilerConfig {
            fast_read_rate: 1.0,
            ..FilerConfig::default()
        },
        ..SimConfig::default()
    }
}

const US: f64 = 1.0;

fn close(got: f64, want: f64, tol: f64, what: &str) {
    assert!(
        (got - want).abs() <= tol,
        "{what}: got {got} µs, want {want} µs"
    );
}

#[test]
fn cold_read_pays_net_filer_net_flash_ram() {
    // 8.2 (cmd) + 92 (filer fast) + 40.968 (data) + 21 (flash populate)
    // + 0.4 (ram fill) = 162.568 µs.
    let r = run_trace(&cfg(), &trace_of(vec![op(0, 0, OpKind::Read, 1, 0, 1)])).unwrap();
    close(r.read_latency_us(), 162.568, 0.01 * US, "cold read");
    assert_eq!(r.filer.fast_reads, 1);
    assert_eq!(r.net.packets, 2);
}

#[test]
fn warm_read_is_ram_speed() {
    let r = run_trace(
        &cfg(),
        &trace_of(vec![
            op(0, 0, OpKind::Read, 1, 0, 1),
            op(0, 0, OpKind::Read, 1, 0, 1),
        ]),
    )
    .unwrap();
    // Two reads: 162.568 + 0.4; per-block mean = 81.484.
    close(
        r.read_latency_us(),
        (162.568 + 0.4) / 2.0,
        0.01,
        "cold+warm mean",
    );
    assert_eq!(r.ram.hits, 1);
}

#[test]
fn flash_hit_read_pays_flash_read_plus_ram_fill() {
    // Fill RAM with 16 other blocks to evict block (1,0) from RAM while it
    // stays in the 64-block flash; then re-read it.
    let mut ops = vec![op(0, 0, OpKind::Read, 1, 0, 1)];
    ops.push(op(0, 0, OpKind::Read, 2, 0, 16)); // evicts f1+0 from RAM
    ops.push(op(0, 0, OpKind::Read, 1, 0, 1)); // flash hit
    let r = run_trace(&cfg(), &trace_of(ops)).unwrap();
    assert_eq!(r.flash.hits, 1, "third read must hit flash");
    // Last op alone: 88 (flash read) + 0.4 (ram fill) = 88.4. Check the
    // aggregate: total = 162.568 + (8.2 + 16*92 + 8.2 + 16*32.768*1e-3... )
    // — instead verify per-op accounting via the flash-hit count and that
    // mean read latency sits between the flash and filer costs.
    assert!(r.read_latency_us() > 80.0 && r.read_latency_us() < 170.0);
}

#[test]
fn multi_block_read_uses_one_round_trip() {
    // An 8-block cold read: 8.2 + 8×92 + (8.2 + 8×32.768) + 8×21 + 8×0.4.
    let r = run_trace(&cfg(), &trace_of(vec![op(0, 0, OpKind::Read, 1, 0, 8)])).unwrap();
    let want_total = 8.2 + 8.0 * 92.0 + 8.2 + 8.0 * 32.768 + 8.0 * 21.0 + 8.0 * 0.4;
    close(
        r.metrics.read_latency.as_micros_f64(),
        want_total,
        0.01,
        "8-block cold read",
    );
    assert_eq!(
        r.net.packets, 2,
        "one packet each direction per I/O request"
    );
}

#[test]
fn write_with_periodic_policy_is_ram_speed() {
    let r = run_trace(&cfg(), &trace_of(vec![op(0, 0, OpKind::Write, 1, 0, 1)])).unwrap();
    close(r.write_latency_us(), 0.4, 0.001, "buffered write");
    assert_eq!(r.filer.writes, 0, "no writeback before the syncer fires");
}

#[test]
fn write_through_both_tiers_blocks_to_filer() {
    // s/s: 0.4 + 21 + 40.968 + 92 + 8.2 = 162.568 µs.
    let c = SimConfig {
        ram_policy: WritebackPolicy::WriteThrough,
        flash_policy: WritebackPolicy::WriteThrough,
        ..cfg()
    };
    let r = run_trace(&c, &trace_of(vec![op(0, 0, OpKind::Write, 1, 0, 1)])).unwrap();
    close(r.write_latency_us(), 162.568, 0.01, "s/s write");
    assert_eq!(r.filer.writes, 1);
}

#[test]
fn write_through_ram_only_blocks_to_flash() {
    // s/p: 0.4 + 21 = 21.4 µs; flash holds the dirty block.
    let c = SimConfig {
        ram_policy: WritebackPolicy::WriteThrough,
        ..cfg()
    };
    let r = run_trace(&c, &trace_of(vec![op(0, 0, OpKind::Write, 1, 0, 1)])).unwrap();
    close(r.write_latency_us(), 21.4, 0.01, "s/periodic write");
    assert_eq!(r.filer.writes, 0);
}

#[test]
fn async_write_through_does_not_block_app() {
    // a/a: app sees 0.4 µs; the flush happens in the background.
    let c = SimConfig {
        ram_policy: WritebackPolicy::AsyncWriteThrough,
        flash_policy: WritebackPolicy::AsyncWriteThrough,
        ..cfg()
    };
    let r = run_trace(&c, &trace_of(vec![op(0, 0, OpKind::Write, 1, 0, 1)])).unwrap();
    close(r.write_latency_us(), 0.4, 0.001, "async write");
    assert_eq!(r.filer.writes, 1, "background flush must reach the filer");
}

#[test]
fn lookaside_write_through_goes_straight_to_filer() {
    // Lookaside s: 0.4 + 40.968 + 92 + 8.2 (filer leg) + 21 (flash update)
    // = 162.568 µs; flash never dirty.
    let c = SimConfig {
        arch: Architecture::Lookaside,
        ram_policy: WritebackPolicy::WriteThrough,
        ..cfg()
    };
    let r = run_trace(&c, &trace_of(vec![op(0, 0, OpKind::Write, 1, 0, 1)])).unwrap();
    close(r.write_latency_us(), 162.568, 0.01, "lookaside s write");
    assert_eq!(r.filer.writes, 1);
    assert_eq!(r.flash.dirty_evictions, 0);
}

#[test]
fn periodic_syncer_flushes_after_period() {
    // p1 RAM / p1 flash: write at t≈0; the RAM syncer fires at t=1 s moving
    // the block to flash; the flash syncer's t=2 s tick moves it to the
    // filer. `min_runtime` keeps the clock alive past the last app op.
    let c = SimConfig {
        ram_policy: WritebackPolicy::Periodic(1),
        flash_policy: WritebackPolicy::Periodic(1),
        min_runtime: Some(fcache_des::SimTime::from_millis(2500)),
        ..cfg()
    };
    let r = run_trace(&c, &trace_of(vec![op(0, 0, OpKind::Write, 1, 0, 1)])).unwrap();
    assert_eq!(r.filer.writes, 1, "syncer chain must reach the filer");
    assert!(r.end_time.as_secs_f64() >= 2.5, "min_runtime honored");
    close(r.write_latency_us(), 0.4, 0.001, "app never blocked");
}

#[test]
fn syncer_does_not_flush_before_its_period() {
    let c = SimConfig {
        ram_policy: WritebackPolicy::Periodic(5),
        flash_policy: WritebackPolicy::Periodic(5),
        min_runtime: Some(fcache_des::SimTime::from_millis(4500)),
        ..cfg()
    };
    let r = run_trace(&c, &trace_of(vec![op(0, 0, OpKind::Write, 1, 0, 1)])).unwrap();
    // At t=4.5 s the p5 RAM syncer has not fired yet.
    assert_eq!(r.filer.writes, 0);
}

#[test]
fn none_policy_evicts_synchronously() {
    // Flash of 4 blocks, RAM of 1 block, both policy none. Writing 5
    // distinct blocks forces dirty evictions all the way to the filer.
    let c = SimConfig {
        ram_size: ByteSize::bytes_exact(4096),
        flash_size: ByteSize::bytes_exact(4 * 4096),
        ram_policy: WritebackPolicy::None,
        flash_policy: WritebackPolicy::None,
        ..cfg()
    };
    let ops = (0..6).map(|i| op(0, 0, OpKind::Write, 1, i, 1)).collect();
    let r = run_trace(&c, &trace_of(ops)).unwrap();
    assert!(
        r.flash.dirty_evictions >= 1,
        "flash must evict dirty blocks"
    );
    assert!(r.filer.writes >= 1, "dirty evictions must reach the filer");
    // Later writes are far slower than RAM speed because of the eviction
    // writeback convoy.
    assert!(r.write_latency_us() > 20.0, "got {}", r.write_latency_us());
}

#[test]
fn no_flash_configuration_reads_from_filer() {
    let c = SimConfig {
        flash_size: ByteSize::ZERO,
        ..cfg()
    };
    let r = run_trace(&c, &trace_of(vec![op(0, 0, OpKind::Read, 1, 0, 1)])).unwrap();
    // 8.2 + 92 + 40.968 + 0.4 = 141.568 µs (no flash populate).
    close(r.read_latency_us(), 141.568, 0.01, "no-flash cold read");
    assert_eq!(r.flash.lookups(), 0);
}

#[test]
fn no_ram_configuration_uses_flash_directly() {
    let c = SimConfig {
        ram_size: ByteSize::ZERO,
        ..cfg()
    };
    let t = trace_of(vec![
        op(0, 0, OpKind::Read, 1, 0, 1),
        op(0, 0, OpKind::Read, 1, 0, 1),
        op(0, 0, OpKind::Write, 1, 0, 1),
    ]);
    let r = run_trace(&c, &t).unwrap();
    assert_eq!(r.ram.lookups(), 0);
    assert_eq!(r.flash.hits, 1, "second read hits flash");
    // Write pays the flash write latency (21 µs).
    close(r.write_latency_us(), 21.0, 0.01, "no-RAM write");
}

#[test]
fn unified_read_hits_pay_frame_medium_latency() {
    // Unified with 0 RAM frames and 8 flash frames: every hit is a flash
    // hit at 88 µs + nothing else.
    let c = SimConfig {
        arch: Architecture::Unified,
        ram_size: ByteSize::ZERO,
        flash_size: ByteSize::bytes_exact(8 * 4096),
        ..cfg()
    };
    let t = trace_of(vec![
        op(0, 0, OpKind::Read, 1, 0, 1),
        op(0, 0, OpKind::Read, 1, 0, 1),
    ]);
    let r = run_trace(&c, &t).unwrap();
    assert_eq!(r.unified.hits, 1);
    // Cold: 8.2 + 92 + 40.968 + 21 (flash frame fill) = 162.168;
    // warm: 88. Mean = 125.084.
    close(
        r.read_latency_us(),
        (162.168 + 88.0) / 2.0,
        0.01,
        "unified reads",
    );
}

#[test]
fn unified_write_cost_tracks_frame_ratio() {
    // 100 RAM frames : 800 flash frames; 900 distinct block writes exactly
    // fill the cache with no evictions. 1/9 of placements land in RAM →
    // mean write cost = (100×0.4 + 800×21)/900 ≈ 18.7 µs (the §7.1 "8/9 of
    // the 21 µs flash latency" effect).
    let c = SimConfig {
        arch: Architecture::Unified,
        ram_size: ByteSize::bytes_exact(100 * 4096),
        flash_size: ByteSize::bytes_exact(800 * 4096),
        ..cfg()
    };
    let n = 900u32;
    let ops = (0..n)
        .map(|i| op(0, 0, OpKind::Write, 1 + (i % 64), i / 64, 1))
        .collect();
    let r = run_trace(&c, &trace_of(ops)).unwrap();
    assert_eq!(r.unified.insertions, 900);
    assert_eq!(r.unified.evictions(), 0, "no evictions when the cache fits");
    let expect = (100.0 * 0.4 + 800.0 * 21.0) / 900.0;
    close(r.write_latency_us(), expect, 0.1, "unified write mean");
}

#[test]
fn two_hosts_invalidate_each_other() {
    // Per-thread op lists run concurrently, so ordering across hosts is
    // established with delay ops (cold reads of unrelated files, ≈162 µs
    // each). Host 0 caches f1+0 at ≈162 µs; host 1 writes it at ≈488 µs
    // (after three delay reads); host 0 re-reads it at ≈975 µs.
    let c = cfg();
    let mut ops = vec![op(0, 0, OpKind::Read, 1, 0, 1)];
    for i in 0..5 {
        ops.push(op(0, 0, OpKind::Read, 8, i * 2, 1)); // host 0 delay
    }
    ops.push(op(0, 0, OpKind::Read, 1, 0, 1)); // host 0 re-read
    for i in 0..3 {
        ops.push(op(1, 0, OpKind::Read, 9, i * 2, 1)); // host 1 delay
    }
    ops.push(op(1, 0, OpKind::Write, 1, 0, 1)); // host 1 conflicting write
    let r = run_trace(&c, &trace_of(ops)).unwrap();
    assert_eq!(r.metrics.tracked_writes, 1);
    assert_eq!(r.metrics.writes_invalidating, 1);
    assert_eq!(r.invalidation_pct(), 100.0);
    // Host 0's re-read of f1+0 missed (copy invalidated): filer served
    // 1 + 5 (host 0) + 3 (host 1) + 1 (re-read) block reads.
    assert_eq!(r.filer.fast_reads + r.filer.slow_reads, 10);
}

#[test]
fn single_host_never_invalidates() {
    let t = trace_of(vec![
        op(0, 0, OpKind::Read, 1, 0, 1),
        op(0, 0, OpKind::Write, 1, 0, 1),
    ]);
    let r = run_trace(&cfg(), &t).unwrap();
    assert_eq!(r.metrics.writes_invalidating, 0);
    assert_eq!(r.invalidation_pct(), 0.0);
}

#[test]
fn warmup_ops_are_simulated_but_not_measured() {
    let mut warm = op(0, 0, OpKind::Read, 1, 0, 1);
    warm.set_warmup(true);
    let t = trace_of(vec![warm, op(0, 0, OpKind::Read, 1, 0, 1)]);
    let r = run_trace(&cfg(), &t).unwrap();
    // Only the measured op is counted, and it hits RAM (the warmup op
    // filled the caches).
    assert_eq!(r.metrics.read_ops, 1);
    close(r.read_latency_us(), 0.4, 0.001, "measured op is a RAM hit");
    assert_eq!(r.ram.hits, 1);
    assert_eq!(r.ram.misses, 0, "warmup miss must not be counted");
}

#[test]
fn threads_interleave_on_the_segment() {
    // Two threads issue cold 1-block reads concurrently; the shared
    // half-duplex segment serializes their packets, so the run finishes
    // later than one read but sooner than two sequential reads.
    let t = trace_of(vec![
        op(0, 0, OpKind::Read, 1, 0, 1),
        op(0, 1, OpKind::Read, 2, 0, 1),
    ]);
    let r = run_trace(&cfg(), &t).unwrap();
    let one = 162.568;
    assert!(r.end_time.as_micros_f64() > one);
    assert!(r.end_time.as_micros_f64() < 2.0 * one);
}

#[test]
fn persistence_doubles_flash_write_cost() {
    let mut c = SimConfig {
        ram_policy: WritebackPolicy::WriteThrough,
        ..cfg()
    };
    c.flash_model = FlashModel::default().with_persistence(true);
    let r = run_trace(&c, &trace_of(vec![op(0, 0, OpKind::Write, 1, 0, 1)])).unwrap();
    // 0.4 + 2×21 = 42.4 µs.
    close(r.write_latency_us(), 42.4, 0.01, "persistent flash write");
}

#[test]
fn deterministic_runs() {
    let mk = || {
        let ops = (0..200u32)
            .map(|i| {
                op(
                    0,
                    (i % 4) as u16,
                    if i % 3 == 0 {
                        OpKind::Write
                    } else {
                        OpKind::Read
                    },
                    1 + i % 7,
                    (i * 13) % 50,
                    1 + i % 3,
                )
            })
            .collect();
        run_trace(&cfg(), &trace_of(ops)).unwrap()
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.end_time, b.end_time);
    assert_eq!(a.events, b.events);
    assert_eq!(a.ram, b.ram);
    assert_eq!(a.flash, b.flash);
}

#[test]
fn iolog_captures_flash_traffic() {
    let c = SimConfig {
        log_flash_io: true,
        ..cfg()
    };
    let t = trace_of(vec![op(0, 0, OpKind::Read, 1, 0, 4)]);
    let r = run_trace(&c, &t).unwrap();
    let log = r.flash_iolog.expect("logging enabled");
    // Populate-on-read wrote 4 blocks to flash.
    assert_eq!(log.len(), 4);
}

#[test]
fn populate_on_read_off_skips_flash_fill() {
    let c = SimConfig {
        populate_flash_on_read: false,
        ..cfg()
    };
    let t = trace_of(vec![
        op(0, 0, OpKind::Read, 1, 0, 1),
        op(0, 0, OpKind::Read, 1, 0, 1),
    ]);
    let r = run_trace(&c, &t).unwrap();
    // Cold read: 8.2 + 92 + 40.968 + 0.4 = 141.568 (no 21 µs flash write);
    // second read hits RAM.
    close(
        r.metrics.read_latency.as_micros_f64(),
        141.568 + 0.4,
        0.01,
        "reads without flash populate",
    );
    assert_eq!(r.flash.insertions, 0);
}

#[test]
fn flash_read_charge_on_writeback_is_configurable() {
    // Force a flash-sourced writeback on an app path: a one-block flash
    // with `s` RAM policy and `n` flash policy. The second write evicts
    // the first (dirty) block, paying the flash read when charged.
    let base = SimConfig {
        ram_size: ByteSize::bytes_exact(4096),
        flash_size: ByteSize::bytes_exact(4096),
        ram_policy: WritebackPolicy::WriteThrough,
        flash_policy: WritebackPolicy::None,
        ..cfg()
    };
    let t = || {
        trace_of(vec![
            op(0, 0, OpKind::Write, 1, 0, 1),
            op(0, 0, OpKind::Write, 1, 1, 1),
        ])
    };
    let charged = run_trace(&base, &t()).unwrap();
    let free = run_trace(
        &SimConfig {
            charge_flash_read_on_writeback: false,
            ..base
        },
        &t(),
    )
    .unwrap();
    assert_eq!(charged.filer.writes, 1);
    assert_eq!(free.filer.writes, 1);
    // Charged second write: 0.4 + 21 + 88 (flash read) + 40.968 + 92 + 8.2;
    // free second write lacks the 88 µs. Per-block mean differs by 44 µs.
    let delta = charged.write_latency_us() - free.write_latency_us();
    close(delta, 44.0, 0.1, "flash read charge on writeback");
}

#[test]
fn inclusive_promotion_keeps_ram_resident_blocks_in_flash() {
    // Flash of 4 blocks, RAM of 2. Block A is kept hot in RAM while other
    // blocks stream through flash. With inclusive promotion the streaming
    // cannot evict A from flash.
    let mk = |inclusive: bool| {
        let c = SimConfig {
            ram_size: ByteSize::bytes_exact(2 * 4096),
            flash_size: ByteSize::bytes_exact(4 * 4096),
            inclusive_promotion: inclusive,
            ..cfg()
        };
        let mut ops = vec![op(0, 0, OpKind::Read, 1, 0, 1)]; // A
        for i in 0..6 {
            ops.push(op(0, 0, OpKind::Read, 2, i, 1)); // stream
            ops.push(op(0, 0, OpKind::Read, 1, 0, 1)); // touch A in RAM
        }
        run_trace(&c, &trace_of(ops)).unwrap()
    };
    let with = mk(true);
    let without = mk(false);
    // Without promotion, A eventually falls out of flash; the subset
    // property is violated silently (A still hits in RAM), so the
    // difference shows up in flash eviction counts of A (re-populations).
    assert!(with.flash.insertions <= without.flash.insertions);
}

#[test]
fn min_runtime_extends_clock_only() {
    let c = SimConfig {
        min_runtime: Some(fcache_des::SimTime::from_secs(5)),
        ..cfg()
    };
    let r = run_trace(&c, &trace_of(vec![op(0, 0, OpKind::Read, 1, 0, 1)])).unwrap();
    assert_eq!(r.end_time, fcache_des::SimTime::from_secs(5));
    // Metrics unaffected by the idle tail.
    assert_eq!(r.metrics.read_ops, 1);
}

#[test]
fn report_percentiles_track_mix() {
    // 9 RAM hits + 1 cold read: p50 in the sub-µs bucket, p99 in the
    // hundreds-of-µs bucket.
    let mut ops = vec![op(0, 0, OpKind::Read, 1, 0, 1)];
    for _ in 0..9 {
        ops.push(op(0, 0, OpKind::Read, 1, 0, 1));
    }
    let r = run_trace(&cfg(), &trace_of(ops)).unwrap();
    let (p50, _, p99) = r.metrics.read_hist.p50_p95_p99_us();
    assert!(p50 < 1.0, "p50 {p50} µs should be a RAM hit");
    assert!(p99 > 100.0, "p99 {p99} µs should be the cold read");
}
