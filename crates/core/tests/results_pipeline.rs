//! The structured results pipeline end to end: exact JSON round-trips for
//! reports, durable JSONL sweep sinks, and resumable grids.
//!
//! The two contracts pinned here:
//!
//! 1. **Serialization is exact.** `SimReport` → JSON → `SimReport` is the
//!    identity, including histograms, device windows, and the flash I/O
//!    log (property test over arbitrary counter values), and the encoded
//!    form itself is pinned by a golden row so any schema drift fails
//!    loudly instead of silently changing files on disk.
//! 2. **Resume is lossless.** A 16-job grid sweep killed mid-run (torn
//!    final line included) and resumed with `Sweep::resume_from` +
//!    `JsonlSink::resume` produces a results file whose row set is
//!    identical to an uninterrupted run's (PERF.md invariant 9).

use fcache::{
    read_rows, report_from_json, report_to_json, row_to_json, scan_jsonl, Architecture,
    DeviceStatsSnapshot, FaultWindowStat, FleetStats, FleetTopology, HistogramSnapshot,
    HostLoadStats, JsonlSink, MemorySink, MetricsSnapshot, RemoteStats, ResultRow, RobustnessStats,
    ShardServiceStats, ShardStats, SimConfig, SimReport, Sweep, TelemetryStats, TelemetryWindow,
    Workbench, WorkloadSpec, REPORT_SCHEMA,
};
use fcache_cache::CacheStats;
use fcache_des::SimTime;
use fcache_device::{IoDirection, IoLogEntry, WindowStat};
use fcache_filer::FilerStats;
use fcache_net::SegmentStats;
use fcache_types::{ByteSize, Json};

/// Deterministic word stream, cycling so the builder is total for any
/// non-empty input.
struct Words<'a> {
    words: &'a [u64],
    i: usize,
}

impl Words<'_> {
    fn next(&mut self) -> u64 {
        let w = self.words[self.i % self.words.len()].wrapping_add(self.i as u64);
        self.i += 1;
        w
    }

    fn hist(&mut self) -> HistogramSnapshot {
        let mut buckets = [0u64; fcache::histogram::BUCKETS];
        for _ in 0..(self.next() % 6) {
            let slot = (self.next() % 64) as usize;
            // Capped so the derived total cannot overflow (a live
            // histogram's count grows one sample at a time and never can).
            buckets[slot] = self.next() % (1 << 40);
        }
        HistogramSnapshot::from_buckets(buckets)
    }

    /// Arbitrary finite f64s: shortest-round-trip formatting must bring
    /// any of them back exactly, not just "nice" values.
    fn float(&mut self) -> f64 {
        let x = f64::from_bits(self.next());
        if x.is_finite() {
            x
        } else {
            self.next() as f64 / 1e3
        }
    }

    fn cache(&mut self) -> CacheStats {
        CacheStats {
            hits: self.next(),
            misses: self.next(),
            insertions: self.next(),
            clean_evictions: self.next(),
            dirty_evictions: self.next(),
            invalidations: self.next(),
            overwrites: self.next(),
        }
    }
}

/// Builds a `SimReport` deterministically from a word stream, exercising
/// every serialized field (optionals included, steered by the draws).
fn report_from_words(words: &[u64]) -> SimReport {
    let w = &mut Words { words, i: 0 };
    let metrics = MetricsSnapshot {
        read_ops: w.next(),
        write_ops: w.next(),
        read_blocks: w.next(),
        write_blocks: w.next(),
        read_latency: SimTime::from_nanos(w.next()),
        write_latency: SimTime::from_nanos(w.next()),
        tracked_writes: w.next(),
        writes_invalidating: w.next(),
        invalidated_blocks: w.next(),
        read_hist: w.hist(),
        write_hist: w.hist(),
    };
    let device = DeviceStatsSnapshot {
        reads: w.next(),
        writes: w.next(),
        read_time: SimTime::from_nanos(w.next()),
        write_time: SimTime::from_nanos(w.next()),
        queue_waits: w.next(),
        depth_sum: w.next(),
        depth_samples: w.next(),
        depth_max: w.next(),
        read_hist: w.hist(),
        write_hist: w.hist(),
    };
    let device_windows = if w.next().is_multiple_of(2) {
        None
    } else {
        Some(
            (0..(w.next() % 4))
                .map(|_| WindowStat {
                    start_io: w.next(),
                    read_avg_us: w.float(),
                    write_avg_us: w.float(),
                    reads: w.next(),
                    writes: w.next(),
                })
                .collect(),
        )
    };
    let flash_iolog = if w.next().is_multiple_of(2) {
        None
    } else {
        Some(
            (0..(w.next() % 5))
                .map(|_| IoLogEntry {
                    dir: if w.next().is_multiple_of(2) {
                        IoDirection::Read
                    } else {
                        IoDirection::Write
                    },
                    lba: w.next(),
                })
                .collect(),
        )
    };
    SimReport {
        metrics,
        ram: w.cache(),
        flash: w.cache(),
        unified: w.cache(),
        filer: FilerStats {
            fast_reads: w.next(),
            slow_reads: w.next(),
            writes: w.next(),
        },
        net: SegmentStats {
            packets: w.next(),
            payload_bytes: w.next(),
            busy: SimTime::from_nanos(w.next()),
            queue_wait: SimTime::from_nanos(w.next()),
            queue_waits: w.next().max(1),
        },
        device,
        device_windows,
        end_time: SimTime::from_nanos(w.next()),
        events: w.next(),
        flash_iolog,
        robustness: RobustnessStats {
            retries: w.next(),
            timeouts: w.next(),
            failed_ops: w.next(),
            queued_ops: w.next(),
            buffered_writes: w.next(),
            degraded_time: SimTime::from_nanos(w.next()),
            drain_events: w.next(),
            drain_depth_max: w.next(),
            drain_time: SimTime::from_nanos(w.next()),
            windows: (0..(w.next() % 3))
                .map(|_| FaultWindowStat {
                    start: SimTime::from_nanos(w.next()),
                    end: SimTime::from_nanos(w.next()),
                    ops: w.next(),
                    ok: w.next(),
                })
                .collect(),
        },
        shard: if w.next().is_multiple_of(2) {
            // Disengaged half the time: the section must be omitted and
            // decode back to the default.
            ShardStats::default()
        } else {
            ShardStats {
                shards: (w.next() % 8 + 1) as u16,
                replicas: (w.next() % 3 + 1) as u16,
                hedge_ns: w.next(),
                per_shard: (0..(w.next() % 4))
                    .map(|_| ShardServiceStats {
                        fast_reads: w.next(),
                        slow_reads: w.next(),
                        writes: w.next(),
                        outage_ns: w.next(),
                    })
                    .collect(),
                remote: RemoteStats {
                    hedges_launched: w.next(),
                    hedges_won: w.next(),
                    hedges_cancelled: w.next(),
                    failovers: w.next(),
                    re_replicated_blocks: w.next(),
                    re_replication_bytes: w.next(),
                    under_intervals: w.next(),
                    under_peak: w.next(),
                    under_now: w.next(),
                    under_time_ns: w.next(),
                },
            }
        },
        telemetry: if w.next().is_multiple_of(2) {
            // Disengaged half the time: the section must be omitted and
            // decode back to the default.
            TelemetryStats::default()
        } else {
            TelemetryStats {
                spans: w.next(),
                phase_ns: std::array::from_fn(|_| w.next()),
                phase_ops: std::array::from_fn(|_| w.next()),
                phase_hists: std::array::from_fn(|_| w.hist()),
                window_ns: w.next(),
                windows: (0..(w.next() % 3))
                    .map(|_| TelemetryWindow {
                        start_ns: w.next(),
                        end_ns: w.next(),
                        ops: w.next(),
                        read_blocks: w.next(),
                        write_blocks: w.next(),
                        hit_blocks: w.next(),
                        filer_blocks: w.next(),
                        latency_ns: w.next(),
                        retries: w.next(),
                        degraded_ns: w.next(),
                        dirty_num: w.next(),
                        dirty_den: w.next(),
                        depth_sum: w.next(),
                        depth_samples: w.next(),
                        shard_live_ns: (0..(w.next() % 3)).map(|_| w.next()).collect(),
                    })
                    .collect(),
            }
        },
        fleet: if w.next().is_multiple_of(2) {
            // Disengaged half the time: the section must be omitted and
            // decode back to the default.
            FleetStats::default()
        } else {
            FleetStats {
                topology: Some(FleetTopology {
                    cell: (w.next() % 64) as u32,
                    cells: (w.next() % 64 + 1) as u32,
                    host_base: (w.next() % 4096) as u32,
                    fleet_hosts: (w.next() % 4096 + 1) as u32,
                    hosts_per_segment: (w.next() % 16 + 1) as u16,
                }),
                per_host: (0..(w.next() % 4))
                    .map(|_| HostLoadStats {
                        host: (w.next() % 4096) as u32,
                        read_ops: w.next(),
                        write_ops: w.next(),
                        read_latency_ns: w.next(),
                        write_latency_ns: w.next(),
                    })
                    .collect(),
            }
        },
    }
}

mod roundtrip {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn report_json_roundtrip_is_exact(words in proptest::collection::vec(0u64..u64::MAX, 40..220)) {
            let report = report_from_words(&words);
            let encoded = report_to_json(&report).to_string();
            let parsed = Json::parse(&encoded).expect("reparse");
            let back = report_from_json(&parsed).expect("decode");
            prop_assert_eq!(back, report);
        }
    }
}

#[test]
fn simulated_report_roundtrips_including_device_state() {
    // Not just synthetic counters: a real SSD-timing run with device
    // windows and an I/O log survives the round trip bit-for-bit.
    let wb = Workbench::new(16384, 7);
    let cfg = SimConfig {
        flash_timing: fcache::FlashTiming::Ssd(fcache_device::SsdConfig::auto()),
        device_window: 64,
        log_flash_io: true,
        ..SimConfig::baseline()
    };
    let spec = WorkloadSpec {
        working_set: ByteSize::gib(16),
        seed: 3,
        ..WorkloadSpec::default()
    };
    let report = wb.scenario(&cfg, &spec).run().expect("run");
    assert!(report.device.ops() > 0, "ssd timing must record device ops");
    assert!(report.device_windows.is_some());
    assert!(report.flash_iolog.as_deref().is_some_and(|l| !l.is_empty()));
    let back = report_from_json(&Json::parse(&report_to_json(&report).to_string()).unwrap())
        .expect("decode");
    assert_eq!(back, report);
}

#[test]
fn golden_row_pins_the_schema() {
    // A fixed report must serialize to this exact string. If this test
    // fails because the layout changed on purpose, bump REPORT_SCHEMA and
    // repin — silent drift is the failure mode this guards against.
    let mut buckets = [0u64; fcache::histogram::BUCKETS];
    buckets[4] = 2;
    buckets[40] = 1;
    let report = SimReport {
        metrics: MetricsSnapshot {
            read_ops: 3,
            write_ops: 1,
            read_blocks: 9,
            write_blocks: 2,
            read_latency: SimTime::from_micros(120),
            write_latency: SimTime::from_nanos(1500),
            tracked_writes: 1,
            writes_invalidating: 0,
            invalidated_blocks: 0,
            read_hist: HistogramSnapshot::from_buckets(buckets),
            write_hist: HistogramSnapshot::default(),
        },
        ram: CacheStats {
            hits: 5,
            misses: 4,
            insertions: 4,
            clean_evictions: 1,
            dirty_evictions: 0,
            invalidations: 0,
            overwrites: 2,
        },
        flash: CacheStats::default(),
        unified: CacheStats::default(),
        filer: FilerStats {
            fast_reads: 3,
            slow_reads: 1,
            writes: 2,
        },
        net: SegmentStats {
            packets: 12,
            payload_bytes: 49152,
            busy: SimTime::from_micros(393),
            // Uncontended: the golden row keeps the pre-fleet three-field
            // net encoding.
            queue_wait: SimTime::ZERO,
            queue_waits: 0,
        },
        device: DeviceStatsSnapshot::default(),
        device_windows: Some(vec![WindowStat {
            start_io: 0,
            read_avg_us: 92.5,
            write_avg_us: 21.0,
            reads: 7,
            writes: 3,
        }]),
        end_time: SimTime::from_millis(2),
        events: 77,
        flash_iolog: Some(vec![
            IoLogEntry {
                dir: IoDirection::Write,
                lba: 8,
            },
            IoLogEntry {
                dir: IoDirection::Read,
                lba: 8,
            },
        ]),
        robustness: RobustnessStats::default(),
        shard: ShardStats::default(),
        telemetry: TelemetryStats {
            spans: 2,
            phase_ns: [1200, 0, 0, 800, 500, 0, 0, 0],
            phase_ops: [2, 0, 0, 1, 1, 0, 0, 0],
            phase_hists: Default::default(),
            window_ns: 1_000_000,
            windows: vec![TelemetryWindow {
                start_ns: 0,
                end_ns: 1_000_000,
                ops: 2,
                read_blocks: 9,
                write_blocks: 2,
                hit_blocks: 6,
                filer_blocks: 3,
                latency_ns: 2500,
                retries: 0,
                degraded_ns: 0,
                dirty_num: 1,
                dirty_den: 4,
                depth_sum: 0,
                depth_samples: 2,
                shard_live_ns: Vec::new(),
            }],
        },
        fleet: FleetStats::default(),
    };
    let row = ResultRow {
        index: 4,
        label: "naive/64G".into(),
        config: SimConfig {
            seed: 42,
            ..SimConfig::baseline()
        },
        report,
    };
    let golden = concat!(
        r#"{"schema":1,"index":4,"label":"naive/64G","#,
        r#""config":{"arch":"naive","ram":"8G","flash":"64G","ram_policy":"p1","flash_policy":"a","#,
        r#""flash_timing":"flat (constant per-block latencies)","prefetch":0.9,"persistent":false,"#,
        r#""duplex":false,"time_scale":1,"seed":42},"#,
        r#""report":{"metrics":{"read_ops":3,"write_ops":1,"read_blocks":9,"write_blocks":2,"#,
        r#""read_latency_ns":120000,"write_latency_ns":1500,"tracked_writes":1,"#,
        r#""writes_invalidating":0,"invalidated_blocks":0,"read_hist":[[4,2],[40,1]],"write_hist":[]},"#,
        r#""ram":{"hits":5,"misses":4,"insertions":4,"clean_evictions":1,"dirty_evictions":0,"invalidations":0,"overwrites":2},"#,
        r#""flash":{"hits":0,"misses":0,"insertions":0,"clean_evictions":0,"dirty_evictions":0,"invalidations":0,"overwrites":0},"#,
        r#""unified":{"hits":0,"misses":0,"insertions":0,"clean_evictions":0,"dirty_evictions":0,"invalidations":0,"overwrites":0},"#,
        r#""filer":{"fast_reads":3,"slow_reads":1,"writes":2},"#,
        r#""net":{"packets":12,"payload_bytes":49152,"busy_ns":393000},"#,
        r#""device":{"reads":0,"writes":0,"read_time_ns":0,"write_time_ns":0,"queue_waits":0,"#,
        r#""depth_sum":0,"depth_samples":0,"depth_max":0,"read_hist":[],"write_hist":[]},"#,
        r#""device_windows":[{"start_io":0,"read_avg_us":92.5,"write_avg_us":21.0,"reads":7,"writes":3}],"#,
        r#""end_time_ns":2000000,"events":77,"flash_iolog":[["w",8],["r",8]],"#,
        r#""robustness":{"retries":0,"timeouts":0,"failed_ops":0,"queued_ops":0,"buffered_writes":0,"#,
        r#""degraded_time_ns":0,"drain_events":0,"drain_depth_max":0,"drain_time_ns":0,"windows":[]},"#,
        r#""telemetry":{"spans":2,"phase_ns":[1200,0,0,800,500,0,0,0],"phase_ops":[2,0,0,1,1,0,0,0],"#,
        r#""phase_hists":[[],[],[],[],[],[],[],[]],"window_ns":1000000,"#,
        r#""windows":[[0,1000000,2,9,2,6,3,2500,0,0,1,4,0,2,[]]]}}}"#,
    );
    assert_eq!(row_to_json(&row).to_string(), golden);
    // And the golden string decodes back to the same row content.
    let decoded = fcache::row_from_json(&Json::parse(golden).unwrap()).expect("decode golden");
    assert_eq!(decoded.index, 4);
    assert_eq!(decoded.label, "naive/64G");
    assert_eq!(decoded.report, row.report);
}

/// The 16-job grid every resume test runs: 4 configurations × 4 workload
/// specs through the `Sweep::workloads` cross product.
fn grid_sweep(wb: &Workbench) -> (Sweep<'_>, usize) {
    let specs: Vec<WorkloadSpec> = [(16u64, 0.1), (16, 0.3), (24, 0.1), (24, 0.3)]
        .into_iter()
        .map(|(ws, wf)| WorkloadSpec {
            working_set: ByteSize::gib(ws),
            write_fraction: wf,
            seed: ws + (wf * 100.0) as u64,
            ..WorkloadSpec::default()
        })
        .collect();
    let cfgs = [
        ("noflash", ByteSize::ZERO, Architecture::Naive),
        ("naive", ByteSize::gib(16), Architecture::Naive),
        ("lookaside", ByteSize::gib(16), Architecture::Lookaside),
        ("unified", ByteSize::gib(16), Architecture::Unified),
    ];
    let mut sweep = Sweep::new().workloads(wb.workloads(&specs));
    for (label, flash, arch) in cfgs {
        sweep = sweep.config(
            label,
            SimConfig {
                arch,
                flash_size: flash,
                ..SimConfig::baseline()
            }
            .scaled_down(wb.scale()),
        );
    }
    let jobs = sweep.len();
    (sweep, jobs)
}

#[test]
fn killed_and_resumed_sweep_matches_uninterrupted_row_set() {
    let dir = std::env::temp_dir();
    let full_path = dir.join("fcache_results_full.jsonl");
    let resumed_path = dir.join("fcache_results_resumed.jsonl");
    let wb = Workbench::new(16384, 42);

    // Uninterrupted reference run.
    let mut sink = JsonlSink::create(&full_path).expect("create");
    let (sweep, jobs) = grid_sweep(&wb);
    assert_eq!(jobs, 16);
    let results = sweep.threads(4).sink(&mut sink).run();
    assert!(results.first_error().is_none());
    assert!(results.sink_error().is_none());
    drop(sink);
    let full_text = std::fs::read_to_string(&full_path).expect("read full");
    let full_lines: Vec<&str> = full_text.lines().collect();
    assert_eq!(full_lines.len(), 16);

    // Simulate a kill after 7 complete rows plus a torn eighth line (what
    // a flush-per-row writer leaves when the process dies mid-write).
    let torn = full_lines[7];
    let partial: String = full_lines[..7]
        .iter()
        .map(|l| format!("{l}\n"))
        .collect::<String>()
        + &torn[..torn.len() / 2];
    std::fs::write(&resumed_path, &partial).expect("write partial");

    // Resume: skip the 7 finished jobs, truncate the torn tail, append
    // the missing 9.
    let (mut sink, seen) = JsonlSink::resume(&resumed_path).expect("resume sink");
    assert_eq!(seen.len(), 7);
    let (sweep, _) = grid_sweep(&wb);
    let results = sweep
        .resume_from(&resumed_path)
        .expect("scan resume file")
        .threads(4)
        .sink(&mut sink)
        .run();
    assert!(results.first_error().is_none());
    assert!(results.sink_error().is_none());
    assert_eq!(results.skipped(), 7, "finished jobs must not rerun");
    drop(sink);

    // The resumed file's row *set* is byte-identical to the uninterrupted
    // run's (order differs: resumed rows keep their original positions,
    // new rows land in completion order).
    let resumed_text = std::fs::read_to_string(&resumed_path).expect("read resumed");
    let mut full_sorted: Vec<&str> = full_text.lines().collect();
    let mut resumed_sorted: Vec<&str> = resumed_text.lines().collect();
    assert_eq!(resumed_sorted.len(), 16);
    full_sorted.sort_unstable();
    resumed_sorted.sort_unstable();
    assert_eq!(resumed_sorted, full_sorted);

    // And both decode to 16 schema-checked rows covering all 16 labels.
    let rows = read_rows(&resumed_path).expect("decode resumed");
    assert_eq!(rows.len(), 16);
    let mut labels: Vec<&str> = rows.iter().map(|r| r.label.as_str()).collect();
    labels.sort_unstable();
    labels.dedup();
    assert_eq!(labels.len(), 16, "labels must be unique");
    assert!(
        labels.contains(&"unified/ws=24G wr=30% seed=54"),
        "{labels:?}"
    );

    let _ = std::fs::remove_file(&full_path);
    let _ = std::fs::remove_file(&resumed_path);
}

#[test]
fn resume_with_complete_file_skips_everything() {
    let dir = std::env::temp_dir();
    let path = dir.join("fcache_results_complete.jsonl");
    let wb = Workbench::new(16384, 42);

    let mut sink = JsonlSink::create(&path).expect("create");
    let (sweep, _) = grid_sweep(&wb);
    sweep.threads(4).sink(&mut sink).run();
    drop(sink);
    let before = std::fs::read_to_string(&path).expect("read");

    let (mut sink, seen) = JsonlSink::resume(&path).expect("resume");
    assert_eq!(seen.len(), 16);
    let (sweep, _) = grid_sweep(&wb);
    let results = sweep
        .resume_from(&path)
        .expect("scan")
        .sink(&mut sink)
        .run();
    assert_eq!(results.skipped(), 16);
    drop(sink);
    // Nothing reran, nothing was rewritten: the file is untouched.
    assert_eq!(std::fs::read_to_string(&path).expect("read"), before);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn memory_sink_collects_the_grid_in_job_order() {
    let wb = Workbench::new(16384, 42);
    let mut mem = MemorySink::new();
    let (sweep, jobs) = grid_sweep(&wb);
    let results = sweep.threads(4).sink(&mut mem).run();
    assert!(results.first_error().is_none());
    let rows = mem.into_rows();
    assert_eq!(rows.len(), jobs);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.index, i);
        assert_eq!(row.label, results.items()[i].label);
    }
}

#[test]
fn scan_refuses_other_schemas_instead_of_truncating() {
    // A results file from a future schema must not satisfy resume — and
    // it must NOT be silently truncated to nothing either (that would
    // destroy a completed run's data). It is an error the user sees.
    let dir = std::env::temp_dir();
    let path = dir.join("fcache_results_other_schema.jsonl");
    let row = ResultRow {
        index: 0,
        label: "x".into(),
        config: SimConfig::baseline(),
        report: SimReport::default(),
    };
    let line = row_to_json(&row).to_string().replacen(
        &format!("\"schema\":{REPORT_SCHEMA}"),
        &format!("\"schema\":{}", REPORT_SCHEMA + 1),
        1,
    );
    let content = format!("{line}\n");
    std::fs::write(&path, &content).unwrap();
    let err = scan_jsonl(&path).unwrap_err();
    assert!(err.to_string().contains("schema"), "{err}");
    let err = JsonlSink::resume(&path).unwrap_err();
    assert!(err.to_string().contains("refusing to truncate"), "{err}");
    // The file is untouched.
    assert_eq!(std::fs::read_to_string(&path).unwrap(), content);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn scan_tolerates_a_tail_torn_mid_utf8_character() {
    // Labels may contain multibyte characters; a kill can land between
    // their bytes. That is still "torn final line", not an I/O error.
    let dir = std::env::temp_dir();
    let path = dir.join("fcache_results_torn_utf8.jsonl");
    let row = |label: &str| {
        row_to_json(&ResultRow {
            index: 0,
            label: label.into(),
            config: SimConfig::baseline(),
            report: SimReport::default(),
        })
        .to_string()
    };
    let good = row("tiny-αβ");
    let torn = row("später");
    let cut = torn.find('ä').unwrap() + 1; // one byte into the 2-byte 'ä'
    let mut bytes = format!("{good}\n").into_bytes();
    bytes.extend_from_slice(&torn.as_bytes()[..cut]);
    std::fs::write(&path, &bytes).unwrap();
    let (valid, rows) = scan_jsonl(&path).unwrap();
    assert_eq!(valid as usize, good.len() + 1);
    let labels: Vec<&str> = rows.iter().map(|r| r.label.as_str()).collect();
    assert_eq!(labels, ["tiny-αβ"]);
    let _ = std::fs::remove_file(&path);
}

#[test]
#[should_panic(expected = "unique job labels")]
fn resume_with_duplicate_labels_panics_instead_of_skipping_blind() {
    // Two jobs with one label cannot be told apart by a results file;
    // resuming such a sweep would silently skip a job that never ran.
    let wb = Workbench::new(16384, 42);
    let spec = WorkloadSpec {
        working_set: ByteSize::gib(16),
        ..WorkloadSpec::default()
    };
    let sweep = Sweep::new()
        .scenario("dup", wb.scenario(&SimConfig::baseline(), &spec))
        .scenario("dup", wb.scenario(&SimConfig::baseline(), &spec))
        .skip_labels(["dup".to_string()]);
    let _ = sweep.run();
}
