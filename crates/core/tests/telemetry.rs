//! Sim-time telemetry end to end: phase attribution must be exact by
//! construction (the per-phase nanoseconds of every span sum to the op's
//! latency, in every engine mode), collecting telemetry must never change
//! the simulation (PERF.md invariant 12 — bit-identical reports including
//! the executor event count), the span stream must be deterministic and
//! identical across serial / parallel / streamed execution, and the wire
//! format of one span row is pinned against silent drift.

use fcache::{
    run_sweep, run_trace, FlashTiming, SimConfig, SpanRow, Sweep, TelemetryStats, Workbench,
    Workload, WorkloadSpec,
};
use fcache_device::{SimTime, SsdConfig};
use fcache_types::{FaultPlan, OpKind, Phase, Trace};

const SCALE: u64 = 4096;

/// One engine-matrix case: reshapes the paper-scale baseline config.
type Shape = fn(SimConfig) -> SimConfig;

fn workbench() -> Workbench {
    Workbench::new(SCALE, 42)
}

fn trace() -> Trace {
    workbench().make_trace(&WorkloadSpec::baseline_60g())
}

/// Baseline config with 10 s (paper-scale) telemetry windows engaged and a
/// span stream to `path`, at test scale.
fn telemetered(path: &std::path::Path) -> SimConfig {
    SimConfig {
        telemetry_windows: Some(SimTime::from_micros(10_000_000)),
        trace_out: Some(path.into()),
        ..SimConfig::baseline()
    }
    .scaled_down(SCALE)
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(name)
}

#[test]
fn phase_sums_equal_latency_across_the_engine_matrix() {
    let trace = trace();
    // Every plane the attribution instrumentation touches: flat vs
    // queue-aware SSD timing, fault-free vs faulted, single-filer vs
    // sharded with hedged reads.
    let cases: &[(&str, Shape)] = &[
        ("flat", |c| c),
        ("ssd", |c| SimConfig {
            flash_timing: FlashTiming::Ssd(SsdConfig::auto()),
            ..c
        }),
        ("faulted", |c| SimConfig {
            fault_plan: FaultPlan::parse("filer:outage@40s-60s;device:err0.1@100s-200s")
                .expect("spec"),
            ..c
        }),
        ("sharded", |c| SimConfig {
            shards: 4,
            replicas: 2,
            hedge: Some(SimTime::from_micros(200)),
            fault_plan: FaultPlan::parse("shard1:outage@40s-60s").expect("spec"),
            ..c
        }),
        ("ssd-faulted-sharded", |c| SimConfig {
            flash_timing: FlashTiming::Ssd(SsdConfig::auto()),
            shards: 4,
            replicas: 2,
            hedge: Some(SimTime::from_micros(200)),
            fault_plan: FaultPlan::parse("shard1:outage@40s-60s;device:err0.1@100s-200s")
                .expect("spec"),
            ..c
        }),
    ];
    for (name, shape) in cases {
        let path = tmp(&format!("fcache_test_phases_{name}.jsonl"));
        // Shape the paper-scale config first so its fault windows scale
        // down together with the telemetry window.
        let cfg = SimConfig {
            telemetry_windows: Some(SimTime::from_micros(10_000_000)),
            trace_out: Some(path.clone()),
            ..shape(SimConfig::baseline())
        }
        .scaled_down(SCALE);
        let r = run_trace(&cfg, &trace).unwrap_or_else(|e| panic!("{name}: {e}"));
        let rows = fcache::read_span_rows(&path).expect("readable span stream");
        assert!(!rows.is_empty(), "{name}: no spans");
        for row in &rows {
            assert_eq!(
                row.phase_sum(),
                row.latency_ns(),
                "{name}: op {} attribution must be exact",
                row.op
            );
        }
        // The in-report aggregate describes the same population.
        let t = &r.telemetry;
        assert!(t.engaged(), "{name}: report telemetry must engage");
        assert_eq!(t.spans, rows.len() as u64, "{name}: span count");
        assert_eq!(
            t.total_ns(),
            rows.iter().map(SpanRow::latency_ns).sum::<u64>(),
            "{name}: phase_ns sums to total span latency"
        );
        // The measured ops all probe the cache, so the probe phase tallies
        // every span; device service shows up whenever flash is hit.
        assert_eq!(t.phase_ops[Phase::CacheProbe.index()], t.spans, "{name}");
        assert!(t.phase_ns[Phase::DeviceService.index()] > 0, "{name}");
        // Windows tile the measured interval and tally every span.
        assert!(t.window_ns > 0, "{name}");
        assert_eq!(
            t.windows.iter().map(|w| w.ops).sum::<u64>(),
            t.spans,
            "{name}: windows partition the spans"
        );
        for w in &t.windows {
            assert!(w.start_ns < w.end_ns, "{name}: ordered window");
        }
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn telemetry_changes_nothing_but_the_telemetry_section() {
    let trace = trace();
    let off = run_trace(&SimConfig::baseline().scaled_down(SCALE), &trace).expect("off");
    assert!(
        !off.telemetry.engaged(),
        "no telemetry knob set, none collected"
    );

    let path = tmp("fcache_test_invariant12.jsonl");
    let mut on = run_trace(&telemetered(&path), &trace).expect("on");
    let _ = std::fs::remove_file(&path);
    assert!(on.telemetry.engaged());
    assert!(on.telemetry.spans > 0);

    // Invariant 12: everything except the telemetry section — including
    // the executor event count — is bit-identical to the untelemetered
    // run. Spans and windows are bookkeeping on the op tasks; they spawn
    // nothing, sleep nowhere, and draw no randomness.
    on.telemetry = TelemetryStats::default();
    assert_eq!(
        format!("{on:?}"),
        format!("{off:?}"),
        "telemetry must be observation only"
    );
}

#[test]
fn span_stream_is_byte_identical_across_run_modes() {
    let wb = workbench();
    let trace = wb.make_trace(&WorkloadSpec::baseline_60g());

    // Serial, twice: the stream is a pure function of (config, workload).
    let p1 = tmp("fcache_test_spans_serial1.jsonl");
    let p2 = tmp("fcache_test_spans_serial2.jsonl");
    run_trace(&telemetered(&p1), &trace).expect("serial 1");
    run_trace(&telemetered(&p2), &trace).expect("serial 2");
    let reference = std::fs::read(&p1).expect("stream bytes");
    assert!(!reference.is_empty());
    assert_eq!(reference, std::fs::read(&p2).expect("bytes"), "rerun");

    // Parallel fan-out: same jobs through worker threads, each writing its
    // own stream file.
    let p3 = tmp("fcache_test_spans_par1.jsonl");
    let p4 = tmp("fcache_test_spans_par2.jsonl");
    let jobs = vec![(telemetered(&p3), &trace), (telemetered(&p4), &trace)];
    for r in run_sweep(&jobs, Some(2)) {
        r.expect("parallel job");
    }
    assert_eq!(reference, std::fs::read(&p3).expect("bytes"), "parallel");
    assert_eq!(reference, std::fs::read(&p4).expect("bytes"), "parallel");

    // Streamed workload: the job regenerates its ops chunk by chunk
    // instead of borrowing the resident trace.
    let p5 = tmp("fcache_test_spans_streamed.jsonl");
    let spec = WorkloadSpec::baseline_60g();
    let results = Sweep::over(Workload::stream(|| wb.make_stream(&spec)))
        .configs([telemetered(&p5)])
        .run()
        .into_reports()
        .expect("streamed sweep");
    assert_eq!(results.len(), 1);
    assert_eq!(reference, std::fs::read(&p5).expect("bytes"), "streamed");

    for p in [p1, p2, p3, p4, p5] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn span_row_wire_format_is_pinned() {
    // One golden row: the exact bytes `--trace-out` writes for a span.
    // Phases with zero time are omitted; the kind is its label; times are
    // absolute sim nanoseconds.
    let row = SpanRow {
        op: 17,
        host: 2,
        kind: OpKind::Read,
        start_ns: 1_000_000,
        end_ns: 1_003_500,
        blocks: 8,
        phases: {
            let mut p = [0u64; Phase::COUNT];
            p[Phase::CacheProbe.index()] = 400;
            p[Phase::Net.index()] = 2_100;
            p[Phase::Filer.index()] = 1_000;
            p
        },
    };
    let golden = concat!(
        r#"{"op":17,"host":2,"kind":"read","start":1000000,"end":1003500,"#,
        r#""lat":3500,"blocks":8,"#,
        r#""phases":{"cache_probe":400,"net":2100,"filer":1000}}"#,
    );
    assert_eq!(row.to_json().to_string(), golden);
    assert_eq!(row.phase_sum(), row.latency_ns(), "golden row is coherent");

    // And it decodes back to the same row.
    let parsed = fcache_types::Json::parse(golden).expect("golden parses");
    let back = SpanRow::from_json(&parsed).expect("golden decodes");
    assert_eq!(format!("{back:?}"), format!("{row:?}"));
}
