//! Whole-simulator property tests: arbitrary (small) traces and
//! configurations must run to completion — no deadlocks, no panics — and
//! conserve basic accounting invariants.

use fcache::{run_trace, Architecture, SimConfig, WritebackPolicy};
use fcache_cache::EvictionPolicy;
use fcache_types::{ByteSize, FileId, HostId, OpKind, ThreadId, Trace, TraceMeta, TraceOp};
use proptest::prelude::*;

fn op_strategy(hosts: u16, threads: u16) -> impl Strategy<Value = TraceOp> {
    (
        0..hosts,
        0..threads,
        any::<bool>(),
        0u32..16,
        0u32..64,
        1u32..8,
        any::<bool>(),
    )
        .prop_map(|(h, t, w, file, start, n, warm)| {
            TraceOp::new(
                HostId(h),
                ThreadId(t),
                if w { OpKind::Write } else { OpKind::Read },
                FileId(file),
                start,
                n,
                warm,
            )
        })
}

fn arch_strategy() -> impl Strategy<Value = Architecture> {
    prop_oneof![
        Just(Architecture::Naive),
        Just(Architecture::Lookaside),
        Just(Architecture::Unified),
    ]
}

fn policy_strategy() -> impl Strategy<Value = WritebackPolicy> {
    prop_oneof![
        Just(WritebackPolicy::WriteThrough),
        Just(WritebackPolicy::AsyncWriteThrough),
        (1u32..5).prop_map(WritebackPolicy::Periodic),
        Just(WritebackPolicy::None),
    ]
}

fn replacement_strategy() -> impl Strategy<Value = EvictionPolicy> {
    prop_oneof![
        Just(EvictionPolicy::Lru),
        Just(EvictionPolicy::Fifo),
        Just(EvictionPolicy::Clock),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_config_any_trace_completes_and_conserves_ops(
        arch in arch_strategy(),
        ram_policy in policy_strategy(),
        flash_policy in policy_strategy(),
        replacement in replacement_strategy(),
        ram_blocks in 0usize..8,
        flash_blocks in 0usize..32,
        duplex in any::<bool>(),
        populate in any::<bool>(),
        inclusive in any::<bool>(),
        charge in any::<bool>(),
        hosts in 1u16..3,
        ops in proptest::collection::vec(op_strategy(3, 3), 1..60),
    ) {
        // Unified with zero total frames cannot exist; give it one block.
        let flash_blocks = if arch == Architecture::Unified && ram_blocks + flash_blocks == 0 {
            1
        } else {
            flash_blocks
        };
        let cfg = SimConfig {
            arch,
            ram_size: ByteSize::bytes_exact(4096 * ram_blocks as u64),
            flash_size: ByteSize::bytes_exact(4096 * flash_blocks as u64),
            ram_policy,
            flash_policy,
            replacement,
            duplex_network: duplex,
            populate_flash_on_read: populate,
            inclusive_promotion: inclusive,
            charge_flash_read_on_writeback: charge,
            ..SimConfig::baseline()
        };
        // Clamp host ids into range and count measured ops.
        let ops: Vec<TraceOp> = ops
            .into_iter()
            .map(|mut o| {
                o.set_host(HostId(o.host().0 % hosts));
                o
            })
            .collect();
        let measured_reads =
            ops.iter().filter(|o| !o.warmup() && o.kind() == OpKind::Read).count() as u64;
        let measured_writes =
            ops.iter().filter(|o| !o.warmup() && o.kind() == OpKind::Write).count() as u64;
        let any_measured = ops.iter().any(|o| !o.warmup());
        let trace = Trace {
            meta: TraceMeta { hosts, threads_per_host: 3, ..TraceMeta::default() },
            ops,
        };

        let report = run_trace(&cfg, &trace);
        let report = report.expect("simulation must complete without deadlock");

        // Conservation: when the warmup boundary races between threads the
        // reset can only *drop* early measured ops, never invent them.
        prop_assert!(report.metrics.read_ops <= measured_reads);
        prop_assert!(report.metrics.write_ops <= measured_writes);
        if any_measured {
            prop_assert!(
                report.metrics.read_ops + report.metrics.write_ops > 0
                    || measured_reads + measured_writes == 0
            );
        }
        // Latency sums are consistent with op counts.
        if report.metrics.read_ops == 0 {
            prop_assert_eq!(report.metrics.read_latency.as_nanos(), 0);
        }
        if report.metrics.write_ops == 0 {
            prop_assert_eq!(report.metrics.write_latency.as_nanos(), 0);
        }
        // Caches never exceed capacity (indirectly: no negative counters,
        // hit rates bounded).
        prop_assert!(report.ram_hit_rate() <= 1.0);
        prop_assert!(report.flash_hit_rate() <= 1.0);
        prop_assert!(report.invalidation_pct() <= 100.0);
        // Determinism: a second run agrees exactly.
        let again = run_trace(&cfg, &trace).expect("second run");
        prop_assert_eq!(report.metrics, again.metrics);
        prop_assert_eq!(report.end_time, again.end_time);
    }
}
