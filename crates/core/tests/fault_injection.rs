//! Fault injection end to end: a mid-run filer outage must engage the
//! client robustness layer (parked misses, buffered writes, recovery
//! drains) without losing operations; degraded policies must differ in
//! exactly the documented ways; and an empty plan must leave the report's
//! robustness section untouched.

use fcache::{
    run_trace, DegradedPolicy, FlashTiming, RobustnessStats, SimConfig, SimError, Workbench,
    WorkloadSpec, WritebackPolicy,
};
use fcache_device::{SimTime, SsdConfig};
use fcache_types::{ByteSize, FaultPlan, Trace};

const SCALE: u64 = 4096;

fn workbench_trace() -> Trace {
    Workbench::new(SCALE, 42).make_trace(&WorkloadSpec::baseline_60g())
}

/// Baseline config with a fault spec, at test scale.
fn faulted(spec: &str) -> SimConfig {
    SimConfig {
        fault_plan: FaultPlan::parse(spec).expect("valid spec"),
        ..SimConfig::baseline()
    }
    .scaled_down(SCALE)
}

#[test]
fn clean_runs_report_no_robustness_activity() {
    let trace = workbench_trace();
    let cfg = SimConfig::baseline().scaled_down(SCALE);
    let r = run_trace(&cfg, &trace).expect("clean run");
    assert_eq!(r.robustness, RobustnessStats::default());
    assert!(!r.robustness.engaged());
}

#[test]
fn midrun_filer_outage_parks_misses_and_loses_nothing() {
    let trace = workbench_trace();
    let clean = run_trace(&SimConfig::baseline().scaled_down(SCALE), &trace).expect("clean");
    let cfg = faulted("filer:outage@40s-60s");
    let r = run_trace(&cfg, &trace).expect("faulted run");

    let rs = &r.robustness;
    assert!(rs.engaged(), "outage must engage the robustness layer");
    assert!(rs.degraded_time > SimTime::ZERO, "outage overlaps the run");
    assert!(
        rs.queued_ops > 0,
        "misses and flushes park during the outage"
    );
    assert_eq!(rs.failed_ops, 0, "queue policy never gives up");
    for w in &rs.windows {
        assert!(w.ok <= w.ops, "window tallies stay coherent: {w:?}");
    }

    // Zero rows lost: parking delays ops, it never drops them. The
    // post-warmup op/block tallies are decided by the trace alone.
    assert_eq!(r.metrics.read_ops, clean.metrics.read_ops);
    assert_eq!(r.metrics.write_ops, clean.metrics.write_ops);
    assert_eq!(r.metrics.read_blocks, clean.metrics.read_blocks);
    assert_eq!(r.metrics.write_blocks, clean.metrics.write_blocks);

    // (No latency ordering is asserted: parking delays the parked reads
    // but also reshuffles cache contents and contention, so the
    // post-warmup mean can move either way by a hair.)

    // Same plan, same seed, same report: fault handling is part of the
    // deterministic simulation.
    let again = run_trace(&cfg, &trace).expect("repeat faulted run");
    assert_eq!(format!("{again:?}"), format!("{r:?}"));
}

#[test]
fn failfast_fails_misses_during_the_outage() {
    let trace = workbench_trace();
    let mut cfg = faulted("filer:outage@40s-60s");
    cfg.robustness.degraded = DegradedPolicy::FailFast;
    let r = run_trace(&cfg, &trace).expect("failfast run");
    let rs = &r.robustness;
    assert!(rs.failed_ops > 0, "misses inside the outage must fail fast");
    let (ops, ok) = rs
        .windows
        .iter()
        .fold((0u64, 0u64), |(a, b), w| (a + w.ops, b + w.ok));
    assert!(
        ok < ops,
        "failed in-window fetches must dent availability ({ok}/{ops})"
    );
}

#[test]
fn strict_policy_surfaces_the_offending_clause() {
    let trace = workbench_trace();
    let mut cfg = faulted("filer:outage@40s-60s");
    cfg.robustness.degraded = DegradedPolicy::Strict;
    let err = run_trace(&cfg, &trace).expect_err("strict run must fail");
    let SimError::Faulted { clause } = &err else {
        panic!("expected SimError::Faulted, got {err:?}");
    };
    assert!(
        clause.contains("filer:outage"),
        "clause names the culprit: {clause:?}"
    );
    assert!(err.to_string().contains("strict degraded policy"), "{err}");
}

#[test]
fn writethrough_buffers_writes_through_the_outage_and_drains() {
    // Write-through RAM against the filer: an outage degrades those
    // writes to writeback-style buffering, and the recovery probe sees
    // the backlog drain once the filer returns.
    let trace = workbench_trace();
    let cfg = SimConfig {
        ram_policy: WritebackPolicy::WriteThrough,
        flash_size: ByteSize::ZERO,
        fault_plan: FaultPlan::parse("filer:outage@40s-60s").unwrap(),
        ..SimConfig::baseline()
    }
    .scaled_down(SCALE);
    let r = run_trace(&cfg, &trace).expect("write-through faulted run");
    let rs = &r.robustness;
    assert!(
        rs.buffered_writes > 0,
        "write-through must degrade to buffering during the outage"
    );
    assert!(rs.drain_events >= 1, "recovery must observe a drain");
    assert!(rs.drain_depth_max > 0);
    assert_eq!(rs.failed_ops, 0, "writes are never dropped");
}

#[test]
fn transient_net_errors_retry_with_backoff() {
    let trace = workbench_trace();
    let cfg = faulted("net:err0.5@20s-80s");
    let r = run_trace(&cfg, &trace).expect("flaky-net run");
    let rs = &r.robustness;
    assert!(rs.retries > 0, "transient failures must be retried");
    assert!(
        rs.timeouts >= rs.retries,
        "every retry was preceded by a timeout"
    );
}

#[test]
fn device_slowdown_inflates_device_service_times() {
    let trace = workbench_trace();
    let ssd = |spec: Option<&str>| {
        let mut cfg = SimConfig {
            flash_timing: FlashTiming::Ssd(SsdConfig::auto()),
            ..SimConfig::baseline()
        };
        if let Some(s) = spec {
            cfg.fault_plan = FaultPlan::parse(s).unwrap();
        }
        cfg.scaled_down(SCALE)
    };
    let clean = run_trace(&ssd(None), &trace).expect("clean ssd run");
    let slow = run_trace(&ssd(Some("device:slowx16@0s-100000s")), &trace).expect("slow ssd run");
    assert!(clean.device.ops() > 0 && slow.device.ops() > 0);
    assert!(
        slow.device.read_avg_us() > clean.device.read_avg_us(),
        "a 16x device slowdown must show up in device service times ({} vs {})",
        slow.device.read_avg_us(),
        clean.device.read_avg_us()
    );
}
