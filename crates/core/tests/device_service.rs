//! The device timing service must be invisible under the default flat
//! timing (byte-identical reports vs the pre-service engine, pinned by a
//! golden check) and must behave as a bounded FIFO queue under SSD timing.

use std::cell::RefCell;
use std::rc::Rc;

use fcache::{
    run_trace, Architecture, DeviceService, FlashTiming, SimConfig, Workbench, WorkloadSpec,
};
use fcache_des::Sim;
use fcache_device::{IoLog, SsdConfig};
use fcache_types::{BlockAddr, ByteSize, FileId, HostId};

// ---------------------------------------------------------------------------
// Golden check: flat timing is byte-identical to the pre-DeviceService engine
// ---------------------------------------------------------------------------

/// Report fields captured from the engine *before* the device service
/// existed (same workload: `Workbench::new(4096, 42)`,
/// `WorkloadSpec::baseline_60g()`, configs scaled down by 4096). Flat
/// timing must keep reproducing these numbers bit-for-bit — including the
/// executor event count, which would move if the service added so much as
/// one extra poll to the hot path.
struct Golden {
    arch: Architecture,
    zero_flash: bool,
    end_ns: u64,
    events: u64,
    read_latency_ns: u64,
    write_latency_ns: u64,
    ram_hits: u64,
    flash_hits: u64,
    unified_hits: u64,
    filer_fast: u64,
    filer_slow: u64,
    filer_writes: u64,
    net_packets: u64,
    net_payload: u64,
}

const GOLDENS: &[Golden] = &[
    Golden {
        arch: Architecture::Naive,
        zero_flash: false,
        end_ns: 606_001_132,
        events: 69_584,
        read_latency_ns: 1_393_239_848,
        write_latency_ns: 1_002_400,
        ram_hits: 692,
        flash_hits: 4586,
        unified_hits: 0,
        filer_fast: 1179,
        filer_slow: 137,
        filer_writes: 3268,
        net_packets: 7277,
        net_payload: 18_935_808,
    },
    Golden {
        arch: Architecture::Lookaside,
        zero_flash: false,
        end_ns: 598_723_536,
        events: 62_456,
        read_latency_ns: 1_425_541_292,
        write_latency_ns: 1_002_400,
        ram_hits: 733,
        flash_hits: 4527,
        unified_hits: 0,
        filer_fast: 1174,
        filer_slow: 139,
        filer_writes: 3271,
        net_packets: 7284,
        net_payload: 18_976_768,
    },
    Golden {
        arch: Architecture::Unified,
        zero_flash: false,
        end_ns: 598_140_980,
        events: 48_738,
        read_latency_ns: 1_290_779_640,
        write_latency_ns: 46_961_000,
        ram_hits: 0,
        flash_hits: 0,
        unified_hits: 5395,
        filer_fast: 1065,
        filer_slow: 125,
        filer_writes: 3295,
        net_packets: 7271,
        net_payload: 18_591_744,
    },
    Golden {
        arch: Architecture::Naive,
        zero_flash: true,
        end_ns: 1_404_960_820,
        events: 58_443,
        read_latency_ns: 4_478_416_996,
        write_latency_ns: 1_002_400,
        ram_hits: 554,
        flash_hits: 0,
        unified_hits: 0,
        filer_fast: 5203,
        filer_slow: 582,
        filer_writes: 3058,
        net_packets: 7866,
        net_payload: 36_442_112,
    },
];

#[test]
fn flat_mode_reports_are_byte_identical_to_pre_service_engine() {
    let wb = Workbench::new(4096, 42);
    let trace = wb.make_trace(&WorkloadSpec::baseline_60g());
    for g in GOLDENS {
        let cfg = SimConfig {
            arch: g.arch,
            flash_size: if g.zero_flash {
                ByteSize::ZERO
            } else {
                SimConfig::baseline().flash_size
            },
            ..SimConfig::baseline()
        }
        .scaled_down(4096);
        let r = run_trace(&cfg, &trace).expect("flat run");
        let tag = format!("{:?} (zero_flash={})", g.arch, g.zero_flash);
        assert_eq!(r.end_time.as_nanos(), g.end_ns, "end_time drifted: {tag}");
        assert_eq!(r.events, g.events, "executor event count drifted: {tag}");
        assert_eq!(
            r.metrics.read_latency.as_nanos(),
            g.read_latency_ns,
            "read latency drifted: {tag}"
        );
        assert_eq!(
            r.metrics.write_latency.as_nanos(),
            g.write_latency_ns,
            "write latency drifted: {tag}"
        );
        assert_eq!(r.ram.hits, g.ram_hits, "ram hits drifted: {tag}");
        assert_eq!(r.flash.hits, g.flash_hits, "flash hits drifted: {tag}");
        assert_eq!(r.unified.hits, g.unified_hits, "unified drifted: {tag}");
        assert_eq!(r.filer.fast_reads, g.filer_fast, "filer fast: {tag}");
        assert_eq!(r.filer.slow_reads, g.filer_slow, "filer slow: {tag}");
        assert_eq!(r.filer.writes, g.filer_writes, "filer writes: {tag}");
        assert_eq!(r.net.packets, g.net_packets, "net packets: {tag}");
        assert_eq!(r.net.payload_bytes, g.net_payload, "net payload: {tag}");
        // And the service itself must have stayed out of the way entirely.
        assert_eq!(r.device.ops(), 0, "flat mode recorded device stats: {tag}");
        assert!(r.device_windows.is_none(), "flat mode built windows: {tag}");
    }
}

// ---------------------------------------------------------------------------
// Queue behavior under SSD timing
// ---------------------------------------------------------------------------

/// A config whose device service runs in SSD mode with the given queue
/// depth, small enough to drive directly.
fn ssd_cfg(depth: usize) -> SimConfig {
    SimConfig {
        flash_size: ByteSize::mib(16), // 4096-block LBA space
        flash_timing: FlashTiming::Ssd(SsdConfig {
            queue_depth: depth,
            ..SsdConfig::small(4096, 77)
        }),
        ..SimConfig::baseline()
    }
}

fn addr(n: u32) -> BlockAddr {
    BlockAddr::new(FileId(7), n)
}

#[test]
fn depth_one_queue_services_concurrent_submitters_in_fifo_order() {
    let sim = Sim::new();
    let dev = Rc::new(DeviceService::new(
        sim.clone(),
        &ssd_cfg(1),
        HostId(0),
        IoLog::disabled(),
    ));
    assert!(dev.is_queued());
    let order: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
    // All submitters are ready at t=0; with one service slot they must
    // complete in exact submission order regardless of their (random,
    // unequal) service times.
    for i in 0..16u32 {
        let dev = Rc::clone(&dev);
        let order = Rc::clone(&order);
        sim.spawn(async move {
            dev.read(addr(i), None).await;
            order.borrow_mut().push(i);
        });
    }
    sim.run().expect("run");
    let end = sim.now();
    sim.shutdown();
    assert_eq!(*order.borrow(), (0..16).collect::<Vec<_>>());
    // Depth 1 fully serializes: elapsed time is the sum of service times.
    let stats = dev.stats();
    assert_eq!(stats.reads, 16);
    assert_eq!(end, stats.read_time, "depth-1 queue must serialize");
    assert_eq!(stats.queue_waits, 15, "all but the first submission wait");
    assert_eq!(stats.depth_max, 15, "peak occupancy seen by the last");
}

#[test]
fn bounded_depth_applies_backpressure_and_wider_queues_overlap_service() {
    // The same 24 submissions through depth-2 and depth-32 devices: the
    // narrow queue must take notably longer (service barely overlaps) and
    // must force waits; the wide queue accepts everything at once.
    let mut ends = Vec::new();
    let mut all_waits = Vec::new();
    for depth in [2usize, 32] {
        let sim = Sim::new();
        let dev = Rc::new(DeviceService::new(
            sim.clone(),
            &ssd_cfg(depth),
            HostId(0),
            IoLog::disabled(),
        ));
        for i in 0..24u32 {
            let dev = Rc::clone(&dev);
            sim.spawn(async move {
                dev.write(addr(i), None).await;
            });
        }
        sim.run().expect("run");
        let stats = dev.stats();
        ends.push(sim.now());
        all_waits.push(stats.queue_waits);
        sim.shutdown();
        assert_eq!(stats.writes, 24);
        assert!(
            stats.depth_max <= 23,
            "occupancy cannot exceed the other submitters"
        );
    }
    assert!(
        ends[0] > ends[1],
        "depth 2 ({}) must be slower than depth 32 ({})",
        ends[0],
        ends[1]
    );
    assert_eq!(all_waits[0], 22, "depth 2 admits two, queues the rest");
    assert_eq!(all_waits[1], 0, "depth 32 absorbs all 24 at once");
}

#[test]
fn read_batch_overlaps_blocks_across_the_ncq() {
    let sim = Sim::new();
    let dev = Rc::new(DeviceService::new(
        sim.clone(),
        &ssd_cfg(32),
        HostId(0),
        IoLog::disabled(),
    ));
    let addrs: Vec<BlockAddr> = (0..10).map(addr).collect();
    {
        let dev = Rc::clone(&dev);
        sim.spawn(async move {
            dev.read_batch(&addrs, None).await;
        });
    }
    sim.run().expect("run");
    let end = sim.now();
    sim.shutdown();
    let stats = dev.stats();
    assert_eq!(stats.reads, 10, "one command per block, stats exact");
    // The batch enters the queue at once: all ten commands are in service
    // together, so the op completes at the longest draw, strictly faster
    // than the pre-overlap `n × serial service`.
    assert!(
        end < stats.read_time,
        "batch must overlap: elapsed {end:?} vs summed service {:?}",
        stats.read_time
    );
    assert_eq!(stats.queue_waits, 0, "depth 32 absorbs the whole batch");
    assert_eq!(
        stats.depth_max, 9,
        "the last command sees the other nine in flight"
    );
}

#[test]
fn batch_backpressure_blocks_the_commands_past_the_queue_depth() {
    // A 6-command batch into a depth-4 queue: four admitted at once, the
    // fifth and sixth wait for a free slot.
    let sim = Sim::new();
    let dev = Rc::new(DeviceService::new(
        sim.clone(),
        &ssd_cfg(4),
        HostId(0),
        IoLog::disabled(),
    ));
    let addrs: Vec<BlockAddr> = (0..6).map(addr).collect();
    {
        let dev = Rc::clone(&dev);
        sim.spawn(async move {
            dev.read_batch(&addrs, None).await;
        });
    }
    sim.run().expect("run");
    sim.shutdown();
    let stats = dev.stats();
    assert_eq!(stats.reads, 6);
    assert_eq!(
        stats.queue_waits, 2,
        "exactly the commands past the queue depth wait"
    );
    assert_eq!(stats.depth_max, 5, "the last command sees five ahead");
}

#[test]
fn batch_submit_preserves_fifo_admission_across_submitters() {
    // Task A submits a 3-command batch, then task B a single read, into a
    // depth-1 queue. FIFO admission: all of A's commands service before
    // B's, so A completes strictly first and the clock is fully serial.
    let sim = Sim::new();
    let dev = Rc::new(DeviceService::new(
        sim.clone(),
        &ssd_cfg(1),
        HostId(0),
        IoLog::disabled(),
    ));
    let done: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));
    {
        let dev = Rc::clone(&dev);
        let done = Rc::clone(&done);
        sim.spawn(async move {
            dev.read_batch(&[addr(0), addr(1), addr(2)], None).await;
            done.borrow_mut().push("batch");
        });
    }
    {
        let dev = Rc::clone(&dev);
        let done = Rc::clone(&done);
        sim.spawn(async move {
            dev.read(addr(3), None).await;
            done.borrow_mut().push("single");
        });
    }
    sim.run().expect("run");
    let end = sim.now();
    sim.shutdown();
    assert_eq!(*done.borrow(), vec!["batch", "single"]);
    let stats = dev.stats();
    assert_eq!(stats.reads, 4);
    assert_eq!(end, stats.read_time, "depth 1 serializes everything");
    assert_eq!(stats.queue_waits, 3, "all but the first admission wait");
}

#[test]
fn batch_of_one_is_bit_identical_to_a_single_read() {
    // The same op through `read_batch(&[a])` and `read(a)` on identically
    // seeded devices: same clock, same stats, same executor event count.
    let run = |batched: bool| {
        let sim = Sim::new();
        let dev = Rc::new(DeviceService::new(
            sim.clone(),
            &ssd_cfg(8),
            HostId(0),
            IoLog::disabled(),
        ));
        {
            let dev = Rc::clone(&dev);
            sim.spawn(async move {
                if batched {
                    dev.read_batch(&[addr(5)], None).await;
                } else {
                    dev.read(addr(5), None).await;
                }
            });
        }
        let report = sim.run().expect("run");
        let stats = dev.stats();
        sim.shutdown();
        (report.end_time, report.events, format!("{stats:?}"))
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn read_batch_dedups_repeated_addresses_to_one_command_per_lba() {
    // Repeats inside one op collapse: one device command and one iolog
    // entry per distinct LBA, in first-occurrence order.
    let sim = Sim::new();
    let log = IoLog::new();
    let dev = Rc::new(DeviceService::new(
        sim.clone(),
        &ssd_cfg(32),
        HostId(0),
        log.clone(),
    ));
    let a = addr(10);
    let b = addr(11);
    let c = addr(12);
    {
        let dev = Rc::clone(&dev);
        sim.spawn(async move {
            dev.read_batch(&[a, b, a, c, b, a], None).await;
        });
    }
    sim.run().expect("run");
    sim.shutdown();
    let stats = dev.stats();
    assert_eq!(stats.reads, 3, "one command per distinct LBA");
    assert_eq!(
        stats.read_hist.count(),
        3,
        "histogram entries match the deduped command count"
    );
    let lbas: Vec<u64> = log.take().into_iter().map(|e| e.lba).collect();
    assert_eq!(
        lbas,
        vec![dev.lba(a), dev.lba(b), dev.lba(c)],
        "iolog records each distinct LBA once, first-occurrence order"
    );
}

#[test]
fn persistent_writes_enqueue_data_and_metadata_as_a_two_command_batch() {
    // §7.8 persistence: one block write becomes two device commands (data
    // + metadata) that overlap across the NCQ instead of summing serially.
    let cfg = SimConfig {
        flash_model: fcache_device::FlashModel {
            persistent: true,
            ..SimConfig::baseline().flash_model
        },
        ..ssd_cfg(8)
    };
    let sim = Sim::new();
    let log = IoLog::new();
    let dev = Rc::new(DeviceService::new(
        sim.clone(),
        &cfg,
        HostId(0),
        log.clone(),
    ));
    {
        let dev = Rc::clone(&dev);
        sim.spawn(async move {
            dev.write(addr(3), None).await;
        });
    }
    sim.run().expect("run");
    let end = sim.now();
    sim.shutdown();
    let stats = dev.stats();
    assert_eq!(stats.writes, 2, "data + metadata commands both recorded");
    assert_eq!(log.len(), 1, "still one logical block write in the iolog");
    assert!(
        end < stats.write_time,
        "the two commands overlap: elapsed {end:?} vs summed {:?}",
        stats.write_time
    );
}

mod batch_conservation {
    use super::*;
    use fcache::DeviceStatsSnapshot;
    use fcache_des::SimTime;
    use proptest::prelude::*;

    /// Runs the same read commands either as one `read_batch` or serially
    /// (one `read` per distinct LBA, first-occurrence order) on an
    /// identically seeded device; returns the clock and frozen stats.
    fn run_commands(blocks: &[u32], depth: usize, batched: bool) -> (SimTime, DeviceStatsSnapshot) {
        let sim = Sim::new();
        let dev = Rc::new(DeviceService::new(
            sim.clone(),
            &ssd_cfg(depth),
            HostId(0),
            IoLog::disabled(),
        ));
        let addrs: Vec<BlockAddr> = blocks.iter().map(|&b| addr(b)).collect();
        let mut distinct: Vec<BlockAddr> = Vec::new();
        for &a in &addrs {
            if !distinct.iter().any(|&d| dev.lba(d) == dev.lba(a)) {
                distinct.push(a);
            }
        }
        {
            let dev = Rc::clone(&dev);
            sim.spawn(async move {
                if batched {
                    dev.read_batch(&addrs, None).await;
                } else {
                    for &a in &distinct {
                        dev.read(a, None).await;
                    }
                }
            });
        }
        sim.run().expect("run");
        let end = sim.now();
        let stats = dev.stats();
        sim.shutdown();
        (end, stats)
    }

    // Overlapped submission must conserve per-command accounting exactly:
    // batch vs serial draw the same service times from identically seeded
    // devices, so the histograms — and every total derived from them —
    // match bucket for bucket, while the batch clock never exceeds the
    // serial clock.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn batched_histograms_conserve_totals_vs_serial(
            blocks in proptest::collection::vec(0u32..600, 1..24),
            depth in 1usize..12,
        ) {
            let (batch_end, batch) = run_commands(&blocks, depth, true);
            let (serial_end, serial) = run_commands(&blocks, depth, false);
            prop_assert_eq!(batch.reads, serial.reads);
            prop_assert_eq!(batch.read_time, serial.read_time);
            prop_assert_eq!(batch.read_hist, serial.read_hist);
            prop_assert_eq!(batch.read_hist.count(), batch.reads);
            prop_assert!(batch_end <= serial_end);
        }
    }
}

#[test]
fn flat_service_charges_exact_model_latencies_and_no_stats() {
    let cfg = SimConfig {
        flash_size: ByteSize::mib(16),
        ..SimConfig::baseline()
    };
    let sim = Sim::new();
    let dev = Rc::new(DeviceService::new(
        sim.clone(),
        &cfg,
        HostId(0),
        IoLog::disabled(),
    ));
    assert!(!dev.is_queued());
    assert_eq!(
        dev.try_flat_read(addr(1)),
        Some(cfg.flash_model.read_latency())
    );
    {
        let dev = Rc::clone(&dev);
        sim.spawn(async move {
            dev.read(addr(0), None).await;
            dev.write(addr(1), None).await;
            dev.read_batch(&[addr(2), addr(3), addr(4)], None).await;
        });
    }
    sim.run().expect("run");
    let end = sim.now();
    sim.shutdown();
    // 4 reads' worth (1 + batch of 3) + 1 write, all at Table 1 rates.
    let want = cfg.flash_model.read_latency().times(4) + cfg.flash_model.write_latency();
    assert_eq!(end, want);
    assert_eq!(dev.stats().ops(), 0, "flat mode keeps no device stats");
    assert!(dev.take_windows().is_none());
}

#[test]
fn ssd_runs_shift_latency_and_populate_device_stats() {
    // End-to-end: the same trace under flat vs SSD timing. SSD timing must
    // fill the device histograms/queue stats and shift the clock — that
    // interleaving (and thus policy behavior) moves with device timing is
    // precisely why the paper's trade-offs warrant re-examination.
    let wb = Workbench::new(4096, 42);
    let trace = wb.make_trace(&WorkloadSpec::baseline_60g());
    let flat_cfg = SimConfig::baseline().scaled_down(4096);
    let ssd_cfg = SimConfig {
        flash_timing: FlashTiming::Ssd(SsdConfig::auto()),
        ..SimConfig::baseline()
    }
    .scaled_down(4096);
    let flat = run_trace(&flat_cfg, &trace).expect("flat");
    let ssd = run_trace(&ssd_cfg, &trace).expect("ssd");
    // The trace is fully consumed either way.
    assert_eq!(flat.metrics.read_ops, ssd.metrics.read_ops);
    assert_eq!(flat.metrics.write_ops, ssd.metrics.write_ops);
    assert_eq!(flat.metrics.read_blocks, ssd.metrics.read_blocks);
    assert!(ssd.device.ops() > 0, "ssd mode must record device service");
    assert_eq!(
        ssd.device.reads + ssd.device.writes,
        ssd.device.read_hist.count() + ssd.device.write_hist.count(),
        "histograms cover every serviced op"
    );
    assert!(
        ssd.end_time != flat.end_time,
        "device timing must actually shift the clock"
    );
    assert!(ssd.device.depth_samples > 0);
}

#[test]
fn device_windows_partition_the_run() {
    // Single host, and two hosts whose per-device series must be rebased
    // so the combined report series still tiles contiguously.
    for hosts in [1u16, 2] {
        let wb = Workbench::new(4096, 42);
        let trace = wb.make_trace(&WorkloadSpec {
            hosts,
            ..WorkloadSpec::baseline_60g()
        });
        let cfg = SimConfig {
            flash_timing: FlashTiming::Ssd(SsdConfig::auto()),
            device_window: 500,
            ..SimConfig::baseline()
        }
        .scaled_down(4096);
        let r = run_trace(&cfg, &trace).expect("run");
        let windows = r.device_windows.expect("windows enabled");
        assert!(!windows.is_empty());
        // Windows tile the device I/O sequence without gaps or overlaps,
        // even across the per-host series boundary.
        let mut expected_start = 0u64;
        let mut total = 0u64;
        let mut full = 0usize;
        for w in &windows {
            assert_eq!(
                w.start_io, expected_start,
                "windows must tile contiguously ({hosts} hosts)"
            );
            expected_start += w.reads + w.writes;
            total += w.reads + w.writes;
            full += usize::from(w.reads + w.writes == 500);
        }
        // Windows cover the whole run (warmup included) while aggregate
        // stats reset at warmup end, so windows see at least as many I/Os.
        assert!(total >= r.device.ops(), "windows cover warmup too");
        // All but at most one trailing partial window per host are full.
        assert!(
            full >= windows.len() - hosts as usize,
            "at most one partial window per host"
        );
    }
}
