//! `run_sweep` (parallel) must be observably identical to the serial loop:
//! each simulation is single-threaded and deterministic, so fanning jobs
//! out over worker threads may change only wall-clock time, never results.

use fcache::{
    run_source, run_sweep, run_trace, Architecture, FlashTiming, SimConfig, Workbench, WorkloadSpec,
};
use fcache_device::SsdConfig;
use fcache_types::{ByteSize, SliceSource};

fn sweep_configs() -> Vec<SimConfig> {
    vec![
        SimConfig {
            flash_size: ByteSize::ZERO,
            ..SimConfig::baseline()
        },
        SimConfig::baseline(),
        SimConfig {
            arch: Architecture::Lookaside,
            ..SimConfig::baseline()
        },
        SimConfig {
            arch: Architecture::Unified,
            ..SimConfig::baseline()
        },
    ]
}

#[test]
fn parallel_sweep_reports_are_bit_identical_to_serial() {
    let wb = Workbench::new(4096, 42);
    let trace = wb.make_trace(&WorkloadSpec::baseline_60g());
    let cfgs: Vec<SimConfig> = sweep_configs()
        .into_iter()
        .map(|c| c.scaled_down(4096))
        .collect();

    let serial: Vec<String> = cfgs
        .iter()
        .map(|cfg| format!("{:?}", run_trace(cfg, &trace).expect("serial run")))
        .collect();

    // Force real fan-out even on single-core CI machines, and repeat so a
    // racy slot assignment would have chances to surface.
    for round in 0..3 {
        let jobs: Vec<_> = cfgs.iter().map(|cfg| (cfg.clone(), &trace)).collect();
        let parallel = run_sweep(&jobs, Some(4));
        assert_eq!(parallel.len(), serial.len());
        for (i, result) in parallel.into_iter().enumerate() {
            let got = format!("{:?}", result.expect("parallel run"));
            assert_eq!(
                got, serial[i],
                "round {round}: job {i} diverged between parallel and serial"
            );
        }
    }
}

#[test]
fn sweep_preserves_job_order_not_completion_order() {
    // Jobs of very different lengths: big trace first, tiny trace last.
    // If results were stored by completion order the cheap jobs would
    // finish first and land in the wrong slots.
    let wb = Workbench::new(4096, 7);
    let big = wb.make_trace(&WorkloadSpec::baseline_80g());
    let small = wb.make_trace(&WorkloadSpec {
        working_set: ByteSize::gib(5),
        seed: 5,
        ..WorkloadSpec::default()
    });
    let cfg = SimConfig::baseline().scaled_down(4096);
    let jobs = vec![
        (cfg.clone(), &big),
        (cfg.clone(), &small),
        (cfg.clone(), &big),
        (cfg.clone(), &small),
    ];
    let results = run_sweep(&jobs, Some(4));
    let blocks: Vec<u64> = results
        .into_iter()
        .map(|r| {
            let m = r.expect("run").metrics;
            m.read_blocks + m.write_blocks
        })
        .collect();
    assert_eq!(blocks[0], blocks[2], "same job, same slot, same result");
    assert_eq!(blocks[1], blocks[3]);
    assert!(
        blocks[0] > blocks[1],
        "80 GiB trace must move more blocks than the 5 GiB trace"
    );
}

#[test]
fn sweep_results_match_streamed_replay_of_the_same_trace() {
    // The parallel sweep replays the shared trace through per-thread
    // cursors; feeding the same trace through the chunked stream path must
    // land on the same reports, so sweeps and streamed replays are
    // interchangeable evidence.
    let wb = Workbench::new(4096, 42);
    let trace = wb.make_trace(&WorkloadSpec::baseline_60g());
    let cfgs: Vec<SimConfig> = sweep_configs()
        .into_iter()
        .map(|c| c.scaled_down(4096))
        .collect();
    let jobs: Vec<_> = cfgs.iter().map(|cfg| (cfg.clone(), &trace)).collect();
    let swept = run_sweep(&jobs, Some(4));
    for (cfg, swept) in cfgs.iter().zip(swept) {
        let mut src = SliceSource::new(&trace);
        let streamed = run_source(cfg, &mut src).expect("streamed run");
        assert_eq!(
            format!("{:?}", swept.expect("sweep run")),
            format!("{streamed:?}"),
            "sweep and streamed replay diverged for {:?}/{}",
            cfg.arch,
            cfg.flash_size,
        );
    }
}

fn ssd_sweep_configs() -> Vec<SimConfig> {
    // Queue-aware device timing across all three architectures plus a
    // narrow-queue variant (heavy backpressure exercises the waiter path).
    let mut cfgs: Vec<SimConfig> = [
        Architecture::Naive,
        Architecture::Lookaside,
        Architecture::Unified,
    ]
    .into_iter()
    .map(|arch| SimConfig {
        arch,
        flash_timing: FlashTiming::Ssd(SsdConfig::auto()),
        device_window: 1000,
        ..SimConfig::baseline()
    })
    .collect();
    cfgs.push(SimConfig {
        flash_timing: FlashTiming::Ssd(SsdConfig {
            queue_depth: 1,
            ..SsdConfig::auto()
        }),
        ..SimConfig::baseline()
    });
    cfgs
}

#[test]
fn ssd_timing_is_deterministic_across_parallel_serial_and_repeat_runs() {
    // The queue-aware device draws service times from per-host RNGs; the
    // whole pipeline must stay bit-identical serial vs `run_sweep`, and
    // across repeated runs of the same seed (windows included — they ride
    // in the report Debug output).
    let wb = Workbench::new(4096, 42);
    let trace = wb.make_trace(&WorkloadSpec::baseline_60g());
    let cfgs: Vec<SimConfig> = ssd_sweep_configs()
        .into_iter()
        .map(|c| c.scaled_down(4096))
        .collect();

    let serial: Vec<String> = cfgs
        .iter()
        .map(|cfg| format!("{:?}", run_trace(cfg, &trace).expect("serial ssd run")))
        .collect();
    // The device actually engaged (otherwise this test pins nothing).
    assert!(
        serial.iter().all(|s| !s.contains("reads: 0, writes: 0")),
        "ssd sweep must service device ops"
    );

    // Repeated serial runs: same seed, same reports.
    for (cfg, want) in cfgs.iter().zip(&serial) {
        let again = format!("{:?}", run_trace(cfg, &trace).expect("repeat ssd run"));
        assert_eq!(&again, want, "repeat run diverged for {:?}", cfg.arch);
    }

    // Parallel fan-out: bit-identical to the serial loop, thrice.
    for round in 0..3 {
        let jobs: Vec<_> = cfgs.iter().map(|cfg| (cfg.clone(), &trace)).collect();
        let parallel = run_sweep(&jobs, Some(4));
        for (i, result) in parallel.into_iter().enumerate() {
            let got = format!("{:?}", result.expect("parallel ssd run"));
            assert_eq!(
                got, serial[i],
                "round {round}: ssd job {i} diverged between parallel and serial"
            );
        }
    }

    // And the streamed feed agrees with the cursor feed under ssd timing.
    for (cfg, want) in cfgs.iter().zip(&serial) {
        let mut src = SliceSource::new(&trace);
        let streamed = format!("{:?}", run_source(cfg, &mut src).expect("streamed ssd run"));
        assert_eq!(&streamed, want, "streamed diverged for {:?}", cfg.arch);
    }
}

#[test]
fn workbench_sweep_matches_run_with_trace() {
    let wb = Workbench::new(8192, 11);
    let trace = wb.make_trace(&WorkloadSpec {
        working_set: ByteSize::gib(20),
        seed: 20,
        ..WorkloadSpec::default()
    });
    let cfgs = sweep_configs();
    let swept = wb.run_sweep_with_trace(&cfgs, &trace);
    for (cfg, got) in cfgs.iter().zip(swept) {
        let want = wb.run_with_trace(cfg, &trace).expect("serial");
        assert_eq!(
            format!("{:?}", got.expect("sweep")),
            format!("{want:?}"),
            "Workbench::run_sweep_with_trace diverged for {:?}",
            cfg.arch
        );
    }
}
