//! Sweeps (parallel fan-out, any [`Workload`] kind) must be observably
//! identical to the serial loop: each simulation is single-threaded and
//! deterministic, so fanning jobs out over worker threads — or swapping a
//! resident trace for a per-job regenerated stream or a chunked file
//! replay — may change only wall-clock time and memory, never results.

use std::sync::Mutex;

use fcache::{
    run_source, run_sweep, run_trace, Architecture, FlashTiming, SimConfig, Sweep, Workbench,
    Workload, WorkloadSpec,
};
use fcache_device::SsdConfig;
use fcache_types::{ByteSize, FaultPlan, SliceSource};

fn sweep_configs() -> Vec<SimConfig> {
    vec![
        SimConfig {
            flash_size: ByteSize::ZERO,
            ..SimConfig::baseline()
        },
        SimConfig::baseline(),
        SimConfig {
            arch: Architecture::Lookaside,
            ..SimConfig::baseline()
        },
        SimConfig {
            arch: Architecture::Unified,
            ..SimConfig::baseline()
        },
    ]
}

#[test]
fn parallel_sweep_reports_are_bit_identical_to_serial() {
    let wb = Workbench::new(4096, 42);
    let trace = wb.make_trace(&WorkloadSpec::baseline_60g());
    let cfgs: Vec<SimConfig> = sweep_configs()
        .into_iter()
        .map(|c| c.scaled_down(4096))
        .collect();

    let serial: Vec<String> = cfgs
        .iter()
        .map(|cfg| format!("{:?}", run_trace(cfg, &trace).expect("serial run")))
        .collect();

    // Force real fan-out even on single-core CI machines, and repeat so a
    // racy slot assignment would have chances to surface.
    for round in 0..3 {
        let jobs: Vec<_> = cfgs.iter().map(|cfg| (cfg.clone(), &trace)).collect();
        let parallel = run_sweep(&jobs, Some(4));
        assert_eq!(parallel.len(), serial.len());
        for (i, result) in parallel.into_iter().enumerate() {
            let got = format!("{:?}", result.expect("parallel run"));
            assert_eq!(
                got, serial[i],
                "round {round}: job {i} diverged between parallel and serial"
            );
        }
    }
}

#[test]
fn sweep_preserves_job_order_not_completion_order() {
    // Jobs of very different lengths: big trace first, tiny trace last.
    // If results were stored by completion order the cheap jobs would
    // finish first and land in the wrong slots.
    let wb = Workbench::new(4096, 7);
    let big = wb.make_trace(&WorkloadSpec::baseline_80g());
    let small = wb.make_trace(&WorkloadSpec {
        working_set: ByteSize::gib(5),
        seed: 5,
        ..WorkloadSpec::default()
    });
    let cfg = SimConfig::baseline().scaled_down(4096);
    let jobs = vec![
        (cfg.clone(), &big),
        (cfg.clone(), &small),
        (cfg.clone(), &big),
        (cfg.clone(), &small),
    ];
    let results = run_sweep(&jobs, Some(4));
    let blocks: Vec<u64> = results
        .into_iter()
        .map(|r| {
            let m = r.expect("run").metrics;
            m.read_blocks + m.write_blocks
        })
        .collect();
    assert_eq!(blocks[0], blocks[2], "same job, same slot, same result");
    assert_eq!(blocks[1], blocks[3]);
    assert!(
        blocks[0] > blocks[1],
        "80 GiB trace must move more blocks than the 5 GiB trace"
    );
}

#[test]
fn sweep_results_match_streamed_replay_of_the_same_trace() {
    // The parallel sweep replays the shared trace through per-thread
    // cursors; feeding the same trace through the chunked stream path must
    // land on the same reports, so sweeps and streamed replays are
    // interchangeable evidence.
    let wb = Workbench::new(4096, 42);
    let trace = wb.make_trace(&WorkloadSpec::baseline_60g());
    let cfgs: Vec<SimConfig> = sweep_configs()
        .into_iter()
        .map(|c| c.scaled_down(4096))
        .collect();
    let jobs: Vec<_> = cfgs.iter().map(|cfg| (cfg.clone(), &trace)).collect();
    let swept = run_sweep(&jobs, Some(4));
    for (cfg, swept) in cfgs.iter().zip(swept) {
        let mut src = SliceSource::new(&trace);
        let streamed = run_source(cfg, &mut src).expect("streamed run");
        assert_eq!(
            format!("{:?}", swept.expect("sweep run")),
            format!("{streamed:?}"),
            "sweep and streamed replay diverged for {:?}/{}",
            cfg.arch,
            cfg.flash_size,
        );
    }
}

fn ssd_sweep_configs() -> Vec<SimConfig> {
    // Queue-aware device timing across all three architectures plus a
    // narrow-queue variant (heavy backpressure exercises the waiter path).
    let mut cfgs: Vec<SimConfig> = [
        Architecture::Naive,
        Architecture::Lookaside,
        Architecture::Unified,
    ]
    .into_iter()
    .map(|arch| SimConfig {
        arch,
        flash_timing: FlashTiming::Ssd(SsdConfig::auto()),
        device_window: 1000,
        ..SimConfig::baseline()
    })
    .collect();
    cfgs.push(SimConfig {
        flash_timing: FlashTiming::Ssd(SsdConfig {
            queue_depth: 1,
            ..SsdConfig::auto()
        }),
        ..SimConfig::baseline()
    });
    cfgs
}

#[test]
fn ssd_timing_is_deterministic_across_parallel_serial_and_repeat_runs() {
    // The queue-aware device draws service times from per-host RNGs; the
    // whole pipeline must stay bit-identical serial vs the `Sweep`
    // fan-out, and across repeated runs of the same seed (windows
    // included — they ride in the report Debug output).
    let wb = Workbench::new(4096, 42);
    let trace = wb.make_trace(&WorkloadSpec::baseline_60g());
    let cfgs: Vec<SimConfig> = ssd_sweep_configs()
        .into_iter()
        .map(|c| c.scaled_down(4096))
        .collect();

    let serial: Vec<String> = cfgs
        .iter()
        .map(|cfg| format!("{:?}", run_trace(cfg, &trace).expect("serial ssd run")))
        .collect();
    // The device actually engaged (otherwise this test pins nothing).
    assert!(
        serial.iter().all(|s| !s.contains("reads: 0, writes: 0")),
        "ssd sweep must service device ops"
    );

    // Repeated serial runs: same seed, same reports.
    for (cfg, want) in cfgs.iter().zip(&serial) {
        let again = format!("{:?}", run_trace(cfg, &trace).expect("repeat ssd run"));
        assert_eq!(&again, want, "repeat run diverged for {:?}", cfg.arch);
    }

    // Parallel fan-out through the builder: bit-identical to the serial
    // loop, thrice.
    for round in 0..3 {
        let parallel = Sweep::over(Workload::trace(&trace))
            .configs(cfgs.iter().cloned())
            .threads(4)
            .run();
        for (i, item) in parallel.into_iter().enumerate() {
            let report = item.report.expect("parallel ssd run");
            assert_eq!(
                format!("{report:?}"),
                serial[i],
                "round {round}: ssd job {i} diverged between parallel and serial"
            );
        }
    }

    // And the streamed feed agrees with the cursor feed under ssd timing.
    for (cfg, want) in cfgs.iter().zip(&serial) {
        let mut src = SliceSource::new(&trace);
        let streamed = format!("{:?}", run_source(cfg, &mut src).expect("streamed ssd run"));
        assert_eq!(&streamed, want, "streamed diverged for {:?}", cfg.arch);
    }
}

#[test]
fn workbench_sweep_matches_run_with_trace() {
    let wb = Workbench::new(8192, 11);
    let trace = wb.make_trace(&WorkloadSpec {
        working_set: ByteSize::gib(20),
        seed: 20,
        ..WorkloadSpec::default()
    });
    let cfgs = sweep_configs();
    let swept = wb.run_sweep_with_trace(&cfgs, &trace);
    assert_eq!(swept.len(), cfgs.len());
    for (i, (cfg, got)) in cfgs.iter().zip(swept).enumerate() {
        let want = wb.run_with_trace(cfg, &trace).expect("serial");
        assert!(
            got.label.starts_with(&format!("#{i} ")),
            "auto label keeps job order: {}",
            got.label
        );
        assert_eq!(
            format!("{:?}", got.report.expect("sweep")),
            format!("{want:?}"),
            "Workbench::run_sweep_with_trace diverged for {:?}",
            cfg.arch
        );
    }
}

/// A 16-point configuration grid (2 architectures × 4 flash sizes × 2 RAM
/// sizes) at paper scale, under the given device-timing mode.
fn grid16(timing: &FlashTiming) -> Vec<SimConfig> {
    let mut cfgs = Vec::new();
    for arch in [Architecture::Naive, Architecture::Unified] {
        for flash_gib in [0u64, 16, 32, 64] {
            for ram_gib in [4u64, 8] {
                cfgs.push(SimConfig {
                    arch,
                    flash_size: ByteSize::gib(flash_gib),
                    ram_size: ByteSize::gib(ram_gib),
                    flash_timing: timing.clone(),
                    ..SimConfig::baseline()
                });
            }
        }
    }
    cfgs
}

#[test]
fn streamed_workload_sweeps_are_bit_identical_to_materialized_sweeps() {
    // The ROADMAP "fully streamed sweeps" acceptance: a 16-config sweep
    // whose jobs each regenerate their own `TraceStream` (never holding
    // the full trace resident) must produce reports bit-identical —
    // including event counts — to the same sweep over one materialized
    // trace, across ≥2 seeds and both `flash_timing` modes.
    for seed in [42u64, 1301] {
        for timing in [FlashTiming::Flat, FlashTiming::Ssd(SsdConfig::auto())] {
            let wb = Workbench::new(4096, seed);
            let spec = WorkloadSpec {
                working_set: ByteSize::gib(10),
                seed: seed ^ 0x5eed,
                ..WorkloadSpec::default()
            };
            let cfgs = grid16(&timing);
            assert_eq!(cfgs.len(), 16);

            let trace = wb.make_trace(&spec);
            let materialized = wb.sweep(&cfgs, Workload::trace(&trace)).threads(4).run();

            let streamed_workload = wb.workload(&spec);
            assert!(
                streamed_workload.is_streamed(),
                "workbench workloads regenerate per job"
            );
            let streamed = wb.sweep(&cfgs, streamed_workload).threads(4).run();

            assert_eq!(materialized.len(), 16);
            assert_eq!(streamed.len(), 16);
            for (m, s) in materialized.into_iter().zip(streamed) {
                assert_eq!(m.label, s.label);
                assert_eq!(
                    format!("{:?}", s.report.expect("streamed job")),
                    format!("{:?}", m.report.expect("materialized job")),
                    "streamed sweep diverged from materialized for {} (seed {seed}, {timing:?})",
                    m.label,
                );
            }
        }
    }
}

#[test]
fn file_workload_sweeps_are_bit_identical_to_materialized_sweeps() {
    let wb = Workbench::new(4096, 17);
    let spec = WorkloadSpec {
        working_set: ByteSize::gib(10),
        seed: 23,
        ..WorkloadSpec::default()
    };
    let trace = wb.make_trace(&spec);
    let path = std::env::temp_dir().join("fcache_sweep_file_workload.bin");
    let mut buf = Vec::new();
    trace.encode(&mut buf).expect("encode");
    std::fs::write(&path, &buf).expect("write archive");

    let cfgs = sweep_configs();
    let materialized = wb.run_sweep_with_trace(&cfgs, &trace);
    let filed = wb.sweep(&cfgs, Workload::file(&path)).threads(4).run();
    let _ = std::fs::remove_file(&path);

    for (m, f) in materialized.into_iter().zip(filed) {
        assert_eq!(
            format!("{:?}", f.report.expect("file job")),
            format!("{:?}", m.report.expect("materialized job")),
            "file-workload sweep diverged for {}",
            m.label,
        );
    }
}

/// Fault plans spanning every target and kind, across architectures and
/// degraded policies (queue is the default; failfast adds the give-up
/// paths to the determinism surface).
fn faulted_configs() -> Vec<SimConfig> {
    let plan = |spec: &str| FaultPlan::parse(spec).expect("valid spec");
    let mut failfast = SimConfig {
        arch: Architecture::Unified,
        fault_plan: plan("filer:outage@40s-60s;net:err0.2@20s-80s"),
        ..SimConfig::baseline()
    };
    failfast.robustness.degraded = fcache::DegradedPolicy::FailFast;
    vec![
        SimConfig {
            fault_plan: plan("filer:outage@40s-60s"),
            ..SimConfig::baseline()
        },
        failfast,
        SimConfig {
            arch: Architecture::Lookaside,
            fault_plan: plan("net-up:slowx4@10s-30s;filer:err0.1@~3x5s/30s"),
            ..SimConfig::baseline()
        },
        SimConfig {
            flash_timing: FlashTiming::Ssd(SsdConfig::auto()),
            fault_plan: plan("device:slowx8@10s-50s;filer:outage@60s-70s"),
            ..SimConfig::baseline()
        },
        // Sharded remote tier: a mid-run shard outage with failover and
        // recovery re-replication, hedged reads racing replicas...
        SimConfig {
            shards: 4,
            replicas: 2,
            hedge: Some(fcache_device::SimTime::from_micros(150)),
            fault_plan: plan("shard1:outage@40s-60s"),
            ..SimConfig::baseline()
        },
        // ...and a whole-tier shard fault mixed with a flaky network.
        SimConfig {
            arch: Architecture::Unified,
            shards: 2,
            replicas: 2,
            fault_plan: plan("shard*:slowx4@20s-40s;net:err0.2@50s-80s"),
            ..SimConfig::baseline()
        },
    ]
}

#[test]
fn faulted_sweeps_are_bit_identical_serial_parallel_and_streamed() {
    // Fault handling draws from seeded RNGs and parks tasks on the sim
    // clock, so it must stay inside the determinism envelope: a faulted
    // job produces one report, no matter how the sweep is driven.
    let wb = Workbench::new(4096, 42);
    let trace = wb.make_trace(&WorkloadSpec::baseline_60g());
    let cfgs: Vec<SimConfig> = faulted_configs()
        .into_iter()
        .map(|c| c.scaled_down(4096))
        .collect();

    let serial: Vec<String> = cfgs
        .iter()
        .map(|cfg| format!("{:?}", run_trace(cfg, &trace).expect("serial faulted run")))
        .collect();
    // The faults actually engaged (otherwise this pins nothing): no
    // report carries an idle robustness section in its Debug output.
    let idle = format!("{:?}", fcache::RobustnessStats::default());
    for (cfg, s) in cfgs.iter().zip(&serial) {
        assert!(
            !s.contains(&idle),
            "fault plan {:?} never engaged",
            cfg.fault_plan.describe()
        );
    }

    for round in 0..3 {
        let jobs: Vec<_> = cfgs.iter().map(|cfg| (cfg.clone(), &trace)).collect();
        let parallel = run_sweep(&jobs, Some(4));
        for (i, result) in parallel.into_iter().enumerate() {
            assert_eq!(
                format!("{:?}", result.expect("parallel faulted run")),
                serial[i],
                "round {round}: faulted job {i} diverged between parallel and serial"
            );
        }
    }

    for (cfg, want) in cfgs.iter().zip(&serial) {
        let mut src = SliceSource::new(&trace);
        let streamed = format!(
            "{:?}",
            run_source(cfg, &mut src).expect("streamed faulted run")
        );
        assert_eq!(
            &streamed,
            want,
            "streamed faulted run diverged for {:?}",
            cfg.fault_plan.describe()
        );
    }
}

#[test]
fn result_sink_spills_every_report_exactly_once() {
    // Incremental spilling: with a sink attached, reports stream out as
    // jobs finish and the returned results retain only job context — and
    // the spilled reports are the same bit-identical reports a collecting
    // sweep returns.
    let wb = Workbench::new(4096, 42);
    let trace = wb.make_trace(&WorkloadSpec::baseline_60g());
    let cfgs = sweep_configs();

    let collected = wb.run_sweep_with_trace(&cfgs, &trace);
    let want: Vec<String> = collected
        .into_iter()
        .map(|item| format!("{:?}", item.report.expect("collected run")))
        .collect();

    let spilled = Mutex::new(vec![None; cfgs.len()]);
    let mut sink = fcache::sink_fn(|row: fcache::ResultRow| {
        let mut slots = spilled.lock().unwrap();
        assert!(
            slots[row.index].is_none(),
            "job {} delivered twice",
            row.index
        );
        slots[row.index] = Some(format!("{:?}", row.report));
    });
    let results = wb
        .sweep(&cfgs, Workload::trace(&trace))
        .threads(4)
        .sink(&mut sink)
        .run();

    assert!(results.spilled_to_sink());
    assert!(results.sink_error().is_none());
    for item in &results {
        assert!(item.is_ok());
        assert!(
            item.report.is_none(),
            "spilled sweeps must not retain reports ({})",
            item.label
        );
    }
    let spilled = spilled.into_inner().unwrap();
    for (i, got) in spilled.into_iter().enumerate() {
        assert_eq!(
            got.expect("every job delivered"),
            want[i],
            "sink row {i} diverged from the collecting sweep"
        );
    }
}
