//! `run_sweep` (parallel) must be observably identical to the serial loop:
//! each simulation is single-threaded and deterministic, so fanning jobs
//! out over worker threads may change only wall-clock time, never results.

use fcache::{run_source, run_sweep, run_trace, Architecture, SimConfig, Workbench, WorkloadSpec};
use fcache_types::{ByteSize, SliceSource};

fn sweep_configs() -> Vec<SimConfig> {
    vec![
        SimConfig {
            flash_size: ByteSize::ZERO,
            ..SimConfig::baseline()
        },
        SimConfig::baseline(),
        SimConfig {
            arch: Architecture::Lookaside,
            ..SimConfig::baseline()
        },
        SimConfig {
            arch: Architecture::Unified,
            ..SimConfig::baseline()
        },
    ]
}

#[test]
fn parallel_sweep_reports_are_bit_identical_to_serial() {
    let wb = Workbench::new(4096, 42);
    let trace = wb.make_trace(&WorkloadSpec::baseline_60g());
    let cfgs: Vec<SimConfig> = sweep_configs()
        .into_iter()
        .map(|c| c.scaled_down(4096))
        .collect();

    let serial: Vec<String> = cfgs
        .iter()
        .map(|cfg| format!("{:?}", run_trace(cfg, &trace).expect("serial run")))
        .collect();

    // Force real fan-out even on single-core CI machines, and repeat so a
    // racy slot assignment would have chances to surface.
    for round in 0..3 {
        let jobs: Vec<_> = cfgs.iter().map(|cfg| (cfg.clone(), &trace)).collect();
        let parallel = run_sweep(&jobs, Some(4));
        assert_eq!(parallel.len(), serial.len());
        for (i, result) in parallel.into_iter().enumerate() {
            let got = format!("{:?}", result.expect("parallel run"));
            assert_eq!(
                got, serial[i],
                "round {round}: job {i} diverged between parallel and serial"
            );
        }
    }
}

#[test]
fn sweep_preserves_job_order_not_completion_order() {
    // Jobs of very different lengths: big trace first, tiny trace last.
    // If results were stored by completion order the cheap jobs would
    // finish first and land in the wrong slots.
    let wb = Workbench::new(4096, 7);
    let big = wb.make_trace(&WorkloadSpec::baseline_80g());
    let small = wb.make_trace(&WorkloadSpec {
        working_set: ByteSize::gib(5),
        seed: 5,
        ..WorkloadSpec::default()
    });
    let cfg = SimConfig::baseline().scaled_down(4096);
    let jobs = vec![
        (cfg.clone(), &big),
        (cfg.clone(), &small),
        (cfg.clone(), &big),
        (cfg.clone(), &small),
    ];
    let results = run_sweep(&jobs, Some(4));
    let blocks: Vec<u64> = results
        .into_iter()
        .map(|r| {
            let m = r.expect("run").metrics;
            m.read_blocks + m.write_blocks
        })
        .collect();
    assert_eq!(blocks[0], blocks[2], "same job, same slot, same result");
    assert_eq!(blocks[1], blocks[3]);
    assert!(
        blocks[0] > blocks[1],
        "80 GiB trace must move more blocks than the 5 GiB trace"
    );
}

#[test]
fn sweep_results_match_streamed_replay_of_the_same_trace() {
    // The parallel sweep replays the shared trace through per-thread
    // cursors; feeding the same trace through the chunked stream path must
    // land on the same reports, so sweeps and streamed replays are
    // interchangeable evidence.
    let wb = Workbench::new(4096, 42);
    let trace = wb.make_trace(&WorkloadSpec::baseline_60g());
    let cfgs: Vec<SimConfig> = sweep_configs()
        .into_iter()
        .map(|c| c.scaled_down(4096))
        .collect();
    let jobs: Vec<_> = cfgs.iter().map(|cfg| (cfg.clone(), &trace)).collect();
    let swept = run_sweep(&jobs, Some(4));
    for (cfg, swept) in cfgs.iter().zip(swept) {
        let mut src = SliceSource::new(&trace);
        let streamed = run_source(cfg, &mut src).expect("streamed run");
        assert_eq!(
            format!("{:?}", swept.expect("sweep run")),
            format!("{streamed:?}"),
            "sweep and streamed replay diverged for {:?}/{}",
            cfg.arch,
            cfg.flash_size,
        );
    }
}

#[test]
fn workbench_sweep_matches_run_with_trace() {
    let wb = Workbench::new(8192, 11);
    let trace = wb.make_trace(&WorkloadSpec {
        working_set: ByteSize::gib(20),
        seed: 20,
        ..WorkloadSpec::default()
    });
    let cfgs = sweep_configs();
    let swept = wb.run_sweep_with_trace(&cfgs, &trace);
    for (cfg, got) in cfgs.iter().zip(swept) {
        let want = wb.run_with_trace(cfg, &trace).expect("serial");
        assert_eq!(
            format!("{:?}", got.expect("sweep")),
            format!("{want:?}"),
            "Workbench::run_sweep_with_trace diverged for {:?}",
            cfg.arch
        );
    }
}
