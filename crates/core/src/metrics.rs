//! Application-level metrics.
//!
//! "In evaluating possible configurations, we use the latency experienced
//! by the application as the governing metric." (§7). Latencies are
//! accumulated per block (operations span several blocks; every figure in
//! the paper reports per-block application latency — e.g. the no-flash read
//! plateau of ≈0.9 ms equals exactly one expected filer block read).

use std::cell::Cell;
use std::rc::Rc;

use fcache_des::SimTime;
use fcache_types::OpKind;

use crate::histogram::{HistogramSnapshot, LatencyHistogram};

/// Shared metrics sink; clones share the underlying counters.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Rc<MetricsInner>,
}

#[derive(Default)]
struct MetricsInner {
    read_ops: Cell<u64>,
    write_ops: Cell<u64>,
    read_blocks: Cell<u64>,
    write_blocks: Cell<u64>,
    read_latency: Cell<u64>,  // ns, summed per op
    write_latency: Cell<u64>, // ns
    // Consistency probe (§3.8): application-level block writes, and how
    // many triggered an invalidation at some other host.
    tracked_writes: Cell<u64>,
    writes_invalidating: Cell<u64>,
    invalidated_blocks: Cell<u64>,
    // Per-operation latency distributions.
    read_hist: LatencyHistogram,
    write_hist: LatencyHistogram,
}

impl Metrics {
    /// Creates a fresh sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed application operation.
    pub fn record_op(&self, kind: OpKind, latency: SimTime, blocks: u32) {
        let i = &self.inner;
        match kind {
            OpKind::Read => {
                i.read_ops.set(i.read_ops.get() + 1);
                i.read_blocks.set(i.read_blocks.get() + u64::from(blocks));
                i.read_latency
                    .set(i.read_latency.get() + latency.as_nanos());
                i.read_hist.record(latency);
            }
            OpKind::Write => {
                i.write_ops.set(i.write_ops.get() + 1);
                i.write_blocks.set(i.write_blocks.get() + u64::from(blocks));
                i.write_latency
                    .set(i.write_latency.get() + latency.as_nanos());
                i.write_hist.record(latency);
            }
        }
    }

    /// Records the consistency outcome of one application block write.
    pub fn record_block_write(&self, invalidated_elsewhere: u64) {
        let i = &self.inner;
        i.tracked_writes.set(i.tracked_writes.get() + 1);
        if invalidated_elsewhere > 0 {
            i.writes_invalidating.set(i.writes_invalidating.get() + 1);
            i.invalidated_blocks
                .set(i.invalidated_blocks.get() + invalidated_elsewhere);
        }
    }

    /// Snapshot of the counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let i = &self.inner;
        MetricsSnapshot {
            read_ops: i.read_ops.get(),
            write_ops: i.write_ops.get(),
            read_blocks: i.read_blocks.get(),
            write_blocks: i.write_blocks.get(),
            read_latency: SimTime::from_nanos(i.read_latency.get()),
            write_latency: SimTime::from_nanos(i.write_latency.get()),
            tracked_writes: i.tracked_writes.get(),
            writes_invalidating: i.writes_invalidating.get(),
            invalidated_blocks: i.invalidated_blocks.get(),
            read_hist: i.read_hist.snapshot(),
            write_hist: i.write_hist.snapshot(),
        }
    }

    /// Zeroes every counter (called when warmup ends).
    pub fn reset(&self) {
        let i = &self.inner;
        i.read_ops.set(0);
        i.write_ops.set(0);
        i.read_blocks.set(0);
        i.write_blocks.set(0);
        i.read_latency.set(0);
        i.write_latency.set(0);
        i.tracked_writes.set(0);
        i.writes_invalidating.set(0);
        i.invalidated_blocks.set(0);
        i.read_hist.reset();
        i.write_hist.reset();
    }
}

/// Immutable view of the metric counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Completed read operations.
    pub read_ops: u64,
    /// Completed write operations.
    pub write_ops: u64,
    /// Blocks read.
    pub read_blocks: u64,
    /// Blocks written.
    pub write_blocks: u64,
    /// Sum of read operation latencies.
    pub read_latency: SimTime,
    /// Sum of write operation latencies.
    pub write_latency: SimTime,
    /// Application block writes tracked by the consistency probe.
    pub tracked_writes: u64,
    /// Tracked writes that invalidated a copy at another host.
    pub writes_invalidating: u64,
    /// Total remote copies invalidated.
    pub invalidated_blocks: u64,
    /// Per-operation read latency distribution.
    pub read_hist: HistogramSnapshot,
    /// Per-operation write latency distribution.
    pub write_hist: HistogramSnapshot,
}

impl MetricsSnapshot {
    /// Sum of two snapshots, as if both populations had been recorded
    /// into one sink. Every field is a pure counter (or a bucket-wise
    /// histogram), so the fold is exact: merging per-host snapshots
    /// yields bit-for-bit what a single shared sink would have held.
    pub fn merged(&self, other: &Self) -> Self {
        Self {
            read_ops: self.read_ops + other.read_ops,
            write_ops: self.write_ops + other.write_ops,
            read_blocks: self.read_blocks + other.read_blocks,
            write_blocks: self.write_blocks + other.write_blocks,
            read_latency: self.read_latency + other.read_latency,
            write_latency: self.write_latency + other.write_latency,
            tracked_writes: self.tracked_writes + other.tracked_writes,
            writes_invalidating: self.writes_invalidating + other.writes_invalidating,
            invalidated_blocks: self.invalidated_blocks + other.invalidated_blocks,
            read_hist: self.read_hist.merged(&other.read_hist),
            write_hist: self.write_hist.merged(&other.write_hist),
        }
    }

    /// Mean per-block read latency in microseconds.
    pub fn read_latency_us(&self) -> f64 {
        if self.read_blocks == 0 {
            0.0
        } else {
            self.read_latency.as_nanos() as f64 / self.read_blocks as f64 / 1000.0
        }
    }

    /// Mean per-block write latency in microseconds.
    pub fn write_latency_us(&self) -> f64 {
        if self.write_blocks == 0 {
            0.0
        } else {
            self.write_latency.as_nanos() as f64 / self.write_blocks as f64 / 1000.0
        }
    }

    /// Mean per-operation read latency in microseconds.
    pub fn read_latency_per_op_us(&self) -> f64 {
        if self.read_ops == 0 {
            0.0
        } else {
            self.read_latency.as_nanos() as f64 / self.read_ops as f64 / 1000.0
        }
    }

    /// Percentage of application block writes requiring an invalidation
    /// (the y-axis of Figures 11 and 12).
    pub fn invalidation_pct(&self) -> f64 {
        if self.tracked_writes == 0 {
            0.0
        } else {
            100.0 * self.writes_invalidating as f64 / self.tracked_writes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_averages_per_block() {
        let m = Metrics::new();
        m.record_op(OpKind::Read, SimTime::from_micros(100), 4);
        m.record_op(OpKind::Read, SimTime::from_micros(50), 1);
        let s = m.snapshot();
        assert_eq!(s.read_ops, 2);
        assert_eq!(s.read_blocks, 5);
        assert_eq!(s.read_latency_us(), 30.0); // 150 µs / 5 blocks
        assert_eq!(s.read_latency_per_op_us(), 75.0);
        assert_eq!(s.write_ops, 0);
        assert_eq!(s.write_latency_us(), 0.0);
    }

    #[test]
    fn write_counters_separate() {
        let m = Metrics::new();
        m.record_op(OpKind::Write, SimTime::from_micros(10), 2);
        let s = m.snapshot();
        assert_eq!(s.write_ops, 1);
        assert_eq!(s.write_blocks, 2);
        assert_eq!(s.write_latency_us(), 5.0);
        assert_eq!(s.read_ops, 0);
    }

    #[test]
    fn invalidation_percentage() {
        let m = Metrics::new();
        m.record_block_write(0);
        m.record_block_write(2);
        m.record_block_write(1);
        m.record_block_write(0);
        let s = m.snapshot();
        assert_eq!(s.tracked_writes, 4);
        assert_eq!(s.writes_invalidating, 2);
        assert_eq!(s.invalidated_blocks, 3);
        assert_eq!(s.invalidation_pct(), 50.0);
    }

    #[test]
    fn reset_zeroes_all() {
        let m = Metrics::new();
        m.record_op(OpKind::Read, SimTime::from_micros(1), 1);
        m.record_block_write(1);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn clones_share_state() {
        let a = Metrics::new();
        let b = a.clone();
        b.record_op(OpKind::Read, SimTime::from_micros(1), 1);
        assert_eq!(a.snapshot().read_ops, 1);
    }

    #[test]
    fn merged_equals_one_shared_sink() {
        let shared = Metrics::new();
        let a = Metrics::new();
        let b = Metrics::new();
        for (m, host) in [(&a, 0u64), (&b, 1)] {
            m.record_op(OpKind::Read, SimTime::from_micros(40 + host), 2);
            m.record_op(OpKind::Write, SimTime::from_micros(7), 1);
            m.record_block_write(host);
            shared.record_op(OpKind::Read, SimTime::from_micros(40 + host), 2);
            shared.record_op(OpKind::Write, SimTime::from_micros(7), 1);
            shared.record_block_write(host);
        }
        let folded = a.snapshot().merged(&b.snapshot());
        assert_eq!(folded, shared.snapshot());
        // The empty snapshot is the identity.
        assert_eq!(folded.merged(&MetricsSnapshot::default()), folded);
    }

    #[test]
    fn empty_snapshot_is_nan_free() {
        let s = Metrics::new().snapshot();
        assert_eq!(s.read_latency_us(), 0.0);
        assert_eq!(s.invalidation_pct(), 0.0);
    }
}
