//! Simulation configuration.

use fcache_cache::EvictionPolicy;
use fcache_device::{FlashModel, RamModel, SsdConfig};
use fcache_filer::FilerConfig;
use fcache_net::NetConfig;
use fcache_types::{ByteSize, FaultPlan, FleetTopology};

use crate::arch::Architecture;
use crate::policy::WritebackPolicy;
use crate::robust::RobustnessConfig;

/// How flash device time is charged (see `crate::devsvc`).
#[derive(Clone, Debug, Default, PartialEq)]
pub enum FlashTiming {
    /// The paper's constant per-block latencies from the configured
    /// [`FlashModel`] — the default; bit-identical to the pre-service
    /// engine.
    #[default]
    Flat,
    /// The queue-aware behavioral SSD: a bounded NCQ-style service queue
    /// in front of an [`fcache_device::SsdModel`] with FTL map-cache
    /// locality, fill and wear penalties. A `capacity_blocks` of 0 (the
    /// [`SsdConfig::auto`] sentinel) fits the device to the flash tier at
    /// host-build time; each host derives its own deterministic device
    /// seed from the run seed.
    Ssd(SsdConfig),
}

impl FlashTiming {
    /// One-line description of the active device model (printed by
    /// [`SimConfig::timing_table`] and the CLI).
    pub fn describe(&self) -> String {
        match self {
            FlashTiming::Flat => "flat (constant per-block latencies)".to_string(),
            FlashTiming::Ssd(sc) => {
                let capacity = if sc.capacity_blocks == 0 {
                    "auto (flash-sized)".to_string()
                } else {
                    format!("{} blocks", sc.capacity_blocks)
                };
                format!(
                    "ssd (capacity {capacity}, read base {}, write base {}, queue depth {})",
                    sc.read_base, sc.write_base, sc.queue_depth
                )
            }
        }
    }
}

/// Complete configuration of one simulation run.
///
/// Defaults are the paper's baseline (§4, §7.1): the naive architecture
/// with 8 GB of RAM and 64 GB of flash, a one-second periodic RAM writeback
/// ("as this most closely matches real system behavior") and asynchronous
/// write-through for the flash ("the best overall choice").
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Cache architecture (§3.3).
    pub arch: Architecture,
    /// RAM cache capacity ("the RAM size actually reflects the amount of
    /// RAM available for file system caching", §3.4). May be zero (§7.5).
    pub ram_size: ByteSize,
    /// Flash cache capacity. May be zero ("no flash").
    pub flash_size: ByteSize,
    /// RAM-tier writeback policy (§3.6).
    pub ram_policy: WritebackPolicy,
    /// Flash-tier writeback policy (§3.5). Ignored by the lookaside
    /// architecture, whose flash never holds dirty data.
    pub flash_policy: WritebackPolicy,
    /// RAM timing model.
    pub ram_model: RamModel,
    /// Flash timing model (includes the persistence flag, §7.8).
    pub flash_model: FlashModel,
    /// How flash device time is charged: [`FlashTiming::Flat`] (default —
    /// constant `flash_model` latencies, bit-identical to the pre-service
    /// engine) or [`FlashTiming::Ssd`] (queue-aware behavioral device).
    pub flash_timing: FlashTiming,
    /// Window size (in device I/Os) for per-window device latency
    /// averages in the report (`SimReport::device_windows` — the Figure 1
    /// series, produced inline). 0 (default) disables the series; only
    /// meaningful with [`FlashTiming::Ssd`].
    pub device_window: usize,
    /// Network timing model.
    pub net: NetConfig,
    /// Filer timing model.
    pub filer: FilerConfig,
    /// Whether read misses populate the flash tier on their way to RAM
    /// ("Newly referenced blocks are first placed in flash, then into
    /// RAM", §3.2). Ablation knob; the paper's design has it on.
    pub populate_flash_on_read: bool,
    /// Whether a RAM hit also promotes the block in the flash LRU chain,
    /// maintaining the naive/lookaside subset property (inclusive-cache
    /// behavior). Ablation knob; on by default.
    pub inclusive_promotion: bool,
    /// Whether flushing a dirty block *out of flash* charges a flash read
    /// (the data must come off the device before it can be sent). Flushes
    /// that still have the data in RAM never pay this. Ablation knob.
    pub charge_flash_read_on_writeback: bool,
    /// Full-duplex network segments (ablation; the paper's model is
    /// half-duplex: "each segment can carry one packet at a time").
    pub duplex_network: bool,
    /// Record every flash block I/O for Figure 1 replay (costs memory).
    pub log_flash_io: bool,
    /// Replacement policy for the RAM and flash tiers ("we use LRU", §1;
    /// FIFO and CLOCK are replacement-policy ablations). The unified
    /// architecture is defined by its single LRU chain and ignores this.
    pub replacement: EvictionPolicy,
    /// Keep the simulated clock running until at least this time, even if
    /// the trace finishes earlier. Lets periodic syncers drain after a
    /// short trace; `None` (default) ends the run with the last operation.
    pub min_runtime: Option<fcache_des::SimTime>,
    /// How many writebacks a periodic syncer keeps in flight at once. The
    /// syncer is one thread, but it issues asynchronous I/O; a window of 1
    /// degenerates to fully synchronous flushing, which cannot sustain the
    /// paper's write bandwidths (the wire, not the flush loop, should be
    /// the writeback bottleneck).
    pub syncer_window: usize,
    /// Divisor applied to time-based policy periods (the `pN` syncer
    /// intervals). Scaled-down experiments compress simulated run time by
    /// the byte scale factor; dividing the syncer period by the same
    /// factor preserves the dirty-data dynamics (dirty fraction per tick =
    /// write bandwidth × period / cache size is scale-invariant).
    /// [`SimConfig::scaled_down`] sets this automatically.
    pub time_scale: u64,
    /// Number of backend shards in the remote tier. 1 (the default) with
    /// `replicas == 1` and no `shard*` fault clauses keeps the single-filer
    /// engine, bit-identical to the pre-remote path (PERF.md invariant 11);
    /// anything else engages the sharded read-any/write-all tier.
    pub shards: u16,
    /// Replication factor of the remote tier (copies per block). Must be
    /// in `1..=shards`.
    pub replicas: u16,
    /// Hedge delay for replicated reads: after a miss fetch has been
    /// outstanding this long (paper-scale; divides by `time_scale`), a
    /// second request races on the next replica and the first answer wins.
    /// `None` (default) disables hedging. Meaningful only with
    /// `replicas > 1`.
    pub hedge: Option<fcache_des::SimTime>,
    /// Injected faults (see `fcache_types::fault`). Empty — the default —
    /// means a healthy run, bit-identical to the pre-fault engine; clause
    /// windows are paper-scale and divide by `time_scale` at resolve time.
    pub fault_plan: FaultPlan,
    /// Client robustness parameters (timeouts, retries, degraded-mode
    /// policy). Consulted only when `fault_plan` is non-empty.
    pub robustness: RobustnessConfig,
    /// Telemetry window length for the unified time series (paper-scale;
    /// divides by `time_scale`). `None` (default) disables the series.
    /// Engaging telemetry never changes simulation results (PERF.md
    /// invariant 12) — only what gets observed.
    pub telemetry_windows: Option<fcache_des::SimTime>,
    /// Fleet placement of this run: which cell of how many, the global
    /// host ids it covers, and the network fan-in (hosts per shared
    /// segment). `None` — the default — keeps the pre-fleet engine:
    /// private per-host segments, one shared metrics sink (PERF.md
    /// invariant 13). `Some` engages per-host metrics, fan-in-grouped
    /// shared segments, and the report's `fleet` section.
    pub fleet: Option<FleetTopology>,
    /// Span-stream output path: one JSONL row per completed measured op,
    /// in completion order (see `crate::telemetry`). `None` (default)
    /// disables the stream. Each run needs its own path — the CLI's sweep
    /// suffixes `.N` per job. Not part of the serialized result config
    /// (observer identity, not simulation identity).
    pub trace_out: Option<std::path::PathBuf>,
    /// Base RNG seed; filer draws and any stochastic components derive
    /// from it deterministically.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            arch: Architecture::Naive,
            ram_size: ByteSize::gib(8),
            flash_size: ByteSize::gib(64),
            ram_policy: WritebackPolicy::Periodic(1),
            flash_policy: WritebackPolicy::AsyncWriteThrough,
            ram_model: RamModel::default(),
            flash_model: FlashModel::default(),
            flash_timing: FlashTiming::Flat,
            device_window: 0,
            net: NetConfig::default(),
            filer: FilerConfig::default(),
            populate_flash_on_read: true,
            inclusive_promotion: true,
            charge_flash_read_on_writeback: true,
            duplex_network: false,
            log_flash_io: false,
            replacement: EvictionPolicy::Lru,
            min_runtime: None,
            syncer_window: 64,
            time_scale: 1,
            shards: 1,
            replicas: 1,
            hedge: None,
            fault_plan: FaultPlan::default(),
            robustness: RobustnessConfig::default(),
            telemetry_windows: None,
            fleet: None,
            trace_out: None,
            seed: 0xcafe_f00d,
        }
    }
}

impl SimConfig {
    /// The paper's baseline configuration.
    pub fn baseline() -> Self {
        Self::default()
    }

    /// Divides every byte quantity — and the time-based syncer periods —
    /// by `factor`, leaving latencies and ratios unchanged (see DESIGN.md
    /// §4 on linear scaling).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn scaled_down(mut self, factor: u64) -> Self {
        assert!(factor > 0, "scale factor must be nonzero");
        self.ram_size = self.ram_size.scaled_down(factor);
        self.flash_size = self.flash_size.scaled_down(factor);
        // An explicitly sized SSD device is a byte quantity too: shrink it
        // with the caches (re-deriving the FTL locality parameters) so fill
        // and wear dynamics stay scale-invariant. The auto sentinel (0)
        // needs nothing — it fits to the already-scaled flash tier at host
        // build time.
        if let FlashTiming::Ssd(sc) = &mut self.flash_timing {
            if sc.capacity_blocks > 0 {
                *sc = sc
                    .clone()
                    .fit_capacity((sc.capacity_blocks / factor).max(1));
            }
        }
        self.time_scale = self.time_scale.saturating_mul(factor);
        self
    }

    /// A paper-scale duration divided by this configuration's time scale
    /// (never below 1 ns). Robustness timeouts and backoffs go through
    /// this, like syncer periods go through [`SimConfig::scaled_period`].
    pub fn scaled_time(&self, t: fcache_des::SimTime) -> fcache_des::SimTime {
        fcache_des::SimTime::from_nanos((t.as_nanos() / self.time_scale).max(1))
    }

    /// Effective period of a policy under this configuration's time scale.
    pub fn scaled_period(
        &self,
        policy: crate::policy::WritebackPolicy,
    ) -> Option<fcache_des::SimTime> {
        policy
            .period()
            .map(|p| fcache_des::SimTime::from_nanos((p.as_nanos() / self.time_scale).max(1)))
    }

    /// Whether this configuration engages the sharded remote tier. A
    /// hedge delay alone does not engage it — hedging with one replica is
    /// a no-op, and engaging would cost the bit-identity of the plain
    /// filer path (PERF.md invariant 11).
    pub fn remote_engaged(&self) -> bool {
        self.shards > 1 || self.replicas > 1 || self.fault_plan.has_shard_clauses()
    }

    /// Whether this configuration collects telemetry (op spans, windows,
    /// span stream). Off — the default — keeps every instrumentation hook
    /// `None`, the literal pre-telemetry code path.
    pub fn telemetry_engaged(&self) -> bool {
        self.telemetry_windows.is_some() || self.trace_out.is_some()
    }

    /// Whether this run is a fleet cell: per-host metrics, fan-in-grouped
    /// shared network segments, and a `fleet` report section. Off — the
    /// default — is the literal pre-fleet engine (PERF.md invariant 13).
    pub fn fleet_engaged(&self) -> bool {
        self.fleet.is_some()
    }

    /// Hosts sharing one network segment: the fleet topology's fan-in, or
    /// 1 (private per-host segments) outside a fleet.
    pub fn net_fanin(&self) -> u16 {
        self.fleet.as_ref().map_or(1, FleetTopology::fanin)
    }

    /// RAM capacity in 4 KB blocks.
    pub fn ram_blocks(&self) -> usize {
        self.ram_size.blocks() as usize
    }

    /// Flash capacity in 4 KB blocks.
    pub fn flash_blocks(&self) -> usize {
        self.flash_size.blocks() as usize
    }

    /// Renders the Table 1 timing parameters of this configuration.
    pub fn timing_table(&self) -> String {
        let mut out = String::new();
        out.push_str("Parameter                 Value\n");
        out.push_str(&format!(
            "RAM read                  {} / 4K block\n",
            self.ram_model.read
        ));
        out.push_str(&format!(
            "RAM write                 {} / 4K block\n",
            self.ram_model.write
        ));
        out.push_str(&format!(
            "Flash read                {} / 4K block\n",
            self.flash_model.read_latency()
        ));
        out.push_str(&format!(
            "Flash write               {} / 4K block\n",
            self.flash_model.write_latency()
        ));
        out.push_str(&format!(
            "Network base latency      {} / packet\n",
            self.net.base_latency
        ));
        out.push_str(&format!(
            "Network data latency      {} / bit\n",
            self.net.per_bit
        ));
        out.push_str(&format!(
            "File server fast read     {} / 4K block\n",
            self.filer.fast_read
        ));
        out.push_str(&format!(
            "File server slow read     {} / 4K block\n",
            self.filer.slow_read
        ));
        out.push_str(&format!(
            "File server write         {} / 4K block\n",
            self.filer.write
        ));
        out.push_str(&format!(
            "File server fast read rate {:.0}%\n",
            self.filer.fast_read_rate * 100.0
        ));
        out.push_str(&format!(
            "Flash timing model        {}\n",
            self.flash_timing.describe()
        ));
        if self.remote_engaged() {
            let hedge = match self.hedge {
                Some(d) => format!("hedge after {d}"),
                None => "no hedging".to_string(),
            };
            out.push_str(&format!(
                "Remote tier               {} shard(s) x {} replica(s), {hedge}\n",
                self.shards, self.replicas
            ));
        }
        if !self.fault_plan.is_empty() {
            out.push_str(&format!(
                "Fault plan                {} (degraded: {})\n",
                self.fault_plan.describe(),
                self.robustness.degraded.label()
            ));
        }
        if let Some(fleet) = &self.fleet {
            out.push_str(&format!("Fleet cell                {fleet}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcache_des::SimTime;

    #[test]
    fn baseline_matches_paper() {
        let c = SimConfig::baseline();
        assert_eq!(c.arch, Architecture::Naive);
        assert_eq!(c.ram_size, ByteSize::gib(8));
        assert_eq!(c.flash_size, ByteSize::gib(64));
        assert_eq!(c.ram_policy, WritebackPolicy::Periodic(1));
        assert_eq!(c.flash_policy, WritebackPolicy::AsyncWriteThrough);
        assert_eq!(c.ram_model.read, SimTime::from_nanos(400));
        assert_eq!(c.flash_model.read, SimTime::from_micros(88));
    }

    #[test]
    fn scaling_divides_sizes_only() {
        let c = SimConfig::baseline().scaled_down(64);
        assert_eq!(c.ram_size, ByteSize::mib(128));
        assert_eq!(c.flash_size, ByteSize::gib(1));
        // Latencies unchanged.
        assert_eq!(c.flash_model.read, SimTime::from_micros(88));
    }

    #[test]
    fn scaling_shrinks_an_explicit_ssd_device_with_the_caches() {
        let paper_blocks = (58u64 << 30) / 4096;
        let c = SimConfig {
            flash_timing: FlashTiming::Ssd(SsdConfig::default()),
            ..SimConfig::baseline()
        }
        .scaled_down(64);
        let FlashTiming::Ssd(sc) = &c.flash_timing else {
            panic!("timing mode must survive scaling");
        };
        assert_eq!(sc.capacity_blocks, paper_blocks / 64);
        // Locality parameters were re-fitted, latencies untouched.
        let refit = SsdConfig::default().fit_capacity(paper_blocks / 64);
        assert_eq!(sc.region_shift, refit.region_shift);
        assert_eq!(sc.map_cache_slots, refit.map_cache_slots);
        assert_eq!(sc.read_base, SsdConfig::default().read_base);
        // The auto sentinel passes through untouched.
        let auto = SimConfig {
            flash_timing: FlashTiming::Ssd(SsdConfig::auto()),
            ..SimConfig::baseline()
        }
        .scaled_down(64);
        let FlashTiming::Ssd(sc) = &auto.flash_timing else {
            panic!("timing mode must survive scaling");
        };
        assert_eq!(sc.capacity_blocks, 0);
    }

    #[test]
    fn block_counts() {
        let c = SimConfig::baseline().scaled_down(64);
        assert_eq!(c.ram_blocks(), (128 << 20) / 4096);
        assert_eq!(c.flash_blocks(), (1 << 30) / 4096);
    }

    #[test]
    fn timing_table_mentions_all_parameters() {
        let t = SimConfig::baseline().timing_table();
        for needle in [
            "RAM read",
            "Flash write",
            "Network base",
            "fast read rate",
            "88.000us",
            "21.000us",
            "Flash timing model",
            "flat",
        ] {
            assert!(t.contains(needle), "missing {needle} in:\n{t}");
        }
    }

    #[test]
    fn flash_timing_defaults_to_flat() {
        assert_eq!(SimConfig::baseline().flash_timing, FlashTiming::Flat);
        assert_eq!(SimConfig::baseline().device_window, 0);
    }

    #[test]
    fn remote_tier_engagement_and_table_line() {
        let base = SimConfig::baseline();
        assert!(!base.remote_engaged());
        assert!(!base.timing_table().contains("Remote tier"));
        // A hedge delay alone is a no-op with one replica: stays plain.
        let hedged = SimConfig {
            hedge: Some(SimTime::from_micros(500)),
            ..SimConfig::baseline()
        };
        assert!(!hedged.remote_engaged());
        for engaged in [
            SimConfig {
                shards: 4,
                ..SimConfig::baseline()
            },
            SimConfig {
                shards: 4,
                replicas: 2,
                ..SimConfig::baseline()
            },
            SimConfig {
                fault_plan: FaultPlan::parse("shard0:outage@1s-2s").unwrap(),
                ..SimConfig::baseline()
            },
        ] {
            assert!(engaged.remote_engaged(), "{:?}", engaged.shards);
        }
        let t = SimConfig {
            shards: 4,
            replicas: 2,
            hedge: Some(SimTime::from_micros(500)),
            ..SimConfig::baseline()
        }
        .timing_table();
        assert!(
            t.contains("Remote tier") && t.contains("4 shard(s) x 2 replica(s)"),
            "{t}"
        );
        assert!(t.contains("hedge after"), "{t}");
    }

    #[test]
    fn fleet_engagement_and_table_line() {
        let base = SimConfig::baseline();
        assert!(!base.fleet_engaged());
        assert_eq!(base.net_fanin(), 1);
        assert!(!base.timing_table().contains("Fleet cell"));
        let cell = SimConfig {
            fleet: Some(FleetTopology {
                cell: 1,
                cells: 4,
                host_base: 256,
                fleet_hosts: 1024,
                hosts_per_segment: 16,
            }),
            ..SimConfig::baseline()
        };
        assert!(cell.fleet_engaged());
        assert_eq!(cell.net_fanin(), 16);
        let t = cell.timing_table();
        assert!(t.contains("Fleet cell") && t.contains("cell 1/4"), "{t}");
    }

    #[test]
    fn timing_table_names_the_active_ssd_model() {
        let cfg = SimConfig {
            flash_timing: FlashTiming::Ssd(SsdConfig::auto()),
            ..SimConfig::baseline()
        };
        let t = cfg.timing_table();
        for needle in ["ssd", "auto (flash-sized)", "queue depth 32", "52.000us"] {
            assert!(t.contains(needle), "missing {needle} in:\n{t}");
        }
        let sized = SimConfig {
            flash_timing: FlashTiming::Ssd(SsdConfig::small(4096, 1)),
            ..SimConfig::baseline()
        };
        assert!(sized.timing_table().contains("4096 blocks"));
    }
}
